//! Property-based tests for the shared vocabulary types.

use ena_model::config::{EhpConfig, MAX_CUS};
use ena_model::kernel::{KernelCategory, KernelProfile};
use ena_model::units::{GigabytesPerSec, Joules, Megahertz, Seconds, Watts};
use ena_testkit::prelude::*;

proptest! {
    #[test]
    fn unit_addition_commutes(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        prop_assert_eq!(Watts::new(a) + Watts::new(b), Watts::new(b) + Watts::new(a));
    }

    #[test]
    fn energy_power_time_round_trip(p in 1e-3f64..1e6, t in 1e-3f64..1e6) {
        let e: Joules = Watts::new(p) * Seconds::new(t);
        let back = e / Seconds::new(t);
        prop_assert!((back.value() - p).abs() <= p * 1e-12);
    }

    #[test]
    fn clamp_stays_in_bounds(v in -1e6f64..1e6, lo in -100.0f64..0.0, hi in 0.0f64..100.0) {
        let c = Watts::new(v).clamp(Watts::new(lo), Watts::new(hi));
        prop_assert!(c.value() >= lo && c.value() <= hi);
    }

    #[test]
    fn any_in_range_config_builds(
        cus_per_chiplet in 1u32..=MAX_CUS / 8,
        mhz in 100.0f64..3000.0,
        tbps in 0.1f64..20.0,
    ) {
        let cfg = EhpConfig::builder()
            .total_cus(cus_per_chiplet * 8)
            .gpu_clock(Megahertz::new(mhz))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(tbps))
            .build();
        let cfg = cfg.expect("in-range config must build");
        prop_assert_eq!(cfg.gpu.total_cus(), cus_per_chiplet * 8);
        prop_assert!(cfg.ops_per_byte() > 0.0);
        prop_assert!(cfg.peak_throughput().value() > 0.0);
    }

    #[test]
    fn categorize_is_monotone_in_intensity(
        a in 0.0f64..1e4,
        b in 0.0f64..1e4,
        balance in 0.1f64..100.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let rank = |c: KernelCategory| match c {
            KernelCategory::MemoryIntensive => 0,
            KernelCategory::Balanced => 1,
            KernelCategory::ComputeIntensive => 2,
        };
        prop_assert!(
            rank(KernelProfile::categorize(lo, balance))
                <= rank(KernelProfile::categorize(hi, balance))
        );
    }

    #[test]
    fn profile_validation_accepts_the_unit_cube(
        u in 0.0f64..=1.0,
        par in 0.0f64..=1.0,
        lat in 0.0f64..=1.0,
        cont in 0.0f64..10.0,
        wf in 0.0f64..=1.0,
        ext in 0.0f64..=1.0,
        ooc in 0.0f64..=1.0,
        ser in 0.0f64..=1.0,
        opb in 0.0f64..1e6,
    ) {
        let p = KernelProfile {
            name: "prop".into(),
            category: KernelCategory::Balanced,
            ops_per_byte: opb,
            utilization: u,
            parallelism: par,
            latency_sensitivity: lat,
            contention_sensitivity: cont,
            write_fraction: wf,
            ext_traffic_fraction: ext,
            out_of_chiplet_fraction: ooc,
            serial_fraction: ser,
        };
        prop_assert!(p.validate().is_ok());
    }
}

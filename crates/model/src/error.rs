//! Error types shared across the ENA toolkit.

use core::fmt;

/// Error produced when validating an [`crate::config::EhpConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The requested CU count exceeds the package area budget.
    AreaBudgetExceeded {
        /// Requested total CU count.
        cus: u32,
        /// Maximum CU count the package can host.
        max: u32,
    },
    /// A structural component count (chiplets, cores, stacks) was zero.
    ZeroComponent(&'static str),
    /// A rate or capacity was zero, negative, or non-finite.
    NonPositive(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::AreaBudgetExceeded { cus, max } => {
                write!(f, "{cus} CUs exceed the package area budget of {max}")
            }
            ConfigError::ZeroComponent(name) => {
                write!(f, "configuration has zero {name}")
            }
            ConfigError::NonPositive(name) => {
                write!(f, "{name} must be positive and finite")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Error produced when validating a [`crate::kernel::KernelProfile`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A field value fell outside its documented domain.
    OutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The profile name was empty.
    EmptyName,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::OutOfRange { field, value } => {
                write!(f, "profile field {field} out of range: {value}")
            }
            ProfileError::EmptyName => f.write_str("profile name is empty"),
        }
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ConfigError::AreaBudgetExceeded { cus: 400, max: 384 };
        assert_eq!(
            e.to_string(),
            "400 CUs exceed the package area budget of 384"
        );
        let e = ConfigError::ZeroComponent("HBM stacks");
        assert!(e.to_string().contains("HBM stacks"));
        let e = ProfileError::OutOfRange {
            field: "utilization",
            value: 2.0,
        };
        assert!(e.to_string().contains("utilization"));
        assert!(!ProfileError::EmptyName.to_string().is_empty());
    }

    #[test]
    fn errors_are_std_errors_and_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<ProfileError>();
    }
}

//! Error types shared across the ENA toolkit.

use core::fmt;

/// Error produced when validating an [`crate::config::EhpConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The requested CU count exceeds the package area budget.
    AreaBudgetExceeded {
        /// Requested total CU count.
        cus: u32,
        /// Maximum CU count the package can host.
        max: u32,
    },
    /// A structural component count (chiplets, cores, stacks) was zero.
    ZeroComponent(&'static str),
    /// A rate or capacity was zero, negative, or non-finite.
    NonPositive(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::AreaBudgetExceeded { cus, max } => {
                write!(f, "{cus} CUs exceed the package area budget of {max}")
            }
            ConfigError::ZeroComponent(name) => {
                write!(f, "configuration has zero {name}")
            }
            ConfigError::NonPositive(name) => {
                write!(f, "{name} must be positive and finite")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Error produced when validating a [`crate::kernel::KernelProfile`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A field value fell outside its documented domain.
    OutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The profile name was empty.
    EmptyName,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::OutOfRange { field, value } => {
                write!(f, "profile field {field} out of range: {value}")
            }
            ProfileError::EmptyName => f.write_str("profile name is empty"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Error applying or propagating an injected component fault.
///
/// Shared by every layer the `ena-faults` engine degrades: the NoC reports
/// malformed or severed routes, the memory system reports dead stacks, and
/// the HSA runtime reports exhausted retries — all as values of this type,
/// never as panics.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradeError {
    /// A node id outside the topology (or already failed) was referenced.
    UnknownNode(usize),
    /// No route exists between two live nodes: degradation severed them.
    Unreachable {
        /// Route source node id.
        src: usize,
        /// Route destination node id.
        dst: usize,
    },
    /// A named component index does not exist or has already failed.
    UnknownComponent {
        /// Component class (e.g. "HBM stack", "interposer link").
        component: &'static str,
        /// The rejected index.
        index: u64,
    },
    /// Refusing to fail the last survivor of a component class.
    LastSurvivor(&'static str),
    /// A task exhausted its retry budget after repeated agent failures.
    RetriesExhausted {
        /// The task that could not complete.
        task: usize,
        /// Attempts consumed (including the first dispatch).
        attempts: u32,
    },
    /// No live agent can run a task.
    NoCompatibleAgent {
        /// The stranded task.
        task: usize,
    },
}

impl fmt::Display for DegradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeError::UnknownNode(id) => write!(f, "unknown or failed node id {id}"),
            DegradeError::Unreachable { src, dst } => {
                write!(
                    f,
                    "no route from node {src} to node {dst} after degradation"
                )
            }
            DegradeError::UnknownComponent { component, index } => {
                write!(f, "{component} {index} does not exist or already failed")
            }
            DegradeError::LastSurvivor(component) => {
                write!(f, "cannot fail the last surviving {component}")
            }
            DegradeError::RetriesExhausted { task, attempts } => {
                write!(
                    f,
                    "task {task} exhausted its retry budget after {attempts} attempts"
                )
            }
            DegradeError::NoCompatibleAgent { task } => {
                write!(f, "no surviving agent can run task {task}")
            }
        }
    }
}

impl std::error::Error for DegradeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ConfigError::AreaBudgetExceeded { cus: 400, max: 384 };
        assert_eq!(
            e.to_string(),
            "400 CUs exceed the package area budget of 384"
        );
        let e = ConfigError::ZeroComponent("HBM stacks");
        assert!(e.to_string().contains("HBM stacks"));
        let e = ProfileError::OutOfRange {
            field: "utilization",
            value: 2.0,
        };
        assert!(e.to_string().contains("utilization"));
        assert!(!ProfileError::EmptyName.to_string().is_empty());
    }

    #[test]
    fn degrade_errors_name_the_component() {
        let e = DegradeError::UnknownComponent {
            component: "HBM stack",
            index: 9,
        };
        assert!(e.to_string().contains("HBM stack 9"));
        let e = DegradeError::Unreachable { src: 3, dst: 17 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("17"));
        let e = DegradeError::RetriesExhausted {
            task: 4,
            attempts: 3,
        };
        assert!(e.to_string().contains("retry budget"));
        assert!(!DegradeError::LastSurvivor("GPU chiplet")
            .to_string()
            .is_empty());
    }

    #[test]
    fn errors_are_std_errors_and_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<ProfileError>();
        assert_err::<DegradeError>();
    }
}

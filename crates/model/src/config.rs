//! Hardware configuration types for the Exascale Node Architecture.
//!
//! The central type is [`EhpConfig`], describing one Exascale Heterogeneous
//! Processor package: GPU chiplets, CPU chiplets, in-package 3D DRAM, the
//! chiplet interconnect, and the external memory network attached to the
//! node. Configurations are built with [`EhpConfigBuilder`] which validates
//! the paper's area and sanity constraints.
//!
//! ```
//! use ena_model::config::EhpConfig;
//!
//! let ehp = EhpConfig::paper_baseline();
//! assert_eq!(ehp.gpu.total_cus(), 320);
//! assert_eq!(ehp.hbm.total_bandwidth().terabytes_per_sec(), 3.0);
//! ```

use crate::error::ConfigError;
use crate::units::{Gigabytes, GigabytesPerSec, Gigaflops, Megahertz, Watts};

/// Maximum CU count the EHP package can host (paper Section VI: "area budget
/// of up to 384 CUs per node").
pub const MAX_CUS: u32 = 384;

/// Double-precision FLOPs per CU per clock cycle.
///
/// The paper provisions 2 DP teraflops per 32-CU chiplet at 1 GHz, i.e.
/// 62.5 FLOP/cycle/CU; we round to the realistic power-of-two SIMD width.
pub const FLOPS_PER_CU_CYCLE: f64 = 64.0;

/// Per-node power budget used in the design-space exploration (W).
///
/// The paper sets 160 W for the EHP package to leave headroom for cooling
/// and the inter-node network inside the 200 W node envelope.
pub const NODE_POWER_BUDGET: Watts = Watts::new(160.0);

/// Number of nodes in the envisioned exascale machine.
pub const SYSTEM_NODE_COUNT: u64 = 100_000;

/// GPU complex configuration: chiplets and compute units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuConfig {
    /// Number of GPU chiplets in the package (paper: 8).
    pub chiplets: u32,
    /// Compute units per chiplet.
    pub cus_per_chiplet: u32,
    /// CU clock frequency.
    pub clock: Megahertz,
}

impl GpuConfig {
    /// Total CU count across all chiplets.
    pub fn total_cus(&self) -> u32 {
        self.chiplets * self.cus_per_chiplet
    }

    /// Peak double-precision throughput of the GPU complex.
    pub fn peak_throughput(&self) -> Gigaflops {
        Gigaflops::new(f64::from(self.total_cus()) * self.clock.gigahertz() * FLOPS_PER_CU_CYCLE)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            chiplets: 8,
            cus_per_chiplet: 40,
            clock: Megahertz::new(1000.0),
        }
    }
}

/// CPU complex configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuConfig {
    /// Number of CPU chiplets (paper: 8, in two clusters of four).
    pub chiplets: u32,
    /// Cores per CPU chiplet (paper: 4).
    pub cores_per_chiplet: u32,
    /// Core clock frequency.
    pub clock: Megahertz,
    /// Whether simultaneous multi-threading is enabled (paper: optional).
    pub smt: bool,
}

impl CpuConfig {
    /// Total core count.
    pub fn total_cores(&self) -> u32 {
        self.chiplets * self.cores_per_chiplet
    }

    /// Hardware thread count (2 threads/core with SMT).
    pub fn total_threads(&self) -> u32 {
        self.total_cores() * if self.smt { 2 } else { 1 }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            chiplets: 8,
            cores_per_chiplet: 4,
            clock: Megahertz::new(2500.0),
            smt: true,
        }
    }
}

/// In-package 3D DRAM (HBM-successor) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HbmConfig {
    /// Number of 3D DRAM stacks (paper: 8, one per GPU chiplet).
    pub stacks: u32,
    /// Capacity per stack (paper projection: 32 GB).
    pub capacity_per_stack: Gigabytes,
    /// Bandwidth per stack (paper projection: 512 GB/s for 4 TB/s total).
    pub bandwidth_per_stack: GigabytesPerSec,
}

impl HbmConfig {
    /// Total in-package capacity.
    pub fn total_capacity(&self) -> Gigabytes {
        self.capacity_per_stack * f64::from(self.stacks)
    }

    /// Total aggregate in-package bandwidth.
    pub fn total_bandwidth(&self) -> GigabytesPerSec {
        self.bandwidth_per_stack * f64::from(self.stacks)
    }
}

impl Default for HbmConfig {
    fn default() -> Self {
        Self {
            stacks: 8,
            capacity_per_stack: Gigabytes::new(32.0),
            bandwidth_per_stack: GigabytesPerSec::new(375.0),
        }
    }
}

/// Kind of module populating the external memory network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExternalModuleKind {
    /// 3D-stacked DRAM module (HMC-like).
    #[default]
    Dram,
    /// Non-volatile memory module: ~4x density, near-zero static power,
    /// higher (and write-asymmetric) dynamic access energy.
    Nvm,
}

/// External memory network configuration (Section II-B.2).
///
/// The EHP exposes eight external-memory interfaces, each driving a chain of
/// memory modules over point-to-point SerDes links.
#[derive(Clone, Debug, PartialEq)]
pub struct ExternalMemoryConfig {
    /// Number of external memory interfaces on the package (paper: 8).
    pub interfaces: u32,
    /// Module kinds along each chain, nearest-first. All chains are
    /// identical (the address space is interleaved across interfaces).
    pub chain: Vec<ExternalModuleKind>,
    /// Capacity of one DRAM module.
    pub dram_module_capacity: Gigabytes,
    /// Capacity of one NVM module (nominally
    /// [`Self::NVM_DENSITY_FACTOR`] times the DRAM module capacity).
    pub nvm_module_capacity: Gigabytes,
    /// Peak bandwidth of one SerDes interface.
    pub interface_bandwidth: GigabytesPerSec,
}

impl ExternalMemoryConfig {
    /// NVM density multiple relative to DRAM (paper footnote 6).
    pub const NVM_DENSITY_FACTOR: f64 = 4.0;

    /// A DRAM-only configuration totalling `capacity` across all chains.
    ///
    /// # Panics
    ///
    /// Panics if `modules_per_chain` is zero.
    pub fn dram_only(modules_per_chain: u32, capacity: Gigabytes) -> Self {
        assert!(
            modules_per_chain > 0,
            "chains must hold at least one module"
        );
        let interfaces = 8;
        let module_cap = capacity / f64::from(interfaces * modules_per_chain);
        Self {
            interfaces,
            chain: vec![ExternalModuleKind::Dram; modules_per_chain as usize],
            dram_module_capacity: module_cap,
            nvm_module_capacity: module_cap * Self::NVM_DENSITY_FACTOR,
            interface_bandwidth: GigabytesPerSec::new(125.0),
        }
    }

    /// The hybrid configuration of Section V-C: half the external DRAM
    /// capacity replaced by NVM at equal total capacity. Because NVM is ~4x
    /// denser, the displaced DRAM modules collapse into roughly a quarter as
    /// many NVM modules, shortening the chains (and shedding SerDes links).
    /// The NVM module capacity is sized so total capacity is preserved
    /// exactly.
    pub fn hybrid(modules_per_chain: u32, capacity: Gigabytes) -> Self {
        let base = Self::dram_only(modules_per_chain, capacity);
        let keep_dram = (modules_per_chain as usize).div_ceil(2);
        let displaced = modules_per_chain as usize - keep_dram;
        let displaced_capacity = base.dram_module_capacity * displaced as f64;
        let nvm_modules = ((displaced as f64 / Self::NVM_DENSITY_FACTOR).round() as usize).max(1);
        let mut chain = vec![ExternalModuleKind::Dram; keep_dram];
        chain.extend(std::iter::repeat_n(ExternalModuleKind::Nvm, nvm_modules));
        Self {
            chain,
            nvm_module_capacity: displaced_capacity / nvm_modules as f64,
            ..base
        }
    }

    /// Modules per chain.
    pub fn modules_per_chain(&self) -> usize {
        self.chain.len()
    }

    /// Total module count across all chains.
    pub fn total_modules(&self) -> usize {
        self.chain.len() * self.interfaces as usize
    }

    /// Total SerDes link count (one link per chain hop, plus the root link
    /// from the package to the first module of each chain).
    pub fn total_links(&self) -> usize {
        self.total_modules()
    }

    /// Capacity of a single module of the given kind.
    pub fn module_capacity(&self, kind: ExternalModuleKind) -> Gigabytes {
        match kind {
            ExternalModuleKind::Dram => self.dram_module_capacity,
            ExternalModuleKind::Nvm => self.nvm_module_capacity,
        }
    }

    /// Total external capacity.
    pub fn total_capacity(&self) -> Gigabytes {
        let per_chain: Gigabytes = self
            .chain
            .iter()
            .map(|&kind| self.module_capacity(kind))
            .sum();
        per_chain * f64::from(self.interfaces)
    }

    /// Aggregate external bandwidth across all interfaces.
    pub fn total_bandwidth(&self) -> GigabytesPerSec {
        self.interface_bandwidth * f64::from(self.interfaces)
    }

    /// Fraction of external capacity that is NVM.
    pub fn nvm_capacity_fraction(&self) -> f64 {
        let nvm: Gigabytes = self
            .chain
            .iter()
            .filter(|&&kind| kind == ExternalModuleKind::Nvm)
            .map(|&kind| self.module_capacity(kind))
            .sum();
        let per_chain: Gigabytes = self
            .chain
            .iter()
            .map(|&kind| self.module_capacity(kind))
            .sum();
        if per_chain.value() == 0.0 {
            0.0
        } else {
            nvm / per_chain
        }
    }
}

impl Default for ExternalMemoryConfig {
    fn default() -> Self {
        // 1 TB node target minus 256 GB in-package = 768 GB external.
        Self::dram_only(4, Gigabytes::new(768.0))
    }
}

/// Physical organization of the compute complex.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PackageOrganization {
    /// The proposed chiplet-on-active-interposer design: remote accesses pay
    /// two extra TSV hops and an interposer traversal.
    #[default]
    Chiplets,
    /// Hypothetical monolithic die used as the Fig. 7 baseline.
    Monolithic,
}

/// Full EHP package + node memory configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct EhpConfig {
    /// GPU complex.
    pub gpu: GpuConfig,
    /// CPU complex.
    pub cpu: CpuConfig,
    /// In-package 3D DRAM.
    pub hbm: HbmConfig,
    /// External memory network.
    pub external: ExternalMemoryConfig,
    /// Chiplet vs monolithic organization.
    pub organization: PackageOrganization,
}

impl EhpConfig {
    /// Starts building a configuration.
    pub fn builder() -> EhpConfigBuilder {
        EhpConfigBuilder::new()
    }

    /// The paper's best-mean configuration: 320 CUs, 1 GHz, 3 TB/s.
    ///
    /// Spelled as a literal (8 chiplets x 40 CUs, 8 stacks x 375 GB/s)
    /// so construction is infallible; the builder round-trip is pinned by
    /// a test.
    pub fn paper_baseline() -> Self {
        Self {
            gpu: GpuConfig {
                chiplets: 8,
                cus_per_chiplet: 40,
                clock: Megahertz::new(1000.0),
            },
            cpu: CpuConfig::default(),
            hbm: HbmConfig {
                stacks: 8,
                capacity_per_stack: Gigabytes::new(32.0),
                bandwidth_per_stack: GigabytesPerSec::new(375.0),
            },
            external: ExternalMemoryConfig::default(),
            organization: PackageOrganization::Chiplets,
        }
    }

    /// The best-mean configuration after power optimizations (Section V-E):
    /// 288 CUs, 1.1 GHz, 3 TB/s.
    pub fn paper_optimized_baseline() -> Self {
        Self {
            gpu: GpuConfig {
                chiplets: 8,
                cus_per_chiplet: 36,
                clock: Megahertz::new(1100.0),
            },
            ..Self::paper_baseline()
        }
    }

    /// Total node memory capacity (in-package plus external).
    pub fn total_memory_capacity(&self) -> Gigabytes {
        self.hbm.total_capacity() + self.external.total_capacity()
    }

    /// Peak GPU throughput of the package.
    pub fn peak_throughput(&self) -> Gigaflops {
        self.gpu.peak_throughput()
    }

    /// Hardware ops-per-byte: peak compute divided by in-package bandwidth.
    ///
    /// This is the x-axis of the paper's Figs. 4-6 (CU count x frequency /
    /// bandwidth, in CU-GHz per GB/s).
    pub fn ops_per_byte(&self) -> f64 {
        f64::from(self.gpu.total_cus()) * self.gpu.clock.gigahertz()
            / self.hbm.total_bandwidth().value()
    }
}

impl Default for EhpConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Builder for [`EhpConfig`] (C-BUILDER).
///
/// ```
/// use ena_model::config::EhpConfig;
/// use ena_model::units::{GigabytesPerSec, Megahertz};
///
/// # fn main() -> Result<(), ena_model::error::ConfigError> {
/// let cfg = EhpConfig::builder()
///     .total_cus(256)
///     .gpu_clock(Megahertz::new(1200.0))
///     .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(4.0))
///     .build()?;
/// assert_eq!(cfg.gpu.total_cus(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EhpConfigBuilder {
    gpu: GpuConfig,
    cpu: CpuConfig,
    hbm: HbmConfig,
    external: ExternalMemoryConfig,
    organization: PackageOrganization,
}

impl EhpConfigBuilder {
    /// Creates a builder seeded with the paper-baseline values.
    pub fn new() -> Self {
        Self {
            gpu: GpuConfig::default(),
            cpu: CpuConfig::default(),
            hbm: HbmConfig {
                bandwidth_per_stack: GigabytesPerSec::new(375.0),
                ..HbmConfig::default()
            },
            external: ExternalMemoryConfig::default(),
            organization: PackageOrganization::Chiplets,
        }
    }

    /// Sets the total CU count, distributed evenly over the GPU chiplets.
    ///
    /// The count must be divisible by the chiplet count.
    pub fn total_cus(mut self, total: u32) -> Self {
        self.gpu.cus_per_chiplet = total / self.gpu.chiplets;
        self
    }

    /// Sets the GPU CU clock.
    pub fn gpu_clock(mut self, clock: Megahertz) -> Self {
        self.gpu.clock = clock;
        self
    }

    /// Sets the aggregate in-package bandwidth, split evenly over stacks.
    pub fn hbm_bandwidth(mut self, total: GigabytesPerSec) -> Self {
        self.hbm.bandwidth_per_stack = total / f64::from(self.hbm.stacks);
        self
    }

    /// Replaces the GPU complex configuration wholesale.
    pub fn gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Replaces the CPU complex configuration.
    pub fn cpu(mut self, cpu: CpuConfig) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the in-package memory configuration.
    pub fn hbm(mut self, hbm: HbmConfig) -> Self {
        self.hbm = hbm;
        self
    }

    /// Replaces the external memory network configuration.
    pub fn external(mut self, external: ExternalMemoryConfig) -> Self {
        self.external = external;
        self
    }

    /// Selects the package organization (chiplets vs monolithic).
    pub fn organization(mut self, organization: PackageOrganization) -> Self {
        self.organization = organization;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the CU count exceeds the package area
    /// budget, any structural count is zero, or a rate/capacity is
    /// non-positive or non-finite.
    pub fn build(self) -> Result<EhpConfig, ConfigError> {
        let cus = self.gpu.total_cus();
        if cus == 0 {
            return Err(ConfigError::ZeroComponent("GPU compute units"));
        }
        if cus > MAX_CUS {
            return Err(ConfigError::AreaBudgetExceeded { cus, max: MAX_CUS });
        }
        if self.cpu.total_cores() == 0 {
            return Err(ConfigError::ZeroComponent("CPU cores"));
        }
        if self.hbm.stacks == 0 {
            return Err(ConfigError::ZeroComponent("HBM stacks"));
        }
        for (name, v) in [
            ("GPU clock", self.gpu.clock.value()),
            ("CPU clock", self.cpu.clock.value()),
            ("HBM bandwidth", self.hbm.bandwidth_per_stack.value()),
            ("HBM capacity", self.hbm.capacity_per_stack.value()),
            (
                "external bandwidth",
                self.external.interface_bandwidth.value(),
            ),
            (
                "external capacity",
                self.external.dram_module_capacity.value(),
            ),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ConfigError::NonPositive(name));
            }
        }
        Ok(EhpConfig {
            gpu: self.gpu,
            cpu: self.cpu,
            hbm: self.hbm,
            external: self.external,
            organization: self.organization,
        })
    }
}

impl Default for EhpConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_literals_match_the_builder() {
        let built = EhpConfig::builder()
            .total_cus(320)
            .gpu_clock(Megahertz::new(1000.0))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(3.0))
            .build()
            .unwrap();
        assert_eq!(EhpConfig::paper_baseline(), built);
        let opt = EhpConfig::builder()
            .total_cus(288)
            .gpu_clock(Megahertz::new(1100.0))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(3.0))
            .build()
            .unwrap();
        assert_eq!(EhpConfig::paper_optimized_baseline(), opt);
    }

    #[test]
    fn paper_baseline_matches_section_v() {
        let cfg = EhpConfig::paper_baseline();
        assert_eq!(cfg.gpu.total_cus(), 320);
        assert_eq!(cfg.gpu.clock, Megahertz::new(1000.0));
        assert!((cfg.hbm.total_bandwidth().terabytes_per_sec() - 3.0).abs() < 1e-9);
        assert_eq!(cfg.hbm.total_capacity(), Gigabytes::new(256.0));
        // >= 1 TB total node memory target.
        assert!(cfg.total_memory_capacity().value() >= 1000.0);
    }

    #[test]
    fn peak_throughput_tracks_cus_and_clock() {
        let cfg = EhpConfig::builder()
            .total_cus(256)
            .gpu_clock(Megahertz::new(1000.0))
            .build()
            .unwrap();
        // 256 CUs x 1 GHz x 64 FLOP/cycle = 16.384 TF (paper: ~16 TF).
        assert!((cfg.peak_throughput().teraflops() - 16.384).abs() < 1e-9);
    }

    #[test]
    fn ops_per_byte_matches_figure_axis() {
        let cfg = EhpConfig::paper_baseline();
        // 320 CU x 1 GHz / 3000 GB/s = 0.1067 (within Fig. 4-6's 0-0.35 range).
        assert!((cfg.ops_per_byte() - 320.0 / 3000.0).abs() < 1e-12);
    }

    #[test]
    fn area_budget_is_enforced() {
        let err = EhpConfig::builder().total_cus(416).build().unwrap_err();
        assert!(matches!(
            err,
            ConfigError::AreaBudgetExceeded { cus: 416, max: 384 }
        ));
    }

    #[test]
    fn zero_components_are_rejected() {
        assert!(matches!(
            EhpConfig::builder().total_cus(0).build().unwrap_err(),
            ConfigError::ZeroComponent(_)
        ));
        let bad_cpu = CpuConfig {
            chiplets: 0,
            ..CpuConfig::default()
        };
        assert!(EhpConfig::builder().cpu(bad_cpu).build().is_err());
    }

    #[test]
    fn non_positive_rates_are_rejected() {
        let err = EhpConfig::builder()
            .gpu_clock(Megahertz::new(0.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::NonPositive("GPU clock")));
        assert!(EhpConfig::builder()
            .gpu_clock(Megahertz::new(f64::NAN))
            .build()
            .is_err());
    }

    #[test]
    fn dram_only_external_reaches_target_capacity() {
        let ext = ExternalMemoryConfig::dram_only(4, Gigabytes::new(768.0));
        assert_eq!(ext.total_modules(), 32);
        assert!((ext.total_capacity().value() - 768.0).abs() < 1e-9);
        assert_eq!(ext.nvm_capacity_fraction(), 0.0);
    }

    #[test]
    fn hybrid_keeps_capacity_but_sheds_modules() {
        let dram = ExternalMemoryConfig::dram_only(4, Gigabytes::new(768.0));
        let hybrid = ExternalMemoryConfig::hybrid(4, Gigabytes::new(768.0));
        // Half the capacity is NVM...
        assert!((hybrid.nvm_capacity_fraction() - 0.5).abs() < 1e-9);
        // ...total capacity is preserved...
        assert!((hybrid.total_capacity() / dram.total_capacity() - 1.0).abs() < 1e-9);
        // ...with strictly fewer modules (and hence SerDes links).
        assert!(hybrid.total_modules() < dram.total_modules());
    }

    #[test]
    fn cpu_thread_counts() {
        let cpu = CpuConfig::default();
        assert_eq!(cpu.total_cores(), 32);
        assert_eq!(cpu.total_threads(), 64);
        let no_smt = CpuConfig { smt: false, ..cpu };
        assert_eq!(no_smt.total_threads(), 32);
    }
}

//! Die-yield and cost modeling (paper Section II-A.2).
//!
//! The paper's first argument for chiplets is *die yield*: "building a
//! single monolithic SOC ... would result in an impractically large chip
//! with prohibitive costs. Smaller chiplets have higher yield rates due to
//! their size, and when combined with known-good-die (KGD) testing
//! techniques, can be assembled into larger systems at reasonable cost."
//! This module quantifies that argument with the standard negative-binomial
//! yield model and a wafer-cost accounting, so the monolithic-vs-chiplet
//! trade-off becomes a number instead of an assertion.

use crate::units::SquareMillimeters;

/// Process and wafer parameters for yield/cost estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcessCost {
    /// Defect density in defects per square centimeter.
    pub defect_density_per_cm2: f64,
    /// Defect clustering parameter (negative-binomial alpha; ~2-3 for
    /// modern logic processes).
    pub clustering_alpha: f64,
    /// Wafer diameter in millimeters (300 for the leading edge).
    pub wafer_diameter_mm: f64,
    /// Processed-wafer cost in dollars.
    pub wafer_cost: f64,
    /// Maximum manufacturable die area (reticle limit), mm^2.
    pub reticle_limit_mm2: f64,
}

impl ProcessCost {
    /// A leading-edge logic process of the paper's 2022-2023 timeframe.
    pub fn leading_edge() -> Self {
        Self {
            defect_density_per_cm2: 0.1,
            clustering_alpha: 2.5,
            wafer_diameter_mm: 300.0,
            wafer_cost: 12_000.0,
            reticle_limit_mm2: 830.0,
        }
    }

    /// A mature (cheaper, cleaner) node for interposers and I/O silicon.
    pub fn mature_node() -> Self {
        Self {
            defect_density_per_cm2: 0.05,
            clustering_alpha: 2.5,
            wafer_diameter_mm: 300.0,
            wafer_cost: 4_000.0,
            reticle_limit_mm2: 830.0,
        }
    }

    /// Negative-binomial die yield for a die of `area`.
    ///
    /// `Y = (1 + D0 * A / alpha)^(-alpha)`, the Seeds/Murphy family model.
    pub fn die_yield(&self, area: SquareMillimeters) -> f64 {
        let a_cm2 = area.value() / 100.0;
        (1.0 + self.defect_density_per_cm2 * a_cm2 / self.clustering_alpha)
            .powf(-self.clustering_alpha)
    }

    /// Gross dies per wafer (area term minus edge loss).
    pub fn dies_per_wafer(&self, area: SquareMillimeters) -> f64 {
        let d = self.wafer_diameter_mm;
        let a = area.value();
        let gross = std::f64::consts::PI * (d / 2.0) * (d / 2.0) / a
            - std::f64::consts::PI * d / (2.0 * a).sqrt();
        gross.max(0.0)
    }

    /// Cost per *good* die of `area`.
    ///
    /// Returns `f64::INFINITY` if the die exceeds the reticle limit or no
    /// dies fit on the wafer.
    pub fn cost_per_good_die(&self, area: SquareMillimeters) -> f64 {
        if area.value() > self.reticle_limit_mm2 {
            return f64::INFINITY;
        }
        let good = self.dies_per_wafer(area) * self.die_yield(area);
        if good <= 0.0 {
            f64::INFINITY
        } else {
            self.wafer_cost / good
        }
    }
}

/// Assembly parameters for multi-die packages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssemblyCost {
    /// Known-good-die test cost per die, dollars.
    pub kgd_test_per_die: f64,
    /// Probability one die survives bonding onto the interposer.
    pub bond_yield: f64,
    /// Fixed packaging/substrate cost, dollars.
    pub package_base: f64,
}

impl Default for AssemblyCost {
    fn default() -> Self {
        Self {
            kgd_test_per_die: 5.0,
            bond_yield: 0.99,
            package_base: 50.0,
        }
    }
}

/// Cost estimate of one assembled package.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PackageCost {
    /// Silicon cost (good dies + interposers), dollars.
    pub silicon: f64,
    /// Test + bonding + packaging cost, dollars.
    pub assembly: f64,
    /// Overall package yield after bonding.
    pub package_yield: f64,
}

impl PackageCost {
    /// Total cost per *good package*.
    pub fn total(&self) -> f64 {
        (self.silicon + self.assembly) / self.package_yield.max(1e-9)
    }
}

/// Costs a chiplet-based package: `dies` pairs of `(count, area)` on the
/// compute process plus `interposer_area` on the mature node.
pub fn chiplet_package(
    compute: &ProcessCost,
    interposer: &ProcessCost,
    assembly: &AssemblyCost,
    dies: &[(u32, SquareMillimeters)],
    interposer_area: SquareMillimeters,
) -> PackageCost {
    let mut silicon = 0.0;
    let mut die_count = 0u32;
    for &(count, area) in dies {
        silicon += f64::from(count) * compute.cost_per_good_die(area);
        die_count += count;
    }
    // Interposers are large but on a cheap, clean node.
    silicon += interposer.cost_per_good_die(interposer_area);
    die_count += 1;

    let assembly_cost = f64::from(die_count) * assembly.kgd_test_per_die + assembly.package_base;
    let package_yield = assembly.bond_yield.powi(die_count as i32);
    PackageCost {
        silicon,
        assembly: assembly_cost,
        package_yield,
    }
}

/// Costs the hypothetical monolithic die of the same total area (no KGD
/// benefit, single process, reticle-limited).
pub fn monolithic_package(
    compute: &ProcessCost,
    assembly: &AssemblyCost,
    total_area: SquareMillimeters,
) -> PackageCost {
    PackageCost {
        silicon: compute.cost_per_good_die(total_area),
        assembly: assembly.kgd_test_per_die + assembly.package_base,
        package_yield: assembly.bond_yield,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm2(v: f64) -> SquareMillimeters {
        SquareMillimeters::new(v)
    }

    #[test]
    fn yield_decreases_with_area() {
        let p = ProcessCost::leading_edge();
        let small = p.die_yield(mm2(50.0));
        let big = p.die_yield(mm2(600.0));
        assert!(small > 0.9, "small-die yield {small}");
        assert!(big < small);
        assert!((0.3..0.8).contains(&big), "600mm2 yield {big}");
    }

    #[test]
    fn cost_per_good_die_grows_superlinearly() {
        let p = ProcessCost::leading_edge();
        let c100 = p.cost_per_good_die(mm2(100.0));
        let c600 = p.cost_per_good_die(mm2(600.0));
        // 6x the area should cost much more than 6x per good die.
        assert!(c600 > 8.0 * c100, "100mm2 ${c100:.0}, 600mm2 ${c600:.0}");
    }

    #[test]
    fn reticle_limit_is_a_wall() {
        let p = ProcessCost::leading_edge();
        assert!(p.cost_per_good_die(mm2(900.0)).is_infinite());
    }

    #[test]
    fn chiplets_beat_the_equivalent_monolith() {
        // The EHP: 8 GPU chiplets (~100 mm2) + 8 CPU chiplets (~70 mm2).
        let compute = ProcessCost::leading_edge();
        let interposer = ProcessCost::mature_node();
        let assembly = AssemblyCost::default();
        let chiplet = chiplet_package(
            &compute,
            &interposer,
            &assembly,
            &[(8, mm2(100.0)), (8, mm2(70.0))],
            mm2(800.0),
        );
        let total_area = mm2(8.0 * 100.0 + 8.0 * 70.0);
        let mono = monolithic_package(&compute, &assembly, total_area);
        // 1360 mm2 is beyond the reticle: the monolith is unbuildable;
        // the chiplet package has a finite cost.
        assert!(chiplet.total().is_finite());
        assert!(mono.total().is_infinite());
    }

    #[test]
    fn even_a_buildable_monolith_costs_more_per_good_package() {
        // Halve the design so the monolith fits the reticle.
        let compute = ProcessCost::leading_edge();
        let interposer = ProcessCost::mature_node();
        let assembly = AssemblyCost::default();
        let chiplet = chiplet_package(
            &compute,
            &interposer,
            &assembly,
            &[(4, mm2(100.0)), (4, mm2(70.0))],
            mm2(500.0),
        );
        let mono = monolithic_package(&compute, &assembly, mm2(680.0));
        assert!(
            chiplet.total() < mono.total(),
            "chiplet ${:.0} vs mono ${:.0}",
            chiplet.total(),
            mono.total()
        );
    }

    #[test]
    fn interposer_on_a_mature_node_is_cheap_despite_its_size() {
        let mature = ProcessCost::mature_node();
        let leading = ProcessCost::leading_edge();
        let area = mm2(800.0);
        assert!(mature.cost_per_good_die(area) < 0.4 * leading.cost_per_good_die(area));
    }

    #[test]
    fn dies_per_wafer_is_sane() {
        let p = ProcessCost::leading_edge();
        let n = p.dies_per_wafer(mm2(100.0));
        // A 300 mm wafer holds roughly 600 x 100 mm2 dies gross.
        assert!((500.0..700.0).contains(&n), "dies {n}");
    }
}

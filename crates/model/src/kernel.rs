//! Application-kernel characterization (paper Section IV).
//!
//! The paper drives its design-space exploration with per-kernel scaling
//! behaviour measured on real hardware. We capture the same behaviour in a
//! [`KernelProfile`]: a small set of dimensionless parameters that the
//! performance and power models in `ena-core` consume. Profiles for the
//! seven proxy applications are produced by the `ena-workloads` crate by
//! running its mini-kernels and measuring their op counts and traces.

use crate::error::ProfileError;

/// Paper Section IV's three kernel categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelCategory {
    /// Bound by compute throughput; insensitive to memory bandwidth
    /// (MaxFlops).
    ComputeIntensive,
    /// Stresses both compute and memory; performance plateaus when either
    /// resource saturates (CoMD, CoMD-LJ, HPGMG).
    Balanced,
    /// Bound by the memory system; excess compute resources *degrade*
    /// performance through contention (LULESH, MiniAMR, XSBench, SNAP).
    MemoryIntensive,
}

impl KernelCategory {
    /// All categories, in the paper's presentation order.
    pub const ALL: [KernelCategory; 3] = [
        KernelCategory::ComputeIntensive,
        KernelCategory::Balanced,
        KernelCategory::MemoryIntensive,
    ];
}

impl core::fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            KernelCategory::ComputeIntensive => "compute-intensive",
            KernelCategory::Balanced => "balanced",
            KernelCategory::MemoryIntensive => "memory-intensive",
        };
        f.write_str(s)
    }
}

/// Dimensionless characterization of one application kernel.
///
/// All fraction-valued fields live in `[0, 1]`; [`KernelProfile::validate`]
/// enforces this. The fields parameterize the extended-roofline performance
/// model (see `ena-core::perf`):
///
/// ```
/// use ena_model::kernel::{KernelCategory, KernelProfile};
///
/// # fn main() -> Result<(), ena_model::error::ProfileError> {
/// let profile = KernelProfile {
///     name: "my-kernel".into(),
///     category: KernelCategory::Balanced,
///     ops_per_byte: 4.0,
///     utilization: 0.6,
///     parallelism: 0.8,
///     latency_sensitivity: 0.3,
///     contention_sensitivity: 0.2,
///     write_fraction: 0.3,
///     ext_traffic_fraction: 0.5,
///     out_of_chiplet_fraction: 0.85,
///     serial_fraction: 0.02,
/// };
/// profile.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct KernelProfile {
    /// Human-readable kernel name (e.g. `"LULESH"`).
    pub name: String,
    /// Paper Section IV category.
    pub category: KernelCategory,
    /// Arithmetic intensity: double-precision FLOPs per byte of
    /// first-level-DRAM traffic.
    pub ops_per_byte: f64,
    /// Fraction of peak compute throughput the kernel can achieve when not
    /// memory bound (issue efficiency, divergence, etc.).
    pub utilization: f64,
    /// Latency-hiding ability from thread-level parallelism, in `[0, 1]`;
    /// 1 means memory latency is fully overlapped.
    pub parallelism: f64,
    /// How strongly exposed memory latency reduces throughput, in `[0, 1]`.
    /// Irregular kernels (LULESH, XSBench) have high values.
    pub latency_sensitivity: f64,
    /// Slope of the contention penalty once the offered memory traffic
    /// exceeds the sustainable bandwidth: cache thrashing plus queueing
    /// (Section IV-C). Zero for compute-intensive kernels.
    pub contention_sensitivity: f64,
    /// Fraction of memory traffic that is writes.
    pub write_fraction: f64,
    /// Fraction of DRAM traffic serviced by *external* memory under the
    /// software-managed multi-level policy (paper: 46-89 % for capacity
    /// reasons; ~0 for footprints that fit in-package).
    pub ext_traffic_fraction: f64,
    /// Fraction of NoC traffic that leaves the source chiplet
    /// (paper Fig. 7: 60-95 %).
    pub out_of_chiplet_fraction: f64,
    /// Amdahl serial fraction executed on the CPU complex.
    pub serial_fraction: f64,
}

impl KernelProfile {
    /// Checks every field against its documented domain.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if !(self.ops_per_byte.is_finite() && self.ops_per_byte >= 0.0) {
            return Err(ProfileError::OutOfRange {
                field: "ops_per_byte",
                value: self.ops_per_byte,
            });
        }
        for (field, value) in [
            ("utilization", self.utilization),
            ("parallelism", self.parallelism),
            ("latency_sensitivity", self.latency_sensitivity),
            ("write_fraction", self.write_fraction),
            ("ext_traffic_fraction", self.ext_traffic_fraction),
            ("out_of_chiplet_fraction", self.out_of_chiplet_fraction),
            ("serial_fraction", self.serial_fraction),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(ProfileError::OutOfRange { field, value });
            }
        }
        if !(self.contention_sensitivity.is_finite() && self.contention_sensitivity >= 0.0) {
            return Err(ProfileError::OutOfRange {
                field: "contention_sensitivity",
                value: self.contention_sensitivity,
            });
        }
        if self.name.is_empty() {
            return Err(ProfileError::EmptyName);
        }
        Ok(())
    }

    /// Classifies arithmetic intensity against a machine balance point,
    /// mirroring how Section IV buckets kernels: intensities comfortably
    /// above the balance are compute-intensive, comfortably below are
    /// memory-intensive, and the band in between is balanced.
    pub fn categorize(ops_per_byte: f64, machine_balance: f64) -> KernelCategory {
        if ops_per_byte >= 4.0 * machine_balance {
            KernelCategory::ComputeIntensive
        } else if ops_per_byte >= machine_balance {
            KernelCategory::Balanced
        } else {
            KernelCategory::MemoryIntensive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> KernelProfile {
        KernelProfile {
            name: "test".into(),
            category: KernelCategory::Balanced,
            ops_per_byte: 2.0,
            utilization: 0.5,
            parallelism: 0.8,
            latency_sensitivity: 0.2,
            contention_sensitivity: 0.1,
            write_fraction: 0.3,
            ext_traffic_fraction: 0.6,
            out_of_chiplet_fraction: 0.9,
            serial_fraction: 0.05,
        }
    }

    #[test]
    fn valid_profile_passes() {
        valid().validate().unwrap();
    }

    #[test]
    fn out_of_range_fraction_is_rejected() {
        let mut p = valid();
        p.parallelism = 1.5;
        let err = p.validate().unwrap_err();
        assert!(matches!(
            err,
            ProfileError::OutOfRange {
                field: "parallelism",
                ..
            }
        ));
    }

    #[test]
    fn nan_is_rejected() {
        let mut p = valid();
        p.ops_per_byte = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn negative_contention_is_rejected() {
        let mut p = valid();
        p.contention_sensitivity = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn empty_name_is_rejected() {
        let mut p = valid();
        p.name.clear();
        assert!(matches!(p.validate().unwrap_err(), ProfileError::EmptyName));
    }

    #[test]
    fn categorize_buckets_match_section_iv() {
        // Machine balance of the paper baseline: ~6.8 flop/byte.
        let balance = 6.8;
        assert_eq!(
            KernelProfile::categorize(100.0, balance),
            KernelCategory::ComputeIntensive
        );
        assert_eq!(
            KernelProfile::categorize(10.0, balance),
            KernelCategory::Balanced
        );
        assert_eq!(
            KernelProfile::categorize(0.5, balance),
            KernelCategory::MemoryIntensive
        );
    }

    #[test]
    fn category_display() {
        assert_eq!(
            KernelCategory::MemoryIntensive.to_string(),
            "memory-intensive"
        );
        assert_eq!(KernelCategory::ALL.len(), 3);
    }
}

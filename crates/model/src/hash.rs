//! Stable, platform-independent structural hashing.
//!
//! The sweep engine memoizes node evaluations on disk, keyed by a digest
//! of everything that determines the result: the hardware configuration,
//! the workload profiles, the evaluation knobs, and the *model version*.
//! `std::hash::Hash` is unsuitable for that key — `DefaultHasher` is
//! explicitly not stable across releases — so this module provides a
//! fixed FNV-1a 64-bit hasher and a [`StableHash`] trait whose impls
//! visit every semantically meaningful field (floats by IEEE bit
//! pattern). The same value hashes to the same digest on every platform,
//! every run, every toolchain.
//!
//! [`MODEL_VERSION`] stamps persisted caches: any change to the analytic
//! models that moves numbers must bump it, which atomically invalidates
//! every stale cache entry.

use crate::config::{
    CpuConfig, EhpConfig, ExternalMemoryConfig, ExternalModuleKind, GpuConfig, HbmConfig,
    PackageOrganization,
};
use crate::kernel::{KernelCategory, KernelProfile};
use crate::units::{Gigabytes, GigabytesPerSec, Megahertz, Microseconds, Watts};

/// Version stamp of the analytic model stack.
///
/// Bump this whenever a calibration or model change alters any evaluated
/// number: persisted sweep caches carry the stamp and a mismatch evicts
/// them wholesale, so stale state can never poison fresh results.
pub const MODEL_VERSION: &str = "ena-model/1";

/// A 64-bit FNV-1a hasher with a fixed, documented algorithm.
#[derive(Clone, Copy, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a length or index.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern (NaN payloads included,
    /// `-0.0 != 0.0` — bitwise identity is what cache keys need).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Types with a stable structural digest.
pub trait StableHash {
    /// Feeds every semantically meaningful field to the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// One-shot digest of a value.
pub fn digest<T: StableHash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

impl StableHash for u32 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(*self);
    }
}

impl StableHash for u64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bool(*self);
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_bool(false),
            Some(v) => {
                h.write_bool(true);
                v.stable_hash(h);
            }
        }
    }
}

macro_rules! stable_hash_unit {
    ($($t:ty),* $(,)?) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_f64(self.value());
            }
        }
    )*};
}

stable_hash_unit!(Megahertz, GigabytesPerSec, Gigabytes, Watts, Microseconds);

impl StableHash for ExternalModuleKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            ExternalModuleKind::Dram => 0,
            ExternalModuleKind::Nvm => 1,
        });
    }
}

impl StableHash for PackageOrganization {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            PackageOrganization::Chiplets => 0,
            PackageOrganization::Monolithic => 1,
        });
    }
}

impl StableHash for GpuConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.chiplets);
        h.write_u32(self.cus_per_chiplet);
        self.clock.stable_hash(h);
    }
}

impl StableHash for CpuConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.chiplets);
        h.write_u32(self.cores_per_chiplet);
        self.clock.stable_hash(h);
        h.write_bool(self.smt);
    }
}

impl StableHash for HbmConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.stacks);
        self.capacity_per_stack.stable_hash(h);
        self.bandwidth_per_stack.stable_hash(h);
    }
}

impl StableHash for ExternalMemoryConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.interfaces);
        self.chain.stable_hash(h);
        self.dram_module_capacity.stable_hash(h);
        self.nvm_module_capacity.stable_hash(h);
        self.interface_bandwidth.stable_hash(h);
    }
}

impl StableHash for EhpConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.gpu.stable_hash(h);
        self.cpu.stable_hash(h);
        self.hbm.stable_hash(h);
        self.external.stable_hash(h);
        self.organization.stable_hash(h);
    }
}

impl StableHash for KernelCategory {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            KernelCategory::ComputeIntensive => 0,
            KernelCategory::Balanced => 1,
            KernelCategory::MemoryIntensive => 2,
        });
    }
}

impl StableHash for KernelProfile {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(&self.name);
        self.category.stable_hash(h);
        h.write_f64(self.ops_per_byte);
        h.write_f64(self.utilization);
        h.write_f64(self.parallelism);
        h.write_f64(self.latency_sensitivity);
        h.write_f64(self.contention_sensitivity);
        h.write_f64(self.write_fraction);
        h.write_f64(self.ext_traffic_fraction);
        h.write_f64(self.out_of_chiplet_fraction);
        h.write_f64(self.serial_fraction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin FNV-1a to its reference vectors so the on-disk format cannot
    /// silently change.
    #[test]
    fn fnv1a_matches_reference_vectors() {
        let mut h = StableHasher::new();
        assert_eq!(h.finish(), 0xCBF2_9CE4_8422_2325);
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
        let mut h = StableHasher::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171F73967E8);
    }

    #[test]
    fn config_digest_is_deterministic_and_field_sensitive() {
        let a = EhpConfig::paper_baseline();
        let b = EhpConfig::paper_baseline();
        assert_eq!(digest(&a), digest(&b));
        let c = EhpConfig::paper_optimized_baseline();
        assert_ne!(digest(&a), digest(&c));
    }

    #[test]
    fn float_hashing_is_bitwise() {
        assert_ne!(digest(&0.0f64), digest(&-0.0f64));
        assert_eq!(digest(&1.5f64), digest(&1.5f64));
    }

    #[test]
    fn string_hashing_is_length_prefixed() {
        let ab_c = digest(&vec!["ab".to_string(), "c".to_string()]);
        let a_bc = digest(&vec!["a".to_string(), "bc".to_string()]);
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn profile_digest_tracks_every_field() {
        let base = KernelProfile {
            name: "k".into(),
            category: KernelCategory::Balanced,
            ops_per_byte: 4.0,
            utilization: 0.6,
            parallelism: 0.8,
            latency_sensitivity: 0.3,
            contention_sensitivity: 0.2,
            write_fraction: 0.3,
            ext_traffic_fraction: 0.5,
            out_of_chiplet_fraction: 0.85,
            serial_fraction: 0.02,
        };
        let d0 = digest(&base);
        let mut tweaked = base.clone();
        tweaked.contention_sensitivity = 0.25;
        assert_ne!(d0, digest(&tweaked));
        let mut renamed = base.clone();
        renamed.name = "k2".into();
        assert_ne!(d0, digest(&renamed));
    }
}

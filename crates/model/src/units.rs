//! Typed physical units used throughout the ENA toolkit.
//!
//! Architectural modeling mixes many `f64` quantities (watts, gigabytes,
//! megahertz, picojoules, ...). Wrapping each in a newtype ([C-NEWTYPE])
//! turns unit-confusion bugs into compile errors while staying zero-cost.
//!
//! All units are `Copy` value types with ordinary arithmetic where the
//! operation is dimensionally meaningful (e.g. `Watts + Watts`,
//! `Watts * f64`, `Joules / Seconds -> Watts`).
//!
//! ```
//! use ena_model::units::{Watts, Joules, Seconds};
//!
//! let energy = Joules::new(3.0);
//! let time = Seconds::new(1.5);
//! assert_eq!(energy / time, Watts::new(2.0));
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Defines an `f64`-backed unit newtype with arithmetic and formatting.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Returns the underlying raw value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `self` clamped to `[lo, hi]`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns true if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Energy in picojoules (convenient for per-bit/per-access costs).
    Picojoules,
    "pJ"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Clock frequency in megahertz.
    Megahertz,
    "MHz"
);
unit!(
    /// Memory/interconnect bandwidth in gigabytes per second.
    GigabytesPerSec,
    "GB/s"
);
unit!(
    /// Storage capacity in gigabytes.
    Gigabytes,
    "GB"
);
unit!(
    /// Compute throughput in double-precision gigaflops (1e9 FLOP/s).
    Gigaflops,
    "GFLOP/s"
);
unit!(
    /// Temperature in degrees Celsius.
    Celsius,
    "degC"
);
unit!(
    /// Supply voltage in volts.
    Volts,
    "V"
);
unit!(
    /// Physical distance in millimeters (interconnect lengths, die sizes).
    Millimeters,
    "mm"
);
unit!(
    /// Silicon area in square millimeters.
    SquareMillimeters,
    "mm^2"
);
unit!(
    /// Time in microseconds (inter-node link latencies, collective
    /// rounds, fault-injection timestamps).
    Microseconds,
    "us"
);

impl Joules {
    /// Converts to picojoules.
    pub fn to_picojoules(self) -> Picojoules {
        Picojoules::new(self.value() * 1e12)
    }
}

impl Microseconds {
    /// Converts to seconds.
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.value() * 1e-6)
    }
}

impl Seconds {
    /// Converts to microseconds.
    pub fn to_microseconds(self) -> Microseconds {
        Microseconds::new(self.value() * 1e6)
    }
}

impl Picojoules {
    /// Converts to joules.
    pub fn to_joules(self) -> Joules {
        Joules::new(self.value() * 1e-12)
    }
}

impl Megahertz {
    /// Cycles per second.
    pub fn hertz(self) -> f64 {
        self.value() * 1e6
    }

    /// Converts to gigahertz.
    pub fn gigahertz(self) -> f64 {
        self.value() * 1e-3
    }

    /// The duration of one clock cycle.
    pub fn cycle_time(self) -> Seconds {
        Seconds::new(1.0 / self.hertz())
    }
}

impl GigabytesPerSec {
    /// Constructs a bandwidth from terabytes per second.
    pub const fn from_terabytes_per_sec(tbps: f64) -> Self {
        Self::new(tbps * 1000.0)
    }

    /// Bandwidth in terabytes per second.
    pub fn terabytes_per_sec(self) -> f64 {
        self.value() / 1000.0
    }

    /// Bytes moved per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.value() * 1e9
    }

    /// The time to transfer `bytes` at this bandwidth.
    ///
    /// Returns [`Seconds::ZERO`] when `bytes` is zero, even at zero
    /// bandwidth (no transfer takes no time).
    pub fn transfer_time(self, bytes: f64) -> Seconds {
        if bytes == 0.0 {
            Seconds::ZERO
        } else {
            Seconds::new(bytes / self.bytes_per_sec())
        }
    }
}

impl Gigaflops {
    /// Constructs a throughput from teraflops.
    pub const fn from_teraflops(tf: f64) -> Self {
        Self::new(tf * 1000.0)
    }

    /// Throughput in teraflops.
    pub fn teraflops(self) -> f64 {
        self.value() / 1000.0
    }

    /// Floating-point operations per second.
    pub fn flops_per_sec(self) -> f64 {
        self.value() * 1e9
    }
}

impl Watts {
    /// Energy consumed at this power over `time`.
    pub fn energy_over(self, time: Seconds) -> Joules {
        Joules::new(self.value() * time.value())
    }

    /// Converts to megawatts.
    pub fn megawatts(self) -> f64 {
        self.value() * 1e-6
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_dimensionally_consistent() {
        let p = Watts::new(10.0) + Watts::new(5.0);
        assert_eq!(p, Watts::new(15.0));
        assert_eq!(p * 2.0, Watts::new(30.0));
        assert_eq!(2.0 * p, Watts::new(30.0));
        assert_eq!(p / Watts::new(5.0), 3.0);
        assert_eq!(-p, Watts::new(-15.0));
    }

    #[test]
    fn energy_power_time_relations() {
        let e = Watts::new(100.0) * Seconds::new(2.0);
        assert_eq!(e, Joules::new(200.0));
        assert_eq!(e / Seconds::new(2.0), Watts::new(100.0));
        assert_eq!(Watts::new(100.0).energy_over(Seconds::new(2.0)), e);
    }

    #[test]
    fn picojoule_round_trip() {
        let e = Picojoules::new(3.5);
        let back = e.to_joules().to_picojoules();
        assert!((back.value() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn frequency_conversions() {
        let f = Megahertz::new(1000.0);
        assert_eq!(f.hertz(), 1e9);
        assert_eq!(f.gigahertz(), 1.0);
        assert!((f.cycle_time().value() - 1e-9).abs() < 1e-21);
    }

    #[test]
    fn bandwidth_conversions_and_transfer() {
        let bw = GigabytesPerSec::from_terabytes_per_sec(3.0);
        assert_eq!(bw.value(), 3000.0);
        assert_eq!(bw.terabytes_per_sec(), 3.0);
        let t = bw.transfer_time(3e12);
        assert!((t.value() - 1.0).abs() < 1e-12);
        assert_eq!(GigabytesPerSec::ZERO.transfer_time(0.0), Seconds::ZERO);
    }

    #[test]
    fn gigaflops_conversions() {
        let g = Gigaflops::from_teraflops(16.0);
        assert_eq!(g.value(), 16_000.0);
        assert_eq!(g.teraflops(), 16.0);
        assert_eq!(g.flops_per_sec(), 16e12);
    }

    #[test]
    fn min_max_clamp() {
        let a = Celsius::new(80.0);
        let b = Celsius::new(85.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            Celsius::new(90.0).clamp(Celsius::new(0.0), b),
            Celsius::new(85.0)
        );
    }

    #[test]
    fn sum_of_units() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.0), Watts::new(3.5)]
            .into_iter()
            .sum();
        assert_eq!(total, Watts::new(6.5));
    }

    #[test]
    fn display_includes_suffix_and_precision() {
        assert_eq!(format!("{:.1}", Watts::new(12.345)), "12.3 W");
        assert_eq!(format!("{}", Megahertz::new(1000.0)), "1000 MHz");
    }

    #[test]
    fn megawatt_conversion() {
        assert_eq!(Watts::new(20e6).megawatts(), 20.0);
    }
}

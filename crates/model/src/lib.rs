//! Shared vocabulary for the ENA (Exascale Node Architecture) toolkit.
//!
//! This crate holds the types every other `ena-*` crate speaks:
//!
//! - [`units`] — typed physical quantities ([`Watts`](units::Watts),
//!   [`GigabytesPerSec`](units::GigabytesPerSec), ...), so that the
//!   simulators cannot confuse a bandwidth for a capacity.
//! - [`config`] — the hardware description of one EHP package and its node
//!   memory system ([`EhpConfig`](config::EhpConfig)), including the paper's
//!   baseline configurations.
//! - [`kernel`] — application-kernel characterization
//!   ([`KernelProfile`](kernel::KernelProfile)), the interface between the
//!   workload crate and the performance/power models.
//! - [`cost`] — die-yield and package-cost modeling (the Section II-A.2
//!   chiplet rationale, quantified).
//! - [`hash`] — stable structural hashing ([`StableHash`](hash::StableHash))
//!   and the [`MODEL_VERSION`](hash::MODEL_VERSION) stamp, the foundation of
//!   sweep memoization keys.
//! - [`error`] — validation error types.
//!
//! # Example
//!
//! ```
//! use ena_model::config::EhpConfig;
//! use ena_model::units::{GigabytesPerSec, Megahertz};
//!
//! # fn main() -> Result<(), ena_model::error::ConfigError> {
//! // The paper's best-mean design point: 320 CUs at 1 GHz with 3 TB/s.
//! let baseline = EhpConfig::paper_baseline();
//! assert!((baseline.peak_throughput().teraflops() - 20.48).abs() < 1e-9);
//!
//! // A custom design point for exploration.
//! let candidate = EhpConfig::builder()
//!     .total_cus(384)
//!     .gpu_clock(Megahertz::new(700.0))
//!     .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(5.0))
//!     .build()?;
//! assert!(candidate.ops_per_byte() < baseline.ops_per_byte());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod cost;
pub mod error;
pub mod hash;
pub mod kernel;
pub mod units;

pub use config::EhpConfig;
pub use hash::{StableHash, StableHasher, MODEL_VERSION};
pub use kernel::{KernelCategory, KernelProfile};

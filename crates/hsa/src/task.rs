//! Heterogeneous task graphs (the paper's DAG workloads, \[13\]).
//!
//! A [`TaskGraph`] is a DAG of tasks, each runnable on the CPU complex,
//! the GPU, or both (with different costs). HSA's shared virtual address
//! space is what makes fine-grained graphs like these practical: no data
//! copies between producer and consumer, only signal dependencies.

use std::collections::BTreeSet;

/// Task identifier within a graph.
pub type TaskId = usize;

/// Which agents can run a task, and at what cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskCost {
    /// Execution time on one CPU core, microseconds (`None` = cannot run).
    pub cpu_us: Option<f64>,
    /// Execution time on one GPU queue, microseconds (`None` = cannot run).
    pub gpu_us: Option<f64>,
}

impl TaskCost {
    /// A CPU-only task.
    pub fn cpu(us: f64) -> Self {
        Self {
            cpu_us: Some(us),
            gpu_us: None,
        }
    }

    /// A GPU-only kernel.
    pub fn gpu(us: f64) -> Self {
        Self {
            cpu_us: None,
            gpu_us: Some(us),
        }
    }

    /// Runnable on either agent.
    pub fn either(cpu_us: f64, gpu_us: f64) -> Self {
        Self {
            cpu_us: Some(cpu_us),
            gpu_us: Some(gpu_us),
        }
    }

    /// The cheapest available cost.
    pub fn best(&self) -> f64 {
        match (self.cpu_us, self.gpu_us) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => f64::INFINITY,
        }
    }
}

/// One task.
#[derive(Clone, Debug, PartialEq)]
pub struct Task {
    /// Display name.
    pub name: String,
    /// Per-agent costs.
    pub cost: TaskCost,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
}

/// Error constructing or validating a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A dependency references a task that does not exist (yet).
    UnknownDependency {
        /// The task with the bad edge.
        task: TaskId,
        /// The missing dependency.
        dep: TaskId,
    },
    /// The graph contains a cycle (self-edges included).
    Cycle,
    /// A task can run on no agent.
    Unrunnable(TaskId),
}

impl core::fmt::Display for GraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphError::UnknownDependency { task, dep } => {
                write!(f, "task {task} depends on unknown task {dep}")
            }
            GraphError::Cycle => f.write_str("task graph contains a cycle"),
            GraphError::Unrunnable(t) => write!(f, "task {t} can run on no agent"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated-on-demand heterogeneous task DAG.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task; dependencies must reference already-added tasks,
    /// which structurally guarantees acyclicity.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownDependency`] for forward/self edges or
    /// [`GraphError::Unrunnable`] if no agent can run the task.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        cost: TaskCost,
        deps: &[TaskId],
    ) -> Result<TaskId, GraphError> {
        let id = self.tasks.len();
        if cost.best().is_infinite() {
            return Err(GraphError::Unrunnable(id));
        }
        for &d in deps {
            if d >= id {
                return Err(GraphError::UnknownDependency { task: id, dep: d });
            }
        }
        self.tasks.push(Task {
            name: name.into(),
            cost,
            deps: deps.to_vec(),
        });
        Ok(id)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks, indexed by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Sum of best-case task costs (the serial lower bound on one ideal
    /// agent of each kind).
    pub fn total_work_us(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost.best()).sum()
    }

    /// Length of the critical path using best-case costs: no schedule can
    /// beat this makespan.
    pub fn critical_path_us(&self) -> f64 {
        let mut finish = vec![0.0f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
            finish[i] = ready + t.cost.best();
        }
        finish.into_iter().fold(0.0, f64::max)
    }

    /// Tasks with no dependents (graph outputs).
    pub fn sinks(&self) -> Vec<TaskId> {
        let mut has_dependent = BTreeSet::new();
        for t in &self.tasks {
            for &d in &t.deps {
                has_dependent.insert(d);
            }
        }
        (0..self.tasks.len())
            .filter(|id| !has_dependent.contains(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_edges_are_rejected() {
        let mut g = TaskGraph::new();
        let err = g.add("bad", TaskCost::cpu(1.0), &[0]).unwrap_err();
        assert_eq!(err, GraphError::UnknownDependency { task: 0, dep: 0 });
    }

    #[test]
    fn unrunnable_tasks_are_rejected() {
        let mut g = TaskGraph::new();
        let cost = TaskCost {
            cpu_us: None,
            gpu_us: None,
        };
        assert_eq!(g.add("none", cost, &[]), Err(GraphError::Unrunnable(0)));
    }

    #[test]
    fn critical_path_follows_the_longest_chain() {
        let mut g = TaskGraph::new();
        let a = g.add("a", TaskCost::cpu(10.0), &[]).unwrap();
        let b = g.add("b", TaskCost::gpu(5.0), &[a]).unwrap();
        let _c = g.add("c", TaskCost::cpu(1.0), &[a]).unwrap();
        let _d = g.add("d", TaskCost::gpu(7.0), &[b]).unwrap();
        assert_eq!(g.critical_path_us(), 22.0);
        assert_eq!(g.total_work_us(), 23.0);
    }

    #[test]
    fn sinks_are_the_outputs() {
        let mut g = TaskGraph::new();
        let a = g.add("a", TaskCost::cpu(1.0), &[]).unwrap();
        let b = g.add("b", TaskCost::cpu(1.0), &[a]).unwrap();
        let c = g.add("c", TaskCost::cpu(1.0), &[a]).unwrap();
        assert_eq!(g.sinks(), vec![b, c]);
    }

    #[test]
    fn cost_helpers_pick_the_cheapest_agent() {
        assert_eq!(TaskCost::either(10.0, 4.0).best(), 4.0);
        assert_eq!(TaskCost::cpu(3.0).best(), 3.0);
        assert_eq!(TaskCost::gpu(8.0).best(), 8.0);
    }
}

//! User-mode dispatch queues.
//!
//! HSA replaces driver-mediated kernel launch with user-mode ring buffers:
//! the application writes an AQL packet, bumps the doorbell, and the agent
//! consumes it directly. This is where HSA's low dispatch overhead comes
//! from — the property the runtime experiments quantify.

use crate::signal::SignalId;
use crate::task::TaskId;

/// An AQL-style dispatch packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchPacket {
    /// The task being dispatched.
    pub task: TaskId,
    /// Signal decremented when the task completes.
    pub completion: SignalId,
}

/// Error from queue operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueueError {
    /// The ring buffer is full (write index would lap the read index).
    Full,
}

impl core::fmt::Display for QueueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueueError::Full => f.write_str("dispatch queue is full"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A fixed-capacity user-mode ring buffer with a doorbell.
#[derive(Clone, Debug)]
pub struct UserModeQueue {
    ring: Vec<Option<DispatchPacket>>,
    write_index: u64,
    read_index: u64,
    /// Doorbell value: the last write index published to the agent.
    doorbell: u64,
}

impl UserModeQueue {
    /// Creates a queue with `capacity` packet slots (rounded up to a power
    /// of two, per the HSA spec).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let cap = capacity.next_power_of_two();
        Self {
            ring: vec![None; cap],
            write_index: 0,
            read_index: 0,
            doorbell: 0,
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Packets written but not yet consumed.
    pub fn pending(&self) -> u64 {
        self.write_index - self.read_index
    }

    /// Writes a packet and rings the doorbell.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Full`] when the ring has no free slot.
    pub fn submit(&mut self, packet: DispatchPacket) -> Result<(), QueueError> {
        if self.pending() as usize >= self.ring.len() {
            return Err(QueueError::Full);
        }
        let slot = (self.write_index as usize) & (self.ring.len() - 1);
        self.ring[slot] = Some(packet);
        self.write_index += 1;
        self.doorbell = self.write_index;
        Ok(())
    }

    /// Consumes the next packet, if the doorbell shows one.
    pub fn consume(&mut self) -> Option<DispatchPacket> {
        if self.read_index >= self.doorbell {
            return None;
        }
        let slot = (self.read_index as usize) & (self.ring.len() - 1);
        let packet = self.ring[slot].take();
        self.read_index += 1;
        packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(task: TaskId) -> DispatchPacket {
        DispatchPacket {
            task,
            completion: 0,
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = UserModeQueue::new(4);
        for t in 0..3 {
            q.submit(packet(t)).unwrap();
        }
        assert_eq!(q.pending(), 3);
        for t in 0..3 {
            assert_eq!(q.consume().unwrap().task, t);
        }
        assert!(q.consume().is_none());
    }

    #[test]
    fn capacity_rounds_to_power_of_two_and_fills() {
        let mut q = UserModeQueue::new(3);
        assert_eq!(q.capacity(), 4);
        for t in 0..4 {
            q.submit(packet(t)).unwrap();
        }
        assert_eq!(q.submit(packet(9)), Err(QueueError::Full));
        // Draining one slot frees one submit.
        q.consume().unwrap();
        q.submit(packet(9)).unwrap();
    }

    #[test]
    fn ring_wraps_without_losing_packets() {
        let mut q = UserModeQueue::new(2);
        for round in 0..10u64 {
            q.submit(packet(round as usize)).unwrap();
            assert_eq!(q.consume().unwrap().task, round as usize);
        }
        assert_eq!(q.pending(), 0);
    }
}

//! Scoped-synchronization cost models (HRF \[15\] and QuickRelease \[14\]).
//!
//! HSA systems synchronize producer/consumer pairs with release/acquire
//! operations. Heterogeneous-race-free (HRF) memory models let software
//! name a *scope* — wave, workgroup, agent, or system — so a
//! synchronization only pays for the visibility it needs. QuickRelease
//! further decouples release completion from full cache flushes with a
//! FIFO of pending writes, cutting the cost of the expensive scopes.

/// HRF synchronization scopes, smallest to largest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SyncScope {
    /// Within one wavefront (free in practice).
    Wave,
    /// Within one workgroup (shared L1/LDS).
    Workgroup,
    /// Within one agent (e.g. the whole GPU: flush to L2).
    Agent,
    /// System-wide (visible to CPU and other agents: flush past the LLC).
    System,
}

/// A release/acquire cost model, in microseconds per operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyncModel {
    /// Cost of a release at each scope (wave, workgroup, agent, system).
    pub release_us: [f64; 4],
    /// Cost of an acquire at each scope.
    pub acquire_us: [f64; 4],
    /// Model name for reports.
    pub name: &'static str,
}

impl SyncModel {
    /// A conventional GPU memory model: every cross-agent synchronization
    /// is a full-cache-flush system release.
    pub fn conventional() -> Self {
        Self {
            release_us: [0.0, 0.05, 1.0, 6.0],
            acquire_us: [0.0, 0.02, 0.4, 1.5],
            name: "conventional",
        }
    }

    /// QuickRelease: writes drain through a FIFO, so releases complete
    /// without a full flush (paper \[14\]: "throughput-oriented release
    /// consistency").
    pub fn quick_release() -> Self {
        Self {
            release_us: [0.0, 0.02, 0.25, 1.2],
            acquire_us: [0.0, 0.02, 0.3, 1.0],
            name: "quick-release",
        }
    }

    fn idx(scope: SyncScope) -> usize {
        match scope {
            SyncScope::Wave => 0,
            SyncScope::Workgroup => 1,
            SyncScope::Agent => 2,
            SyncScope::System => 3,
        }
    }

    /// Cost of one release at `scope`.
    pub fn release(&self, scope: SyncScope) -> f64 {
        self.release_us[Self::idx(scope)]
    }

    /// Cost of one acquire at `scope`.
    pub fn acquire(&self, scope: SyncScope) -> f64 {
        self.acquire_us[Self::idx(scope)]
    }

    /// The cost a dependency edge pays: the producer releases and the
    /// consumer acquires at the scope their placement requires —
    /// [`SyncScope::System`] across agents, [`SyncScope::Agent`] within.
    pub fn edge_cost(&self, cross_agent: bool) -> f64 {
        let scope = if cross_agent {
            SyncScope::System
        } else {
            SyncScope::Agent
        };
        self.release(scope) + self.acquire(scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_cost_monotonically_more() {
        for model in [SyncModel::conventional(), SyncModel::quick_release()] {
            let scopes = [
                SyncScope::Wave,
                SyncScope::Workgroup,
                SyncScope::Agent,
                SyncScope::System,
            ];
            for pair in scopes.windows(2) {
                assert!(
                    model.release(pair[0]) <= model.release(pair[1]),
                    "{}",
                    model.name
                );
                assert!(model.acquire(pair[0]) <= model.acquire(pair[1]));
            }
        }
    }

    #[test]
    fn quick_release_is_cheaper_where_it_matters() {
        let conv = SyncModel::conventional();
        let qr = SyncModel::quick_release();
        assert!(qr.edge_cost(true) < conv.edge_cost(true) / 2.0);
        assert!(qr.edge_cost(false) < conv.edge_cost(false));
    }

    #[test]
    fn cross_agent_edges_cost_more_than_local_ones() {
        for model in [SyncModel::conventional(), SyncModel::quick_release()] {
            assert!(model.edge_cost(true) > model.edge_cost(false));
        }
    }
}

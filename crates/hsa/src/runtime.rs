//! The heterogeneous runtime: list-scheduling task graphs over CPU cores
//! and GPU queues through user-mode dispatch.
//!
//! This is the concurrency framework of the paper's Section II-A.1 in
//! executable form: tasks flow through [`UserModeQueue`]s, complete by
//! decrementing [`SignalPool`] signals, pay a per-dispatch overhead
//! (small for HSA user-mode dispatch, an order of magnitude larger for a
//! legacy driver path), and pay release/acquire costs per dependency edge
//! per the active [`SyncModel`].

use crate::queue::{DispatchPacket, UserModeQueue};
use crate::signal::SignalPool;
use crate::sync::SyncModel;
use crate::task::{TaskGraph, TaskId};
use ena_model::error::DegradeError;

/// The two agent classes of an APU node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AgentKind {
    /// A CPU core.
    CpuCore,
    /// A GPU dispatch queue (a CU group).
    GpuQueue,
}

/// Runtime configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuntimeConfig {
    /// CPU cores available (paper EHP: 32).
    pub cpu_cores: usize,
    /// Concurrent GPU queues (kernel-level concurrency).
    pub gpu_queues: usize,
    /// Per-dispatch overhead in microseconds.
    pub dispatch_overhead_us: f64,
    /// Synchronization cost model.
    pub sync: SyncModel,
}

impl RuntimeConfig {
    /// HSA user-mode dispatch on the paper's EHP: ~2 us per dispatch.
    pub fn hsa() -> Self {
        Self {
            cpu_cores: 32,
            gpu_queues: 8,
            dispatch_overhead_us: 2.0,
            sync: SyncModel::quick_release(),
        }
    }

    /// A legacy driver-mediated dispatch path: ~25 us per dispatch and
    /// conventional full-flush synchronization.
    pub fn legacy_driver() -> Self {
        Self {
            cpu_cores: 32,
            gpu_queues: 8,
            dispatch_overhead_us: 25.0,
            sync: SyncModel::conventional(),
        }
    }
}

/// Where and when one task ran.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskSpan {
    /// The task.
    pub task: TaskId,
    /// Agent class it ran on.
    pub agent: AgentKind,
    /// Agent index within its class.
    pub agent_index: usize,
    /// Start time (us), after dispatch and synchronization.
    pub start_us: f64,
    /// Completion time (us).
    pub end_us: f64,
}

/// The executed schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Per-task placement and timing, in completion order.
    pub spans: Vec<TaskSpan>,
    /// Total makespan (us).
    pub makespan_us: f64,
    /// Total dispatch overhead paid (us, summed over tasks).
    pub dispatch_overhead_us: f64,
    /// Total synchronization cost paid (us, summed over edges).
    pub sync_overhead_us: f64,
    /// Tasks re-queued after an agent died under them (degraded runs).
    pub retries: u64,
    /// Compute lost to mid-flight agent failures (us, degraded runs).
    pub lost_work_us: f64,
}

/// One scheduled agent death for [`Runtime::execute_degraded`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgentFault {
    /// Agent class that fails.
    pub agent: AgentKind,
    /// Agent index within its class.
    pub index: usize,
    /// Simulated time of death (us). Work in flight at this instant is
    /// lost and re-queued.
    pub at_us: f64,
}

/// Bounded retry/backoff policy for tasks orphaned by agent failures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Re-dispatch attempts allowed per task after its first failure.
    pub max_retries: u32,
    /// Base backoff before the first re-dispatch (us); doubles on every
    /// further attempt, with the exponent capped (see
    /// [`RetryPolicy::backoff_for`]).
    pub backoff_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_us: 10.0,
        }
    }
}

impl RetryPolicy {
    /// Largest doubling exponent ever applied to the base backoff. A
    /// pathological retry budget (up to `u32::MAX` attempts) therefore
    /// saturates at `backoff_us * 2^32` instead of wrapping the shift.
    pub const MAX_BACKOFF_EXPONENT: u32 = 32;

    /// Backoff before re-dispatch `attempt` (1-based): the base backoff
    /// doubled once per prior attempt, exponent capped at
    /// [`Self::MAX_BACKOFF_EXPONENT`].
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        let exponent = attempt.saturating_sub(1).min(Self::MAX_BACKOFF_EXPONENT);
        self.backoff_us * (1u64 << exponent) as f64
    }

    /// Worst-case total backoff a task can accumulate before the policy
    /// gives up — the bounded timeout that retransmit pricing charges.
    /// Finite for any retry budget: doubling attempts sum geometrically,
    /// saturated attempts contribute the capped backoff each.
    pub fn timeout_us(&self) -> f64 {
        let doubling = self.max_retries.min(Self::MAX_BACKOFF_EXPONENT + 1);
        let geometric = ((1u128 << doubling) - 1) as f64 * self.backoff_us;
        let flat_attempts = f64::from(self.max_retries) - f64::from(doubling);
        geometric + flat_attempts * self.backoff_for(self.max_retries)
    }
}

impl Schedule {
    /// Fraction of agent-time busy on one agent class.
    pub fn utilization(&self, kind: AgentKind, agents: usize) -> f64 {
        if self.makespan_us == 0.0 || agents == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .filter(|s| s.agent == kind)
            .map(|s| s.end_us - s.start_us)
            .sum();
        busy / (self.makespan_us * agents as f64)
    }

    /// The span of one task.
    pub fn span_of(&self, task: TaskId) -> Option<&TaskSpan> {
        self.spans.iter().find(|s| s.task == task)
    }
}

/// The simulated heterogeneous runtime.
#[derive(Clone, Debug)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates a runtime.
    pub fn new(config: RuntimeConfig) -> Self {
        Self { config }
    }

    /// Executes `graph` to completion with greedy earliest-finish list
    /// scheduling, returning the schedule.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or the runtime has no agents.
    pub fn execute(&self, graph: &TaskGraph) -> Schedule {
        assert!(!graph.is_empty(), "empty task graph");
        let cfg = &self.config;
        assert!(cfg.cpu_cores + cfg.gpu_queues > 0, "no agents");

        let n = graph.len();
        let mut signals = SignalPool::new();
        let completion: Vec<_> = (0..n).map(|_| signals.create(1)).collect();
        // One dispatch queue per GPU agent, exercised for real.
        let mut queues: Vec<UserModeQueue> = (0..cfg.gpu_queues)
            .map(|_| UserModeQueue::new(64))
            .collect();

        let mut cpu_free = vec![0.0f64; cfg.cpu_cores];
        let mut gpu_free = vec![0.0f64; cfg.gpu_queues];
        let mut placement: Vec<Option<TaskSpan>> = vec![None; n];
        let mut scheduled = vec![false; n];
        let mut spans = Vec::with_capacity(n);
        let mut dispatch_total = 0.0;
        let mut sync_total = 0.0;

        for _ in 0..n {
            // Pick the unscheduled task with all deps placed whose ready
            // time is earliest (deterministic tie-break by id).
            let mut pick: Option<(f64, TaskId)> = None;
            for (id, task) in graph.tasks().iter().enumerate() {
                if scheduled[id] || !task.deps.iter().all(|&d| scheduled[d]) {
                    continue;
                }
                let ready = task
                    .deps
                    .iter()
                    .filter_map(|&d| placement[d])
                    .map(|p| p.end_us)
                    .fold(0.0f64, f64::max);
                if pick.is_none_or(|(r, i)| (ready, id) < (r, i)) {
                    pick = Some((ready, id));
                }
            }
            // Structurally unreachable (add() admits only acyclic graphs),
            // but degrade to a partial schedule rather than aborting.
            let Some((ready, id)) = pick else { break };
            let task = &graph.tasks()[id];

            // Candidate placements: earliest finish across compatible agents.
            let mut best: Option<(f64, f64, AgentKind, usize, f64)> = None; // (end, start, kind, idx, sync)
            let consider =
                |kind: AgentKind,
                 free: &[f64],
                 cost: Option<f64>,
                 best: &mut Option<(f64, f64, AgentKind, usize, f64)>| {
                    let Some(cost) = cost else { return };
                    let Some((idx, &agent_free)) =
                        free.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1))
                    else {
                        return;
                    };
                    // Sync cost: each dependency edge pays release+acquire at
                    // the scope its producer placement requires.
                    let sync: f64 = task
                        .deps
                        .iter()
                        .filter_map(|&d| placement[d])
                        .map(|producer| cfg.sync.edge_cost(producer.agent != kind))
                        .sum();
                    let start = ready.max(agent_free) + cfg.dispatch_overhead_us + sync;
                    let end = start + cost;
                    if best.is_none_or(|(e, ..)| end < e) {
                        *best = Some((end, start, kind, idx, sync));
                    }
                };
            consider(AgentKind::CpuCore, &cpu_free, task.cost.cpu_us, &mut best);
            consider(AgentKind::GpuQueue, &gpu_free, task.cost.gpu_us, &mut best);
            // add() rejects unrunnable tasks, so some candidate exists; if
            // that invariant ever breaks, stop scheduling rather than abort.
            let Some((end, start, kind, idx, sync)) = best else {
                break;
            };

            match kind {
                AgentKind::CpuCore => cpu_free[idx] = end,
                AgentKind::GpuQueue => {
                    gpu_free[idx] = end;
                    // Exercise the dispatch substrate: packet in, packet
                    // out. The queue is drained every dispatch, so submit
                    // cannot reject and consume cannot come up empty.
                    if queues[idx]
                        .submit(DispatchPacket {
                            task: id,
                            completion: completion[id],
                        })
                        .is_ok()
                    {
                        if let Some(pkt) = queues[idx].consume() {
                            debug_assert_eq!(pkt.task, id);
                        }
                    }
                }
            }
            signals.decrement(completion[id], end);

            let span = TaskSpan {
                task: id,
                agent: kind,
                agent_index: idx,
                start_us: start,
                end_us: end,
            };
            placement[id] = Some(span);
            scheduled[id] = true;
            spans.push(span);
            dispatch_total += cfg.dispatch_overhead_us;
            sync_total += sync;
        }

        // Every completion signal fired exactly once.
        debug_assert!((0..n).all(|id| signals.satisfied(completion[id], 0)));

        let makespan = spans.iter().map(|s| s.end_us).fold(0.0, f64::max);
        Schedule {
            spans,
            makespan_us: makespan,
            dispatch_overhead_us: dispatch_total,
            sync_overhead_us: sync_total,
            retries: 0,
            lost_work_us: 0.0,
        }
    }

    /// Executes `graph` while agents die at the times given in `faults`:
    /// work in flight on a dying agent is lost, the task is re-queued with
    /// bounded retry/backoff onto the survivors, and the dead agent never
    /// receives another dispatch.
    ///
    /// The scheduler is fault-*unaware* at dispatch time: it only learns
    /// of a death once it happens, so a task dispatched before the fault
    /// genuinely wastes the partial work ([`Schedule::lost_work_us`]).
    ///
    /// # Errors
    ///
    /// Returns [`DegradeError::RetriesExhausted`] when a task dies more
    /// than `retry.max_retries` times, or
    /// [`DegradeError::NoCompatibleAgent`] when every agent a task could
    /// run on is dead.
    pub fn execute_degraded(
        &self,
        graph: &TaskGraph,
        faults: &[AgentFault],
        retry: RetryPolicy,
    ) -> Result<Schedule, DegradeError> {
        let cfg = &self.config;
        let n = graph.len();
        if n == 0 {
            return Ok(Schedule {
                spans: Vec::new(),
                makespan_us: 0.0,
                dispatch_overhead_us: 0.0,
                sync_overhead_us: 0.0,
                retries: 0,
                lost_work_us: 0.0,
            });
        }

        // Earliest scheduled death per agent, or infinity.
        let fail_time = |kind: AgentKind, count: usize| -> Vec<f64> {
            (0..count)
                .map(|i| {
                    faults
                        .iter()
                        .filter(|f| f.agent == kind && f.index == i)
                        .map(|f| f.at_us)
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        };
        let cpu_fail = fail_time(AgentKind::CpuCore, cfg.cpu_cores);
        let gpu_fail = fail_time(AgentKind::GpuQueue, cfg.gpu_queues);

        let mut signals = SignalPool::new();
        let completion: Vec<_> = (0..n).map(|_| signals.create(1)).collect();
        let mut queues: Vec<UserModeQueue> = (0..cfg.gpu_queues)
            .map(|_| UserModeQueue::new(64))
            .collect();

        let mut cpu_free = vec![0.0f64; cfg.cpu_cores];
        let mut gpu_free = vec![0.0f64; cfg.gpu_queues];
        let mut placement: Vec<Option<TaskSpan>> = vec![None; n];
        let mut scheduled = vec![false; n];
        let mut attempts = vec![0u32; n];
        // Floor on a re-queued task's ready time (failure time + backoff).
        let mut requeue_ready = vec![0.0f64; n];
        let mut spans = Vec::with_capacity(n);
        let mut dispatch_total = 0.0;
        let mut sync_total = 0.0;
        let mut retries = 0u64;
        let mut lost_work = 0.0f64;
        let mut remaining = n;

        while remaining > 0 {
            // Pick the unscheduled task with all deps placed whose ready
            // time is earliest (deterministic tie-break by id).
            let mut pick: Option<(f64, TaskId)> = None;
            for (id, task) in graph.tasks().iter().enumerate() {
                if scheduled[id] || !task.deps.iter().all(|&d| scheduled[d]) {
                    continue;
                }
                let ready = task
                    .deps
                    .iter()
                    .filter_map(|&d| placement[d])
                    .map(|p| p.end_us)
                    .fold(requeue_ready[id], f64::max);
                if pick.is_none_or(|(r, i)| (ready, id) < (r, i)) {
                    pick = Some((ready, id));
                }
            }
            // Structurally unreachable (add() admits only acyclic graphs),
            // but degrade to a partial schedule rather than aborting.
            let Some((ready, id)) = pick else { break };
            let task = &graph.tasks()[id];

            // Candidate placements over agents not yet known-dead at their
            // candidate start time (the runtime observes deaths only as
            // they happen).
            let mut best: Option<(f64, f64, AgentKind, usize, f64)> = None;
            let consider =
                |kind: AgentKind,
                 free: &[f64],
                 fail: &[f64],
                 cost: Option<f64>,
                 best: &mut Option<(f64, f64, AgentKind, usize, f64)>| {
                    let Some(cost) = cost else { return };
                    let sync: f64 = task
                        .deps
                        .iter()
                        .filter_map(|&d| placement[d])
                        .map(|producer| cfg.sync.edge_cost(producer.agent != kind))
                        .sum();
                    for (idx, &agent_free) in free.iter().enumerate() {
                        let start = ready.max(agent_free) + cfg.dispatch_overhead_us + sync;
                        if fail[idx] <= start {
                            continue; // known dead by dispatch time
                        }
                        let end = start + cost;
                        if best.is_none_or(|(e, ..)| end < e) {
                            *best = Some((end, start, kind, idx, sync));
                        }
                    }
                };
            consider(
                AgentKind::CpuCore,
                &cpu_free,
                &cpu_fail,
                task.cost.cpu_us,
                &mut best,
            );
            consider(
                AgentKind::GpuQueue,
                &gpu_free,
                &gpu_fail,
                task.cost.gpu_us,
                &mut best,
            );
            let Some((end, start, kind, idx, sync)) = best else {
                return Err(DegradeError::NoCompatibleAgent { task: id });
            };

            let fail_at = match kind {
                AgentKind::CpuCore => cpu_fail[idx],
                AgentKind::GpuQueue => gpu_fail[idx],
            };
            if fail_at < end {
                // The agent dies with this task in flight: the partial work
                // is lost, the agent is retired, and the task re-queues
                // after backoff.
                attempts[id] += 1;
                if attempts[id] > retry.max_retries {
                    return Err(DegradeError::RetriesExhausted {
                        task: id,
                        attempts: attempts[id],
                    });
                }
                retries += 1;
                lost_work += (fail_at - start).max(0.0);
                requeue_ready[id] = fail_at + retry.backoff_for(attempts[id]);
                match kind {
                    AgentKind::CpuCore => cpu_free[idx] = f64::INFINITY,
                    AgentKind::GpuQueue => gpu_free[idx] = f64::INFINITY,
                }
                continue;
            }

            match kind {
                AgentKind::CpuCore => cpu_free[idx] = end,
                AgentKind::GpuQueue => {
                    gpu_free[idx] = end;
                    // Drained every dispatch: submit cannot reject and
                    // consume cannot come up empty.
                    if queues[idx]
                        .submit(DispatchPacket {
                            task: id,
                            completion: completion[id],
                        })
                        .is_ok()
                    {
                        if let Some(pkt) = queues[idx].consume() {
                            debug_assert_eq!(pkt.task, id);
                        }
                    }
                }
            }
            signals.decrement(completion[id], end);

            let span = TaskSpan {
                task: id,
                agent: kind,
                agent_index: idx,
                start_us: start,
                end_us: end,
            };
            placement[id] = Some(span);
            scheduled[id] = true;
            remaining -= 1;
            spans.push(span);
            dispatch_total += cfg.dispatch_overhead_us;
            sync_total += sync;
        }

        debug_assert!((0..n).all(|id| signals.satisfied(completion[id], 0)));
        let makespan = spans.iter().map(|s| s.end_us).fold(0.0, f64::max);
        Ok(Schedule {
            spans,
            makespan_us: makespan,
            dispatch_overhead_us: dispatch_total,
            sync_overhead_us: sync_total,
            retries,
            lost_work_us: lost_work,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskCost;

    /// A bulk-synchronous iteration: CPU preprocessing, a fan of GPU
    /// kernels, CPU reduction.
    fn fork_join(width: usize, kernel_us: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let pre = g.add("pre", TaskCost::cpu(5.0), &[]).unwrap();
        let kernels: Vec<_> = (0..width)
            .map(|i| {
                g.add(format!("k{i}"), TaskCost::gpu(kernel_us), &[pre])
                    .unwrap()
            })
            .collect();
        g.add("reduce", TaskCost::cpu(5.0), &kernels).unwrap();
        g
    }

    #[test]
    fn backoff_doubles_and_a_pathological_budget_cannot_wrap() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            backoff_us: 10.0,
        };
        assert_eq!(p.backoff_for(1), 10.0);
        assert_eq!(p.backoff_for(2), 20.0);
        assert_eq!(p.backoff_for(3), 40.0);
        // The exponent caps: every attempt past the cap pays the same
        // saturated backoff instead of wrapping the shift.
        let capped = p.backoff_for(RetryPolicy::MAX_BACKOFF_EXPONENT + 1);
        assert_eq!(capped, 10.0 * 4_294_967_296.0);
        assert_eq!(p.backoff_for(u32::MAX), capped);
        assert!(capped.is_finite());
        // Monotone non-decreasing across the cap boundary.
        let mut last = 0.0;
        for attempt in 1..=(RetryPolicy::MAX_BACKOFF_EXPONENT + 8) {
            let b = p.backoff_for(attempt);
            assert!(b >= last, "attempt {attempt} went backwards");
            last = b;
        }
        // The bounded timeout stays finite even for the absurd budget.
        assert!(p.timeout_us().is_finite());
        // And matches the plain geometric sum for a sane budget.
        let sane = RetryPolicy::default();
        assert_eq!(sane.timeout_us(), 10.0 + 20.0 + 40.0);
        assert_eq!(
            RetryPolicy {
                max_retries: 0,
                ..sane
            }
            .timeout_us(),
            0.0
        );
    }

    #[test]
    fn independent_kernels_run_concurrently() {
        let g = fork_join(8, 100.0);
        let schedule = Runtime::new(RuntimeConfig::hsa()).execute(&g);
        // 8 kernels over 8 GPU queues: makespan near one kernel, not eight.
        assert!(schedule.makespan_us < 200.0, "{}", schedule.makespan_us);
        assert!(schedule.utilization(AgentKind::GpuQueue, 8) > 0.4);
    }

    #[test]
    fn dependencies_are_respected() {
        let g = fork_join(4, 50.0);
        let schedule = Runtime::new(RuntimeConfig::hsa()).execute(&g);
        let pre = schedule.span_of(0).unwrap();
        for k in 1..=4 {
            let span = schedule.span_of(k).unwrap();
            assert!(span.start_us >= pre.end_us, "kernel started before pre");
        }
        let reduce = schedule.span_of(5).unwrap();
        for k in 1..=4 {
            assert!(reduce.start_us >= schedule.span_of(k).unwrap().end_us);
        }
    }

    #[test]
    fn makespan_never_beats_the_critical_path() {
        for width in [1, 4, 16] {
            let g = fork_join(width, 30.0);
            let schedule = Runtime::new(RuntimeConfig::hsa()).execute(&g);
            assert!(schedule.makespan_us >= g.critical_path_us());
        }
    }

    #[test]
    fn hsa_dispatch_beats_the_legacy_driver_on_fine_grained_graphs() {
        // Many small kernels: dispatch overhead dominates.
        let mut g = TaskGraph::new();
        let mut prev = g.add("k0", TaskCost::gpu(5.0), &[]).unwrap();
        for i in 1..100 {
            prev = g.add(format!("k{i}"), TaskCost::gpu(5.0), &[prev]).unwrap();
        }
        let hsa = Runtime::new(RuntimeConfig::hsa()).execute(&g);
        let legacy = Runtime::new(RuntimeConfig::legacy_driver()).execute(&g);
        assert!(
            legacy.makespan_us > 2.0 * hsa.makespan_us,
            "hsa {} vs legacy {}",
            hsa.makespan_us,
            legacy.makespan_us
        );
    }

    #[test]
    fn quick_release_cuts_sync_overhead_on_cpu_gpu_pingpong() {
        // CPU -> GPU -> CPU -> GPU chain: every edge crosses agents.
        let mut g = TaskGraph::new();
        let mut prev = g.add("c0", TaskCost::cpu(2.0), &[]).unwrap();
        for i in 0..40 {
            let cost = if i % 2 == 0 {
                TaskCost::gpu(2.0)
            } else {
                TaskCost::cpu(2.0)
            };
            prev = g.add(format!("t{i}"), cost, &[prev]).unwrap();
        }
        let mut qr_cfg = RuntimeConfig::hsa();
        qr_cfg.sync = SyncModel::quick_release();
        let mut conv_cfg = RuntimeConfig::hsa();
        conv_cfg.sync = SyncModel::conventional();
        let qr = Runtime::new(qr_cfg).execute(&g);
        let conv = Runtime::new(conv_cfg).execute(&g);
        assert!(qr.sync_overhead_us < conv.sync_overhead_us / 2.0);
        assert!(qr.makespan_us < conv.makespan_us);
    }

    #[test]
    fn no_faults_degraded_matches_healthy_execution() {
        let g = fork_join(8, 100.0);
        let rt = Runtime::new(RuntimeConfig::hsa());
        let healthy = rt.execute(&g);
        let degraded = rt
            .execute_degraded(&g, &[], RetryPolicy::default())
            .unwrap();
        assert_eq!(degraded.retries, 0);
        assert_eq!(degraded.lost_work_us, 0.0);
        assert_eq!(degraded.makespan_us, healthy.makespan_us);
        assert_eq!(degraded.spans.len(), healthy.spans.len());
    }

    #[test]
    fn a_dying_queue_requeues_its_task_onto_survivors() {
        let g = fork_join(8, 100.0);
        let rt = Runtime::new(RuntimeConfig::hsa());
        let healthy = rt.execute(&g);
        // Queue 0 dies mid-kernel: whichever kernel it held re-queues.
        let faults = [AgentFault {
            agent: AgentKind::GpuQueue,
            index: 0,
            at_us: 50.0,
        }];
        let degraded = rt
            .execute_degraded(&g, &faults, RetryPolicy::default())
            .unwrap();
        assert_eq!(degraded.retries, 1);
        assert!(degraded.lost_work_us > 0.0);
        assert!(degraded.makespan_us > healthy.makespan_us);
        // Every task still completed, none on the dead queue after death.
        assert_eq!(degraded.spans.len(), g.len());
        for s in &degraded.spans {
            if s.agent == AgentKind::GpuQueue && s.agent_index == 0 {
                assert!(
                    s.end_us <= 50.0,
                    "dispatch to a dead queue at {}",
                    s.start_us
                );
            }
        }
    }

    #[test]
    fn losing_every_compatible_agent_is_an_error_not_a_hang() {
        // GPU-only kernels with every queue dead before work starts being
        // observable: the runtime reports the stranded task.
        let mut g = TaskGraph::new();
        g.add("k", TaskCost::gpu(100.0), &[]).unwrap();
        let mut cfg = RuntimeConfig::hsa();
        cfg.gpu_queues = 2;
        let rt = Runtime::new(cfg);
        let faults: Vec<AgentFault> = (0..2)
            .map(|i| AgentFault {
                agent: AgentKind::GpuQueue,
                index: i,
                at_us: 0.0,
            })
            .collect();
        let err = rt
            .execute_degraded(&g, &faults, RetryPolicy::default())
            .unwrap_err();
        assert_eq!(err, DegradeError::NoCompatibleAgent { task: 0 });
    }

    #[test]
    fn retry_budget_is_bounded() {
        // A long chain on a single queue that dies late: the one kernel in
        // flight is lost once; with zero retries allowed that is fatal.
        let mut g = TaskGraph::new();
        g.add("k", TaskCost::gpu(100.0), &[]).unwrap();
        let mut cfg = RuntimeConfig::hsa();
        cfg.gpu_queues = 2;
        let rt = Runtime::new(cfg);
        let faults = [AgentFault {
            agent: AgentKind::GpuQueue,
            index: 0,
            at_us: 50.0,
        }];
        let strict = RetryPolicy {
            max_retries: 0,
            backoff_us: 10.0,
        };
        let err = rt.execute_degraded(&g, &faults, strict).unwrap_err();
        assert_eq!(
            err,
            DegradeError::RetriesExhausted {
                task: 0,
                attempts: 1
            }
        );
        // With one retry the survivor picks it up after backoff.
        let lenient = RetryPolicy {
            max_retries: 1,
            backoff_us: 10.0,
        };
        let ok = rt.execute_degraded(&g, &faults, lenient).unwrap();
        assert_eq!(ok.retries, 1);
        let span = ok.span_of(0).unwrap();
        assert_eq!(span.agent_index, 1);
        assert!(
            span.start_us >= 60.0,
            "backoff not honored: {}",
            span.start_us
        );
    }

    #[test]
    fn degraded_execution_is_deterministic() {
        let g = fork_join(16, 40.0);
        let rt = Runtime::new(RuntimeConfig::hsa());
        let faults = [
            AgentFault {
                agent: AgentKind::GpuQueue,
                index: 3,
                at_us: 30.0,
            },
            AgentFault {
                agent: AgentKind::CpuCore,
                index: 0,
                at_us: 1.0,
            },
        ];
        let a = rt
            .execute_degraded(&g, &faults, RetryPolicy::default())
            .unwrap();
        let b = rt
            .execute_degraded(&g, &faults, RetryPolicy::default())
            .unwrap();
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.retries, b.retries);
    }

    #[test]
    fn mixed_tasks_fall_back_to_the_cpu_when_the_gpu_is_saturated() {
        // Tasks runnable on either agent: with all GPU queues busy, the
        // scheduler should spill to CPU cores.
        let mut g = TaskGraph::new();
        for i in 0..64 {
            g.add(format!("t{i}"), TaskCost::either(30.0, 20.0), &[])
                .unwrap();
        }
        let mut cfg = RuntimeConfig::hsa();
        cfg.gpu_queues = 2;
        let schedule = Runtime::new(cfg).execute(&g);
        let on_cpu = schedule
            .spans
            .iter()
            .filter(|s| s.agent == AgentKind::CpuCore)
            .count();
        assert!(on_cpu > 0, "nothing spilled to the CPU");
    }
}

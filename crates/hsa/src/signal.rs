//! HSA signals: the completion/synchronization primitive.
//!
//! An HSA signal is a shared 64-bit value that agents decrement or set on
//! completion and others wait on. In this simulated runtime signals carry
//! their value plus the *time* at which each value was reached, so waiters
//! can resolve when their condition became true.

/// Identifier of a signal within a [`SignalPool`].
pub type SignalId = usize;

/// One signal's state.
#[derive(Clone, Debug, PartialEq)]
struct SignalState {
    value: i64,
    /// Time of the last mutation.
    last_change: f64,
}

/// An allocation pool of simulated signals.
#[derive(Clone, Debug, Default)]
pub struct SignalPool {
    signals: Vec<SignalState>,
}

impl SignalPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a signal with the given initial value.
    pub fn create(&mut self, initial: i64) -> SignalId {
        self.signals.push(SignalState {
            value: initial,
            last_change: 0.0,
        });
        self.signals.len() - 1
    }

    /// Current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated from this pool.
    pub fn value(&self, id: SignalId) -> i64 {
        self.signals[id].value
    }

    /// Time of the last mutation.
    pub fn last_change(&self, id: SignalId) -> f64 {
        self.signals[id].last_change
    }

    /// Atomically subtracts 1 at simulated time `now` (the completion
    /// convention for barrier-style signals).
    pub fn decrement(&mut self, id: SignalId, now: f64) -> i64 {
        let s = &mut self.signals[id];
        s.value -= 1;
        s.last_change = s.last_change.max(now);
        s.value
    }

    /// Stores `value` at simulated time `now`.
    pub fn store(&mut self, id: SignalId, value: i64, now: f64) {
        let s = &mut self.signals[id];
        s.value = value;
        s.last_change = s.last_change.max(now);
    }

    /// True once the signal's value is `<= threshold` (the HSA
    /// `wait_acquire` condition used for task dependencies).
    pub fn satisfied(&self, id: SignalId, threshold: i64) -> bool {
        self.value(id) <= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decrement_reaches_zero() {
        let mut pool = SignalPool::new();
        let s = pool.create(3);
        assert!(!pool.satisfied(s, 0));
        pool.decrement(s, 1.0);
        pool.decrement(s, 2.0);
        let v = pool.decrement(s, 1.5); // out-of-order completion time
        assert_eq!(v, 0);
        assert!(pool.satisfied(s, 0));
        // Last-change keeps the max timestamp.
        assert_eq!(pool.last_change(s), 2.0);
    }

    #[test]
    fn store_overrides_value() {
        let mut pool = SignalPool::new();
        let s = pool.create(0);
        pool.store(s, 42, 5.0);
        assert_eq!(pool.value(s), 42);
        assert_eq!(pool.last_change(s), 5.0);
    }

    #[test]
    fn pool_allocates_distinct_signals() {
        let mut pool = SignalPool::new();
        let a = pool.create(1);
        let b = pool.create(2);
        assert_ne!(a, b);
        pool.decrement(a, 1.0);
        assert_eq!(pool.value(a), 0);
        assert_eq!(pool.value(b), 2);
    }
}

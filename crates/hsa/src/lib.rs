//! HSA-style heterogeneous runtime substrate for the ENA toolkit.
//!
//! The paper's programmability story (Section II-A.1) rests on the
//! Heterogeneous System Architecture: a unified coherent virtual address
//! space, user-mode dispatch queues, signals, task offload in both
//! directions, and scoped synchronization (HRF \[15\], QuickRelease \[14\]).
//! This crate provides that substrate in executable, simulated form:
//!
//! - [`signal`] — HSA signals (timed completion objects).
//! - [`queue`] — user-mode AQL ring buffers with doorbells.
//! - [`task`] — heterogeneous task DAGs with per-agent costs.
//! - [`sync`] — HRF scoped-synchronization cost models, conventional vs
//!   QuickRelease.
//! - [`runtime`] — a list-scheduling runtime executing DAGs over CPU cores
//!   and GPU queues, accounting dispatch and synchronization overheads.
//!
//! # Example: why user-mode dispatch matters
//!
//! ```
//! use ena_hsa::runtime::{Runtime, RuntimeConfig};
//! use ena_hsa::task::{TaskCost, TaskGraph};
//!
//! # fn main() -> Result<(), ena_hsa::task::GraphError> {
//! // A chain of fine-grained GPU kernels.
//! let mut graph = TaskGraph::new();
//! let mut prev = graph.add("k0", TaskCost::gpu(5.0), &[])?;
//! for i in 1..50 {
//!     prev = graph.add(format!("k{i}"), TaskCost::gpu(5.0), &[prev])?;
//! }
//!
//! let hsa = Runtime::new(RuntimeConfig::hsa()).execute(&graph);
//! let legacy = Runtime::new(RuntimeConfig::legacy_driver()).execute(&graph);
//! assert!(hsa.makespan_us < legacy.makespan_us / 2.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod queue;
pub mod runtime;
pub mod signal;
pub mod sync;
pub mod task;

pub use runtime::{AgentKind, Runtime, RuntimeConfig, Schedule};
pub use sync::SyncModel;
pub use task::{TaskCost, TaskGraph};

//! Property-based tests for the HSA runtime.

use ena_hsa::runtime::{Runtime, RuntimeConfig};
use ena_hsa::task::{TaskCost, TaskGraph};
use ena_testkit::prelude::*;

/// Builds a random DAG: each task depends on a subset of earlier tasks.
fn arbitrary_graph() -> impl Strategy<Value = TaskGraph> {
    ena_testkit::collection::vec(
        (
            1.0f64..100.0, // cpu cost
            1.0f64..100.0, // gpu cost
            0u8..3,        // kind: cpu/gpu/either
            ena_testkit::collection::vec(any::<ena_testkit::sample::Index>(), 0..3),
        ),
        1..40,
    )
    .prop_map(|specs| {
        let mut g = TaskGraph::new();
        for (i, (cpu, gpu, kind, dep_picks)) in specs.into_iter().enumerate() {
            let cost = match kind {
                0 => TaskCost::cpu(cpu),
                1 => TaskCost::gpu(gpu),
                _ => TaskCost::either(cpu, gpu),
            };
            let mut deps: Vec<usize> = if i == 0 {
                Vec::new()
            } else {
                dep_picks.iter().map(|p| p.index(i)).collect()
            };
            deps.sort_unstable();
            deps.dedup();
            g.add(format!("t{i}"), cost, &deps)
                .expect("backward edges only");
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_respect_dependencies(graph in arbitrary_graph()) {
        let schedule = Runtime::new(RuntimeConfig::hsa()).execute(&graph);
        prop_assert_eq!(schedule.spans.len(), graph.len());
        for span in &schedule.spans {
            for &dep in &graph.tasks()[span.task].deps {
                let producer = schedule.span_of(dep).expect("dep scheduled");
                prop_assert!(
                    span.start_us >= producer.end_us - 1e-9,
                    "task {} started before dep {}",
                    span.task,
                    dep
                );
            }
        }
    }

    #[test]
    fn makespan_is_bounded_below_by_the_critical_path(graph in arbitrary_graph()) {
        let schedule = Runtime::new(RuntimeConfig::hsa()).execute(&graph);
        prop_assert!(schedule.makespan_us >= graph.critical_path_us() - 1e-9);
    }

    #[test]
    fn overhead_accounting_is_sane(graph in arbitrary_graph()) {
        let cfg = RuntimeConfig::hsa();
        let schedule = Runtime::new(cfg).execute(&graph);
        let expected_dispatch = cfg.dispatch_overhead_us * graph.len() as f64;
        prop_assert!((schedule.dispatch_overhead_us - expected_dispatch).abs() < 1e-9);
        prop_assert!(schedule.sync_overhead_us >= 0.0);
        for kind in [ena_hsa::AgentKind::CpuCore, ena_hsa::AgentKind::GpuQueue] {
            let agents = match kind {
                ena_hsa::AgentKind::CpuCore => cfg.cpu_cores,
                ena_hsa::AgentKind::GpuQueue => cfg.gpu_queues,
            };
            let u = schedule.utilization(kind, agents);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "{u}");
        }
    }

    #[test]
    fn agents_never_run_two_tasks_at_once(graph in arbitrary_graph()) {
        let schedule = Runtime::new(RuntimeConfig::hsa()).execute(&graph);
        let mut spans = schedule.spans.clone();
        spans.sort_by(|a, b| {
            (a.agent as u8, a.agent_index, a.start_us)
                .partial_cmp(&(b.agent as u8, b.agent_index, b.start_us))
                .expect("finite")
        });
        for pair in spans.windows(2) {
            if pair[0].agent == pair[1].agent && pair[0].agent_index == pair[1].agent_index {
                prop_assert!(
                    pair[1].start_us >= pair[0].end_us - 1e-9,
                    "overlap on {:?}[{}]",
                    pair[0].agent,
                    pair[0].agent_index
                );
            }
        }
    }
}

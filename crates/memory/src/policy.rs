//! Multi-level memory management policies (paper Section II-B.3).
//!
//! The ENA's primary mode is *software-controlled*: the OS monitors page
//! activity and migrates hot pages into the in-package DRAM each epoch
//! ([`SoftwareManaged`], after the HMA approach the paper cites). The
//! hardware-cache mode ([`HardwareCache`]) instead treats the in-package
//! DRAM as a memory-side cache, sacrificing addressable capacity. A
//! [`StaticPlacement`] baseline pins a fixed fraction of pages in-package.
//!
//! Policies answer one question per access — *was this page serviced
//! in-package?* — and their quality is summarized by the in-package service
//! fraction, the knob Fig. 8 sweeps.

use std::collections::{BTreeMap, BTreeSet};

/// Page size used by the management policies.
pub const PAGE_BYTES: u64 = 4096;

/// A placement decision for one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Serviced by in-package DRAM.
    InPackage,
    /// Serviced by external memory.
    External,
}

/// A multi-level memory management policy.
///
/// Implementations are driven page-by-page through a trace via
/// [`PlacementPolicy::access`], with [`PlacementPolicy::end_epoch`] called
/// at epoch boundaries (software policies migrate there).
pub trait PlacementPolicy {
    /// Records an access to the page containing `addr` and reports where
    /// it was serviced.
    fn access(&mut self, addr: u64, is_write: bool) -> Placement;

    /// Ends a monitoring epoch; returns the number of pages migrated.
    fn end_epoch(&mut self) -> u64 {
        0
    }

    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// Pins a deterministic, uniformly spread fraction of pages in-package.
///
/// Models first-touch/static allocation where a fixed share of the data
/// set fits in-package, and serves as the Fig. 8 knob: an
/// `in_package_fraction` of `1.0 - miss_rate` produces the paper's
/// artificial miss-rate sweep.
#[derive(Clone, Debug)]
pub struct StaticPlacement {
    fraction: f64,
}

impl StaticPlacement {
    /// Creates a policy servicing `fraction` of pages in-package.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn new(fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        Self { fraction }
    }
}

impl PlacementPolicy for StaticPlacement {
    fn access(&mut self, addr: u64, _is_write: bool) -> Placement {
        let page = addr / PAGE_BYTES;
        // Low-bias multiplicative hash to [0,1).
        let h = page.wrapping_mul(0x9E3779B97F4A7C15);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.fraction {
            Placement::InPackage
        } else {
            Placement::External
        }
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// HMA-style software-managed migration: per-epoch page access counters;
/// at each epoch boundary the hottest pages (up to in-package capacity)
/// are mapped in-package for the next epoch.
#[derive(Clone, Debug)]
pub struct SoftwareManaged {
    capacity_pages: usize,
    /// Pages currently resident in-package.
    resident: BTreeSet<u64>,
    /// Access counts this epoch.
    counts: BTreeMap<u64, u64>,
    /// True until the first epoch ends: pages are first-touch allocated
    /// in-package while space remains (cold start).
    cold_start: bool,
}

impl SoftwareManaged {
    /// Creates a policy with `capacity_bytes` of in-package memory.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_pages: (capacity_bytes / PAGE_BYTES) as usize,
            resident: BTreeSet::new(),
            counts: BTreeMap::new(),
            cold_start: true,
        }
    }

    /// Number of pages currently resident in-package.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }
}

impl PlacementPolicy for SoftwareManaged {
    fn access(&mut self, addr: u64, _is_write: bool) -> Placement {
        let page = addr / PAGE_BYTES;
        *self.counts.entry(page).or_insert(0) += 1;
        if self.resident.contains(&page) {
            Placement::InPackage
        } else if self.cold_start && self.resident.len() < self.capacity_pages {
            // First-touch fill while in-package space remains; after the
            // first epoch, placement changes only at epoch boundaries.
            self.resident.insert(page);
            Placement::InPackage
        } else {
            Placement::External
        }
    }

    fn end_epoch(&mut self) -> u64 {
        self.cold_start = false;
        // Rank pages by epoch count; keep the hottest `capacity_pages`.
        let mut ranked: Vec<(u64, u64)> = std::mem::take(&mut self.counts).into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let new_resident: BTreeSet<u64> = ranked
            .iter()
            .take(self.capacity_pages)
            .map(|&(page, _)| page)
            .collect();
        let migrations = new_resident.difference(&self.resident).count() as u64;
        self.resident = new_resident;
        migrations
    }

    fn name(&self) -> &'static str {
        "software-managed"
    }
}

/// Hardware-cache mode: in-package DRAM as a direct-mapped page-granular
/// memory-side cache over the external address space.
///
/// Fig. 8's footnote distinguishes this from the software modes; Section
/// II-B.3 notes it sacrifices addressable capacity (the in-package bytes no
/// longer add to the pool) but needs no software management.
#[derive(Clone, Debug)]
pub struct HardwareCache {
    sets: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
}

impl HardwareCache {
    /// Creates a cache of `capacity_bytes` in-package storage.
    pub fn new(capacity_bytes: u64) -> Self {
        let sets = (capacity_bytes / PAGE_BYTES).max(1) as usize;
        Self {
            sets: vec![None; sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl PlacementPolicy for HardwareCache {
    fn access(&mut self, addr: u64, _is_write: bool) -> Placement {
        let page = addr / PAGE_BYTES;
        let set = (page % self.sets.len() as u64) as usize;
        if self.sets[set] == Some(page) {
            self.hits += 1;
            Placement::InPackage
        } else {
            self.sets[set] = Some(page);
            self.misses += 1;
            Placement::External
        }
    }

    fn name(&self) -> &'static str {
        "hardware-cache"
    }
}

/// Set-associative LRU variant of the hardware-cache mode, with dirty-line
/// writeback accounting — the "more advanced DRAM cache organizations" the
/// paper's citations (refs 34, 35) study.
#[derive(Clone, Debug)]
pub struct SetAssociativeCache {
    /// `sets[s]` holds up to `ways` `(page, dirty)` entries, LRU-first.
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl SetAssociativeCache {
    /// Creates a cache of `capacity_bytes` with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or capacity holds fewer pages than `ways`.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let pages = (capacity_bytes / PAGE_BYTES) as usize;
        assert!(pages >= ways, "capacity smaller than one set");
        Self {
            sets: vec![Vec::with_capacity(ways); (pages / ways).max(1)],
            ways,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Cache hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Dirty pages written back to external memory so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }
}

impl PlacementPolicy for SetAssociativeCache {
    fn access(&mut self, addr: u64, is_write: bool) -> Placement {
        let page = addr / PAGE_BYTES;
        let set_count = self.sets.len() as u64;
        let set = &mut self.sets[(page % set_count) as usize];
        if let Some(pos) = set.iter().position(|&(p, _)| p == page) {
            let (_, dirty) = set.remove(pos);
            set.push((page, dirty || is_write));
            self.hits += 1;
            return Placement::InPackage;
        }
        self.misses += 1;
        if set.len() == self.ways {
            let (_, dirty) = set.remove(0);
            if dirty {
                self.writebacks += 1;
            }
        }
        set.push((page, is_write));
        Placement::External
    }

    fn name(&self) -> &'static str {
        "set-associative-cache"
    }
}

/// Result of driving a policy through a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PolicyStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses serviced in-package.
    pub in_package: u64,
    /// Total page migrations across epochs.
    pub migrations: u64,
}

impl PolicyStats {
    /// Fraction of accesses serviced by in-package memory.
    pub fn in_package_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.in_package as f64 / self.accesses as f64
        }
    }

    /// The paper's "miss rate": fraction serviced by external memory.
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.in_package_fraction()
    }
}

/// Replays `(addr, is_write)` pairs through `policy`, ending an epoch every
/// `epoch_len` accesses.
pub fn run_policy(
    policy: &mut dyn PlacementPolicy,
    accesses: impl IntoIterator<Item = (u64, bool)>,
    epoch_len: u64,
) -> PolicyStats {
    let mut stats = PolicyStats::default();
    let mut since_epoch = 0u64;
    for (addr, is_write) in accesses {
        if policy.access(addr, is_write) == Placement::InPackage {
            stats.in_package += 1;
        }
        stats.accesses += 1;
        since_epoch += 1;
        if since_epoch == epoch_len {
            stats.migrations += policy.end_epoch();
            since_epoch = 0;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(pages: u64, repeats: u64) -> Vec<(u64, bool)> {
        let mut v = Vec::new();
        for _ in 0..repeats {
            for p in 0..pages {
                v.push((p * PAGE_BYTES, false));
            }
        }
        v
    }

    #[test]
    fn static_placement_tracks_its_fraction() {
        for target in [0.0, 0.25, 0.5, 0.8, 1.0] {
            let mut policy = StaticPlacement::new(target);
            let stats = run_policy(&mut policy, stream(20_000, 1), u64::MAX);
            assert!(
                (stats.in_package_fraction() - target).abs() < 0.02,
                "target {target}, got {}",
                stats.in_package_fraction()
            );
        }
    }

    #[test]
    fn software_managed_captures_hot_pages_after_an_epoch() {
        // 64 pages of capacity; 32 hot pages hit every epoch, 512 cold
        // pages streamed once each epoch.
        let mut policy = SoftwareManaged::new(64 * PAGE_BYTES);
        let mut trace = Vec::new();
        for epoch in 0..4 {
            for rep in 0..8 {
                for hot in 0..32u64 {
                    trace.push((hot * PAGE_BYTES, false));
                    let cold = 1000 + epoch * 512 + rep * 64 + hot;
                    trace.push((cold * PAGE_BYTES, false));
                }
            }
        }
        let epoch_len = trace.len() as u64 / 4;
        let stats = run_policy(&mut policy, trace, epoch_len);
        // After the first epoch, hot pages are resident: roughly half of
        // all accesses (the hot half) hit in-package.
        assert!(
            stats.in_package_fraction() > 0.4,
            "{}",
            stats.in_package_fraction()
        );
        assert!(stats.migrations > 0);
    }

    #[test]
    fn software_managed_respects_capacity() {
        let mut policy = SoftwareManaged::new(16 * PAGE_BYTES);
        let _ = run_policy(&mut policy, stream(1000, 2), 500);
        assert!(policy.resident_pages() <= 16);
    }

    #[test]
    fn hardware_cache_hits_on_reuse_and_thrashes_on_streams() {
        let mut cache = HardwareCache::new(256 * PAGE_BYTES);
        // Reuse of a small set: high hit rate.
        let stats = run_policy(&mut cache, stream(64, 10), u64::MAX);
        assert!(stats.in_package_fraction() > 0.85);

        let mut cache = HardwareCache::new(256 * PAGE_BYTES);
        // Stream over 10x capacity: almost no hits.
        let stats = run_policy(&mut cache, stream(2560, 2), u64::MAX);
        assert!(stats.in_package_fraction() < 0.1);
    }

    #[test]
    fn set_associative_cache_retains_a_working_set_direct_mapping_thrashes() {
        // Two pages aliasing to the same direct-mapped set ping-pong; a
        // 4-way cache holds both.
        let sets = 256u64;
        let a = 0u64;
        let b = sets * PAGE_BYTES; // same set as `a` in the direct-mapped cache
        let mut direct = HardwareCache::new(sets * PAGE_BYTES);
        let mut assoc = SetAssociativeCache::new(sets * PAGE_BYTES, 4);
        for _ in 0..100 {
            direct.access(a, false);
            direct.access(b, false);
            assoc.access(a, false);
            assoc.access(b, false);
        }
        assert!(direct.hit_rate() < 0.05, "direct {}", direct.hit_rate());
        assert!(assoc.hit_rate() > 0.9, "assoc {}", assoc.hit_rate());
    }

    #[test]
    fn dirty_evictions_produce_writebacks() {
        let mut cache = SetAssociativeCache::new(16 * PAGE_BYTES, 2);
        // Write-stream over 10x capacity: every eviction is dirty.
        for p in 0..160u64 {
            cache.access(p * PAGE_BYTES, true);
        }
        assert!(cache.writebacks() > 100, "{}", cache.writebacks());
        // Read-only streams write nothing back.
        let mut clean = SetAssociativeCache::new(16 * PAGE_BYTES, 2);
        for p in 0..160u64 {
            clean.access(p * PAGE_BYTES, false);
        }
        assert_eq!(clean.writebacks(), 0);
    }

    #[test]
    fn miss_rate_complements_in_package_fraction() {
        let stats = PolicyStats {
            accesses: 100,
            in_package: 80,
            migrations: 0,
        };
        assert!((stats.in_package_fraction() - 0.8).abs() < 1e-12);
        assert!((stats.miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let mut policy = StaticPlacement::new(0.5);
        let stats = run_policy(&mut policy, Vec::new(), 100);
        assert_eq!(stats.accesses, 0);
        assert_eq!(stats.in_package_fraction(), 0.0);
    }
}

//! Multi-level memory system simulation for the ENA toolkit.
//!
//! The ENA pairs 256 GB of in-package 3D DRAM with a network of external
//! memory modules (paper Section II-B). This crate models every level:
//!
//! - [`hbm`] — in-package stack timing/energy (channels, banks, open rows).
//! - [`ecc`] — SECDED/chipkill transient-error classification on the arrays.
//! - [`extnet`] — the external memory network: chains of DRAM/NVM modules
//!   over SerDes links, with failure injection and redundant routing.
//! - [`interleave`] — the physical address map across stacks and tiers.
//! - [`policy`] — multi-level management: software-managed hot-page
//!   migration, hardware-cache mode, and static placement.
//! - [`system`] — the assembled [`MemorySystem`](system::MemorySystem).
//!
//! # Example
//!
//! ```
//! use ena_memory::policy::StaticPlacement;
//! use ena_memory::system::MemorySystem;
//! use ena_model::config::EhpConfig;
//!
//! let mut memory = MemorySystem::new(
//!     &EhpConfig::paper_baseline(),
//!     Box::new(StaticPlacement::new(0.8)),
//!     u64::MAX,
//! );
//! for page in 0..1000u64 {
//!     memory.access(page * 4096, 64, false).expect("healthy links");
//! }
//! assert!(memory.stats().in_package_fraction() > 0.7);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ecc;
pub mod extnet;
pub mod hbm;
pub mod interleave;
pub mod policy;
pub mod system;

pub use ecc::{EccModel, EccOutcome, EccScheme};
pub use extnet::ExternalNetwork;
pub use hbm::HbmStack;
pub use interleave::{AddressMap, Tier};
pub use policy::{
    HardwareCache, PlacementPolicy, SetAssociativeCache, SoftwareManaged, StaticPlacement,
};
pub use system::MemorySystem;

//! The assembled multi-level memory system (paper Fig. 3).
//!
//! [`MemorySystem`] joins the in-package stacks, the external network, the
//! physical address map, and a placement policy: each logical access is
//! placed by the policy, routed to its tier, and serviced by the detailed
//! tier model. This is the trace-driven complement to the analytic
//! bandwidth model in `ena-core`.

use ena_model::config::EhpConfig;
use ena_model::error::DegradeError;
use ena_model::units::Picojoules;

use crate::ecc::{EccModel, EccOutcome};
use crate::extnet::{ExternalError, ExternalNetwork, ExternalStats};
use crate::hbm::{Direction, HbmStack, HbmStats};
use crate::interleave::AddressMap;
use crate::policy::{Placement, PlacementPolicy, PAGE_BYTES};

/// Aggregate results of replaying a trace through the memory system.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemoryStats {
    /// Total accesses serviced.
    pub accesses: u64,
    /// Accesses serviced in-package.
    pub in_package: u64,
    /// Sum of access latencies (cycles).
    pub total_latency_cycles: u64,
    /// Total energy across tiers.
    pub energy: Picojoules,
    /// Page migrations performed by the policy.
    pub migrations: u64,
    /// Accesses that failed (e.g. link failures without redundancy).
    pub failed: u64,
    /// Transient HBM errors ECC corrected in place (each charged the
    /// scheme's correction latency penalty).
    pub ecc_corrected: u64,
    /// Transient HBM errors ECC detected but could not correct — each of
    /// these forces the recovery layer to roll back.
    pub ecc_uncorrectable: u64,
    /// Transient HBM errors that escaped detection (silent data
    /// corruption), including every error on an unprotected system.
    pub ecc_silent: u64,
}

impl MemoryStats {
    /// Mean access latency in cycles.
    pub fn avg_latency_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses serviced by the in-package DRAM.
    pub fn in_package_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.in_package as f64 / self.accesses as f64
        }
    }
}

/// The node's full memory system.
pub struct MemorySystem {
    stacks: Vec<HbmStack>,
    external: ExternalNetwork,
    map: AddressMap,
    /// Physical indices of the surviving stacks, in interleave order. The
    /// address map spans `live.len()` logical stacks; logical stack `i`
    /// is serviced by physical stack `live[i]`.
    live: Vec<u32>,
    policy: Box<dyn PlacementPolicy>,
    ecc: Option<EccModel>,
    epoch_len: u64,
    since_epoch: u64,
    clock: u64,
    stats: MemoryStats,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("stacks", &self.stacks.len())
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemorySystem {
    /// Builds the memory system for an EHP configuration with the given
    /// placement policy and epoch length (accesses per epoch).
    pub fn new(config: &EhpConfig, policy: Box<dyn PlacementPolicy>, epoch_len: u64) -> Self {
        let stacks = (0..config.hbm.stacks)
            .map(|_| HbmStack::with_defaults())
            .collect();
        let stack_capacity = (config.hbm.capacity_per_stack.value() * 1e9) as u64;
        // Align capacity down to the page size.
        let stack_capacity = stack_capacity / PAGE_BYTES * PAGE_BYTES;
        Self {
            stacks,
            external: ExternalNetwork::new(config.external.clone()),
            map: AddressMap::new(config.hbm.stacks, stack_capacity, PAGE_BYTES),
            live: (0..config.hbm.stacks).collect(),
            policy,
            ecc: None,
            epoch_len,
            since_epoch: 0,
            clock: 0,
            stats: MemoryStats::default(),
        }
    }

    /// Access the external network model directly (e.g. to inject faults).
    pub fn external_mut(&mut self) -> &mut ExternalNetwork {
        &mut self.external
    }

    /// Protects the in-package arrays with `model`. Without ECC every
    /// injected error escapes silently.
    pub fn attach_ecc(&mut self, model: EccModel) {
        self.ecc = Some(model);
    }

    /// Injects one raw transient error into the in-package DRAM and
    /// returns what the attached ECC made of it: corrected errors charge
    /// the scheme's latency penalty to the access stream, uncorrectable
    /// detections are counted for the recovery layer to roll back on, and
    /// silent escapes (the only outcome without ECC) are tracked for the
    /// report.
    pub fn inject_hbm_error(&mut self) -> EccOutcome {
        let outcome = match self.ecc.as_mut() {
            Some(model) => model.classify(),
            None => EccOutcome::Silent,
        };
        match outcome {
            EccOutcome::Corrected => {
                self.stats.ecc_corrected += 1;
                let penalty = self
                    .ecc
                    .as_ref()
                    .map_or(0, |m| m.scheme().correction_penalty_cycles());
                self.stats.total_latency_cycles += penalty;
            }
            EccOutcome::DetectedUncorrectable => self.stats.ecc_uncorrectable += 1,
            EccOutcome::Silent => self.stats.ecc_silent += 1,
        }
        outcome
    }

    /// Fails physical stack `stack`: the address space re-interleaves
    /// across the survivors, shrinking in-package capacity and bandwidth.
    /// Data on the dead stack is assumed restored from checkpoint into the
    /// re-interleaved map; subsequent accesses fold into the smaller
    /// region.
    ///
    /// # Errors
    ///
    /// Returns [`DegradeError::UnknownComponent`] if the stack does not
    /// exist or already failed, or [`DegradeError::LastSurvivor`] when it
    /// is the only stack left.
    pub fn fail_stack(&mut self, stack: u32) -> Result<(), DegradeError> {
        let pos =
            self.live
                .iter()
                .position(|&s| s == stack)
                .ok_or(DegradeError::UnknownComponent {
                    component: "HBM stack",
                    index: u64::from(stack),
                })?;
        if self.live.len() == 1 {
            return Err(DegradeError::LastSurvivor("HBM stack"));
        }
        self.live.remove(pos);
        self.map = AddressMap::new(
            self.live.len() as u32,
            self.map.stack_capacity,
            self.map.granularity,
        );
        Ok(())
    }

    /// Number of surviving stacks.
    pub fn live_stacks(&self) -> usize {
        self.live.len()
    }

    /// In-package capacity across surviving stacks, in bytes.
    pub fn in_package_bytes(&self) -> u64 {
        self.map.in_package_bytes()
    }

    /// Services one logical access of `bytes` at `addr`.
    ///
    /// Returns the access latency in cycles, or an [`ExternalError`] if the
    /// external tier could not service it.
    pub fn access(&mut self, addr: u64, bytes: u32, is_write: bool) -> Result<u64, ExternalError> {
        let dir = if is_write {
            Direction::Write
        } else {
            Direction::Read
        };
        self.clock += 1;

        let placement = self.policy.access(addr, is_write);
        self.since_epoch += 1;
        if self.since_epoch >= self.epoch_len {
            self.stats.migrations += self.policy.end_epoch();
            self.since_epoch = 0;
        }

        let latency = match placement {
            Placement::InPackage => {
                // Fold the logical address into the in-package region.
                let (stack, offset) = self.map.fold_in_package(addr);
                let physical = self.live[stack as usize];
                let result = self.stacks[physical as usize].service(offset, bytes, dir, self.clock);
                self.stats.energy += result.energy;
                result.complete_cycle.saturating_sub(self.clock)
            }
            Placement::External => {
                let ext_capacity = (self.external.config().total_capacity().value() * 1e9) as u64;
                let folded = addr % ext_capacity;
                match self.external.service(folded, bytes, dir) {
                    Ok(access) => {
                        self.stats.energy += access.energy;
                        access.latency_cycles
                    }
                    Err(e) => {
                        self.stats.failed += 1;
                        return Err(e);
                    }
                }
            }
        };

        self.stats.accesses += 1;
        if placement == Placement::InPackage {
            self.stats.in_package += 1;
        }
        self.stats.total_latency_cycles += latency;
        Ok(latency)
    }

    /// Replays `(addr, is_write)` pairs, ignoring external failures.
    pub fn replay(&mut self, accesses: impl IntoIterator<Item = (u64, bool)>) -> MemoryStats {
        for (addr, is_write) in accesses {
            let _ = self.access(addr, 64, is_write);
        }
        self.stats.clone()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Per-stack statistics.
    pub fn stack_stats(&self) -> Vec<HbmStats> {
        self.stacks.iter().map(HbmStack::stats).collect()
    }

    /// External network statistics.
    pub fn external_stats(&self) -> ExternalStats {
        self.external.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{SoftwareManaged, StaticPlacement};

    fn system(fraction: f64) -> MemorySystem {
        MemorySystem::new(
            &EhpConfig::paper_baseline(),
            Box::new(StaticPlacement::new(fraction)),
            u64::MAX,
        )
    }

    #[test]
    fn ecc_buckets_every_injected_error_and_charges_corrections() {
        use crate::ecc::{EccModel, EccScheme};

        let mut sys = system(1.0);
        sys.attach_ecc(EccModel::new(EccScheme::Secded, 0xE0C));
        let before = sys.stats().total_latency_cycles;
        let injections = 10_000u64;
        for _ in 0..injections {
            sys.inject_hbm_error();
        }
        let stats = sys.stats();
        assert_eq!(
            stats.ecc_corrected + stats.ecc_uncorrectable + stats.ecc_silent,
            injections
        );
        let corrected = stats.ecc_corrected as f64 / injections as f64;
        assert!(
            (corrected - EccScheme::Secded.correct_fraction()).abs() < 0.01,
            "corrected fraction {corrected}"
        );
        assert_eq!(
            stats.total_latency_cycles - before,
            stats.ecc_corrected * EccScheme::Secded.correction_penalty_cycles()
        );
    }

    #[test]
    fn unprotected_arrays_corrupt_silently() {
        let mut sys = system(1.0);
        for _ in 0..64u64 {
            assert_eq!(sys.inject_hbm_error(), crate::ecc::EccOutcome::Silent);
        }
        let stats = sys.stats();
        assert_eq!(stats.ecc_silent, 64);
        assert_eq!(stats.ecc_corrected, 0);
        assert_eq!(stats.ecc_uncorrectable, 0);
    }

    #[test]
    fn in_package_accesses_are_faster_than_external() {
        let mut all_in = system(1.0);
        let mut all_out = system(0.0);
        for i in 0..500u64 {
            all_in.access(i * 4096, 64, false).unwrap();
            all_out.access(i * 4096, 64, false).unwrap();
        }
        let fast = all_in.stats().avg_latency_cycles();
        let slow = all_out.stats().avg_latency_cycles();
        assert!(
            slow > 3.0 * fast,
            "external {slow} should dwarf in-package {fast}"
        );
    }

    #[test]
    fn miss_fraction_tracks_the_policy() {
        let mut sys = system(0.7);
        for i in 0..20_000u64 {
            sys.access(i * 4096, 64, false).unwrap();
        }
        let frac = sys.stats().in_package_fraction();
        assert!((frac - 0.7).abs() < 0.02, "fraction = {frac}");
    }

    #[test]
    fn software_managed_system_migrates() {
        let mut sys = MemorySystem::new(
            &EhpConfig::paper_baseline(),
            Box::new(SoftwareManaged::new(64 * 4096)),
            256,
        );
        // Hot set of 32 pages + cold streaming.
        let mut accesses = Vec::new();
        for epoch in 0..4u64 {
            for rep in 0..32u64 {
                for hot in 0..32u64 {
                    accesses.push((hot * 4096, false));
                    accesses.push(((100_000 + epoch * 1000 + rep * 32 + hot) * 4096, true));
                }
            }
        }
        let stats = sys.replay(accesses);
        assert!(stats.migrations > 0);
        assert!(stats.in_package_fraction() > 0.4);
    }

    #[test]
    fn energy_accumulates_across_tiers() {
        let mut sys = system(0.5);
        for i in 0..100u64 {
            sys.access(i * 4096, 64, i % 3 == 0).unwrap();
        }
        assert!(sys.stats().energy.value() > 0.0);
        assert!(sys.external_stats().accesses > 0);
        assert!(sys.stack_stats().iter().any(|s| s.accesses > 0));
    }

    #[test]
    fn a_dead_stack_reinterleaves_with_capacity_loss() {
        let mut sys = system(1.0);
        let full = sys.in_package_bytes();
        assert_eq!(sys.live_stacks(), 8);
        sys.fail_stack(3).unwrap();
        assert_eq!(sys.live_stacks(), 7);
        assert_eq!(sys.in_package_bytes(), full / 8 * 7);
        // Every access still lands on a survivor: the dead stack's service
        // count stays frozen while traffic spreads over the other seven.
        let before: u64 = sys.stack_stats()[3].accesses;
        for i in 0..7000u64 {
            sys.access(i * 4096, 64, false).unwrap();
        }
        let per_stack: Vec<u64> = sys.stack_stats().iter().map(|s| s.accesses).collect();
        assert_eq!(per_stack[3], before, "dead stack serviced traffic");
        for (i, &n) in per_stack.iter().enumerate() {
            if i != 3 {
                assert!(n >= 900, "stack {i} underused: {n} accesses");
            }
        }
        // Double-failure and last-survivor guards are error values.
        assert!(matches!(
            sys.fail_stack(3),
            Err(DegradeError::UnknownComponent { .. })
        ));
        for s in [0, 1, 2, 4, 5, 6] {
            sys.fail_stack(s).unwrap();
        }
        assert_eq!(
            sys.fail_stack(7),
            Err(DegradeError::LastSurvivor("HBM stack"))
        );
    }

    #[test]
    fn failed_links_surface_as_errors() {
        let mut sys = system(0.0);
        sys.external_mut().fail_link(crate::extnet::ModuleId {
            interface: 0,
            depth: 0,
        });
        // Interface 0 pages now fail; others succeed.
        let mut failures = 0;
        for i in 0..64u64 {
            if sys.access(i * 4096, 64, false).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0);
        assert_eq!(sys.stats().failed, failures);
    }
}

//! SECDED / chipkill ECC modeling for the in-package DRAM arrays.
//!
//! The resilience model in `ena-core` prices protection as a flat
//! coverage fraction; this module supplies the mechanistic counterpart
//! for trace-driven runs. A raw transient error hitting a protected
//! array lands in one of three buckets:
//!
//! - **corrected** — the common case; the access stream pays a small
//!   correction latency penalty and execution continues;
//! - **detected-uncorrectable** — ECC sees the corruption but cannot
//!   repair it; the recovery layer must roll back to the last durable
//!   checkpoint;
//! - **silent** — the corruption aliases into a valid codeword and
//!   escapes; nothing stalls, but the rate is tracked because silent
//!   data corruption is the number the exascale RAS budget actually
//!   cares about.
//!
//! Classification is deterministic: an [`EccModel`] draws from its own
//! seeded PRNG, so a fault schedule replays to byte-identical reports.

use core::fmt;

/// ECC scheme strength on the DRAM arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EccScheme {
    /// Single-error-correct, double-error-detect: corrects single-bit
    /// flips, detects (but cannot repair) double-bit flips.
    Secded,
    /// Chipkill-level symbol correction: survives a full-device failure,
    /// leaving an order of magnitude fewer uncorrectable or silent
    /// escapes than SECDED, at a higher correction latency.
    Chipkill,
}

impl EccScheme {
    /// Fraction of raw transient errors the scheme corrects in place.
    pub fn correct_fraction(self) -> f64 {
        match self {
            EccScheme::Secded => 0.990,
            EccScheme::Chipkill => 0.999,
        }
    }

    /// Fraction of raw errors detected but not correctable.
    pub fn detect_fraction(self) -> f64 {
        match self {
            EccScheme::Secded => 0.009,
            EccScheme::Chipkill => 0.0009,
        }
    }

    /// Fraction of raw errors that escape silently (the remainder).
    pub fn silent_fraction(self) -> f64 {
        1.0 - self.correct_fraction() - self.detect_fraction()
    }

    /// Latency a corrected error charges to the access stream, in DRAM
    /// cycles. Chipkill reconstructs a whole symbol, so it pays more per
    /// correction than SECDED's syndrome fix-up.
    pub fn correction_penalty_cycles(self) -> u64 {
        match self {
            EccScheme::Secded => 6,
            EccScheme::Chipkill => 24,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            EccScheme::Secded => "secded",
            EccScheme::Chipkill => "chipkill",
        }
    }
}

impl fmt::Display for EccScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What ECC made of one raw transient error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EccOutcome {
    /// Corrected in place; the access stream pays the correction penalty.
    Corrected,
    /// Detected but uncorrectable; the recovery layer must roll back.
    DetectedUncorrectable,
    /// Escaped undetected (silent data corruption).
    Silent,
}

impl fmt::Display for EccOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EccOutcome::Corrected => "corrected",
            EccOutcome::DetectedUncorrectable => "detected-uncorrectable",
            EccOutcome::Silent => "silent",
        })
    }
}

/// A deterministic 64-bit mixer (SplitMix64), private so the memory crate
/// stays free of RNG dependencies while remaining reproducible.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A seeded ECC classifier: same seed, same sequence of outcomes.
#[derive(Clone, Copy, Debug)]
pub struct EccModel {
    scheme: EccScheme,
    rng: SplitMix64,
}

impl EccModel {
    /// A classifier for `scheme`, deterministic from `seed`.
    pub fn new(scheme: EccScheme, seed: u64) -> Self {
        Self {
            scheme,
            rng: SplitMix64(seed),
        }
    }

    /// The scheme in force.
    pub fn scheme(&self) -> EccScheme {
        self.scheme
    }

    /// Classifies one raw transient error.
    pub fn classify(&mut self) -> EccOutcome {
        let u = self.rng.unit();
        if u < self.scheme.correct_fraction() {
            EccOutcome::Corrected
        } else if u < self.scheme.correct_fraction() + self.scheme.detect_fraction() {
            EccOutcome::DetectedUncorrectable
        } else {
            EccOutcome::Silent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_fractions_partition_the_unit_interval() {
        for scheme in [EccScheme::Secded, EccScheme::Chipkill] {
            let total =
                scheme.correct_fraction() + scheme.detect_fraction() + scheme.silent_fraction();
            assert!((total - 1.0).abs() < 1e-12, "{scheme}: {total}");
            assert!(scheme.silent_fraction() > 0.0);
        }
        // Chipkill is the stronger code on every axis except latency.
        assert!(EccScheme::Chipkill.silent_fraction() < EccScheme::Secded.silent_fraction());
        assert!(EccScheme::Chipkill.detect_fraction() < EccScheme::Secded.detect_fraction());
        assert!(
            EccScheme::Chipkill.correction_penalty_cycles()
                > EccScheme::Secded.correction_penalty_cycles()
        );
    }

    #[test]
    fn classification_is_deterministic_and_calibrated() {
        let mut a = EccModel::new(EccScheme::Secded, 0xE0C);
        let mut b = EccModel::new(EccScheme::Secded, 0xE0C);
        let draws: Vec<EccOutcome> = (0..256).map(|_| a.classify()).collect();
        let again: Vec<EccOutcome> = (0..256).map(|_| b.classify()).collect();
        assert_eq!(draws, again);

        let mut model = EccModel::new(EccScheme::Secded, 7);
        let mut corrected = 0u64;
        let n = 100_000;
        for _ in 0..n {
            if model.classify() == EccOutcome::Corrected {
                corrected += 1;
            }
        }
        let fraction = corrected as f64 / f64::from(n);
        assert!(
            (fraction - EccScheme::Secded.correct_fraction()).abs() < 0.005,
            "corrected fraction {fraction}"
        );
    }

    #[test]
    fn chipkill_escapes_less_often_than_secded() {
        let n = 200_000;
        let escapes = |scheme: EccScheme| -> u64 {
            let mut model = EccModel::new(scheme, 11);
            (0..n)
                .filter(|_| model.classify() == EccOutcome::Silent)
                .count() as u64
        };
        assert!(escapes(EccScheme::Chipkill) < escapes(EccScheme::Secded));
    }
}

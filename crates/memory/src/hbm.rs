//! In-package 3D DRAM (HBM-successor) stack timing and energy model.
//!
//! Models one stack as a set of channels, each with banks and an open-row
//! policy: an access to the open row pays CAS only; a conflict pays
//! precharge + activate + CAS. Bank service times serialize per bank, and
//! data transfer serializes per channel — the two queueing effects that
//! bound a stack's sustainable bandwidth.

use ena_model::units::Picojoules;

/// DRAM timing parameters, in memory-controller cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramTiming {
    /// Activate-to-column delay (tRCD).
    pub rcd: u32,
    /// Column access latency (tCAS).
    pub cas: u32,
    /// Precharge latency (tRP).
    pub rp: u32,
    /// Data burst length on the channel (tBL).
    pub burst: u32,
}

impl Default for DramTiming {
    fn default() -> Self {
        // HBM-class timings at a 1 GHz controller clock.
        Self {
            rcd: 14,
            cas: 14,
            rp: 14,
            burst: 2,
        }
    }
}

/// DRAM access energy parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramEnergy {
    /// Row activation energy per activate.
    pub activate_pj: f64,
    /// Read data + I/O energy per bit.
    pub read_pj_per_bit: f64,
    /// Write data + I/O energy per bit.
    pub write_pj_per_bit: f64,
}

impl Default for DramEnergy {
    fn default() -> Self {
        // ~1.5 pJ/bit for 2022-era stacked DRAM I/O + array access.
        Self {
            activate_pj: 900.0,
            read_pj_per_bit: 1.5,
            write_pj_per_bit: 1.7,
        }
    }
}

/// Geometry of one stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HbmGeometry {
    /// Independent channels per stack.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
}

impl Default for HbmGeometry {
    fn default() -> Self {
        Self {
            channels: 16,
            banks_per_channel: 16,
            row_bytes: 1024,
        }
    }
}

/// Whether an access read or wrote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Read access.
    Read,
    /// Write access.
    Write,
}

/// Result of one serviced access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceResult {
    /// Cycle at which the data transfer completes.
    pub complete_cycle: u64,
    /// Whether the access hit the open row.
    pub row_hit: bool,
    /// Energy charged for the access.
    pub energy: Picojoules,
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// One in-package 3D DRAM stack.
#[derive(Clone, Debug)]
pub struct HbmStack {
    geometry: HbmGeometry,
    timing: DramTiming,
    energy: DramEnergy,
    banks: Vec<Bank>,
    channel_busy_until: Vec<u64>,
    stats: HbmStats,
}

/// Aggregate statistics for one stack.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HbmStats {
    /// Serviced accesses.
    pub accesses: u64,
    /// Open-row hits.
    pub row_hits: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Total access energy.
    pub energy: Picojoules,
}

impl HbmStats {
    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

impl HbmStack {
    /// Creates a stack with the given geometry/timing/energy.
    pub fn new(geometry: HbmGeometry, timing: DramTiming, energy: DramEnergy) -> Self {
        let bank_count = (geometry.channels * geometry.banks_per_channel) as usize;
        Self {
            geometry,
            timing,
            energy,
            banks: vec![Bank::default(); bank_count],
            channel_busy_until: vec![0; geometry.channels as usize],
            stats: HbmStats::default(),
        }
    }

    /// Creates a stack with default (HBM-class) parameters.
    pub fn with_defaults() -> Self {
        Self::new(
            HbmGeometry::default(),
            DramTiming::default(),
            DramEnergy::default(),
        )
    }

    /// Maps a stack-local byte address to (channel, bank, row).
    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let row = addr / self.geometry.row_bytes;
        let channel = (row % u64::from(self.geometry.channels)) as usize;
        let bank_in_channel = ((row / u64::from(self.geometry.channels))
            % u64::from(self.geometry.banks_per_channel)) as usize;
        let bank = channel * self.geometry.banks_per_channel as usize + bank_in_channel;
        (channel, bank, row)
    }

    /// Services `bytes` at stack-local address `addr`, arriving at
    /// `arrival_cycle`. Returns the completion cycle, row-hit status, and
    /// energy.
    pub fn service(
        &mut self,
        addr: u64,
        bytes: u32,
        dir: Direction,
        arrival_cycle: u64,
    ) -> ServiceResult {
        let (channel, bank_idx, row) = self.map(addr);
        let t = self.timing;
        let bank = &mut self.banks[bank_idx];

        let start = arrival_cycle.max(bank.busy_until);
        let (array_cycles, row_hit, activates) = match bank.open_row {
            Some(open) if open == row => (u64::from(t.cas), true, 0u32),
            Some(_) => (u64::from(t.rp + t.rcd + t.cas), false, 1),
            None => (u64::from(t.rcd + t.cas), false, 1),
        };
        bank.open_row = Some(row);

        let data_ready = start + array_cycles;
        // Data burst serializes on the channel.
        let burst_cycles = u64::from(t.burst) * (u64::from(bytes).div_ceil(32)).max(1);
        let channel_start = data_ready.max(self.channel_busy_until[channel]);
        let complete = channel_start + burst_cycles;
        self.channel_busy_until[channel] = complete;
        bank.busy_until = data_ready;

        let bits = f64::from(bytes) * 8.0;
        let per_bit = match dir {
            Direction::Read => self.energy.read_pj_per_bit,
            Direction::Write => self.energy.write_pj_per_bit,
        };
        let energy =
            Picojoules::new(bits * per_bit + f64::from(activates) * self.energy.activate_pj);

        self.stats.accesses += 1;
        self.stats.bytes += u64::from(bytes);
        if row_hit {
            self.stats.row_hits += 1;
        }
        self.stats.energy += energy;

        ServiceResult {
            complete_cycle: complete,
            row_hit,
            energy,
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> HbmStats {
        self.stats
    }

    /// Resets timing state and statistics.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = Bank::default();
        }
        self.channel_busy_until.fill(0);
        self.stats = HbmStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_same_row_accesses_hit_the_row_buffer() {
        let mut stack = HbmStack::with_defaults();
        let first = stack.service(0, 64, Direction::Read, 0);
        assert!(!first.row_hit);
        let second = stack.service(64, 64, Direction::Read, first.complete_cycle);
        assert!(second.row_hit);
        assert!(stack.stats().row_hit_rate() > 0.0);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut stack = HbmStack::with_defaults();
        let geo = HbmGeometry::default();
        // Two rows mapping to the same bank: rows differ by
        // channels * banks_per_channel row strides.
        let stride = geo.row_bytes * u64::from(geo.channels) * u64::from(geo.banks_per_channel);
        let a = stack.service(0, 64, Direction::Read, 0);
        let b = stack.service(stride, 64, Direction::Read, a.complete_cycle);
        assert!(!b.row_hit);
        let t_conflict = b.complete_cycle - a.complete_cycle;
        // Conflict latency exceeds a fresh activate (rp extra).
        let fresh = a.complete_cycle; // first access from idle
        assert!(t_conflict > fresh);
    }

    #[test]
    fn channel_serialization_bounds_bandwidth() {
        let mut stack = HbmStack::with_defaults();
        // Flood one channel: same row, back-to-back 64-byte reads.
        let mut complete = 0;
        for i in 0..1000u64 {
            let r = stack.service(i * 64 % 1024, 64, Direction::Read, 0);
            complete = complete.max(r.complete_cycle);
        }
        // 1000 bursts x 4 cycles each cannot finish faster than serialized.
        assert!(complete >= 1000 * 4);
    }

    #[test]
    fn writes_cost_more_energy_than_reads() {
        let mut a = HbmStack::with_defaults();
        let mut b = HbmStack::with_defaults();
        let r = a.service(0, 64, Direction::Read, 0);
        let w = b.service(0, 64, Direction::Write, 0);
        assert!(w.energy.value() > r.energy.value());
    }

    #[test]
    fn parallel_channels_overlap() {
        let mut stack = HbmStack::with_defaults();
        let geo = HbmGeometry::default();
        // Addresses in different channels (consecutive rows).
        let t1 = stack.service(0, 64, Direction::Read, 0).complete_cycle;
        let t2 = stack
            .service(geo.row_bytes, 64, Direction::Read, 0)
            .complete_cycle;
        // Both finish around the same time: no serialization across channels.
        assert!(t2 <= t1 + 1);
    }

    #[test]
    fn reset_clears_state() {
        let mut stack = HbmStack::with_defaults();
        stack.service(0, 64, Direction::Read, 0);
        stack.reset();
        assert_eq!(stack.stats(), HbmStats::default());
        // After reset the same access misses the row buffer again.
        assert!(!stack.service(0, 64, Direction::Read, 0).row_hit);
    }
}

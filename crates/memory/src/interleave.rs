//! Physical address mapping across the multi-level memory.
//!
//! The ENA's physical address space is interleaved across memory resources
//! with software-controlled granularity (Section II-B.3). The first
//! region maps to the in-package stacks (interleaved stack-by-stack at
//! `granularity` bytes); addresses beyond in-package capacity map to the
//! external network.

/// Where an address physically lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// In-package 3D DRAM: stack index plus stack-local offset.
    InPackage {
        /// Target stack.
        stack: u32,
        /// Byte offset within the stack.
        offset: u64,
    },
    /// External memory network: network-local byte offset.
    External {
        /// Byte offset within the external address region.
        offset: u64,
    },
}

impl Tier {
    /// True for in-package placements.
    pub fn is_in_package(&self) -> bool {
        matches!(self, Tier::InPackage { .. })
    }
}

/// The node's physical address map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressMap {
    /// Number of in-package stacks.
    pub stacks: u32,
    /// Capacity of each stack in bytes.
    pub stack_capacity: u64,
    /// Interleave granularity in bytes (power of two).
    pub granularity: u64,
}

impl AddressMap {
    /// Creates a map.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is not a power of two, or any parameter is
    /// zero, or `stack_capacity` is not a multiple of `granularity`.
    pub fn new(stacks: u32, stack_capacity: u64, granularity: u64) -> Self {
        assert!(
            granularity.is_power_of_two(),
            "granularity must be a power of two"
        );
        assert!(stacks > 0 && stack_capacity > 0, "empty memory");
        assert!(
            stack_capacity.is_multiple_of(granularity),
            "stack capacity must be granule-aligned"
        );
        Self {
            stacks,
            stack_capacity,
            granularity,
        }
    }

    /// Total in-package capacity in bytes.
    pub fn in_package_bytes(&self) -> u64 {
        u64::from(self.stacks) * self.stack_capacity
    }

    /// Maps a physical byte address to its tier.
    pub fn locate(&self, addr: u64) -> Tier {
        let in_pkg = self.in_package_bytes();
        if addr < in_pkg {
            let granule = addr / self.granularity;
            let stack = (granule % u64::from(self.stacks)) as u32;
            let stack_granule = granule / u64::from(self.stacks);
            Tier::InPackage {
                stack,
                offset: stack_granule * self.granularity + addr % self.granularity,
            }
        } else {
            Tier::External {
                offset: addr - in_pkg,
            }
        }
    }

    /// Folds an arbitrary logical address into the in-package region and
    /// maps it: `(stack, offset)` for `addr % in_package_bytes()`.
    ///
    /// Total by construction — callers that already decided an access is
    /// serviced in-package get a placement without re-matching [`Tier`].
    pub fn fold_in_package(&self, addr: u64) -> (u32, u64) {
        let folded = addr % self.in_package_bytes();
        let granule = folded / self.granularity;
        let stack = (granule % u64::from(self.stacks)) as u32;
        let stack_granule = granule / u64::from(self.stacks);
        (
            stack,
            stack_granule * self.granularity + folded % self.granularity,
        )
    }

    /// Inverse of [`Self::locate`] for in-package placements.
    pub fn in_package_address(&self, stack: u32, offset: u64) -> u64 {
        let stack_granule = offset / self.granularity;
        let granule = stack_granule * u64::from(self.stacks) + u64::from(stack);
        granule * self.granularity + offset % self.granularity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        // 8 stacks x 32 GB, 4 KiB granules.
        AddressMap::new(8, 32 << 30, 4096)
    }

    #[test]
    fn low_addresses_interleave_across_stacks() {
        let m = map();
        let mut seen = std::collections::BTreeSet::new();
        for g in 0..8u64 {
            match m.locate(g * 4096) {
                Tier::InPackage { stack, .. } => {
                    seen.insert(stack);
                }
                Tier::External { .. } => panic!("low address mapped external"),
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn high_addresses_map_external() {
        let m = map();
        let boundary = m.in_package_bytes();
        assert!(matches!(m.locate(boundary), Tier::External { offset: 0 }));
        assert!(m.locate(boundary - 1).is_in_package());
    }

    #[test]
    fn locate_round_trips() {
        let m = map();
        for addr in [0u64, 4095, 4096, 123_456_789, (200u64 << 30) + 77] {
            if let Tier::InPackage { stack, offset } = m.locate(addr) {
                assert_eq!(m.in_package_address(stack, offset), addr, "addr {addr:#x}");
            }
        }
    }

    #[test]
    fn stack_offsets_stay_within_capacity() {
        let m = map();
        let last = m.in_package_bytes() - 1;
        match m.locate(last) {
            Tier::InPackage { offset, .. } => assert!(offset < m.stack_capacity),
            Tier::External { .. } => panic!("last in-package byte mapped external"),
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_granularity_is_rejected() {
        let _ = AddressMap::new(8, 32 << 30, 3000);
    }
}

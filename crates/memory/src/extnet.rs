//! External memory network (paper Section II-B.2).
//!
//! The EHP exposes eight external-memory interfaces, each driving a chain
//! of memory modules over point-to-point SerDes links (Hybrid-Memory-Cube
//! style). Requests hop down the chain to their module; deeper modules pay
//! more link traversals. Optional cross-links at the chain ends provide
//! redundancy: if a link fails, traffic re-routes through the neighboring
//! chain (paper: "allow access to memory devices in the event of link
//! failures").

use ena_model::config::{ExternalMemoryConfig, ExternalModuleKind};
use ena_model::units::Picojoules;

use crate::hbm::Direction;

/// Per-hop SerDes link latency in controller cycles (serialization +
/// flight).
const LINK_LATENCY_CYCLES: u64 = 40;

/// Access latency inside a module, by technology.
const DRAM_MODULE_CYCLES: u64 = 60;
const NVM_READ_CYCLES: u64 = 180;
const NVM_WRITE_CYCLES: u64 = 600;

/// Energy coefficients for the external network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExternalEnergy {
    /// SerDes energy per bit per hop.
    pub serdes_pj_per_bit: f64,
    /// DRAM module access energy per bit.
    pub dram_pj_per_bit: f64,
    /// NVM read energy per bit.
    pub nvm_read_pj_per_bit: f64,
    /// NVM write energy per bit.
    pub nvm_write_pj_per_bit: f64,
}

impl Default for ExternalEnergy {
    fn default() -> Self {
        Self {
            serdes_pj_per_bit: 2.0,
            dram_pj_per_bit: 10.0,
            nvm_read_pj_per_bit: 45.0,
            nvm_write_pj_per_bit: 150.0,
        }
    }
}

/// Identifies one module in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModuleId {
    /// Interface (chain) index.
    pub interface: u32,
    /// Position along the chain, zero-based from the package.
    pub depth: u32,
}

/// Result of one serviced external access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExternalAccess {
    /// Total round-trip latency in cycles.
    pub latency_cycles: u64,
    /// The module that serviced the request.
    pub module: ModuleId,
    /// Module technology.
    pub kind: ExternalModuleKind,
    /// SerDes hops traversed (one way).
    pub hops: u32,
    /// Energy charged (links + module access).
    pub energy: Picojoules,
}

/// Error servicing an external access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExternalError {
    /// The target module is unreachable because of failed links and no
    /// redundant path.
    Unreachable(ModuleId),
    /// The address exceeds the network's capacity.
    OutOfRange(u64),
}

impl core::fmt::Display for ExternalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExternalError::Unreachable(m) => write!(
                f,
                "module (interface {}, depth {}) unreachable due to link failures",
                m.interface, m.depth
            ),
            ExternalError::OutOfRange(addr) => {
                write!(f, "address {addr:#x} exceeds external memory capacity")
            }
        }
    }
}

impl std::error::Error for ExternalError {}

/// The external memory network simulator.
#[derive(Clone, Debug)]
pub struct ExternalNetwork {
    config: ExternalMemoryConfig,
    energy: ExternalEnergy,
    /// `failed[interface][depth]` marks the link *into* that depth as down.
    failed: Vec<Vec<bool>>,
    /// Whether end-around cross-links between adjacent chains exist.
    redundancy: bool,
    stats: ExternalStats,
}

/// Aggregate statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExternalStats {
    /// Serviced accesses.
    pub accesses: u64,
    /// Accesses served by NVM modules.
    pub nvm_accesses: u64,
    /// Writes absorbed by NVM modules (wear-relevant).
    pub nvm_writes: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total energy.
    pub energy: Picojoules,
    /// Accesses that used a redundant path.
    pub rerouted: u64,
}

impl ExternalNetwork {
    /// Builds the network for `config`, without redundancy links.
    pub fn new(config: ExternalMemoryConfig) -> Self {
        let failed = vec![vec![false; config.modules_per_chain()]; config.interfaces as usize];
        Self {
            config,
            energy: ExternalEnergy::default(),
            failed,
            redundancy: false,
            stats: ExternalStats::default(),
        }
    }

    /// Enables end-around cross-links between adjacent chains.
    pub fn with_redundancy(mut self) -> Self {
        self.redundancy = true;
        self
    }

    /// Replaces the energy coefficients.
    pub fn with_energy(mut self, energy: ExternalEnergy) -> Self {
        self.energy = energy;
        self
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &ExternalMemoryConfig {
        &self.config
    }

    /// Marks the link feeding `module` as failed.
    ///
    /// # Panics
    ///
    /// Panics if the module does not exist.
    pub fn fail_link(&mut self, module: ModuleId) {
        self.failed[module.interface as usize][module.depth as usize] = true;
    }

    /// Maps an external byte address to its module: addresses interleave
    /// across interfaces at page granularity, then fill chains depth-first
    /// by capacity.
    pub fn locate(&self, addr: u64) -> Result<(ModuleId, ExternalModuleKind), ExternalError> {
        const PAGE: u64 = 4096;
        let interfaces = u64::from(self.config.interfaces);
        let page = addr / PAGE;
        let interface = (page % interfaces) as u32;
        // Offset within this chain.
        let chain_offset = (page / interfaces) * PAGE + (addr % PAGE);
        let mut remaining = chain_offset;
        for (depth, &kind) in self.config.chain.iter().enumerate() {
            let cap_bytes = (self.config.module_capacity(kind).value() * 1e9) as u64;
            if remaining < cap_bytes {
                return Ok((
                    ModuleId {
                        interface,
                        depth: depth as u32,
                    },
                    kind,
                ));
            }
            remaining -= cap_bytes;
        }
        Err(ExternalError::OutOfRange(addr))
    }

    /// True if every link from the package down to `module` is healthy.
    fn path_healthy(&self, module: ModuleId) -> bool {
        (0..=module.depth as usize).all(|d| !self.failed[module.interface as usize][d])
    }

    /// Services `bytes` at external address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`ExternalError::OutOfRange`] for addresses beyond capacity,
    /// or [`ExternalError::Unreachable`] when link failures cut off the
    /// module and redundancy is disabled.
    pub fn service(
        &mut self,
        addr: u64,
        bytes: u32,
        dir: Direction,
    ) -> Result<ExternalAccess, ExternalError> {
        let (module, kind) = self.locate(addr)?;
        let direct_hops = module.depth + 1;

        let (hops, rerouted) = if self.path_healthy(module) {
            (direct_hops, false)
        } else if self.redundancy {
            // End-around: down the adjacent chain to its tail, across the
            // cross-link, back up to the target module.
            let chain_len = self.config.modules_per_chain() as u32;
            let detour = chain_len + 1 + (chain_len - module.depth);
            (detour, true)
        } else {
            return Err(ExternalError::Unreachable(module));
        };

        let module_cycles = match (kind, dir) {
            (ExternalModuleKind::Dram, _) => DRAM_MODULE_CYCLES,
            (ExternalModuleKind::Nvm, Direction::Read) => NVM_READ_CYCLES,
            (ExternalModuleKind::Nvm, Direction::Write) => NVM_WRITE_CYCLES,
        };
        let latency = 2 * u64::from(hops) * LINK_LATENCY_CYCLES + module_cycles;

        let bits = f64::from(bytes) * 8.0;
        let per_bit_module = match (kind, dir) {
            (ExternalModuleKind::Dram, _) => self.energy.dram_pj_per_bit,
            (ExternalModuleKind::Nvm, Direction::Read) => self.energy.nvm_read_pj_per_bit,
            (ExternalModuleKind::Nvm, Direction::Write) => self.energy.nvm_write_pj_per_bit,
        };
        let energy = Picojoules::new(
            bits * (f64::from(hops) * self.energy.serdes_pj_per_bit + per_bit_module),
        );

        self.stats.accesses += 1;
        self.stats.bytes += u64::from(bytes);
        if kind == ExternalModuleKind::Nvm {
            self.stats.nvm_accesses += 1;
            if dir == Direction::Write {
                self.stats.nvm_writes += 1;
            }
        }
        if rerouted {
            self.stats.rerouted += 1;
        }
        self.stats.energy += energy;

        Ok(ExternalAccess {
            latency_cycles: latency,
            module,
            kind,
            hops,
            energy,
        })
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ExternalStats {
        self.stats
    }

    /// Estimated NVM lifetime in hours under perfect wear-leveling, given
    /// a sustained write rate (paper Section II-B.2: NVM "may suffer from
    /// write-endurance issues that could impact the system's MTTF").
    ///
    /// `cell_endurance` is writes per line before wear-out (~1e8 for
    /// PCM-class memory). Returns `f64::INFINITY` when the network holds
    /// no NVM or sees no writes.
    pub fn nvm_lifetime_hours(&self, write_gbps: f64, cell_endurance: f64) -> f64 {
        let nvm_capacity_gb: f64 = self
            .config
            .chain
            .iter()
            .filter(|&&k| k == ExternalModuleKind::Nvm)
            .map(|&k| self.config.module_capacity(k).value())
            .sum::<f64>()
            * f64::from(self.config.interfaces);
        if nvm_capacity_gb == 0.0 || write_gbps <= 0.0 {
            return f64::INFINITY;
        }
        // Every line can absorb `cell_endurance` writes; the write stream
        // consumes them at `write_gbps`.
        let total_line_writes = nvm_capacity_gb * 1e9 / 64.0 * cell_endurance;
        let writes_per_hour = write_gbps * 1e9 / 64.0 * 3600.0;
        total_line_writes / writes_per_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_model::units::Gigabytes;

    fn dram_net() -> ExternalNetwork {
        ExternalNetwork::new(ExternalMemoryConfig::dram_only(4, Gigabytes::new(768.0)))
    }

    #[test]
    fn addresses_interleave_across_interfaces() {
        let net = dram_net();
        let mut seen = std::collections::BTreeSet::new();
        for page in 0..8u64 {
            let (m, _) = net.locate(page * 4096).unwrap();
            seen.insert(m.interface);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn deeper_modules_pay_more_hops() {
        let mut net = dram_net();
        let cap_per_module = 24u64 * 1_000_000_000; // 768 GB / 32 modules
        let shallow = net.service(0, 64, Direction::Read).unwrap();
        // An address deep enough to sit in the last module of chain 0.
        let deep_addr = 8 * cap_per_module * 3; // depth-3 region, interface 0
        let deep = net.service(deep_addr, 64, Direction::Read).unwrap();
        assert_eq!(shallow.module.depth, 0);
        assert_eq!(deep.module.depth, 3);
        assert!(deep.latency_cycles > shallow.latency_cycles);
        assert!(deep.energy.value() > shallow.energy.value());
    }

    #[test]
    fn nvm_writes_are_slow_and_expensive() {
        let cfg = ExternalMemoryConfig::hybrid(4, Gigabytes::new(768.0));
        let mut net = ExternalNetwork::new(cfg);
        // The NVM region starts past the two 24 GB DRAM modules on the
        // chain: pick an address 50 GB down chain 0.
        let chain_page = 50_000_000_000u64 / 4096;
        let addr = chain_page * 4096 * 8; // interface 0, 50 GB deep
        let (_, kind) = net.locate(addr).unwrap();
        assert_eq!(kind, ExternalModuleKind::Nvm);
        let read = net.service(addr, 64, Direction::Read).unwrap();
        let write = net.service(addr, 64, Direction::Write).unwrap();
        let dram = net.service(0, 64, Direction::Read).unwrap();
        // NVM array access is slower than DRAM even before its extra hops.
        let read_module_cycles = read.latency_cycles - 2 * u64::from(read.hops) * 40;
        let dram_module_cycles = dram.latency_cycles - 2 * u64::from(dram.hops) * 40;
        assert!(read_module_cycles > dram_module_cycles);
        assert!(write.latency_cycles > read.latency_cycles);
        assert!(write.energy.value() > read.energy.value());
        assert_eq!(net.stats().nvm_accesses, 2);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut net = dram_net();
        let err = net
            .service(900_000_000_000_000, 64, Direction::Read)
            .unwrap_err();
        assert!(matches!(err, ExternalError::OutOfRange(_)));
    }

    #[test]
    fn link_failure_cuts_off_downstream_modules() {
        let mut net = dram_net();
        net.fail_link(ModuleId {
            interface: 0,
            depth: 1,
        });
        // Depth 0 on the failed chain still works.
        assert!(net.service(0, 64, Direction::Read).is_ok());
        // Depth >= 1 on interface 0 is unreachable.
        let cap_per_module = 24u64 * 1_000_000_000;
        let deep_addr = 8 * cap_per_module; // depth 1 region, interface 0
        let err = net.service(deep_addr, 64, Direction::Read).unwrap_err();
        assert!(matches!(err, ExternalError::Unreachable(_)));
        // Other chains are unaffected.
        assert!(net.service(4096, 64, Direction::Read).is_ok());
    }

    #[test]
    fn redundancy_reroutes_around_failures_at_higher_cost() {
        let mut net = dram_net().with_redundancy();
        net.fail_link(ModuleId {
            interface: 0,
            depth: 0,
        });
        let access = net.service(0, 64, Direction::Read).unwrap();
        assert!(access.hops > 1);
        assert_eq!(net.stats().rerouted, 1);
        // Rerouted access is slower than the healthy direct path would be.
        let healthy = dram_net().service(0, 64, Direction::Read).unwrap();
        assert!(access.latency_cycles > healthy.latency_cycles);
    }

    #[test]
    fn nvm_wear_tracks_write_traffic_and_bounds_lifetime() {
        let cfg = ExternalMemoryConfig::hybrid(4, Gigabytes::new(768.0));
        let mut net = ExternalNetwork::new(cfg);
        let nvm_addr = (50_000_000_000u64 / 4096) * 4096 * 8;
        net.service(nvm_addr, 64, Direction::Write).unwrap();
        net.service(nvm_addr, 64, Direction::Read).unwrap();
        assert_eq!(net.stats().nvm_writes, 1);

        // 100 GB/s of sustained writes into 384 GB of 1e8-endurance NVM:
        // lifetime in the multi-year range, but finite.
        let hours = net.nvm_lifetime_hours(100.0, 1e8);
        assert!(hours.is_finite());
        let years = hours / (24.0 * 365.0);
        assert!((1.0..100_000.0).contains(&years), "lifetime {years} years");
        // More write pressure, shorter life.
        assert!(net.nvm_lifetime_hours(200.0, 1e8) < hours);
        // DRAM-only networks never wear out.
        let dram = ExternalNetwork::new(ExternalMemoryConfig::dram_only(4, Gigabytes::new(768.0)));
        assert!(dram.nvm_lifetime_hours(100.0, 1e8).is_infinite());
    }

    #[test]
    fn locate_is_stable_and_total_over_capacity() {
        let net = dram_net();
        let total_bytes = (net.config().total_capacity().value() * 1e9) as u64;
        for i in 0..1000u64 {
            let addr = i * (total_bytes / 1000);
            let (m, _) = net.locate(addr).unwrap();
            assert!(m.interface < 8);
            assert!((m.depth as usize) < net.config().modules_per_chain());
        }
    }
}

//! Property-based tests for the multi-level memory system.

use ena_memory::extnet::ExternalNetwork;
use ena_memory::hbm::{Direction, HbmStack};
use ena_memory::interleave::{AddressMap, Tier};
use ena_memory::policy::{run_policy, PlacementPolicy, SoftwareManaged, StaticPlacement};
use ena_model::config::ExternalMemoryConfig;
use ena_model::units::Gigabytes;
use ena_testkit::prelude::*;

proptest! {
    #[test]
    fn interleave_round_trips(addr in 0u64..(256u64 << 30)) {
        let map = AddressMap::new(8, 32 << 30, 4096);
        match map.locate(addr) {
            Tier::InPackage { stack, offset } => {
                prop_assert!(stack < 8);
                prop_assert!(offset < 32 << 30);
                prop_assert_eq!(map.in_package_address(stack, offset), addr);
            }
            Tier::External { .. } => prop_assert!(addr >= map.in_package_bytes()),
        }
    }

    #[test]
    fn interleave_is_injective(a in 0u64..(256u64 << 30), b in 0u64..(256u64 << 30)) {
        let map = AddressMap::new(8, 32 << 30, 4096);
        if a != b {
            prop_assert_ne!(map.locate(a), map.locate(b));
        }
    }

    #[test]
    fn static_policy_is_consistent_per_page(addr in 0u64..1u64 << 40, f in 0.0f64..=1.0) {
        let mut p = StaticPlacement::new(f);
        let first = p.access(addr, false);
        let again = p.access(addr, true);
        prop_assert_eq!(first, again);
    }

    #[test]
    fn policy_stats_are_conserved(
        pages in ena_testkit::collection::vec(0u64..10_000, 1..500),
        epoch in 1u64..200,
    ) {
        let mut policy = SoftwareManaged::new(64 * 4096);
        let accesses: Vec<(u64, bool)> =
            pages.iter().map(|&p| (p * 4096, p % 2 == 0)).collect();
        let n = accesses.len() as u64;
        let stats = run_policy(&mut policy, accesses, epoch);
        prop_assert_eq!(stats.accesses, n);
        prop_assert!(stats.in_package <= stats.accesses);
        let f = stats.in_package_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((f + stats.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn external_locate_is_total_over_capacity(frac in 0.0f64..1.0) {
        let net = ExternalNetwork::new(ExternalMemoryConfig::dram_only(4, Gigabytes::new(768.0)));
        let cap = (net.config().total_capacity().value() * 1e9) as u64;
        let addr = (frac * (cap - 1) as f64) as u64;
        let (module, _) = net.locate(addr).expect("within capacity");
        prop_assert!(module.interface < 8);
        prop_assert!((module.depth as usize) < net.config().modules_per_chain());
    }

    #[test]
    fn hbm_latency_and_energy_are_positive(
        addrs in ena_testkit::collection::vec(0u64..(1u64 << 26), 1..200),
    ) {
        let mut stack = HbmStack::with_defaults();
        let mut clock = 0u64;
        for addr in addrs {
            clock += 1;
            let r = stack.service(addr, 64, Direction::Read, clock);
            prop_assert!(r.complete_cycle > clock);
            prop_assert!(r.energy.value() > 0.0);
        }
        let s = stack.stats();
        prop_assert!(s.row_hit_rate() >= 0.0 && s.row_hit_rate() <= 1.0);
        prop_assert_eq!(s.bytes, s.accesses * 64);
    }
}

//! Compact thermal modeling for the ENA toolkit (paper Section V-D).
//!
//! Vertical integration puts the 3D DRAM directly above the hottest
//! silicon in the package, and DRAM must stay below 85 C. This crate
//! provides a HotSpot-methodology steady-state solver and the assembled
//! EHP chiplet stack model:
//!
//! - [`solver`] — the grid RC network and SOR solver
//!   ([`ThermalGrid`](solver::ThermalGrid)).
//! - [`ehp`] — the GPU-chiplet + DRAM-stack model
//!   ([`ChipletThermalModel`](ehp::ChipletThermalModel)), peak-DRAM
//!   queries, and Fig. 11-style heat-map rendering.
//!
//! # Example
//!
//! ```
//! use ena_thermal::ehp::{ChipletPower, ChipletThermalModel};
//!
//! # fn main() -> Result<(), ena_thermal::solver::TemperatureError> {
//! let model = ChipletThermalModel::new(ChipletPower {
//!     cu_dynamic_w: 7.0,
//!     cu_static_w: 2.0,
//!     dram_dynamic_w: 2.5,
//!     dram_static_w: 0.5,
//!     interposer_w: 1.5,
//! });
//! let t = model.solve()?;
//! assert!(t.dram_within_limit());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ehp;
pub mod solver;

pub use ehp::{ChipletPower, ChipletThermalModel, DramTempEstimator, DRAM_TEMP_LIMIT};
pub use solver::{LayerSpec, TemperatureError, ThermalGrid};

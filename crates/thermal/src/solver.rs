//! Steady-state compact thermal solver (HotSpot methodology \[47\]).
//!
//! The die stack is discretized into a 3D grid of thermal cells joined by
//! lateral (within-layer) and vertical (between-layer) conduction
//! resistances; the top layer couples to ambient through the heat-sink
//! resistance. Steady-state temperatures solve the linear system
//! `sum_j (T_j - T_i)/R_ij + P_i = 0`, which we iterate with
//! Gauss-Seidel + successive over-relaxation.

use ena_model::units::Celsius;

/// Material/geometry description of one layer in the stack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerSpec {
    /// Layer name (for reporting).
    pub name: &'static str,
    /// Thickness in millimeters.
    pub thickness_mm: f64,
    /// Thermal conductivity in W/(m K).
    pub conductivity: f64,
}

impl LayerSpec {
    /// Bulk silicon.
    pub fn silicon(name: &'static str, thickness_mm: f64) -> Self {
        Self {
            name,
            thickness_mm,
            conductivity: 120.0,
        }
    }

    /// Thermal interface material.
    pub fn tim(name: &'static str, thickness_mm: f64) -> Self {
        Self {
            name,
            thickness_mm,
            conductivity: 5.0,
        }
    }
}

/// A 3D thermal grid over a uniform `nx x ny` footprint.
#[derive(Clone, Debug)]
pub struct ThermalGrid {
    layers: Vec<LayerSpec>,
    nx: usize,
    ny: usize,
    /// Footprint edge lengths in millimeters.
    width_mm: f64,
    height_mm: f64,
    /// Power injected per cell, `power[layer][y * nx + x]`, in watts.
    power: Vec<Vec<f64>>,
    /// Total sink-to-ambient resistance in K/W (spread over top cells).
    pub sink_resistance: f64,
    /// Ambient temperature.
    pub ambient: Celsius,
}

/// Error from a thermal solve.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum TemperatureError {
    /// The iteration hit the cap before reaching the tolerance.
    DidNotConverge {
        /// Final maximum per-cell update, in degrees.
        residual: f64,
    },
}

impl core::fmt::Display for TemperatureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TemperatureError::DidNotConverge { residual } => {
                write!(
                    f,
                    "thermal solve did not converge (residual {residual:.2e} degC)"
                )
            }
        }
    }
}

impl std::error::Error for TemperatureError {}

/// Solved steady-state temperatures.
#[derive(Clone, Debug)]
pub struct Temperatures {
    nx: usize,
    /// `t[layer][y * nx + x]` in degrees Celsius.
    t: Vec<Vec<f64>>,
    /// Gauss-Seidel iterations used.
    pub iterations: u32,
    /// Final maximum per-cell update, in degrees.
    pub residual: f64,
}

impl Temperatures {
    /// Temperature of one cell.
    pub fn at(&self, layer: usize, x: usize, y: usize) -> Celsius {
        Celsius::new(self.t[layer][y * self.nx + x])
    }

    /// Peak temperature within one layer.
    pub fn layer_peak(&self, layer: usize) -> Celsius {
        Celsius::new(self.t[layer].iter().copied().fold(f64::MIN, f64::max))
    }

    /// Mean temperature within one layer.
    pub fn layer_mean(&self, layer: usize) -> Celsius {
        Celsius::new(self.t[layer].iter().sum::<f64>() / self.t[layer].len() as f64)
    }

    /// The full cell map of one layer, row-major.
    pub fn layer_map(&self, layer: usize) -> &[f64] {
        &self.t[layer]
    }
}

impl ThermalGrid {
    /// Creates a grid with the given stack (bottom layer first; the last
    /// layer faces the heat sink) over a `width_mm x height_mm` footprint.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or the grid dimensions are zero.
    pub fn new(
        layers: Vec<LayerSpec>,
        nx: usize,
        ny: usize,
        width_mm: f64,
        height_mm: f64,
    ) -> Self {
        assert!(!layers.is_empty(), "stack needs at least one layer");
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        let cells = nx * ny;
        let power = vec![vec![0.0; cells]; layers.len()];
        Self {
            layers,
            nx,
            ny,
            width_mm,
            height_mm,
            power,
            sink_resistance: 0.25,
            ambient: Celsius::new(50.0),
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Adds `watts` uniformly over a rectangular region of `layer`, given
    /// in fractional footprint coordinates (`0.0..1.0`).
    pub fn add_power_rect(&mut self, layer: usize, x0: f64, y0: f64, x1: f64, y1: f64, watts: f64) {
        let cx0 = ((x0 * self.nx as f64) as usize).min(self.nx - 1);
        let cx1 = ((x1 * self.nx as f64).ceil() as usize).clamp(cx0 + 1, self.nx);
        let cy0 = ((y0 * self.ny as f64) as usize).min(self.ny - 1);
        let cy1 = ((y1 * self.ny as f64).ceil() as usize).clamp(cy0 + 1, self.ny);
        let cells = ((cx1 - cx0) * (cy1 - cy0)) as f64;
        for y in cy0..cy1 {
            for x in cx0..cx1 {
                self.power[layer][y * self.nx + x] += watts / cells;
            }
        }
    }

    /// Total injected power in watts.
    pub fn total_power(&self) -> f64 {
        self.power.iter().flatten().sum()
    }

    /// Solves for steady-state temperatures, failing if the iteration did
    /// not reach `tolerance` within `max_iterations`.
    ///
    /// # Errors
    ///
    /// Returns [`TemperatureError::DidNotConverge`] when the residual stays
    /// above the tolerance.
    pub fn solve_checked(
        &self,
        tolerance: f64,
        max_iterations: u32,
    ) -> Result<Temperatures, TemperatureError> {
        let t = self.solve(tolerance, max_iterations);
        if t.residual > tolerance {
            Err(TemperatureError::DidNotConverge {
                residual: t.residual,
            })
        } else {
            Ok(t)
        }
    }

    /// Solves for steady-state temperatures.
    ///
    /// Iterates SOR until the maximum update falls below `tolerance`
    /// degrees or `max_iterations` is reached.
    pub fn solve(&self, tolerance: f64, max_iterations: u32) -> Temperatures {
        let (nx, ny) = (self.nx, self.ny);
        let cells = nx * ny;
        let nl = self.layers.len();
        let dx = self.width_mm / nx as f64 * 1e-3; // meters
        let dy = self.height_mm / ny as f64 * 1e-3;

        // Conductances (1/R) in W/K.
        // Lateral within layer l: k * (t * dy) / dx  (x direction).
        let mut gx = vec![0.0; nl];
        let mut gy = vec![0.0; nl];
        for (l, spec) in self.layers.iter().enumerate() {
            let t = spec.thickness_mm * 1e-3;
            gx[l] = spec.conductivity * t * dy / dx;
            gy[l] = spec.conductivity * t * dx / dy;
        }
        // Vertical between layer l and l+1 (series of half-thicknesses).
        let area = dx * dy;
        let gz: Vec<f64> = self
            .layers
            .iter()
            .zip(self.layers.iter().skip(1))
            .map(|(lo, hi)| {
                let r = (lo.thickness_mm * 1e-3 / 2.0) / (lo.conductivity * area)
                    + (hi.thickness_mm * 1e-3 / 2.0) / (hi.conductivity * area);
                1.0 / r
            })
            .collect();
        // Sink conductance per top cell.
        let g_sink = 1.0 / (self.sink_resistance * cells as f64);

        let ambient = self.ambient.value();
        let mut t = vec![vec![ambient; cells]; nl];
        let omega = 1.5; // SOR factor
        let mut iterations = 0;
        let mut residual = f64::MAX;

        for iter in 0..max_iterations {
            let mut max_delta = 0.0f64;
            for l in 0..nl {
                for y in 0..ny {
                    for x in 0..nx {
                        let i = y * nx + x;
                        let mut num = self.power[l][i];
                        let mut den = 0.0;
                        if x > 0 {
                            num += gx[l] * t[l][i - 1];
                            den += gx[l];
                        }
                        if x + 1 < nx {
                            num += gx[l] * t[l][i + 1];
                            den += gx[l];
                        }
                        if y > 0 {
                            num += gy[l] * t[l][i - nx];
                            den += gy[l];
                        }
                        if y + 1 < ny {
                            num += gy[l] * t[l][i + nx];
                            den += gy[l];
                        }
                        if l > 0 {
                            num += gz[l - 1] * t[l - 1][i];
                            den += gz[l - 1];
                        }
                        if l + 1 < nl {
                            num += gz[l] * t[l + 1][i];
                            den += gz[l];
                        } else {
                            num += g_sink * ambient;
                            den += g_sink;
                        }
                        let fresh = num / den;
                        let updated = t[l][i] + omega * (fresh - t[l][i]);
                        max_delta = max_delta.max((updated - t[l][i]).abs());
                        t[l][i] = updated;
                    }
                }
            }
            iterations = iter + 1;
            residual = max_delta;
            if max_delta < tolerance {
                break;
            }
        }

        Temperatures {
            nx,
            t,
            iterations,
            residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer_grid() -> ThermalGrid {
        ThermalGrid::new(
            vec![
                LayerSpec::silicon("die", 0.2),
                LayerSpec::silicon("spreader", 1.0),
            ],
            8,
            8,
            10.0,
            10.0,
        )
    }

    #[test]
    fn zero_power_settles_at_ambient() {
        let g = two_layer_grid();
        let t = g.solve(1e-6, 10_000);
        for l in 0..2 {
            assert!((t.layer_peak(l).value() - 50.0).abs() < 1e-3);
        }
    }

    #[test]
    fn steady_state_rise_matches_sink_resistance() {
        // All heat must flow through the sink: mean top-layer rise over
        // ambient ~ P x R_sink.
        let mut g = two_layer_grid();
        g.sink_resistance = 0.5;
        g.add_power_rect(0, 0.0, 0.0, 1.0, 1.0, 20.0);
        let t = g.solve(1e-7, 50_000);
        let rise = t.layer_mean(1).value() - 50.0;
        assert!((rise - 10.0).abs() < 0.5, "rise = {rise}");
    }

    #[test]
    fn hotspots_form_over_power_sources() {
        let mut g = two_layer_grid();
        g.add_power_rect(0, 0.0, 0.0, 0.25, 0.25, 10.0);
        let t = g.solve(1e-6, 50_000);
        // The heated corner is hotter than the far corner.
        assert!(t.at(0, 0, 0).value() > t.at(0, 7, 7).value() + 1.0);
        // And the peak sits in the heated layer, not above.
        assert!(t.layer_peak(0).value() >= t.layer_peak(1).value());
    }

    #[test]
    fn more_power_means_monotonically_higher_peak() {
        let mut last = 0.0;
        for p in [5.0, 10.0, 20.0] {
            let mut g = two_layer_grid();
            g.add_power_rect(0, 0.2, 0.2, 0.8, 0.8, p);
            let peak = g.solve(1e-6, 50_000).layer_peak(0).value();
            assert!(peak > last);
            last = peak;
        }
    }

    #[test]
    fn energy_is_conserved_through_the_sink() {
        // Total heat flow into ambient equals injected power.
        let mut g = two_layer_grid();
        g.sink_resistance = 0.25;
        g.add_power_rect(0, 0.0, 0.0, 1.0, 1.0, 16.0);
        let t = g.solve(1e-8, 100_000);
        let cells = 64.0;
        let g_sink = 1.0 / (0.25 * cells);
        let outflow: f64 = (0..8)
            .flat_map(|y| (0..8).map(move |x| (x, y)))
            .map(|(x, y)| g_sink * (t.at(1, x, y).value() - 50.0))
            .sum();
        assert!((outflow - 16.0).abs() < 0.05, "outflow = {outflow}");
    }

    #[test]
    fn tim_layers_insulate() {
        // Same stack but with a TIM between die and spreader: die runs
        // hotter for the same power.
        let mut plain = two_layer_grid();
        plain.add_power_rect(0, 0.3, 0.3, 0.7, 0.7, 15.0);
        let mut with_tim = ThermalGrid::new(
            vec![
                LayerSpec::silicon("die", 0.2),
                LayerSpec::tim("tim", 0.1),
                LayerSpec::silicon("spreader", 1.0),
            ],
            8,
            8,
            10.0,
            10.0,
        );
        with_tim.add_power_rect(0, 0.3, 0.3, 0.7, 0.7, 15.0);
        let a = plain.solve(1e-6, 50_000).layer_peak(0).value();
        let b = with_tim.solve(1e-6, 50_000).layer_peak(0).value();
        assert!(b > a, "tim peak {b} <= plain peak {a}");
    }

    #[test]
    fn power_rect_accounts_all_watts() {
        let mut g = two_layer_grid();
        g.add_power_rect(0, 0.1, 0.1, 0.6, 0.9, 12.5);
        g.add_power_rect(1, 0.0, 0.0, 1.0, 1.0, 2.5);
        assert!((g.total_power() - 15.0).abs() < 1e-9);
    }
}

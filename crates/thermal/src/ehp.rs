//! Thermal model of one EHP GPU chiplet with its 3D DRAM stack.
//!
//! The thermally critical site in the package is a GPU chiplet with DRAM
//! stacked directly above it (Section V-D): the DRAM dies sit between the
//! hot GPU and the heat sink, and DRAM must stay below 85 C to avoid
//! doubled refresh \[48\]. This module assembles the layer stack —
//! interposer, GPU die, four DRAM dies, TIM, heat spreader — injects the
//! per-die power, and reports the peak DRAM temperature and the bottom
//! DRAM die's heat map (the paper's Figs. 10 and 11).

use ena_model::units::Celsius;

use crate::solver::{LayerSpec, TemperatureError, Temperatures, ThermalGrid};

/// DRAM refresh-doubling limit (paper Section V-D, \[48\]).
pub const DRAM_TEMP_LIMIT: Celsius = Celsius::new(85.0);

/// Per-chiplet power inputs for the thermal model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChipletPower {
    /// GPU CU dynamic power on this chiplet (W).
    pub cu_dynamic_w: f64,
    /// GPU leakage on this chiplet (W).
    pub cu_static_w: f64,
    /// Dynamic power of the DRAM stack above the chiplet (W).
    pub dram_dynamic_w: f64,
    /// Background/refresh power of the DRAM stack (W).
    pub dram_static_w: f64,
    /// Interposer (NoC + I/O) power under the chiplet (W).
    pub interposer_w: f64,
}

/// Grid resolution of the chiplet footprint.
const NX: usize = 16;
const NY: usize = 16;
/// Chiplet footprint in millimeters.
const DIE_EDGE_MM: f64 = 10.0;
/// DRAM dies per stack.
const DRAM_DIES: usize = 4;
/// Per-chiplet share of a high-end air-cooled sink (8 stacks in parallel
/// under one ~0.25 K/W sink).
const SINK_RESISTANCE_PER_CHIPLET: f64 = 1.2;

/// The assembled per-chiplet thermal model.
#[derive(Clone, Debug)]
pub struct ChipletThermalModel {
    grid: ThermalGrid,
    /// Layer index of the bottom-most DRAM die.
    dram_bottom: usize,
}

/// Solved temperatures of the chiplet stack.
#[derive(Clone, Debug)]
pub struct ChipletTemperatures {
    temperatures: Temperatures,
    dram_bottom: usize,
}

impl ChipletTemperatures {
    /// Peak temperature across all DRAM dies.
    pub fn peak_dram(&self) -> Celsius {
        (0..DRAM_DIES)
            .map(|d| self.temperatures.layer_peak(self.dram_bottom + d))
            .fold(Celsius::new(f64::MIN), Celsius::max)
    }

    /// Peak GPU die temperature.
    pub fn peak_gpu(&self) -> Celsius {
        self.temperatures.layer_peak(self.dram_bottom - 1)
    }

    /// True if every DRAM die stays below the refresh-doubling limit.
    pub fn dram_within_limit(&self) -> bool {
        self.peak_dram() < DRAM_TEMP_LIMIT
    }

    /// Heat map of the bottom-most DRAM die (row-major, `16 x 16`).
    pub fn bottom_dram_map(&self) -> &[f64] {
        self.temperatures.layer_map(self.dram_bottom)
    }

    /// Renders the bottom DRAM die heat map as ASCII art (Fig. 11).
    pub fn render_bottom_dram(&self) -> String {
        render_heatmap(self.bottom_dram_map(), NX)
    }
}

impl ChipletThermalModel {
    /// Builds the stack for the given per-chiplet power.
    pub fn new(power: ChipletPower) -> Self {
        let layers = vec![
            LayerSpec::silicon("interposer", 0.3),
            LayerSpec::silicon("gpu-die", 0.2),
            LayerSpec::silicon("dram-0", 0.05),
            LayerSpec::silicon("dram-1", 0.05),
            LayerSpec::silicon("dram-2", 0.05),
            LayerSpec::silicon("dram-3", 0.05),
            LayerSpec::tim("tim", 0.1),
            LayerSpec::silicon("spreader", 1.5),
        ];
        let mut grid = ThermalGrid::new(layers, NX, NY, DIE_EDGE_MM, DIE_EDGE_MM);
        grid.sink_resistance = SINK_RESISTANCE_PER_CHIPLET;
        grid.ambient = Celsius::new(50.0);

        // Interposer carries NoC/I/O power, spread uniformly.
        grid.add_power_rect(0, 0.0, 0.0, 1.0, 1.0, power.interposer_w);

        // GPU die: leakage everywhere, dynamic power concentrated in the
        // two shader-engine columns -> the hot spots Fig. 11 shows bleeding
        // into the DRAM above.
        grid.add_power_rect(1, 0.0, 0.0, 1.0, 1.0, power.cu_static_w);
        grid.add_power_rect(1, 0.08, 0.10, 0.42, 0.90, power.cu_dynamic_w / 2.0);
        grid.add_power_rect(1, 0.58, 0.10, 0.92, 0.90, power.cu_dynamic_w / 2.0);

        // DRAM dies share the stack's power evenly.
        let per_die = (power.dram_dynamic_w + power.dram_static_w) / DRAM_DIES as f64;
        for d in 0..DRAM_DIES {
            grid.add_power_rect(2 + d, 0.0, 0.0, 1.0, 1.0, per_die);
        }

        Self {
            grid,
            dram_bottom: 2,
        }
    }

    /// Access to the underlying grid (e.g. to adjust cooling assumptions).
    pub fn grid_mut(&mut self) -> &mut ThermalGrid {
        &mut self.grid
    }

    /// Solves for steady-state temperatures.
    ///
    /// # Errors
    ///
    /// Returns [`TemperatureError`] if the solve does not converge.
    pub fn solve(&self) -> Result<ChipletTemperatures, TemperatureError> {
        let temperatures = self.grid.solve_checked(1e-4, 200_000)?;
        Ok(ChipletTemperatures {
            temperatures,
            dram_bottom: self.dram_bottom,
        })
    }
}

/// Reduced-order peak-DRAM-temperature estimator.
///
/// The steady-state heat equation is linear in the injected power, so the
/// solved peak DRAM temperature is (to superposition accuracy) an affine
/// function of the per-source powers. The coefficients below were fit by
/// least squares against [`ChipletThermalModel::solve`] over a 72-point
/// grid spanning the design-space power range (worst absolute error
/// 0.026 °C); `estimator_tracks_the_full_solver` re-checks the fit against
/// the full solver so a model change cannot silently invalidate it.
///
/// The estimator exists for the sweep hot path: a full SOR solve costs
/// tens of milliseconds, this costs a handful of multiplies, which is what
/// makes a peak-temperature Pareto axis affordable across thousands of
/// design points.
#[derive(Clone, Copy, Debug, Default)]
pub struct DramTempEstimator;

impl DramTempEstimator {
    const AMBIENT_C: f64 = 50.0;
    const CU_DYNAMIC_C_PER_W: f64 = 1.548010;
    const CU_STATIC_C_PER_W: f64 = 1.463431;
    const DRAM_C_PER_W: f64 = 1.471210;
    const INTERPOSER_C_PER_W: f64 = 1.467839;

    /// Estimated peak DRAM temperature for the given per-chiplet power.
    pub fn peak_dram(power: &ChipletPower) -> Celsius {
        Celsius::new(
            Self::AMBIENT_C
                + Self::CU_DYNAMIC_C_PER_W * power.cu_dynamic_w
                + Self::CU_STATIC_C_PER_W * power.cu_static_w
                + Self::DRAM_C_PER_W * (power.dram_dynamic_w + power.dram_static_w)
                + Self::INTERPOSER_C_PER_W * power.interposer_w,
        )
    }
}

/// Renders a row-major cell map as ASCII art, one character per cell,
/// dark-to-bright by temperature.
pub fn render_heatmap(map: &[f64], nx: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let lo = map.iter().copied().fold(f64::MAX, f64::min);
    let hi = map.iter().copied().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-9);
    let mut out = String::with_capacity(map.len() + map.len() / nx);
    for (i, &v) in map.iter().enumerate() {
        let idx = (((v - lo) / span) * (RAMP.len() - 1) as f64).round() as usize;
        out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
        if (i + 1) % nx == 0 {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_power() -> ChipletPower {
        // Best-mean configuration, a balanced kernel: ~1/8 of the node's
        // CU and memory power per chiplet.
        ChipletPower {
            cu_dynamic_w: 7.0,
            cu_static_w: 2.0,
            dram_dynamic_w: 2.5,
            dram_static_w: 0.5,
            interposer_w: 1.5,
        }
    }

    #[test]
    fn typical_load_stays_below_the_dram_limit() {
        let t = ChipletThermalModel::new(typical_power()).solve().unwrap();
        let peak = t.peak_dram();
        assert!(t.dram_within_limit(), "peak = {peak}");
        // But well above ambient: the model is not trivially cold.
        assert!(peak.value() > 60.0, "peak = {peak}");
    }

    #[test]
    fn gpu_runs_hotter_than_the_dram_above_it() {
        let t = ChipletThermalModel::new(typical_power()).solve().unwrap();
        assert!(t.peak_gpu().value() > t.peak_dram().value());
    }

    #[test]
    fn dram_heats_with_gpu_power_even_without_dram_activity() {
        let mut cold = typical_power();
        cold.cu_dynamic_w = 2.0;
        let mut hot = typical_power();
        hot.cu_dynamic_w = 12.0;
        let t_cold = ChipletThermalModel::new(cold).solve().unwrap().peak_dram();
        let t_hot = ChipletThermalModel::new(hot).solve().unwrap().peak_dram();
        assert!(t_hot.value() > t_cold.value() + 3.0);
    }

    #[test]
    fn extreme_power_exceeds_the_limit() {
        let mut p = typical_power();
        p.cu_dynamic_w = 40.0;
        p.dram_dynamic_w = 10.0;
        let t = ChipletThermalModel::new(p).solve().unwrap();
        assert!(!t.dram_within_limit());
    }

    #[test]
    fn estimator_tracks_the_full_solver() {
        // Re-validate the least-squares fit against the full solver at the
        // corners and center of the sweep's power range; 0.5 °C slack is an
        // order of magnitude above the fit's worst residual but far below
        // any decision threshold (the DRAM limit has multi-degree margins).
        let points = [
            typical_power(),
            ChipletPower {
                cu_dynamic_w: 2.0,
                cu_static_w: 1.0,
                dram_dynamic_w: 1.0,
                dram_static_w: 0.3,
                interposer_w: 0.8,
            },
            ChipletPower {
                cu_dynamic_w: 14.0,
                cu_static_w: 4.0,
                dram_dynamic_w: 5.0,
                dram_static_w: 1.0,
                interposer_w: 2.5,
            },
        ];
        for p in points {
            let solved = ChipletThermalModel::new(p).solve().unwrap().peak_dram();
            let estimated = DramTempEstimator::peak_dram(&p);
            assert!(
                (solved.value() - estimated.value()).abs() < 0.5,
                "solved {solved} vs estimated {estimated} at {p:?}"
            );
        }
    }

    #[test]
    fn bottom_dram_map_shows_cu_hotspots() {
        let t = ChipletThermalModel::new(typical_power()).solve().unwrap();
        let map = t.bottom_dram_map();
        // Cells above the shader-engine columns are hotter than the die
        // edge between/around them.
        let column_cell = map[8 * 16 + 4]; // over the left column
        let edge_cell = map[8 * 16]; // left edge
        assert!(column_cell > edge_cell);
    }

    #[test]
    fn heatmap_rendering_is_shaped_and_spans_the_ramp() {
        let t = ChipletThermalModel::new(typical_power()).solve().unwrap();
        let art = t.render_bottom_dram();
        assert_eq!(art.lines().count(), 16);
        assert!(art.lines().all(|l| l.chars().count() == 16));
        assert!(art.contains('@'), "hottest cell should render @:\n{art}");
    }
}

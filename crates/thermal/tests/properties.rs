//! Property-based tests for the thermal solver.

use ena_testkit::prelude::*;
use ena_thermal::solver::{LayerSpec, ThermalGrid};

fn grid() -> ThermalGrid {
    ThermalGrid::new(
        vec![
            LayerSpec::silicon("die", 0.2),
            LayerSpec::silicon("spreader", 1.0),
        ],
        6,
        6,
        8.0,
        8.0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn temperatures_never_drop_below_ambient(
        x0 in 0.0f64..0.8, y0 in 0.0f64..0.8, w in 1.0f64..20.0,
    ) {
        let mut g = grid();
        g.add_power_rect(0, x0, y0, (x0 + 0.2).min(1.0), (y0 + 0.2).min(1.0), w);
        let t = g.solve(1e-5, 100_000);
        for layer in 0..2 {
            for y in 0..6 {
                for x in 0..6 {
                    prop_assert!(t.at(layer, x, y).value() >= 50.0 - 1e-6);
                }
            }
        }
    }

    #[test]
    fn peak_is_monotone_in_power(w in 1.0f64..20.0, extra in 0.5f64..10.0) {
        let solve = |watts: f64| {
            let mut g = grid();
            g.add_power_rect(0, 0.2, 0.2, 0.8, 0.8, watts);
            g.solve(1e-6, 100_000).layer_peak(0).value()
        };
        prop_assert!(solve(w + extra) > solve(w));
    }

    #[test]
    fn heat_conservation_holds(w in 1.0f64..30.0) {
        let mut g = grid();
        g.sink_resistance = 0.4;
        g.add_power_rect(0, 0.0, 0.0, 1.0, 1.0, w);
        let t = g.solve(1e-8, 400_000);
        let g_sink = 1.0 / (0.4 * 36.0);
        let outflow: f64 = (0..6)
            .flat_map(|y| (0..6).map(move |x| (x, y)))
            .map(|(x, y)| g_sink * (t.at(1, x, y).value() - 50.0))
            .sum();
        prop_assert!((outflow - w).abs() < w * 0.01 + 0.01, "outflow {outflow} vs {w}");
    }
}

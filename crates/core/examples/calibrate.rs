//! Calibration probe used while tuning the power/performance coefficients:
//! prints the worst-case package power at key design points and the
//! coarse design-space exploration result.
//!
//! Run with `cargo run -p ena-core --release --example calibrate`.

use ena_core::dse::{DesignSpace, Explorer};
use ena_core::node::{EvalOptions, NodeSimulator};
use ena_model::config::EhpConfig;
use ena_model::units::{GigabytesPerSec, Megahertz};
use ena_workloads::paper_profiles;

fn main() {
    let sim = NodeSimulator::new();
    let profiles = paper_profiles();
    println!("=== package power at key configs (miss=0.05) ===");
    for (c, f, b) in [
        (320u32, 1000.0, 3.0),
        (320, 1000.0, 4.0),
        (352, 1000.0, 3.0),
        (320, 1100.0, 3.0),
        (192, 1500.0, 6.0),
        (384, 925.0, 1.0),
        (256, 1100.0, 4.0),
    ] {
        let cfg = EhpConfig::builder()
            .total_cus(c)
            .gpu_clock(Megahertz::new(f))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(b))
            .build()
            .unwrap();
        let mut worst: (String, f64) = ("".into(), 0.0);
        for p in &profiles {
            let e = sim.evaluate(&cfg, p, &EvalOptions::with_miss_fraction(0.05));
            if e.package_power().value() > worst.1 {
                worst = (p.name.clone(), e.package_power().value());
            }
        }
        println!("{c}/{f}/{b}: worst {} {:.1} W", worst.0, worst.1);
    }
    println!("=== DSE (coarse) ===");
    let r = Explorer::default()
        .explore(&DesignSpace::coarse(), &profiles)
        .unwrap();
    println!("feasible {}/{}", r.feasible, r.evaluated);
    println!("best mean: {}", r.best_mean.label());
    for a in &r.per_app {
        println!(
            "{:10} best {:18} +{:.1}%",
            a.app,
            a.point.label(),
            a.benefit_over_mean_pct
        );
    }
}

//! The ENA node simulator: the core of the exascale-APU reproduction.
//!
//! Ties together the substrate crates into the paper's evaluation flow:
//!
//! - [`perf`] — the extended-roofline kernel performance model
//!   (Figs. 4-6, 8).
//! - [`node`] — whole-node evaluation joining performance, power, and
//!   thermals ([`NodeSimulator`](node::NodeSimulator) re-exported at the crate root).
//! - [`chiplet`] — the chiplet-vs-monolithic NoC study (Fig. 7).
//! - [`dse`] — design-space exploration: the best-mean configuration and
//!   Table II's per-application oracle (see [`dse::Explorer`]).
//! - [`reconfig`] — the Section VI dynamic-reconfiguration runtime
//!   (static / reactive / oracle policies over phased workloads).
//! - [`resilience`] — Section II-A.5 RAS modeling: FIT rates, ECC/RMT,
//!   system MTTF, and checkpoint efficiency.
//! - [`system`] — scaling to the 100,000-node machine (Fig. 14).
//!
//! # Example
//!
//! ```
//! use ena_core::node::{EvalOptions, NodeSimulator};
//! use ena_model::config::EhpConfig;
//! use ena_workloads::profile_for;
//!
//! let sim = NodeSimulator::new();
//! let config = EhpConfig::paper_baseline();
//! let lulesh = profile_for("LULESH").expect("LULESH is in the suite");
//! let eval = sim.evaluate(&config, &lulesh, &EvalOptions::default());
//! assert!(eval.package_power().value() <= 160.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chiplet;
pub mod dse;
pub mod node;
pub mod perf;
pub mod reconfig;
pub mod resilience;
pub mod system;

pub use dse::{ConfigPoint, DesignSpace, DseResult, Explorer, PointEval, PointRecord};
pub use node::{EvalOptions, NodeEvaluation, NodeSimulator};
pub use perf::{PerfEstimate, PerfModel};

//! Resiliency, availability, and serviceability modeling (Section II-A.5).
//!
//! The exascale targets demand that "user intervention due to hardware or
//! system faults \[be\] limited to the order of a week or more on average"
//! across 100,000 nodes — a brutal per-node reliability requirement. This
//! module models:
//!
//! - per-component transient-fault rates (FIT = failures per 10^9 hours),
//!   scaled by supply voltage (the paper notes NTC's aggressive voltage
//!   reduction "potentially increases error rates");
//! - ECC on the memory arrays, and software redundant multithreading (RMT)
//!   on the GPU, which exploits idle CUs and therefore costs more on
//!   well-utilized kernels;
//! - the resulting system MTTF and the checkpoint/restart efficiency via
//!   the Young/Daly model.

use ena_model::config::EhpConfig;
use ena_model::kernel::KernelProfile;

/// Transient-fault rates per component, in FIT.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitRates {
    /// Logic faults per CU at nominal voltage.
    pub per_cu: f64,
    /// Faults per CPU core.
    pub per_cpu_core: f64,
    /// Faults per GB of in-package DRAM (pre-ECC).
    pub per_hbm_gb: f64,
    /// Faults per GB of external memory (pre-ECC).
    pub per_ext_gb: f64,
    /// Uncore/interposer faults per chiplet.
    pub per_chiplet: f64,
    /// Exponent of the voltage sensitivity: FIT scales by
    /// `(V_nom / V)^voltage_exponent` (lower voltage, higher rate).
    pub voltage_exponent: f64,
}

impl Default for FitRates {
    fn default() -> Self {
        Self {
            per_cu: 10.0,
            per_cpu_core: 20.0,
            per_hbm_gb: 30.0,
            per_ext_gb: 25.0,
            per_chiplet: 50.0,
            voltage_exponent: 3.0,
        }
    }
}

/// Error-protection scheme in force.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Protection {
    /// ECC on DRAM/SRAM arrays: fraction of memory faults corrected.
    pub ecc_coverage: f64,
    /// Redundant multithreading on the GPU: fraction of CU logic faults
    /// detected (paper ref 25); `None` disables RMT.
    pub rmt_coverage: Option<f64>,
}

impl Protection {
    /// ECC only (the conventional baseline).
    pub fn ecc_only() -> Self {
        Self {
            ecc_coverage: 0.99,
            rmt_coverage: None,
        }
    }

    /// ECC plus software RMT on the GPU.
    pub fn ecc_and_rmt() -> Self {
        Self {
            ecc_coverage: 0.99,
            rmt_coverage: Some(0.95),
        }
    }
}

/// The node reliability model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResilienceModel {
    /// Fault-rate coefficients.
    pub rates: FitRates,
}

/// A node-level reliability assessment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeReliability {
    /// Unprotected node fault rate (FIT).
    pub raw_fit: f64,
    /// Residual *uncorrected/undetected* fault rate after protection (FIT).
    pub silent_fit: f64,
    /// Throughput multiplier RMT imposes (1.0 when disabled or free).
    pub rmt_slowdown: f64,
}

impl NodeReliability {
    /// Mean time to silent failure for one node, in hours.
    pub fn node_mttf_hours(&self) -> f64 {
        1e9 / self.silent_fit.max(1e-12)
    }

    /// Mean time to silent failure for an `n`-node machine, in hours.
    pub fn system_mttf_hours(&self, nodes: u64) -> f64 {
        self.node_mttf_hours() / nodes as f64
    }
}

impl ResilienceModel {
    /// Assesses `config` running `profile` at relative supply voltage
    /// `voltage_scale` (1.0 = nominal; NTC pushes it below 1).
    pub fn assess(
        &self,
        config: &EhpConfig,
        profile: &KernelProfile,
        voltage_scale: f64,
        protection: Protection,
    ) -> NodeReliability {
        let v_factor = (1.0 / voltage_scale.clamp(0.3, 2.0)).powf(self.rates.voltage_exponent);

        let cu_fit = f64::from(config.gpu.total_cus()) * self.rates.per_cu * v_factor;
        let cpu_fit = f64::from(config.cpu.total_cores()) * self.rates.per_cpu_core;
        let hbm_fit = config.hbm.total_capacity().value() * self.rates.per_hbm_gb;
        let ext_fit = config.external.total_capacity().value() * self.rates.per_ext_gb;
        let uncore_fit = f64::from(config.gpu.chiplets + config.cpu.chiplets)
            * self.rates.per_chiplet
            * v_factor;
        let raw_fit = cu_fit + cpu_fit + hbm_fit + ext_fit + uncore_fit;

        // ECC covers the memory arrays; RMT covers CU logic.
        let memory_residual = (hbm_fit + ext_fit) * (1.0 - protection.ecc_coverage);
        let cu_residual = match protection.rmt_coverage {
            Some(c) => cu_fit * (1.0 - c),
            None => cu_fit,
        };
        let silent_fit = memory_residual + cu_residual + cpu_fit * 0.05 + uncore_fit * 0.5;

        // RMT runs redundant wavefronts on otherwise-idle CUs: free while
        // utilization is low, but it halves throughput at full utilization.
        let rmt_slowdown = match protection.rmt_coverage {
            Some(_) => {
                let idle = 1.0 - profile.utilization;
                if idle >= profile.utilization {
                    1.0
                } else {
                    1.0 / (1.0 - (profile.utilization - idle)).max(0.5)
                }
            }
            None => 1.0,
        };

        NodeReliability {
            raw_fit,
            silent_fit,
            rmt_slowdown,
        }
    }
}

/// Young/Daly checkpoint-efficiency model: the fraction of machine time
/// doing useful work given a system MTTF and a checkpoint cost.
///
/// Uses the optimal checkpoint interval `tau = sqrt(2 * delta * M)`.
/// Returns a value in `(0, 1]`; zero when checkpointing cannot keep up.
pub fn checkpoint_efficiency(system_mttf_hours: f64, checkpoint_minutes: f64) -> f64 {
    let m = system_mttf_hours.max(1e-9);
    let delta = checkpoint_minutes / 60.0;
    if delta <= 0.0 {
        return 1.0;
    }
    let tau = (2.0 * delta * m).sqrt();
    let efficiency = 1.0 - delta / tau - tau / (2.0 * m);
    efficiency.clamp(0.0, 1.0)
}

/// Young/Daly efficiency at an *arbitrary* checkpoint interval `tau`
/// (hours): `1 - delta/tau - tau/(2M)`, clamped to `[0, 1]`.
///
/// [`checkpoint_efficiency`] is this function evaluated at Daly's optimal
/// `tau = sqrt(2 * delta * M)`; sweeping `tau` away from the optimum
/// (the checkpoint-interval sweep axis) uses this form directly.
pub fn checkpoint_efficiency_at(
    system_mttf_hours: f64,
    checkpoint_minutes: f64,
    interval_hours: f64,
) -> f64 {
    let m = system_mttf_hours.max(1e-9);
    let delta = checkpoint_minutes / 60.0;
    if delta <= 0.0 {
        return 1.0;
    }
    let tau = interval_hours.max(1e-9);
    let efficiency = 1.0 - delta / tau - tau / (2.0 * m);
    efficiency.clamp(0.0, 1.0)
}

/// A Monte Carlo checkpoint/restart campaign: simulates exponential
/// failure arrivals against periodic checkpoints and measures the achieved
/// useful-work fraction — the mechanistic check on
/// [`checkpoint_efficiency`]'s closed form.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultCampaign {
    /// System MTTF in hours.
    pub mttf_hours: f64,
    /// Checkpoint cost in hours.
    pub checkpoint_hours: f64,
    /// Checkpoint interval in hours (use Daly's optimum via
    /// [`FaultCampaign::with_optimal_interval`]).
    pub interval_hours: f64,
    /// Restart (reload + replay-setup) cost in hours.
    pub restart_hours: f64,
}

impl FaultCampaign {
    /// A campaign using the Young/Daly optimal interval.
    pub fn with_optimal_interval(mttf_hours: f64, checkpoint_hours: f64) -> Self {
        Self {
            mttf_hours,
            checkpoint_hours,
            interval_hours: (2.0 * checkpoint_hours * mttf_hours).sqrt(),
            restart_hours: checkpoint_hours,
        }
    }

    /// Simulates `total_hours` of machine time with failures drawn from an
    /// exponential distribution (deterministic from `seed`), returning the
    /// measured useful-work fraction.
    pub fn simulate(&self, total_hours: f64, seed: u64) -> f64 {
        let mut state = seed | 1;
        let mut next_unit = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-18)
        };
        let mut draw_failure = move || -self.mttf_hours * next_unit().ln();

        let mut clock = 0.0f64;
        let mut useful = 0.0f64;
        let mut next_failure = draw_failure();
        // Work accumulated since the last durable checkpoint.
        let mut uncheckpointed = 0.0f64;

        while clock < total_hours {
            // One segment: compute for `interval`, then checkpoint.
            let segment_end = clock + self.interval_hours + self.checkpoint_hours;
            if next_failure >= segment_end {
                clock = segment_end;
                useful += self.interval_hours;
                uncheckpointed = 0.0;
            } else {
                // Failure mid-segment: lose everything since the last
                // checkpoint, pay the restart.
                let _ = uncheckpointed;
                clock = next_failure + self.restart_hours;
                uncheckpointed = 0.0;
                next_failure = clock + draw_failure();
            }
        }
        useful / total_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_model::config::SYSTEM_NODE_COUNT;
    use ena_workloads::profile_for;

    fn assess(voltage: f64, protection: Protection, app: &str) -> NodeReliability {
        ResilienceModel::default().assess(
            &EhpConfig::paper_baseline(),
            &profile_for(app).unwrap(),
            voltage,
            protection,
        )
    }

    #[test]
    fn protection_suppresses_most_faults() {
        let r = assess(1.0, Protection::ecc_and_rmt(), "CoMD");
        assert!(r.silent_fit < r.raw_fit * 0.2, "{r:?}");
    }

    #[test]
    fn system_mttf_scales_inversely_with_node_count() {
        let r = assess(1.0, Protection::ecc_and_rmt(), "CoMD");
        let one = r.system_mttf_hours(1);
        let all = r.system_mttf_hours(SYSTEM_NODE_COUNT);
        assert!((one / all - SYSTEM_NODE_COUNT as f64).abs() < 1e-6);
    }

    #[test]
    fn ntc_voltage_reduction_raises_fault_rates() {
        // The paper flags this interaction explicitly (Section VI).
        let nominal = assess(1.0, Protection::ecc_only(), "CoMD");
        let ntc = assess(0.75, Protection::ecc_only(), "CoMD");
        // Logic rates scale steeply; memory rates are voltage-independent,
        // so the raw total moves less than the silent (logic-dominated)
        // residual.
        assert!(ntc.raw_fit > 1.1 * nominal.raw_fit);
        assert!(ntc.silent_fit > 1.5 * nominal.silent_fit);
    }

    #[test]
    fn rmt_is_cheap_for_memory_bound_kernels() {
        // RMT uses idle CUs (paper [25]): XSBench (utilization 0.40) has
        // idle slack; MaxFlops (0.91) pays nearly 2x.
        let xs = assess(1.0, Protection::ecc_and_rmt(), "XSBench");
        let mf = assess(1.0, Protection::ecc_and_rmt(), "MaxFlops");
        assert!((xs.rmt_slowdown - 1.0).abs() < 1e-9, "{}", xs.rmt_slowdown);
        assert!(mf.rmt_slowdown > 1.5, "{}", mf.rmt_slowdown);
    }

    #[test]
    fn rmt_buys_reliability_for_its_cost() {
        let without = assess(1.0, Protection::ecc_only(), "CoMD");
        let with = assess(1.0, Protection::ecc_and_rmt(), "CoMD");
        assert!(with.silent_fit < without.silent_fit);
        assert!(with.rmt_slowdown >= 1.0);
    }

    #[test]
    fn checkpointing_efficiency_behaves() {
        // More MTTF, more efficiency; costlier checkpoints, less.
        let a = checkpoint_efficiency(24.0, 5.0);
        let b = checkpoint_efficiency(4.0, 5.0);
        let c = checkpoint_efficiency(24.0, 20.0);
        assert!(a > b);
        assert!(a > c);
        assert!((0.0..=1.0).contains(&a));
        assert!(checkpoint_efficiency(1000.0, 0.0) == 1.0);
    }

    #[test]
    fn the_general_form_peaks_at_the_daly_optimum() {
        let mttf = 12.0_f64;
        let ckpt_minutes = 3.0_f64;
        let optimal_tau = (2.0 * (ckpt_minutes / 60.0) * mttf).sqrt();
        let at_optimum = checkpoint_efficiency_at(mttf, ckpt_minutes, optimal_tau);
        // The specialised form is the general form at the optimum.
        assert_eq!(at_optimum, checkpoint_efficiency(mttf, ckpt_minutes));
        // Any other interval does worse.
        for scale in [0.1, 0.5, 2.0, 10.0] {
            let off = checkpoint_efficiency_at(mttf, ckpt_minutes, optimal_tau * scale);
            assert!(off < at_optimum, "scale {scale}: {off} vs {at_optimum}");
        }
        assert_eq!(checkpoint_efficiency_at(1000.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn the_fault_campaign_validates_the_daly_formula() {
        // Analytic efficiency and measured efficiency agree within a few
        // points across MTTF regimes.
        for mttf in [4.0, 12.0, 48.0] {
            let ckpt_minutes = 3.0;
            let analytic = checkpoint_efficiency(mttf, ckpt_minutes);
            let campaign = FaultCampaign::with_optimal_interval(mttf, ckpt_minutes / 60.0);
            let measured = campaign.simulate(20_000.0, 0xFA17);
            assert!(
                (analytic - measured).abs() < 0.06,
                "mttf {mttf}: analytic {analytic:.3}, measured {measured:.3}"
            );
        }
    }

    #[test]
    fn shorter_intervals_waste_checkpoints_longer_lose_work() {
        let mttf = 8.0;
        let ckpt = 0.05;
        let optimal = FaultCampaign::with_optimal_interval(mttf, ckpt);
        let short = FaultCampaign {
            interval_hours: optimal.interval_hours / 8.0,
            ..optimal
        };
        let long = FaultCampaign {
            interval_hours: optimal.interval_hours * 8.0,
            ..optimal
        };
        let e_opt = optimal.simulate(20_000.0, 1);
        let e_short = short.simulate(20_000.0, 1);
        let e_long = long.simulate(20_000.0, 1);
        assert!(e_opt > e_short, "opt {e_opt} vs short {e_short}");
        assert!(e_opt > e_long, "opt {e_opt} vs long {e_long}");
    }

    #[test]
    fn protected_system_reaches_useful_mttf() {
        // With ECC+RMT the 100k-node machine should sustain hours between
        // silent failures — enough for efficient checkpointing.
        let r = assess(1.0, Protection::ecc_and_rmt(), "CoMD");
        let mttf = r.system_mttf_hours(SYSTEM_NODE_COUNT);
        assert!(mttf > 0.5, "system MTTF {mttf} h");
        let eff = checkpoint_efficiency(mttf, 2.0);
        assert!(eff > 0.5, "efficiency {eff}");
    }
}

//! The chiplet-vs-monolithic study (paper Section V-A, Fig. 7).
//!
//! Drives workload-shaped traffic through the packet-level NoC simulator
//! on both the chiplet EHP topology and the hypothetical monolithic
//! baseline, measures the out-of-chiplet traffic fraction and the average
//! memory-latency difference, and converts the latter into a performance
//! ratio through the analytic model's latency term.

use ena_model::config::EhpConfig;
use ena_model::kernel::KernelProfile;
use ena_noc::sim::NocSim;
use ena_noc::topology::Topology;
use ena_noc::traffic::WorkloadTraffic;

use crate::perf::{LatencyModel, PerfModel};

/// Result of the chiplet study for one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct ChipletStudy {
    /// Workload name.
    pub app: String,
    /// Fraction of NoC traffic leaving the source chiplet (Fig. 7 bars).
    pub out_of_chiplet_fraction: f64,
    /// Mean packet latency on the chiplet topology (cycles).
    pub chiplet_latency_cycles: f64,
    /// Mean packet latency on the monolithic baseline (cycles).
    pub monolithic_latency_cycles: f64,
    /// Chiplet performance relative to the monolithic EHP (Fig. 7 line).
    pub perf_relative_to_monolithic: f64,
}

/// Runs the Fig. 7 experiment for one workload profile.
///
/// `requests_per_chiplet` controls the simulated traffic volume; a few
/// thousand is enough for stable averages.
pub fn chiplet_study(
    config: &EhpConfig,
    profile: &KernelProfile,
    requests_per_chiplet: u32,
    seed: u64,
) -> ChipletStudy {
    let gpu_chiplets = config.gpu.chiplets;
    let cpu_chiplets = config.cpu.chiplets;
    let traffic = WorkloadTraffic::from_profile(profile, seed);

    let chiplet_topo = Topology::ehp(gpu_chiplets, cpu_chiplets);
    let chiplet_stats =
        NocSim::new(&chiplet_topo).run(&traffic.generate(&chiplet_topo, requests_per_chiplet));

    let mono_topo = Topology::monolithic(gpu_chiplets, cpu_chiplets);
    let mono_stats =
        NocSim::new(&mono_topo).run(&traffic.generate(&mono_topo, requests_per_chiplet));

    let chiplet_latency = chiplet_stats.avg_latency_cycles();
    let mono_latency = mono_stats.avg_latency_cycles();
    let extra = (chiplet_latency - mono_latency).max(0.0);

    // Feed the measured latency difference into the analytic model.
    let chiplet_model = PerfModel {
        latency: LatencyModel {
            chiplet_extra_cycles: extra,
            ..LatencyModel::default()
        },
    };
    let mono_model = PerfModel {
        latency: LatencyModel {
            chiplet_extra_cycles: 0.0,
            ..LatencyModel::default()
        },
    };
    let chiplet_perf = chiplet_model
        .evaluate(config, profile, 0.0)
        .throughput
        .value();
    let mono_perf = mono_model.evaluate(config, profile, 0.0).throughput.value();

    ChipletStudy {
        app: profile.name.clone(),
        out_of_chiplet_fraction: chiplet_stats.out_of_chiplet_fraction(),
        chiplet_latency_cycles: chiplet_latency,
        monolithic_latency_cycles: mono_latency,
        perf_relative_to_monolithic: chiplet_perf / mono_perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_workloads::profile_for;

    fn study(name: &str) -> ChipletStudy {
        chiplet_study(
            &EhpConfig::paper_baseline(),
            &profile_for(name).unwrap(),
            2000,
            42,
        )
    }

    #[test]
    fn out_of_chiplet_traffic_dominates() {
        // Paper Finding 1: 60-95 % across kernels.
        for name in ["XSBench", "SNAP", "CoMD"] {
            let s = study(name);
            assert!(
                (0.55..=0.97).contains(&s.out_of_chiplet_fraction),
                "{name}: {}",
                s.out_of_chiplet_fraction
            );
        }
    }

    #[test]
    fn perf_impact_is_small_despite_remote_traffic() {
        // Paper Finding 2: worst degradation ~13 %, some negligible.
        for name in ["XSBench", "SNAP", "CoMD"] {
            let s = study(name);
            assert!(
                s.perf_relative_to_monolithic > 0.85,
                "{name}: {}",
                s.perf_relative_to_monolithic
            );
            assert!(s.perf_relative_to_monolithic <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn latency_sensitive_kernels_lose_the_most() {
        let xs = study("XSBench");
        let snap = study("SNAP");
        assert!(
            xs.perf_relative_to_monolithic < snap.perf_relative_to_monolithic,
            "XSBench {} vs SNAP {}",
            xs.perf_relative_to_monolithic,
            snap.perf_relative_to_monolithic
        );
        // SNAP's abundant parallelism hides nearly everything.
        assert!(snap.perf_relative_to_monolithic > 0.97);
    }

    #[test]
    fn chiplet_topology_has_higher_latency() {
        let s = study("CoMD");
        assert!(s.chiplet_latency_cycles > s.monolithic_latency_cycles);
    }

    #[test]
    fn study_is_deterministic() {
        assert_eq!(study("SNAP"), study("SNAP"));
    }
}

//! Whole-node evaluation: performance, power, and thermals together.
//!
//! [`NodeSimulator`] is the top-level entry point: given an
//! [`EhpConfig`] and a [`KernelProfile`], it runs the performance model,
//! derives the activity vector, evaluates the power model (optionally with
//! the Section V-E optimizations applied), and can push the resulting
//! per-chiplet power into the thermal model.

use ena_model::config::EhpConfig;
use ena_model::kernel::KernelProfile;
use ena_model::units::Watts;
use ena_power::breakdown::{Component, PowerBreakdown};
use ena_power::model::{ActivityVector, NodePowerModel, VoltageMode};
use ena_power::opts::{apply_optimizations, OptimizationContext, PowerOptimization};
use ena_thermal::ehp::{ChipletPower, ChipletTemperatures, ChipletThermalModel};
use ena_thermal::solver::TemperatureError;

use crate::perf::{PerfEstimate, PerfModel};

/// Evaluation knobs.
#[derive(Clone, Debug, Default)]
pub struct EvalOptions {
    /// Fraction of DRAM traffic serviced externally. `None` uses the
    /// profile's own `ext_traffic_fraction` (the capacity-limited reality
    /// of Section V-B); pass `Some(0.0)` for footprints that fit
    /// in-package, or sweep it for the Fig. 8 study.
    pub miss_fraction: Option<f64>,
    /// Power optimizations to apply (Section V-E).
    pub optimizations: Vec<PowerOptimization>,
}

impl EvalOptions {
    /// Options with every Section V-E optimization enabled.
    pub fn fully_optimized() -> Self {
        Self {
            miss_fraction: None,
            optimizations: PowerOptimization::ALL.to_vec(),
        }
    }

    /// Options with an explicit miss fraction.
    pub fn with_miss_fraction(miss: f64) -> Self {
        Self {
            miss_fraction: Some(miss),
            optimizations: Vec::new(),
        }
    }
}

/// Complete node evaluation for one kernel on one configuration.
#[derive(Clone, Debug)]
pub struct NodeEvaluation {
    /// Performance-model output.
    pub perf: PerfEstimate,
    /// Derived activity vector.
    pub activity: ActivityVector,
    /// Per-component node power (after optimizations, if any).
    pub power: PowerBreakdown,
}

impl NodeEvaluation {
    /// EHP package power (the quantity under the 160 W budget).
    pub fn package_power(&self) -> Watts {
        self.power.package_total()
    }

    /// Total node power including the external memory system.
    pub fn node_power(&self) -> Watts {
        self.power.total()
    }

    /// Performance per node watt (GFLOP/s per W).
    pub fn efficiency(&self) -> f64 {
        let w = self.node_power().value();
        if w == 0.0 {
            0.0
        } else {
            self.perf.throughput.value() / w
        }
    }
}

/// The top-level node simulator.
#[derive(Clone, Debug, Default)]
pub struct NodeSimulator {
    /// The analytic performance model.
    pub perf_model: PerfModel,
    /// The node power model.
    pub power_model: NodePowerModel,
}

impl NodeSimulator {
    /// Creates a simulator with default (paper-calibrated) models.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives the power-model activity vector from a performance estimate.
    pub fn activity(
        &self,
        config: &EhpConfig,
        profile: &KernelProfile,
        perf: &PerfEstimate,
        miss_fraction: f64,
    ) -> ActivityVector {
        let m = miss_fraction.clamp(0.0, 1.0);
        let traffic = perf.traffic_gbps;
        ActivityVector {
            achieved_gflops: perf.throughput.value(),
            hbm_traffic_gbps: traffic * (1.0 - m),
            ext_traffic_gbps: traffic * m,
            write_fraction: profile.write_fraction,
            nvm_traffic_fraction: config.external.nvm_capacity_fraction(),
            noc_traffic_gbps: traffic * profile.out_of_chiplet_fraction,
            cpu_activity: (profile.serial_fraction * 20.0).clamp(0.0, 1.0),
        }
    }

    /// Evaluates one kernel on one configuration.
    pub fn evaluate(
        &self,
        config: &EhpConfig,
        profile: &KernelProfile,
        options: &EvalOptions,
    ) -> NodeEvaluation {
        let miss = options
            .miss_fraction
            .unwrap_or(profile.ext_traffic_fraction)
            .clamp(0.0, 1.0);
        let perf = self.perf_model.evaluate(config, profile, miss);
        let activity = self.activity(config, profile, &perf, miss);
        let base = self
            .power_model
            .evaluate(config, &activity, VoltageMode::default());
        let power = if options.optimizations.is_empty() {
            base
        } else {
            let ctx = OptimizationContext {
                gpu_clock: config.gpu.clock,
                curve: self.power_model.curve,
            };
            apply_optimizations(&base, &ctx, &options.optimizations)
        };
        NodeEvaluation {
            perf,
            activity,
            power,
        }
    }

    /// Splits a node evaluation into the per-chiplet thermal inputs.
    pub fn chiplet_power(&self, config: &EhpConfig, eval: &NodeEvaluation) -> ChipletPower {
        let n = f64::from(config.gpu.chiplets);
        ChipletPower {
            cu_dynamic_w: eval.power.get(Component::CuDynamic).value() / n,
            cu_static_w: eval.power.get(Component::CuStatic).value() / n,
            dram_dynamic_w: eval.power.get(Component::HbmDynamic).value() / n,
            dram_static_w: eval.power.get(Component::HbmStatic).value() / n,
            interposer_w: (eval.power.get(Component::NocRouters)
                + eval.power.get(Component::NocLinks)
                + eval.power.get(Component::Other))
            .value()
                / n,
        }
    }

    /// Runs the thermal model for an evaluation (Section V-D).
    ///
    /// # Errors
    ///
    /// Returns [`TemperatureError`] if the thermal solve fails to converge.
    pub fn thermal(
        &self,
        config: &EhpConfig,
        eval: &NodeEvaluation,
    ) -> Result<ChipletTemperatures, TemperatureError> {
        ChipletThermalModel::new(self.chiplet_power(config, eval)).solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_workloads::{paper_profiles, profile_for};

    #[test]
    fn package_power_fits_the_budget_at_the_baseline() {
        // The best-mean configuration must be feasible (<= 160 W package)
        // for every workload — that is what made it the paper's pick.
        let sim = NodeSimulator::new();
        let cfg = EhpConfig::paper_baseline();
        for p in paper_profiles() {
            let eval = sim.evaluate(&cfg, &p, &EvalOptions::default());
            let pkg = eval.package_power().value();
            assert!(pkg <= 160.0, "{}: package = {pkg:.1} W", p.name);
            assert!(
                pkg > 60.0,
                "{}: implausibly low package power {pkg:.1} W",
                p.name
            );
        }
    }

    #[test]
    fn optimizations_reduce_power_without_touching_perf() {
        let sim = NodeSimulator::new();
        let cfg = EhpConfig::paper_baseline();
        let p = profile_for("LULESH").unwrap();
        let plain = sim.evaluate(&cfg, &p, &EvalOptions::default());
        let opt = sim.evaluate(&cfg, &p, &EvalOptions::fully_optimized());
        assert!(opt.node_power().value() < plain.node_power().value());
        assert_eq!(opt.perf.throughput, plain.perf.throughput);
        let saved = 1.0 - opt.node_power().value() / plain.node_power().value();
        assert!((0.05..0.35).contains(&saved), "savings = {saved}");
    }

    #[test]
    fn external_memory_power_band_matches_section_v_c() {
        // Paper: external power (modules + SerDes) spans ~40-70 W across
        // kernels on the DRAM-only configuration.
        let sim = NodeSimulator::new();
        let cfg = EhpConfig::paper_baseline();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for p in paper_profiles() {
            let eval = sim.evaluate(&cfg, &p, &EvalOptions::default());
            let ext = eval.power.external_total().value();
            lo = lo.min(ext);
            hi = hi.max(ext);
        }
        assert!((30.0..50.0).contains(&lo), "min external = {lo:.1} W");
        assert!((45.0..115.0).contains(&hi), "max external = {hi:.1} W");
    }

    #[test]
    fn thermals_stay_under_the_dram_limit_at_the_baseline() {
        let sim = NodeSimulator::new();
        let cfg = EhpConfig::paper_baseline();
        for p in paper_profiles() {
            let eval = sim.evaluate(&cfg, &p, &EvalOptions::default());
            let t = sim.thermal(&cfg, &eval).unwrap();
            assert!(
                t.dram_within_limit(),
                "{}: peak DRAM {:.1}",
                p.name,
                t.peak_dram()
            );
            assert!(
                t.peak_dram().value() > 55.0,
                "{}: suspiciously cool",
                p.name
            );
        }
    }

    #[test]
    fn efficiency_is_perf_over_node_power() {
        let sim = NodeSimulator::new();
        let cfg = EhpConfig::paper_baseline();
        let p = profile_for("CoMD").unwrap();
        let eval = sim.evaluate(&cfg, &p, &EvalOptions::default());
        let expect = eval.perf.throughput.value() / eval.node_power().value();
        assert!((eval.efficiency() - expect).abs() < 1e-12);
    }
}

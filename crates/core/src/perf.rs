//! The extended-roofline kernel performance model.
//!
//! Reproduces the scaling behaviour the paper measures in Section IV:
//!
//! - **Compute-intensive** kernels scale with `CUs x frequency` and ignore
//!   bandwidth (Fig. 4).
//! - **Balanced** kernels rise until either resource saturates, then
//!   plateau (Fig. 5).
//! - **Memory-intensive** kernels *decline* past the saturation point:
//!   excess concurrent requests thrash caches and congest the memory
//!   system (Fig. 6).
//!
//! Throughput is `min(compute roof, contended memory roof)` scaled by a
//! latency-exposure factor. Misses to external memory (Fig. 8) lower the
//! effective bandwidth harmonically and raise the average latency.

use ena_model::config::EhpConfig;
use ena_model::kernel::KernelProfile;
use ena_model::units::Gigaflops;

/// Memory-latency assumptions, in GPU cycles at nominal frequency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Average in-package access latency (cycles).
    pub hbm_cycles: f64,
    /// Average external-memory access latency (cycles).
    pub external_cycles: f64,
    /// Extra cycles added by the chiplet organization (TSV + interposer
    /// hops); zero for the monolithic baseline.
    pub chiplet_extra_cycles: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            hbm_cycles: 150.0,
            external_cycles: 500.0,
            chiplet_extra_cycles: 12.0,
        }
    }
}

/// Output of one performance-model evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfEstimate {
    /// Achieved throughput.
    pub throughput: Gigaflops,
    /// The compute roofline (peak x utilization).
    pub compute_roof: Gigaflops,
    /// The contended memory roofline.
    pub memory_roof: Gigaflops,
    /// Latency-exposure multiplier applied (`0..=1`).
    pub latency_factor: f64,
    /// Offered / sustainable in-package traffic ratio (>1 = saturated).
    pub memory_pressure: f64,
    /// Total DRAM-level traffic at the achieved rate, GB/s.
    pub traffic_gbps: f64,
}

impl PerfEstimate {
    /// True if the kernel is limited by memory rather than compute.
    pub fn memory_bound(&self) -> bool {
        self.memory_roof < self.compute_roof
    }
}

/// The analytic performance model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerfModel {
    /// Latency assumptions.
    pub latency: LatencyModel,
}

impl PerfModel {
    /// Evaluates `profile` on `config`, with `miss_fraction` of its DRAM
    /// traffic serviced by external memory (the Fig. 8 knob; pass the
    /// profile's own `ext_traffic_fraction` for capacity-limited runs, or
    /// 0.0 for footprints that fit in-package).
    pub fn evaluate(
        &self,
        config: &EhpConfig,
        profile: &KernelProfile,
        miss_fraction: f64,
    ) -> PerfEstimate {
        let m = miss_fraction.clamp(0.0, 1.0);
        let peak = config.gpu.peak_throughput().value();
        let serial_slowdown = 1.0 + profile.serial_fraction * 10.0;
        let compute_roof = peak * profile.utilization / serial_slowdown;

        let b_hbm = config.hbm.total_bandwidth().value();
        let b_ext = config.external.total_bandwidth().value();
        // Harmonic-mean service bandwidth across the two tiers.
        let b_eff = 1.0 / ((1.0 - m) / b_hbm + m / b_ext);

        // Demand the compute side would generate, GB/s.
        let demand = compute_roof / profile.ops_per_byte;
        // Contention/thrashing: pressure of the offered in-package traffic
        // beyond what the in-package system sustains.
        let pressure = demand / b_hbm;
        let penalty = 1.0 + profile.contention_sensitivity * (pressure - 1.0).max(0.0);
        let memory_roof = b_eff * profile.ops_per_byte / penalty;

        // Latency exposure: irregular kernels lose throughput as average
        // latency grows; parallelism hides the rest.
        let avg_latency = (self.latency.hbm_cycles + self.latency.chiplet_extra_cycles) * (1.0 - m)
            + self.latency.external_cycles * m;
        let reference = LatencyModel::default().hbm_cycles;
        let exposure = profile.latency_sensitivity * (1.0 - profile.parallelism);
        let latency_factor = 1.0 / (1.0 + exposure * avg_latency / reference);

        let throughput = compute_roof.min(memory_roof) * latency_factor;
        PerfEstimate {
            throughput: Gigaflops::new(throughput),
            compute_roof: Gigaflops::new(compute_roof),
            memory_roof: Gigaflops::new(memory_roof),
            latency_factor,
            memory_pressure: pressure,
            traffic_gbps: throughput / profile.ops_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_model::units::{GigabytesPerSec, Megahertz};
    use ena_workloads::profile_for;

    fn config(cus: u32, mhz: f64, tbps: f64) -> EhpConfig {
        EhpConfig::builder()
            .total_cus(cus)
            .gpu_clock(Megahertz::new(mhz))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(tbps))
            .build()
            .expect("valid sweep point")
    }

    fn perf(name: &str, cus: u32, mhz: f64, tbps: f64) -> f64 {
        let p = profile_for(name).unwrap();
        PerfModel::default()
            .evaluate(&config(cus, mhz, tbps), &p, 0.0)
            .throughput
            .value()
    }

    #[test]
    fn maxflops_scales_linearly_and_ignores_bandwidth() {
        // Fig. 4 shape.
        let base = perf("MaxFlops", 192, 1000.0, 3.0);
        let more_cus = perf("MaxFlops", 384, 1000.0, 3.0);
        assert!((more_cus / base - 2.0).abs() < 0.01);
        let more_bw = perf("MaxFlops", 192, 1000.0, 7.0);
        assert!((more_bw / base - 1.0).abs() < 0.01);
    }

    #[test]
    fn balanced_kernel_plateaus_on_low_bandwidth() {
        // Fig. 5 shape: on the 1 TB/s curve CoMD stops scaling; on 6 TB/s
        // it keeps rising.
        let lo_a = perf("CoMD", 224, 1000.0, 1.0);
        let lo_b = perf("CoMD", 384, 1500.0, 1.0);
        let hi_a = perf("CoMD", 224, 1000.0, 6.0);
        let hi_b = perf("CoMD", 384, 1500.0, 6.0);
        let lo_gain = lo_b / lo_a;
        let hi_gain = hi_b / hi_a;
        assert!(hi_gain > lo_gain + 0.3, "lo {lo_gain}, hi {hi_gain}");
        assert!(hi_gain > 1.8, "hi {hi_gain}");
    }

    #[test]
    fn memory_kernel_declines_past_saturation() {
        // Fig. 6 shape: LULESH on 1 TB/s peaks then *drops* as CU-GHz grow.
        let mid = perf("LULESH", 224, 800.0, 1.0);
        let max = perf("LULESH", 384, 1500.0, 1.0);
        assert!(max < mid, "expected decline: mid {mid}, max {max}");
        // And bandwidth helps: same compute, more bandwidth, more perf.
        assert!(perf("LULESH", 224, 800.0, 4.0) > mid);
    }

    #[test]
    fn misses_to_external_memory_degrade_all_but_compute_kernels() {
        // Fig. 8 shape.
        let model = PerfModel::default();
        let cfg = EhpConfig::paper_baseline();
        for name in ["CoMD", "LULESH", "XSBench", "SNAP", "MiniAMR", "HPGMG"] {
            let p = profile_for(name).unwrap();
            let clean = model.evaluate(&cfg, &p, 0.0).throughput.value();
            let dirty = model.evaluate(&cfg, &p, 1.0).throughput.value();
            let degradation = 1.0 - dirty / clean;
            assert!(
                (0.02..0.85).contains(&degradation),
                "{name}: degradation {degradation}"
            );
        }
        let mf = profile_for("MaxFlops").unwrap();
        let clean = model.evaluate(&cfg, &mf, 0.0).throughput.value();
        let dirty = model.evaluate(&cfg, &mf, 1.0).throughput.value();
        assert!((1.0 - dirty / clean).abs() < 0.01, "MaxFlops must be flat");
    }

    #[test]
    fn chiplet_latency_only_hurts_latency_sensitive_kernels() {
        let chiplet = PerfModel::default();
        let mono = PerfModel {
            latency: LatencyModel {
                chiplet_extra_cycles: 0.0,
                ..LatencyModel::default()
            },
        };
        let cfg = EhpConfig::paper_baseline();
        let xs = profile_for("XSBench").unwrap();
        let loss = 1.0
            - chiplet.evaluate(&cfg, &xs, 0.0).throughput.value()
                / mono.evaluate(&cfg, &xs, 0.0).throughput.value();
        assert!(loss > 0.005, "XSBench should feel chiplet latency: {loss}");
        let snap = profile_for("SNAP").unwrap();
        let snap_loss = 1.0
            - chiplet.evaluate(&cfg, &snap, 0.0).throughput.value()
                / mono.evaluate(&cfg, &snap, 0.0).throughput.value();
        assert!(snap_loss < loss, "SNAP hides latency better");
    }

    #[test]
    fn estimates_expose_consistent_intermediates() {
        let cfg = EhpConfig::paper_baseline();
        let p = profile_for("LULESH").unwrap();
        let e = PerfModel::default().evaluate(&cfg, &p, 0.3);
        assert!(e.memory_bound());
        assert!(e.throughput.value() <= e.compute_roof.value());
        assert!(e.latency_factor > 0.0 && e.latency_factor <= 1.0);
        let implied = e.throughput.value() / p.ops_per_byte;
        assert!((e.traffic_gbps - implied).abs() < 1e-9);
    }
}

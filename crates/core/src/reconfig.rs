//! Dynamic resource reconfiguration (paper Section VI).
//!
//! Table II bounds what an *oracle* reconfigurer could gain by retuning
//! CU count, frequency, and bandwidth per kernel. This module makes that
//! concrete: a workload is a sequence of phases, and a
//! [`ReconfigPolicy`] chooses the hardware operating point for each one —
//! statically, reactively (using the previous phase's behaviour, as a real
//! runtime would), or with oracle knowledge. Reconfiguration pays a
//! switching penalty (DVFS relock, power-gate wake-up).

use ena_model::error::ConfigError;
use ena_model::kernel::KernelProfile;
use ena_model::units::{Joules, Seconds};

use crate::dse::{ConfigPoint, DesignSpace, DseError, Explorer};
use crate::node::{EvalOptions, NodeSimulator};

/// One phase of a phased workload.
#[derive(Clone, Debug)]
pub struct Phase {
    /// The kernel running in this phase.
    pub profile: KernelProfile,
    /// Work in the phase, in GFLOPs.
    pub work_gflop: f64,
}

/// How the runtime picks the operating point for the next phase.
pub trait ReconfigPolicy {
    /// Chooses the configuration for the upcoming phase. `previous` is the
    /// profile of the phase that just finished (`None` before the first),
    /// which is all a reactive runtime can observe; `upcoming` is the true
    /// next profile, which only an oracle may use.
    fn configure(
        &mut self,
        previous: Option<&KernelProfile>,
        upcoming: &KernelProfile,
    ) -> ConfigPoint;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Runs every phase at one fixed configuration.
#[derive(Clone, Debug)]
pub struct StaticPolicy(pub ConfigPoint);

impl ReconfigPolicy for StaticPolicy {
    fn configure(&mut self, _: Option<&KernelProfile>, _: &KernelProfile) -> ConfigPoint {
        self.0
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Per-phase selector backed by a precomputed best-config table.
#[derive(Clone, Debug)]
struct BestTable {
    by_app: Vec<(String, ConfigPoint)>,
    fallback: ConfigPoint,
}

impl BestTable {
    fn build(
        explorer: &Explorer,
        space: &DesignSpace,
        profiles: &[KernelProfile],
    ) -> Result<Self, DseError> {
        let result = explorer.explore(space, profiles)?;
        Ok(Self {
            by_app: result
                .per_app
                .iter()
                .map(|a| (a.app.clone(), a.point))
                .collect(),
            fallback: result.best_mean,
        })
    }

    fn lookup(&self, profile: &KernelProfile) -> ConfigPoint {
        self.by_app
            .iter()
            .find(|(name, _)| *name == profile.name)
            .map(|&(_, p)| p)
            .unwrap_or(self.fallback)
    }
}

/// Oracle: retunes to each phase's true best configuration.
#[derive(Clone, Debug)]
pub struct OraclePolicy {
    table: BestTable,
}

impl OraclePolicy {
    /// Precomputes the per-kernel best configurations.
    ///
    /// # Errors
    ///
    /// Propagates [`DseError`] from the underlying exploration.
    pub fn new(
        explorer: &Explorer,
        space: &DesignSpace,
        profiles: &[KernelProfile],
    ) -> Result<Self, DseError> {
        Ok(Self {
            table: BestTable::build(explorer, space, profiles)?,
        })
    }
}

impl ReconfigPolicy for OraclePolicy {
    fn configure(&mut self, _: Option<&KernelProfile>, upcoming: &KernelProfile) -> ConfigPoint {
        self.table.lookup(upcoming)
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// Reactive runtime: tunes to the *previous* phase's kernel — right when
/// phases repeat, one phase behind when they change.
#[derive(Clone, Debug)]
pub struct ReactivePolicy {
    table: BestTable,
}

impl ReactivePolicy {
    /// Precomputes the per-kernel best configurations.
    ///
    /// # Errors
    ///
    /// Propagates [`DseError`] from the underlying exploration.
    pub fn new(
        explorer: &Explorer,
        space: &DesignSpace,
        profiles: &[KernelProfile],
    ) -> Result<Self, DseError> {
        Ok(Self {
            table: BestTable::build(explorer, space, profiles)?,
        })
    }
}

impl ReconfigPolicy for ReactivePolicy {
    fn configure(&mut self, previous: Option<&KernelProfile>, _: &KernelProfile) -> ConfigPoint {
        match previous {
            Some(p) => self.table.lookup(p),
            None => self.table.fallback,
        }
    }

    fn name(&self) -> &'static str {
        "reactive"
    }
}

/// Result of executing a phased workload under a policy.
#[derive(Clone, Debug, PartialEq)]
pub struct ReconfigReport {
    /// Policy name.
    pub policy: &'static str,
    /// Total execution time.
    pub time: Seconds,
    /// Total node energy.
    pub energy: Joules,
    /// Configuration switches performed.
    pub switches: u32,
    /// Per-phase `(config label, phase time in seconds)`.
    pub phases: Vec<(String, f64)>,
}

impl ReconfigReport {
    /// Mean power over the run.
    pub fn avg_power_w(&self) -> f64 {
        if self.time.value() == 0.0 {
            0.0
        } else {
            self.energy.value() / self.time.value()
        }
    }
}

/// Executes `phases` under `policy`, charging `switch_penalty` per
/// configuration change.
///
/// # Errors
///
/// Returns [`ConfigError`] when the policy selects a design point that
/// cannot be materialized as a buildable configuration.
pub fn run_phases(
    sim: &NodeSimulator,
    policy: &mut dyn ReconfigPolicy,
    phases: &[Phase],
    options: &EvalOptions,
    switch_penalty: Seconds,
) -> Result<ReconfigReport, ConfigError> {
    let mut time = Seconds::ZERO;
    let mut energy = Joules::new(0.0);
    let mut switches = 0;
    let mut current: Option<ConfigPoint> = None;
    let mut previous_profile: Option<KernelProfile> = None;
    let mut per_phase = Vec::with_capacity(phases.len());

    for phase in phases {
        let point = policy.configure(previous_profile.as_ref(), &phase.profile);
        if current.is_some_and(|c| c != point) {
            switches += 1;
            time += switch_penalty;
        }
        current = Some(point);

        let config = point.try_to_config()?;
        let eval = sim.evaluate(&config, &phase.profile, options);
        let seconds = phase.work_gflop / eval.perf.throughput.value().max(1e-9);
        time += Seconds::new(seconds);
        energy += eval.node_power().energy_over(Seconds::new(seconds));
        per_phase.push((point.label(), seconds));
        previous_profile = Some(phase.profile.clone());
    }

    Ok(ReconfigReport {
        policy: policy.name(),
        time,
        energy,
        switches,
        phases: per_phase,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_workloads::{paper_profiles, profile_for};

    fn phased_workload() -> Vec<Phase> {
        // Runs of compute- and memory-dominated phases, as the paper's
        // "application phases" discussion envisions. Runs of three keep a
        // reactive (one-phase-behind) runtime right most of the time.
        let comd = profile_for("CoMD").unwrap();
        let lulesh = profile_for("LULESH").unwrap();
        let mut phases = Vec::new();
        for _ in 0..3 {
            for _ in 0..3 {
                phases.push(Phase {
                    profile: comd.clone(),
                    work_gflop: 50_000.0,
                });
            }
            for _ in 0..3 {
                phases.push(Phase {
                    profile: lulesh.clone(),
                    work_gflop: 10_000.0,
                });
            }
        }
        phases
    }

    fn setup() -> (NodeSimulator, Explorer, DesignSpace, Vec<KernelProfile>) {
        (
            NodeSimulator::new(),
            Explorer::default(),
            DesignSpace::coarse(),
            paper_profiles(),
        )
    }

    #[test]
    fn oracle_beats_static_beats_nothing() {
        let (sim, explorer, space, profiles) = setup();
        let phases = phased_workload();
        let options = explorer.options.clone();
        let mean = explorer.explore(&space, &profiles).unwrap().best_mean;

        let static_r = run_phases(
            &sim,
            &mut StaticPolicy(mean),
            &phases,
            &options,
            Seconds::new(1e-3),
        )
        .unwrap();
        let oracle_r = run_phases(
            &sim,
            &mut OraclePolicy::new(&explorer, &space, &profiles).unwrap(),
            &phases,
            &options,
            Seconds::new(1e-3),
        )
        .unwrap();
        assert!(
            oracle_r.time.value() < static_r.time.value(),
            "oracle {} vs static {}",
            oracle_r.time,
            static_r.time
        );
        assert_eq!(static_r.switches, 0);
        assert!(oracle_r.switches > 0);
    }

    #[test]
    fn reactive_sits_between_static_and_oracle() {
        let (sim, explorer, space, profiles) = setup();
        let phases = phased_workload();
        let options = explorer.options.clone();
        let mean = explorer.explore(&space, &profiles).unwrap().best_mean;

        let t = |r: &ReconfigReport| r.time.value();
        let static_r = run_phases(
            &sim,
            &mut StaticPolicy(mean),
            &phases,
            &options,
            Seconds::ZERO,
        )
        .unwrap();
        let reactive_r = run_phases(
            &sim,
            &mut ReactivePolicy::new(&explorer, &space, &profiles).unwrap(),
            &phases,
            &options,
            Seconds::ZERO,
        )
        .unwrap();
        let oracle_r = run_phases(
            &sim,
            &mut OraclePolicy::new(&explorer, &space, &profiles).unwrap(),
            &phases,
            &options,
            Seconds::ZERO,
        )
        .unwrap();
        assert!(t(&oracle_r) <= t(&reactive_r) + 1e-12);
        assert!(
            t(&reactive_r) < t(&static_r) * 1.05,
            "reactive should roughly track"
        );
    }

    #[test]
    fn switch_penalties_erode_the_benefit() {
        let (sim, explorer, space, profiles) = setup();
        let phases = phased_workload();
        let options = explorer.options.clone();
        let cheap = run_phases(
            &sim,
            &mut OraclePolicy::new(&explorer, &space, &profiles).unwrap(),
            &phases,
            &options,
            Seconds::new(1e-6),
        )
        .unwrap();
        let expensive = run_phases(
            &sim,
            &mut OraclePolicy::new(&explorer, &space, &profiles).unwrap(),
            &phases,
            &options,
            Seconds::new(10.0),
        )
        .unwrap();
        assert!(expensive.time.value() > cheap.time.value());
        assert_eq!(expensive.switches, cheap.switches);
    }

    #[test]
    fn report_accounting_is_consistent() {
        let (sim, explorer, space, profiles) = setup();
        let phases = phased_workload();
        let r = run_phases(
            &sim,
            &mut OraclePolicy::new(&explorer, &space, &profiles).unwrap(),
            &phases,
            &explorer.options,
            Seconds::ZERO,
        )
        .unwrap();
        assert_eq!(r.phases.len(), phases.len());
        let phase_sum: f64 = r.phases.iter().map(|(_, t)| t).sum();
        assert!((phase_sum - r.time.value()).abs() < 1e-9);
        assert!(r.avg_power_w() > 50.0 && r.avg_power_w() < 400.0);
    }
}

//! System-level scaling to the full exascale machine (Section V-F).
//!
//! The paper multiplies node-level results by the 100,000-node system size
//! and checks them against the exascale targets: >= 1 exaflop within a
//! 20 MW envelope. Fig. 14 sweeps MaxFlops performance and power against
//! the CU count.

use ena_model::config::{EhpConfig, SYSTEM_NODE_COUNT};
use ena_model::kernel::KernelProfile;
use ena_model::units::Watts;

use crate::node::{EvalOptions, NodeSimulator};

/// The exascale machine's system-level targets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExascaleTargets {
    /// Required system throughput in exaflops.
    pub exaflops: f64,
    /// System power envelope in megawatts.
    pub power_mw: f64,
}

impl Default for ExascaleTargets {
    fn default() -> Self {
        Self {
            exaflops: 1.0,
            power_mw: 20.0,
        }
    }
}

/// System-level projection of one node evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemProjection {
    /// Nodes in the machine.
    pub nodes: u64,
    /// Achieved system throughput in exaflops.
    pub exaflops: f64,
    /// Total compute power in megawatts (node power x nodes).
    pub power_mw: f64,
    /// Node throughput in teraflops.
    pub node_teraflops: f64,
    /// Node power.
    pub node_power: Watts,
}

impl SystemProjection {
    /// True if the projection meets `targets`.
    pub fn meets(&self, targets: &ExascaleTargets) -> bool {
        self.exaflops >= targets.exaflops && self.power_mw <= targets.power_mw
    }

    /// Applies a communication-derating factor to the linear projection.
    ///
    /// The paper's analytic scale-out multiplies node throughput by the
    /// node count, which silently assumes inter-node communication is
    /// free. `efficiency` (clamped to `[0, 1]`) is the fraction of each
    /// bulk-synchronous iteration spent computing rather than waiting on
    /// collectives; achieved exaflops scale by it, while power does not
    /// (nodes blocked on the fabric still burn power). The simulated
    /// inter-node fabric (`ena-fabric`) produces exactly this factor, so
    /// `project_system(..).derated(e)` is the analytic side of the
    /// analytic-vs-simulated cross-check.
    pub fn derated(&self, efficiency: f64) -> SystemProjection {
        SystemProjection {
            exaflops: self.exaflops * efficiency.clamp(0.0, 1.0),
            ..*self
        }
    }
}

/// Projects one kernel on one node configuration to the full machine.
pub fn project_system(
    sim: &NodeSimulator,
    config: &EhpConfig,
    profile: &KernelProfile,
    options: &EvalOptions,
    nodes: u64,
) -> SystemProjection {
    let eval = sim.evaluate(config, profile, options);
    let node_tf = eval.perf.throughput.teraflops();
    let node_power = eval.node_power();
    SystemProjection {
        nodes,
        exaflops: node_tf * nodes as f64 / 1e6,
        power_mw: node_power.value() * nodes as f64 / 1e6,
        node_teraflops: node_tf,
        node_power,
    }
}

/// Projects with the paper's 100,000-node machine.
pub fn project_paper_system(
    sim: &NodeSimulator,
    config: &EhpConfig,
    profile: &KernelProfile,
    options: &EvalOptions,
) -> SystemProjection {
    project_system(sim, config, profile, options, SYSTEM_NODE_COUNT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_model::units::{GigabytesPerSec, Megahertz};
    use ena_workloads::profile_for;

    fn maxflops_projection(cus: u32) -> SystemProjection {
        // Fig. 14's sweep point: 1 GHz, 1 TB/s.
        let config = EhpConfig::builder()
            .total_cus(cus)
            .gpu_clock(Megahertz::new(1000.0))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(1.0))
            .build()
            .unwrap();
        project_paper_system(
            &NodeSimulator::new(),
            &config,
            &profile_for("MaxFlops").unwrap(),
            &EvalOptions::with_miss_fraction(0.0),
        )
    }

    #[test]
    fn the_machine_exceeds_an_exaflop_at_320_cus() {
        // Paper: 18.6 TF/node -> 1.86 EF at 11.1 MW.
        let p = maxflops_projection(320);
        assert!(
            (17.0..20.0).contains(&p.node_teraflops),
            "node TF = {}",
            p.node_teraflops
        );
        assert!(p.exaflops > 1.5, "system EF = {}", p.exaflops);
        assert!(
            (8.0..18.0).contains(&p.power_mw),
            "system MW = {}",
            p.power_mw
        );
        assert!(p.meets(&ExascaleTargets {
            exaflops: 1.0,
            power_mw: 20.0
        }));
    }

    #[test]
    fn performance_scales_linearly_with_cu_count() {
        // Fig. 14's left panel.
        let lo = maxflops_projection(192);
        let hi = maxflops_projection(320);
        let ratio = hi.exaflops / lo.exaflops;
        assert!((ratio - 320.0 / 192.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn power_grows_with_cu_count_but_sublinearly() {
        // Fig. 14's right panel: fixed components flatten the slope.
        let lo = maxflops_projection(192);
        let hi = maxflops_projection(320);
        let ratio = hi.power_mw / lo.power_mw;
        assert!(ratio > 1.1 && ratio < 320.0 / 192.0, "ratio = {ratio}");
    }

    #[test]
    fn derating_scales_throughput_but_not_power() {
        let p = maxflops_projection(320);
        let d = p.derated(0.9);
        assert!((d.exaflops - p.exaflops * 0.9).abs() < 1e-12);
        assert_eq!(d.power_mw, p.power_mw);
        assert_eq!(d.nodes, p.nodes);
        // Out-of-range factors clamp instead of inventing throughput.
        assert_eq!(p.derated(1.5).exaflops, p.exaflops);
        assert_eq!(p.derated(-0.5).exaflops, 0.0);
    }

    #[test]
    fn targets_reject_overweight_machines() {
        let p = SystemProjection {
            nodes: 100_000,
            exaflops: 1.5,
            power_mw: 25.0,
            node_teraflops: 15.0,
            node_power: Watts::new(250.0),
        };
        assert!(!p.meets(&ExascaleTargets::default()));
    }
}

//! Design-space exploration (paper Sections V and VI).
//!
//! The paper sweeps "over a thousand" hardware configurations — CU count,
//! GPU frequency, in-package bandwidth — and reports the configuration
//! with the best mean performance under the 160 W package budget
//! (320 CUs / 1 GHz / 3 TB/s), plus the per-application oracle
//! configurations of Table II.

use ena_model::config::{EhpConfig, MAX_CUS, NODE_POWER_BUDGET};
use ena_model::kernel::KernelProfile;
use ena_model::units::{GigabytesPerSec, Megahertz, Watts};

use crate::node::{EvalOptions, NodeEvaluation, NodeSimulator};

/// One point in the hardware design space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfigPoint {
    /// Total CU count.
    pub cus: u32,
    /// GPU clock.
    pub clock: Megahertz,
    /// Aggregate in-package bandwidth.
    pub bandwidth: GigabytesPerSec,
}

impl ConfigPoint {
    /// Materializes the point as a full configuration.
    pub fn to_config(self) -> EhpConfig {
        EhpConfig::builder()
            .total_cus(self.cus)
            .gpu_clock(self.clock)
            .hbm_bandwidth(self.bandwidth)
            .build()
            .expect("design-space points are valid")
    }

    /// `CUs / MHz / TB/s` display form used by Table II.
    pub fn label(&self) -> String {
        format!(
            "{} / {} / {}",
            self.cus,
            self.clock.value() as u32,
            self.bandwidth.terabytes_per_sec()
        )
    }
}

/// The swept design space.
#[derive(Clone, Debug)]
pub struct DesignSpace {
    /// CU counts to sweep.
    pub cu_counts: Vec<u32>,
    /// GPU clocks to sweep.
    pub clocks: Vec<Megahertz>,
    /// In-package bandwidths to sweep.
    pub bandwidths: Vec<GigabytesPerSec>,
}

impl DesignSpace {
    /// The paper's sweep: 192-384 CUs in chiplet-sized steps, 600-1500 MHz
    /// in 25 MHz steps, 1-7 TB/s — over a thousand configurations.
    pub fn paper() -> Self {
        Self {
            cu_counts: (192..=MAX_CUS).step_by(32).collect(),
            clocks: (600..=1500)
                .step_by(25)
                .map(|f| Megahertz::new(f64::from(f)))
                .collect(),
            bandwidths: (1..=7)
                .map(|t| GigabytesPerSec::from_terabytes_per_sec(f64::from(t)))
                .collect(),
        }
    }

    /// A coarser sweep for fast tests (100 MHz steps).
    pub fn coarse() -> Self {
        Self {
            clocks: (600..=1500)
                .step_by(100)
                .map(|f| Megahertz::new(f64::from(f)))
                .collect(),
            ..Self::paper()
        }
    }

    /// All points in the space.
    pub fn points(&self) -> Vec<ConfigPoint> {
        let mut v = Vec::with_capacity(self.len());
        for &cus in &self.cu_counts {
            for &clock in &self.clocks {
                for &bandwidth in &self.bandwidths {
                    v.push(ConfigPoint {
                        cus,
                        clock,
                        bandwidth,
                    });
                }
            }
        }
        v
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.cu_counts.len() * self.clocks.len() * self.bandwidths.len()
    }

    /// True if the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The best configuration found for one application.
#[derive(Clone, Debug)]
pub struct AppBest {
    /// Application name.
    pub app: String,
    /// Winning configuration.
    pub point: ConfigPoint,
    /// Throughput at the winning point (GFLOP/s).
    pub throughput: f64,
    /// Percent improvement over the best-mean configuration.
    pub benefit_over_mean_pct: f64,
}

/// Full exploration result.
#[derive(Clone, Debug)]
pub struct DseResult {
    /// The best-mean configuration.
    pub best_mean: ConfigPoint,
    /// Per-application evaluations at the best-mean point.
    pub mean_config_throughput: Vec<(String, f64)>,
    /// Per-application oracle configurations (Table II).
    pub per_app: Vec<AppBest>,
    /// Points swept.
    pub evaluated: usize,
    /// Points feasible under the budget for every application.
    pub feasible: usize,
}

/// The design-space explorer.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Node simulator used for evaluations.
    pub sim: NodeSimulator,
    /// Package power budget (paper: 160 W).
    pub budget: Watts,
    /// Evaluation options (miss model, power optimizations).
    pub options: EvalOptions,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            sim: NodeSimulator::new(),
            budget: NODE_POWER_BUDGET,
            options: EvalOptions::with_miss_fraction(0.15),
        }
    }
}

impl Explorer {
    /// Evaluates every profile at `point`, or `None` if any application
    /// busts the package budget there.
    fn evaluate_point(
        &self,
        point: ConfigPoint,
        profiles: &[KernelProfile],
    ) -> Option<Vec<NodeEvaluation>> {
        let config = point.to_config();
        let evals: Vec<NodeEvaluation> = profiles
            .iter()
            .map(|p| self.sim.evaluate(&config, p, &self.options))
            .collect();
        if evals
            .iter()
            .all(|e| e.package_power().value() <= self.budget.value())
        {
            Some(evals)
        } else {
            None
        }
    }

    /// Sweeps the space and returns the best-mean and per-app results.
    ///
    /// # Panics
    ///
    /// Panics if `space` or `profiles` is empty, or no point is feasible.
    pub fn explore(&self, space: &DesignSpace, profiles: &[KernelProfile]) -> DseResult {
        assert!(!space.is_empty(), "empty design space");
        assert!(!profiles.is_empty(), "no profiles to evaluate");

        let points = space.points();
        // Feasible evaluations per point.
        let mut feasible: Vec<(ConfigPoint, Vec<NodeEvaluation>)> = Vec::new();
        for &point in &points {
            if let Some(evals) = self.evaluate_point(point, profiles) {
                feasible.push((point, evals));
            }
        }
        assert!(
            !feasible.is_empty(),
            "no feasible configuration under the budget"
        );

        // Per-app maxima across feasible points, for normalization.
        let mut app_max = vec![0.0f64; profiles.len()];
        for (_, evals) in &feasible {
            for (i, e) in evals.iter().enumerate() {
                app_max[i] = app_max[i].max(e.perf.throughput.value());
            }
        }

        // Best mean: geometric mean of normalized per-app throughput.
        let mut best_mean = feasible[0].0;
        let mut best_score = f64::MIN;
        let mut best_evals: Option<&Vec<NodeEvaluation>> = None;
        for (point, evals) in &feasible {
            let score: f64 = evals
                .iter()
                .enumerate()
                .map(|(i, e)| (e.perf.throughput.value() / app_max[i]).max(1e-12).ln())
                .sum::<f64>()
                / evals.len() as f64;
            if score > best_score {
                best_score = score;
                best_mean = *point;
                best_evals = Some(evals);
            }
        }
        let best_evals = best_evals.expect("at least one feasible point");
        let mean_config_throughput: Vec<(String, f64)> = profiles
            .iter()
            .zip(best_evals)
            .map(|(p, e)| (p.name.clone(), e.perf.throughput.value()))
            .collect();

        // Per-app oracle: each app may pick any point feasible *for it*
        // (Table II's dynamic-reconfiguration bound).
        let mut per_app = Vec::with_capacity(profiles.len());
        for (i, profile) in profiles.iter().enumerate() {
            let mut best_point = best_mean;
            let mut best_tp = 0.0f64;
            for &point in &points {
                let config = point.to_config();
                let eval = self.sim.evaluate(&config, profile, &self.options);
                if eval.package_power().value() <= self.budget.value()
                    && eval.perf.throughput.value() > best_tp
                {
                    best_tp = eval.perf.throughput.value();
                    best_point = point;
                }
            }
            let mean_tp = mean_config_throughput[i].1;
            per_app.push(AppBest {
                app: profile.name.clone(),
                point: best_point,
                throughput: best_tp,
                benefit_over_mean_pct: 100.0 * (best_tp / mean_tp - 1.0),
            });
        }

        DseResult {
            best_mean,
            mean_config_throughput,
            per_app,
            evaluated: points.len(),
            feasible: feasible.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_workloads::paper_profiles;

    #[test]
    fn paper_space_has_over_a_thousand_points() {
        let space = DesignSpace::paper();
        assert!(space.len() > 1000, "{} points", space.len());
    }

    #[test]
    fn explorer_finds_the_papers_best_mean_region() {
        let result = Explorer::default().explore(&DesignSpace::coarse(), &paper_profiles());
        // Paper: 320 CUs / 1000 MHz / 3 TB/s. Accept the immediate
        // neighborhood — the models are calibrated, not fitted.
        let p = result.best_mean;
        assert!((288..=384).contains(&p.cus), "best-mean CUs = {}", p.cus);
        assert!(
            (900.0..=1200.0).contains(&p.clock.value()),
            "best-mean clock = {}",
            p.clock
        );
        let tbps = p.bandwidth.terabytes_per_sec();
        assert!((2.0..=4.0).contains(&tbps), "best-mean bandwidth = {tbps}");
    }

    #[test]
    fn per_app_bests_follow_table_ii_structure() {
        let result = Explorer::default().explore(&DesignSpace::coarse(), &paper_profiles());
        let best = |name: &str| {
            result
                .per_app
                .iter()
                .find(|a| a.app == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        // MaxFlops: near-max CUs, minimal bandwidth (paper: 384/925/1).
        let mf = best("MaxFlops");
        assert!(mf.point.cus >= 352, "MaxFlops CUs = {}", mf.point.cus);
        assert!(mf.point.bandwidth.terabytes_per_sec() <= 2.0);
        // Memory-intensive apps provision more bandwidth than the mean
        // config's 3 TB/s.
        for name in ["LULESH", "MiniAMR", "XSBench"] {
            let b = best(name);
            assert!(
                b.point.bandwidth.terabytes_per_sec() >= 3.0,
                "{name}: {}",
                b.point.label()
            );
        }
        // Every oracle config beats (or at worst ties) the mean config.
        for a in &result.per_app {
            assert!(
                a.benefit_over_mean_pct >= -1e-9,
                "{}: {}",
                a.app,
                a.benefit_over_mean_pct
            );
        }
        // And some app gains double digits (Table II: 10.7-47.3 %).
        assert!(result
            .per_app
            .iter()
            .any(|a| a.benefit_over_mean_pct > 10.0));
    }

    #[test]
    fn budget_prunes_the_space() {
        let result = Explorer::default().explore(&DesignSpace::coarse(), &paper_profiles());
        assert!(result.feasible < result.evaluated);
        assert!(result.feasible > 0);
    }

    #[test]
    fn tighter_budgets_pick_smaller_configs() {
        let space = DesignSpace::coarse();
        let profiles = paper_profiles();
        let normal = Explorer::default().explore(&space, &profiles);
        let tight = Explorer {
            budget: Watts::new(110.0),
            ..Explorer::default()
        }
        .explore(&space, &profiles);
        let score = |p: &ConfigPoint| f64::from(p.cus) * p.clock.value();
        assert!(score(&tight.best_mean) < score(&normal.best_mean));
    }
}

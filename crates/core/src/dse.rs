//! Design-space exploration (paper Sections V and VI).
//!
//! The paper sweeps "over a thousand" hardware configurations — CU count,
//! GPU frequency, in-package bandwidth — and reports the configuration
//! with the best mean performance under the 160 W package budget
//! (320 CUs / 1 GHz / 3 TB/s), plus the per-application oracle
//! configurations of Table II.

use ena_model::config::{EhpConfig, MAX_CUS, NODE_POWER_BUDGET};
use ena_model::error::ConfigError;
use ena_model::kernel::KernelProfile;
use ena_model::units::{GigabytesPerSec, Megahertz, Watts};
use ena_thermal::DramTempEstimator;

use crate::node::{EvalOptions, NodeSimulator};

/// An exploration that cannot produce a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DseError {
    /// The design space has no points.
    EmptySpace,
    /// There are no application profiles to evaluate.
    EmptyProfiles,
    /// No point satisfies the package power budget for every application.
    NoFeasiblePoint,
}

impl core::fmt::Display for DseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DseError::EmptySpace => f.write_str("design space has no points"),
            DseError::EmptyProfiles => f.write_str("no application profiles to evaluate"),
            DseError::NoFeasiblePoint => {
                f.write_str("no configuration is feasible under the package power budget")
            }
        }
    }
}

impl std::error::Error for DseError {}

/// One point in the hardware design space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfigPoint {
    /// Total CU count.
    pub cus: u32,
    /// GPU clock.
    pub clock: Megahertz,
    /// Aggregate in-package bandwidth.
    pub bandwidth: GigabytesPerSec,
}

impl ConfigPoint {
    /// Materializes the point as a full configuration.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`ConfigError`] when the point describes a
    /// machine that cannot be built (e.g. a CU count no chiplet split
    /// realizes). Sweep layers treat such points as infeasible rather
    /// than fatal.
    pub fn try_to_config(self) -> Result<EhpConfig, ConfigError> {
        EhpConfig::builder()
            .total_cus(self.cus)
            .gpu_clock(self.clock)
            .hbm_bandwidth(self.bandwidth)
            .build()
    }

    /// `CUs / MHz / TB/s` display form used by Table II.
    pub fn label(&self) -> String {
        format!(
            "{} / {} / {}",
            self.cus,
            self.clock.value() as u32,
            self.bandwidth.terabytes_per_sec()
        )
    }
}

/// The swept design space.
#[derive(Clone, Debug)]
pub struct DesignSpace {
    /// CU counts to sweep.
    pub cu_counts: Vec<u32>,
    /// GPU clocks to sweep.
    pub clocks: Vec<Megahertz>,
    /// In-package bandwidths to sweep.
    pub bandwidths: Vec<GigabytesPerSec>,
}

impl DesignSpace {
    /// The paper's sweep: 192-384 CUs in chiplet-sized steps, 600-1500 MHz
    /// in 25 MHz steps, 1-7 TB/s — over a thousand configurations.
    pub fn paper() -> Self {
        Self {
            cu_counts: (192..=MAX_CUS).step_by(32).collect(),
            clocks: (600..=1500)
                .step_by(25)
                .map(|f| Megahertz::new(f64::from(f)))
                .collect(),
            bandwidths: (1..=7)
                .map(|t| GigabytesPerSec::from_terabytes_per_sec(f64::from(t)))
                .collect(),
        }
    }

    /// A coarser sweep for fast tests (100 MHz steps).
    pub fn coarse() -> Self {
        Self {
            clocks: (600..=1500)
                .step_by(100)
                .map(|f| Megahertz::new(f64::from(f)))
                .collect(),
            ..Self::paper()
        }
    }

    /// All points in the space.
    pub fn points(&self) -> Vec<ConfigPoint> {
        let mut v = Vec::with_capacity(self.len());
        for &cus in &self.cu_counts {
            for &clock in &self.clocks {
                for &bandwidth in &self.bandwidths {
                    v.push(ConfigPoint {
                        cus,
                        clock,
                        bandwidth,
                    });
                }
            }
        }
        v
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.cu_counts.len() * self.clocks.len() * self.bandwidths.len()
    }

    /// True if the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The observables one node evaluation contributes to the sweep
/// reductions, in plain `f64` form so records are cheap to store, hash,
/// and round-trip through a cache bit-exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointEval {
    /// Achieved throughput (GFLOP/s).
    pub throughput: f64,
    /// Package power (W), the feasibility axis.
    pub package_power: f64,
    /// Estimated peak DRAM temperature (°C) via
    /// [`DramTempEstimator`](ena_thermal::DramTempEstimator).
    pub peak_dram_c: f64,
}

/// One design point with its per-profile evaluations, in profile order.
#[derive(Clone, Debug, PartialEq)]
pub struct PointRecord {
    /// The evaluated design point.
    pub point: ConfigPoint,
    /// One [`PointEval`] per profile, in the profiles' order.
    pub evals: Vec<PointEval>,
}

/// Per-app throughput maxima across the given records — the
/// normalization base of the geometric-mean score.
pub fn app_maxima<'a>(
    records: impl IntoIterator<Item = &'a PointRecord>,
    n_apps: usize,
) -> Vec<f64> {
    let mut app_max = vec![0.0f64; n_apps];
    for record in records {
        for (i, e) in record.evals.iter().enumerate() {
            app_max[i] = app_max[i].max(e.throughput);
        }
    }
    app_max
}

/// Geometric-mean score of one record's evals against per-app maxima:
/// mean of `ln(throughput / max)` with the throughput ratio floored at
/// `1e-12` so a zero-throughput app cannot produce `-inf`.
pub fn geomean_score(evals: &[PointEval], app_max: &[f64]) -> f64 {
    evals
        .iter()
        .enumerate()
        .map(|(i, e)| (e.throughput / app_max[i]).max(1e-12).ln())
        .sum::<f64>()
        / evals.len() as f64
}

/// The best configuration found for one application.
#[derive(Clone, Debug, PartialEq)]
pub struct AppBest {
    /// Application name.
    pub app: String,
    /// Winning configuration.
    pub point: ConfigPoint,
    /// Throughput at the winning point (GFLOP/s).
    pub throughput: f64,
    /// Percent improvement over the best-mean configuration.
    pub benefit_over_mean_pct: f64,
}

/// Full exploration result.
#[derive(Clone, Debug, PartialEq)]
pub struct DseResult {
    /// The best-mean configuration.
    pub best_mean: ConfigPoint,
    /// Per-application evaluations at the best-mean point.
    pub mean_config_throughput: Vec<(String, f64)>,
    /// Per-application oracle configurations (Table II).
    pub per_app: Vec<AppBest>,
    /// Points swept.
    pub evaluated: usize,
    /// Points feasible under the budget for every application.
    pub feasible: usize,
}

/// The design-space explorer.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Node simulator used for evaluations.
    pub sim: NodeSimulator,
    /// Package power budget (paper: 160 W).
    pub budget: Watts,
    /// Evaluation options (miss model, power optimizations).
    pub options: EvalOptions,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            sim: NodeSimulator::new(),
            budget: NODE_POWER_BUDGET,
            options: EvalOptions::with_miss_fraction(0.15),
        }
    }
}

impl Explorer {
    /// Evaluates every profile at `point`.
    ///
    /// This is the pure per-point kernel of the exploration: no shared
    /// state, no ordering dependence. The sequential [`Explorer::explore`]
    /// and the parallel `ena-sweep` engine both call it, which is what
    /// makes their results byte-identical by construction.
    pub fn evaluate_point(&self, point: ConfigPoint, profiles: &[KernelProfile]) -> PointRecord {
        let Ok(config) = point.try_to_config() else {
            // An unbuildable point is infeasible by definition: infinite
            // package power fails every budget check, so the reductions
            // prune it without special cases.
            let evals = profiles
                .iter()
                .map(|_| PointEval {
                    throughput: 0.0,
                    package_power: f64::INFINITY,
                    peak_dram_c: 0.0,
                })
                .collect();
            return PointRecord { point, evals };
        };
        let evals = profiles
            .iter()
            .map(|p| {
                let eval = self.sim.evaluate(&config, p, &self.options);
                PointEval {
                    throughput: eval.perf.throughput.value(),
                    package_power: eval.package_power().value(),
                    peak_dram_c: DramTempEstimator::peak_dram(
                        &self.sim.chiplet_power(&config, &eval),
                    )
                    .value(),
                }
            })
            .collect();
        PointRecord { point, evals }
    }

    /// True if every application fits the package budget at this record.
    pub fn is_feasible(&self, record: &PointRecord) -> bool {
        record
            .evals
            .iter()
            .all(|e| e.package_power <= self.budget.value())
    }

    /// Reduces per-point records (in design-space point order) to the
    /// best-mean and per-app oracle results.
    ///
    /// Pure function of its inputs: feeding it records produced by
    /// [`Explorer::evaluate_point`] in point order reproduces
    /// [`Explorer::explore`] exactly, whatever produced the records.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptySpace`] / [`DseError::EmptyProfiles`] on
    /// empty inputs and [`DseError::NoFeasiblePoint`] when the budget
    /// rejects every record.
    pub fn reduce(
        &self,
        records: &[PointRecord],
        profiles: &[KernelProfile],
    ) -> Result<DseResult, DseError> {
        if records.is_empty() {
            return Err(DseError::EmptySpace);
        }
        if profiles.is_empty() {
            return Err(DseError::EmptyProfiles);
        }

        let feasible: Vec<&PointRecord> = records.iter().filter(|r| self.is_feasible(r)).collect();

        // Per-app maxima across feasible points, for normalization.
        let app_max = app_maxima(feasible.iter().copied(), profiles.len());

        // Best mean: geometric mean of normalized per-app throughput.
        // Strict `>` keeps the earliest point on ties, matching the
        // sequential sweep order.
        let Some((_, best_record)) = feasible
            .iter()
            .map(|&r| (geomean_score(&r.evals, &app_max), r))
            .reduce(|best, cand| if cand.0 > best.0 { cand } else { best })
        else {
            return Err(DseError::NoFeasiblePoint);
        };
        let best_mean = best_record.point;
        let best_evals: &[PointEval] = &best_record.evals;
        let mean_config_throughput: Vec<(String, f64)> = profiles
            .iter()
            .zip(best_evals)
            .map(|(p, e)| (p.name.clone(), e.throughput))
            .collect();

        // Per-app oracle: each app may pick any point feasible *for it*
        // (Table II's dynamic-reconfiguration bound).
        let mut per_app = Vec::with_capacity(profiles.len());
        for (i, profile) in profiles.iter().enumerate() {
            let mut best_point = best_mean;
            let mut best_tp = 0.0f64;
            for record in records {
                let e = &record.evals[i];
                if e.package_power <= self.budget.value() && e.throughput > best_tp {
                    best_tp = e.throughput;
                    best_point = record.point;
                }
            }
            let mean_tp = mean_config_throughput[i].1;
            per_app.push(AppBest {
                app: profile.name.clone(),
                point: best_point,
                throughput: best_tp,
                benefit_over_mean_pct: 100.0 * (best_tp / mean_tp - 1.0),
            });
        }

        Ok(DseResult {
            best_mean,
            mean_config_throughput,
            per_app,
            evaluated: records.len(),
            feasible: feasible.len(),
        })
    }

    /// Sweeps the space and returns the best-mean and per-app results.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptySpace`] / [`DseError::EmptyProfiles`] on
    /// empty inputs and [`DseError::NoFeasiblePoint`] when no point fits
    /// the budget.
    pub fn explore(
        &self,
        space: &DesignSpace,
        profiles: &[KernelProfile],
    ) -> Result<DseResult, DseError> {
        if space.is_empty() {
            return Err(DseError::EmptySpace);
        }
        if profiles.is_empty() {
            return Err(DseError::EmptyProfiles);
        }
        let records: Vec<PointRecord> = space
            .points()
            .into_iter()
            .map(|point| self.evaluate_point(point, profiles))
            .collect();
        self.reduce(&records, profiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_workloads::paper_profiles;

    #[test]
    fn paper_space_has_over_a_thousand_points() {
        let space = DesignSpace::paper();
        assert!(space.len() > 1000, "{} points", space.len());
    }

    #[test]
    fn explorer_finds_the_papers_best_mean_region() {
        let result = Explorer::default()
            .explore(&DesignSpace::coarse(), &paper_profiles())
            .unwrap();
        // Paper: 320 CUs / 1000 MHz / 3 TB/s. Accept the immediate
        // neighborhood — the models are calibrated, not fitted.
        let p = result.best_mean;
        assert!((288..=384).contains(&p.cus), "best-mean CUs = {}", p.cus);
        assert!(
            (900.0..=1200.0).contains(&p.clock.value()),
            "best-mean clock = {}",
            p.clock
        );
        let tbps = p.bandwidth.terabytes_per_sec();
        assert!((2.0..=4.0).contains(&tbps), "best-mean bandwidth = {tbps}");
    }

    #[test]
    fn per_app_bests_follow_table_ii_structure() {
        let result = Explorer::default()
            .explore(&DesignSpace::coarse(), &paper_profiles())
            .unwrap();
        let best = |name: &str| {
            result
                .per_app
                .iter()
                .find(|a| a.app == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        // MaxFlops: near-max CUs, minimal bandwidth (paper: 384/925/1).
        let mf = best("MaxFlops");
        assert!(mf.point.cus >= 352, "MaxFlops CUs = {}", mf.point.cus);
        assert!(mf.point.bandwidth.terabytes_per_sec() <= 2.0);
        // Memory-intensive apps provision more bandwidth than the mean
        // config's 3 TB/s.
        for name in ["LULESH", "MiniAMR", "XSBench"] {
            let b = best(name);
            assert!(
                b.point.bandwidth.terabytes_per_sec() >= 3.0,
                "{name}: {}",
                b.point.label()
            );
        }
        // Every oracle config beats (or at worst ties) the mean config.
        for a in &result.per_app {
            assert!(
                a.benefit_over_mean_pct >= -1e-9,
                "{}: {}",
                a.app,
                a.benefit_over_mean_pct
            );
        }
        // And some app gains double digits (Table II: 10.7-47.3 %).
        assert!(result
            .per_app
            .iter()
            .any(|a| a.benefit_over_mean_pct > 10.0));
    }

    #[test]
    fn budget_prunes_the_space() {
        let result = Explorer::default()
            .explore(&DesignSpace::coarse(), &paper_profiles())
            .unwrap();
        assert!(result.feasible < result.evaluated);
        assert!(result.feasible > 0);
    }

    #[test]
    fn tighter_budgets_pick_smaller_configs() {
        let space = DesignSpace::coarse();
        let profiles = paper_profiles();
        let normal = Explorer::default().explore(&space, &profiles).unwrap();
        let tight = Explorer {
            budget: Watts::new(110.0),
            ..Explorer::default()
        }
        .explore(&space, &profiles)
        .unwrap();
        let score = |p: &ConfigPoint| f64::from(p.cus) * p.clock.value();
        assert!(score(&tight.best_mean) < score(&normal.best_mean));
    }
}

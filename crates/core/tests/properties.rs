//! Property-based tests for the node performance model and simulator.

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_core::perf::PerfModel;
use ena_model::config::EhpConfig;
use ena_model::units::{GigabytesPerSec, Megahertz};
use ena_testkit::prelude::*;
use ena_workloads::paper_profiles;

fn arbitrary_config() -> impl Strategy<Value = EhpConfig> {
    (24u32..=48, 600.0f64..1500.0, 1.0f64..7.0).prop_map(|(cpc, mhz, tbps)| {
        EhpConfig::builder()
            .total_cus(cpc * 8)
            .gpu_clock(Megahertz::new(mhz))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(tbps))
            .build()
            .expect("in-range config")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn throughput_respects_the_compute_roof(
        config in arbitrary_config(),
        miss in 0.0f64..=1.0,
        app in 0usize..8,
    ) {
        let profile = &paper_profiles()[app];
        let e = PerfModel::default().evaluate(&config, profile, miss);
        prop_assert!(e.throughput.value() <= e.compute_roof.value() + 1e-9);
        prop_assert!(e.throughput.value() >= 0.0);
        prop_assert!(e.latency_factor > 0.0 && e.latency_factor <= 1.0);
    }

    #[test]
    fn more_misses_never_help(
        config in arbitrary_config(),
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
        app in 0usize..8,
    ) {
        let profile = &paper_profiles()[app];
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let model = PerfModel::default();
        let at_lo = model.evaluate(&config, profile, lo).throughput.value();
        let at_hi = model.evaluate(&config, profile, hi).throughput.value();
        prop_assert!(at_hi <= at_lo + 1e-9, "{}: {at_lo} -> {at_hi}", profile.name);
    }

    #[test]
    fn more_bandwidth_never_hurts(
        cpc in 24u32..=48,
        mhz in 600.0f64..1500.0,
        tbps in 1.0f64..6.0,
        extra in 0.1f64..2.0,
        app in 0usize..8,
    ) {
        let profile = &paper_profiles()[app];
        let build = |t: f64| {
            EhpConfig::builder()
                .total_cus(cpc * 8)
                .gpu_clock(Megahertz::new(mhz))
                .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(t))
                .build()
                .unwrap()
        };
        let model = PerfModel::default();
        let base = model.evaluate(&build(tbps), profile, 0.15).throughput.value();
        let more = model.evaluate(&build(tbps + extra), profile, 0.15).throughput.value();
        prop_assert!(more >= base - 1e-9);
    }

    #[test]
    fn node_power_is_positive_and_bounded(
        config in arbitrary_config(),
        miss in 0.0f64..=1.0,
        app in 0usize..8,
    ) {
        let profile = &paper_profiles()[app];
        let sim = NodeSimulator::new();
        let eval = sim.evaluate(&config, profile, &EvalOptions::with_miss_fraction(miss));
        let pkg = eval.package_power().value();
        let node = eval.node_power().value();
        prop_assert!(pkg > 20.0, "package {pkg}");
        prop_assert!(node >= pkg);
        prop_assert!(node < 600.0, "node {node}");
        prop_assert!(eval.efficiency().is_finite());
    }
}

//! Packet-level NoC simulation with link contention.
//!
//! The simulator walks each packet along its precomputed route, modeling
//! per-link serialization and queueing: a link serves one packet at a time,
//! so a packet arriving at a busy link waits for the link's next free
//! cycle. This captures the first-order latency and contention effects the
//! paper's gem5-APU runs account for, at a cost low enough to sweep
//! thousands of configurations.

use crate::energy::{EnergyModel, EnergyTally};
use crate::topology::{NodeId, RouteTable, Topology};
use ena_model::error::DegradeError;

/// Router pipeline delay per traversed link, in cycles.
const ROUTER_PIPELINE_CYCLES: u64 = 1;

/// One message to deliver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Cycle at which the packet enters the network.
    pub inject_cycle: u64,
}

/// Aggregate results of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct NocStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped because no route exists (severed by degradation).
    pub dropped: u64,
    /// Packets whose source and destination share a chiplet site.
    pub local_packets: u64,
    /// Packets that crossed chiplet boundaries.
    pub remote_packets: u64,
    /// Total payload bytes delivered.
    pub total_bytes: u64,
    /// Sum of per-packet latencies (cycles), for averaging.
    pub total_latency_cycles: u64,
    /// Worst observed packet latency.
    pub max_latency_cycles: u64,
    /// Bytes carried per link (indexed like [`Topology::links`]).
    pub link_bytes: Vec<u64>,
    /// Interconnect energy breakdown.
    pub energy: EnergyTally,
    /// Cycle at which the last packet arrived.
    pub makespan_cycles: u64,
}

impl NocStats {
    /// Mean packet latency in cycles.
    pub fn avg_latency_cycles(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.delivered as f64
        }
    }

    /// Fraction of packets that left their source chiplet (paper Fig. 7).
    pub fn out_of_chiplet_fraction(&self) -> f64 {
        let total = self.local_packets + self.remote_packets;
        if total == 0 {
            0.0
        } else {
            self.remote_packets as f64 / total as f64
        }
    }

    /// The busiest link's carried bytes.
    pub fn hottest_link_bytes(&self) -> u64 {
        self.link_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// A packet-level simulator over a [`Topology`].
#[derive(Debug)]
pub struct NocSim<'a> {
    topo: &'a Topology,
    table: RouteTable,
    energy_model: EnergyModel,
    /// Cycle at which each link becomes free.
    link_free: Vec<u64>,
}

impl<'a> NocSim<'a> {
    /// Creates a simulator for `topo` with the default energy model.
    pub fn new(topo: &'a Topology) -> Self {
        Self::with_energy_model(topo, EnergyModel::default())
    }

    /// Creates a simulator with a custom energy model.
    pub fn with_energy_model(topo: &'a Topology, energy_model: EnergyModel) -> Self {
        Self {
            topo,
            table: topo.route_table(),
            energy_model,
            link_free: vec![0; topo.links().len()],
        }
    }

    /// Delivers a batch of packets, returning aggregate statistics.
    ///
    /// Packets are processed in injection order; equal injection cycles are
    /// served in batch order (deterministic). Packets whose destination is
    /// unreachable (a degraded topology severed the route) are counted in
    /// [`NocStats::dropped`]; use [`NocSim::try_run`] to surface the first
    /// such packet as an explicit error instead.
    pub fn run(&mut self, packets: &[Packet]) -> NocStats {
        let mut order: Vec<usize> = (0..packets.len()).collect();
        order.sort_by_key(|&i| (packets[i].inject_cycle, i));

        let mut stats = NocStats {
            link_bytes: vec![0; self.topo.links().len()],
            ..NocStats::default()
        };
        self.link_free.fill(0);

        for &i in &order {
            let p = packets[i];
            if p.src == p.dst {
                continue;
            }
            let Some(route) = self.table.get(p.src, p.dst) else {
                stats.dropped += 1;
                continue;
            };
            let mut now = p.inject_cycle;
            for &li in route {
                let link = self.topo.links()[li];
                let start = now.max(self.link_free[li]);
                let ser = (f64::from(p.bytes) / link.bytes_per_cycle).ceil() as u64;
                self.link_free[li] = start + ser;
                now = start + ser + u64::from(link.latency_cycles) + ROUTER_PIPELINE_CYCLES;
                stats.link_bytes[li] += u64::from(p.bytes);
                self.energy_model
                    .charge_link(&mut stats.energy, link, p.bytes);
            }
            let latency = now - p.inject_cycle;
            stats.delivered += 1;
            stats.total_bytes += u64::from(p.bytes);
            stats.total_latency_cycles += latency;
            stats.max_latency_cycles = stats.max_latency_cycles.max(latency);
            stats.makespan_cycles = stats.makespan_cycles.max(now);

            let src_site = self.topo.kind(p.src).chiplet_site();
            let dst_site = self.topo.kind(p.dst).chiplet_site();
            if src_site.is_some() && src_site == dst_site {
                stats.local_packets += 1;
            } else {
                stats.remote_packets += 1;
            }
        }
        stats
    }

    /// Like [`NocSim::run`], but an unreachable destination is an explicit
    /// error naming the severed pair instead of a silent drop.
    ///
    /// # Errors
    ///
    /// Returns [`DegradeError::Unreachable`] for the first packet with no
    /// surviving route.
    pub fn try_run(&mut self, packets: &[Packet]) -> Result<NocStats, DegradeError> {
        for p in packets {
            if p.src != p.dst && self.table.get(p.src, p.dst).is_none() {
                return Err(DegradeError::Unreachable {
                    src: p.src,
                    dst: p.dst,
                });
            }
        }
        Ok(self.run(packets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeKind;

    fn ehp() -> Topology {
        Topology::ehp(8, 8)
    }

    #[test]
    fn uncontended_latency_equals_route_cost() {
        let topo = ehp();
        let gpu = topo.find(NodeKind::GpuChiplet(0)).unwrap();
        let hbm = topo.find(NodeKind::HbmStack(0)).unwrap();
        let mut sim = NocSim::new(&topo);
        let stats = sim.run(&[Packet {
            src: gpu,
            dst: hbm,
            bytes: 64,
            inject_cycle: 0,
        }]);
        assert_eq!(stats.delivered, 1);
        // One TSV link: 1 cycle serialization + 1 latency + 1 router.
        assert_eq!(stats.avg_latency_cycles(), 3.0);
        assert_eq!(stats.local_packets, 1);
    }

    #[test]
    fn contention_delays_colliding_packets() {
        let topo = ehp();
        let gpu = topo.find(NodeKind::GpuChiplet(0)).unwrap();
        let hbm = topo.find(NodeKind::HbmStack(0)).unwrap();
        let mut sim = NocSim::new(&topo);
        let packets: Vec<Packet> = (0..10)
            .map(|_| Packet {
                src: gpu,
                dst: hbm,
                bytes: 640, // 10 cycles of serialization each
                inject_cycle: 0,
            })
            .collect();
        let stats = sim.run(&packets);
        // The 10th packet waits for 9 predecessors' serialization.
        assert!(stats.max_latency_cycles >= 9 * 10);
        assert!(stats.avg_latency_cycles() > 10.0);
    }

    #[test]
    fn remote_traffic_is_classified_out_of_chiplet() {
        let topo = ehp();
        let gpu = topo.find(NodeKind::GpuChiplet(0)).unwrap();
        let local = topo.find(NodeKind::HbmStack(0)).unwrap();
        let remote = topo.find(NodeKind::HbmStack(6)).unwrap();
        let mut sim = NocSim::new(&topo);
        let stats = sim.run(&[
            Packet {
                src: gpu,
                dst: local,
                bytes: 64,
                inject_cycle: 0,
            },
            Packet {
                src: gpu,
                dst: remote,
                bytes: 64,
                inject_cycle: 0,
            },
            Packet {
                src: gpu,
                dst: remote,
                bytes: 64,
                inject_cycle: 1,
            },
        ]);
        assert_eq!(stats.local_packets, 1);
        assert_eq!(stats.remote_packets, 2);
        assert!((stats.out_of_chiplet_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn monolithic_beats_chiplets_on_average_latency() {
        let ehp = Topology::ehp(8, 8);
        let mono = Topology::monolithic(8, 8);
        let load = |topo: &Topology| {
            let mut packets = Vec::new();
            for g in 0..8u32 {
                let src = topo.find(NodeKind::GpuChiplet(g)).unwrap();
                for s in 0..8u32 {
                    let dst = topo.find(NodeKind::HbmStack(s)).unwrap();
                    packets.push(Packet {
                        src,
                        dst,
                        bytes: 64,
                        inject_cycle: u64::from(g * 8 + s) * 4,
                    });
                }
            }
            let mut sim = NocSim::new(topo);
            sim.run(&packets).avg_latency_cycles()
        };
        assert!(load(&mono) < load(&ehp));
    }

    #[test]
    fn energy_scales_with_traffic() {
        let topo = ehp();
        let gpu = topo.find(NodeKind::GpuChiplet(0)).unwrap();
        let hbm = topo.find(NodeKind::HbmStack(5)).unwrap();
        let mut sim = NocSim::new(&topo);
        let one = sim
            .run(&[Packet {
                src: gpu,
                dst: hbm,
                bytes: 64,
                inject_cycle: 0,
            }])
            .energy
            .total();
        let two = sim
            .run(&[
                Packet {
                    src: gpu,
                    dst: hbm,
                    bytes: 64,
                    inject_cycle: 0,
                },
                Packet {
                    src: gpu,
                    dst: hbm,
                    bytes: 64,
                    inject_cycle: 100,
                },
            ])
            .energy
            .total();
        assert!(one.value() > 0.0);
        assert!((two.value() - 2.0 * one.value()).abs() < 1e-9);
    }

    #[test]
    fn degraded_topology_drops_severed_traffic_and_reroutes_the_rest() {
        let mut topo = Topology::ehp_ring(8, 8);
        let gpu3 = topo.find(NodeKind::GpuChiplet(3)).unwrap();
        topo.fail_node(gpu3).unwrap();
        let gpu0 = topo.find(NodeKind::GpuChiplet(0)).unwrap();
        let hbm3 = topo.find(NodeKind::HbmStack(3)).unwrap();
        let hbm6 = topo.find(NodeKind::HbmStack(6)).unwrap();
        let packets = [
            // Destination stack orphaned by the dead chiplet: dropped.
            Packet {
                src: gpu0,
                dst: hbm3,
                bytes: 64,
                inject_cycle: 0,
            },
            // A surviving pair: rerouted and delivered.
            Packet {
                src: gpu0,
                dst: hbm6,
                bytes: 64,
                inject_cycle: 0,
            },
        ];
        let mut sim = NocSim::new(&topo);
        let stats = sim.run(&packets);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 1);
        // The strict variant names the severed pair.
        let err = NocSim::new(&topo).try_run(&packets).unwrap_err();
        assert_eq!(
            err,
            ena_model::error::DegradeError::Unreachable {
                src: gpu0,
                dst: hbm3
            }
        );
    }

    #[test]
    fn stats_handle_empty_batches() {
        let topo = ehp();
        let mut sim = NocSim::new(&topo);
        let stats = sim.run(&[]);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.avg_latency_cycles(), 0.0);
        assert_eq!(stats.out_of_chiplet_fraction(), 0.0);
        assert_eq!(stats.hottest_link_bytes(), 0);
    }
}

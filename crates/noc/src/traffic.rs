//! Traffic generation for NoC experiments.
//!
//! Two sources of load:
//!
//! - [`WorkloadTraffic`] synthesizes a GPU memory-request stream from a
//!   kernel's locality characteristics (its out-of-chiplet traffic
//!   fraction), the mechanism behind the Fig. 7 chiplet study.
//! - [`trace_packets`] replays a recorded address trace, interleaving
//!   addresses across the DRAM stacks the way the EHP's physical address
//!   map does.

use ena_model::error::DegradeError;
use ena_model::kernel::KernelProfile;

use crate::sim::Packet;
use crate::topology::{NodeId, NodeKind, Topology};

/// A deterministic 64-bit mixer (SplitMix64); keeps this crate free of RNG
/// dependencies while giving reproducible streams.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Synthesizes memory-request traffic matching a kernel's locality.
#[derive(Clone, Debug)]
pub struct WorkloadTraffic {
    /// Fraction of requests that target a *remote* DRAM stack.
    pub remote_fraction: f64,
    /// Request payload in bytes (a cache line fill).
    pub line_bytes: u32,
    /// Mean cycles between requests per GPU chiplet (injection pressure).
    pub cycles_per_request: f64,
    /// Seed for the deterministic stream.
    pub seed: u64,
}

impl WorkloadTraffic {
    /// Builds a generator from a kernel profile: the profile's
    /// out-of-chiplet fraction sets remote traffic, its intensity sets the
    /// injection pressure (memory-bound kernels inject harder).
    pub fn from_profile(profile: &KernelProfile, seed: u64) -> Self {
        // Higher ops/byte -> fewer requests per cycle. The floor keeps the
        // network loaded-but-stable even for the most memory-bound kernels;
        // the ceiling keeps MaxFlops injecting occasionally.
        let cycles_per_request = (profile.ops_per_byte * 6.0).clamp(5.0, 400.0);
        Self {
            remote_fraction: profile.out_of_chiplet_fraction,
            line_bytes: 64,
            cycles_per_request,
            seed,
        }
    }

    /// Generates `count` request/response packet pairs per GPU chiplet on
    /// `topo`.
    ///
    /// Requests travel GPU -> stack (command, 16 B) and the data returns
    /// stack -> GPU (`line_bytes`). Remote targets are drawn uniformly from
    /// the other stacks, matching the paper's observation of "a fairly even
    /// distribution of accesses across chiplets".
    pub fn generate(&self, topo: &Topology, count_per_chiplet: u32) -> Vec<Packet> {
        let gpus: Vec<(u32, NodeId)> = topo
            .endpoints(|k| matches!(k, NodeKind::GpuChiplet(_)))
            .into_iter()
            .filter_map(|id| match topo.kind(id) {
                NodeKind::GpuChiplet(g) => Some((g, id)),
                _ => None,
            })
            .collect();
        let stacks: Vec<(u32, NodeId)> = topo
            .endpoints(|k| matches!(k, NodeKind::HbmStack(_)))
            .into_iter()
            .filter_map(|id| match topo.kind(id) {
                NodeKind::HbmStack(i) => Some((i, id)),
                _ => None,
            })
            .collect();
        let Some(&(_, fallback_stack)) = stacks.first() else {
            return Vec::new();
        };
        let mut packets = Vec::new();
        for &(g, gpu) in &gpus {
            let mut rng = SplitMix64(self.seed ^ (u64::from(g) << 32));
            let mut cycle = 0u64;
            for _ in 0..count_per_chiplet {
                cycle += 1 + (rng.unit() * 2.0 * self.cycles_per_request) as u64;
                let dst_stack = if rng.unit() < self.remote_fraction && stacks.len() > 1 {
                    // Uniform over the *other* stacks.
                    let mut pick = rng.below(stacks.len() as u64 - 1) as usize;
                    if stacks[pick].0 == g {
                        pick = stacks.len() - 1;
                    }
                    stacks[pick].1
                } else {
                    stacks
                        .iter()
                        .find(|&&(i, _)| i == g)
                        .map(|&(_, id)| id)
                        .unwrap_or(fallback_stack)
                };
                packets.push(Packet {
                    src: gpu,
                    dst: dst_stack,
                    bytes: 16,
                    inject_cycle: cycle,
                });
                packets.push(Packet {
                    src: dst_stack,
                    dst: gpu,
                    bytes: self.line_bytes,
                    inject_cycle: cycle + 2,
                });
            }
        }
        packets
    }
}

/// Interleaves a logical byte address across `stacks` DRAM stacks at
/// `granularity_bytes` granularity (the EHP's physical address map).
pub fn stack_for_address(addr: u64, stacks: u32, granularity_bytes: u64) -> u32 {
    ((addr / granularity_bytes) % u64::from(stacks)) as u32
}

/// Replays a recorded address trace as NoC packets from one GPU chiplet.
///
/// Each traced line becomes a request/response pair to the stack selected
/// by [`stack_for_address`]. `source_chiplet` is the GPU chiplet issuing
/// the trace; `cycles_per_access` spaces the injections.
///
/// # Errors
///
/// Returns [`DegradeError::UnknownComponent`] if `source_chiplet` does not
/// exist on `topo` or the topology has no DRAM stacks to target.
pub fn trace_packets(
    topo: &Topology,
    source_chiplet: u32,
    addresses: impl IntoIterator<Item = u64>,
    cycles_per_access: u64,
    granularity_bytes: u64,
) -> Result<Vec<Packet>, DegradeError> {
    let src =
        topo.find(NodeKind::GpuChiplet(source_chiplet))
            .ok_or(DegradeError::UnknownComponent {
                component: "GPU chiplet",
                index: u64::from(source_chiplet),
            })?;
    let stacks: Vec<NodeId> = {
        let mut s: Vec<(u32, NodeId)> = topo
            .endpoints(|k| matches!(k, NodeKind::HbmStack(_)))
            .into_iter()
            .filter_map(|id| match topo.kind(id) {
                NodeKind::HbmStack(i) => Some((i, id)),
                _ => None,
            })
            .collect();
        s.sort_by_key(|&(i, _)| i);
        s.into_iter().map(|(_, id)| id).collect()
    };
    if stacks.is_empty() {
        return Err(DegradeError::UnknownComponent {
            component: "DRAM stack",
            index: 0,
        });
    }
    let mut packets = Vec::new();
    let mut cycle = 0u64;
    for addr in addresses {
        cycle += cycles_per_access;
        let stack = stack_for_address(addr, stacks.len() as u32, granularity_bytes) as usize;
        packets.push(Packet {
            src,
            dst: stacks[stack],
            bytes: 16,
            inject_cycle: cycle,
        });
        packets.push(Packet {
            src: stacks[stack],
            dst: src,
            bytes: 64,
            inject_cycle: cycle + 2,
        });
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NocSim;

    fn profile(out_of_chiplet: f64, ops_per_byte: f64) -> KernelProfile {
        KernelProfile {
            name: "synthetic".into(),
            category: ena_model::KernelCategory::Balanced,
            ops_per_byte,
            utilization: 0.5,
            parallelism: 0.8,
            latency_sensitivity: 0.3,
            contention_sensitivity: 0.2,
            write_fraction: 0.3,
            ext_traffic_fraction: 0.5,
            out_of_chiplet_fraction: out_of_chiplet,
            serial_fraction: 0.01,
        }
    }

    #[test]
    fn generated_remote_fraction_tracks_the_profile() {
        let topo = Topology::ehp(8, 8);
        for target in [0.6, 0.95] {
            let gen = WorkloadTraffic::from_profile(&profile(target, 1.0), 42);
            let packets = gen.generate(&topo, 2000);
            let mut sim = NocSim::new(&topo);
            let stats = sim.run(&packets);
            let measured = stats.out_of_chiplet_fraction();
            assert!(
                (measured - target).abs() < 0.05,
                "target {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn memory_bound_profiles_inject_more_densely() {
        let dense = WorkloadTraffic::from_profile(&profile(0.8, 0.5), 1);
        let sparse = WorkloadTraffic::from_profile(&profile(0.8, 100.0), 1);
        assert!(dense.cycles_per_request < sparse.cycles_per_request);
    }

    #[test]
    fn interleave_is_uniform_and_total() {
        let mut counts = [0u64; 8];
        for i in 0..8000u64 {
            counts[stack_for_address(i * 64, 8, 4096) as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), 8000);
        for &c in &counts {
            assert!((c as i64 - 1000).abs() <= 64, "count = {c}");
        }
    }

    #[test]
    fn trace_replay_reaches_all_stacks() {
        let topo = Topology::ehp(8, 8);
        let addrs: Vec<u64> = (0..64u64).map(|i| i * 4096).collect();
        let packets = trace_packets(&topo, 0, addrs, 4, 4096).unwrap();
        assert_eq!(packets.len(), 128);
        let mut sim = NocSim::new(&topo);
        let stats = sim.run(&packets);
        assert_eq!(stats.delivered, 128);
        // 1/8 of interleaved addresses land on the local stack.
        let frac = stats.out_of_chiplet_fraction();
        assert!((frac - 0.875).abs() < 0.01, "fraction = {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = Topology::ehp(8, 8);
        let gen = WorkloadTraffic::from_profile(&profile(0.7, 2.0), 7);
        assert_eq!(gen.generate(&topo, 100), gen.generate(&topo, 100));
    }
}

//! Chiplet/interposer network-on-chip simulation for the ENA toolkit.
//!
//! The EHP decomposes the processor into GPU and CPU chiplets stacked on
//! active interposers (paper Section II-A). This crate models the
//! resulting interconnect:
//!
//! - [`topology`] — the package graphs: the chiplet EHP
//!   ([`Topology::ehp`](topology::Topology::ehp)) and the monolithic
//!   baseline ([`Topology::monolithic`](topology::Topology::monolithic)).
//! - [`sim`] — packet-level simulation with per-link serialization and
//!   queueing ([`NocSim`](sim::NocSim)).
//! - [`traffic`] — workload-driven synthetic traffic and trace replay.
//! - [`energy`] — distance-based interconnect energy accounting.
//!
//! # Example
//!
//! ```
//! use ena_noc::sim::{NocSim, Packet};
//! use ena_noc::topology::{NodeKind, Topology};
//!
//! let topo = Topology::ehp(8, 8);
//! let src = topo.find(NodeKind::GpuChiplet(0)).expect("chiplet 0 exists");
//! let dst = topo.find(NodeKind::HbmStack(5)).expect("stack 5 exists");
//! let stats = NocSim::new(&topo).run(&[Packet {
//!     src,
//!     dst,
//!     bytes: 64,
//!     inject_cycle: 0,
//! }]);
//! assert_eq!(stats.remote_packets, 1); // crossed chiplets
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod energy;
pub mod sim;
pub mod topology;
pub mod traffic;

pub use sim::{NocSim, NocStats, Packet};
pub use topology::{NodeKind, Topology};
pub use traffic::WorkloadTraffic;

//! Interconnect energy accounting.
//!
//! The paper computes interconnect power from data-movement counts
//! multiplied by distance-based energy values (Section III, \[41\]). We use
//! the same formulation: every bit crossing a link pays a per-router
//! switching cost plus a per-millimeter wire cost; TSV hops are short and
//! cheap.

use ena_model::units::Picojoules;

use crate::topology::Link;

/// Distance-based link/router energy coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Wire energy per bit per millimeter.
    pub wire_pj_per_bit_mm: f64,
    /// Router traversal energy per bit.
    pub router_pj_per_bit: f64,
    /// TSV traversal energy per bit.
    pub tsv_pj_per_bit: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 2022-era projections: ~0.1 pJ/bit/mm on-interposer wires,
        // ~0.4 pJ/bit router traversal, ~0.05 pJ/bit TSVs.
        Self {
            wire_pj_per_bit_mm: 0.10,
            router_pj_per_bit: 0.40,
            tsv_pj_per_bit: 0.05,
        }
    }
}

impl EnergyModel {
    /// Charges `tally` for `bytes` crossing `link`.
    pub fn charge_link(&self, tally: &mut EnergyTally, link: Link, bytes: u32) {
        let bits = f64::from(bytes) * 8.0;
        if link.is_tsv {
            tally.tsv += Picojoules::new(bits * self.tsv_pj_per_bit);
        } else {
            tally.wire += Picojoules::new(bits * self.wire_pj_per_bit_mm * link.length_mm);
        }
        tally.router += Picojoules::new(bits * self.router_pj_per_bit);
    }
}

/// Accumulated interconnect energy, broken down by component.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyTally {
    /// Horizontal wire energy.
    pub wire: Picojoules,
    /// Router switching energy.
    pub router: Picojoules,
    /// Vertical TSV energy.
    pub tsv: Picojoules,
}

impl EnergyTally {
    /// Total interconnect energy.
    pub fn total(&self) -> Picojoules {
        self.wire + self.router + self.tsv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_link(length_mm: f64) -> Link {
        Link {
            from: 0,
            to: 1,
            latency_cycles: 4,
            bytes_per_cycle: 64.0,
            length_mm,
            is_tsv: false,
        }
    }

    #[test]
    fn wire_energy_scales_with_distance() {
        let model = EnergyModel::default();
        let mut short = EnergyTally::default();
        let mut long = EnergyTally::default();
        model.charge_link(&mut short, wire_link(1.0), 64);
        model.charge_link(&mut long, wire_link(10.0), 64);
        assert!((long.wire.value() - 10.0 * short.wire.value()).abs() < 1e-9);
        // Router cost is distance-independent.
        assert_eq!(long.router, short.router);
    }

    #[test]
    fn tsv_hops_are_cheaper_than_interposer_wires() {
        let model = EnergyModel::default();
        let tsv = Link {
            is_tsv: true,
            length_mm: 0.1,
            ..wire_link(0.1)
        };
        let mut t = EnergyTally::default();
        let mut w = EnergyTally::default();
        model.charge_link(&mut t, tsv, 64);
        model.charge_link(&mut w, wire_link(8.0), 64);
        assert!(t.total().value() < w.total().value());
    }

    #[test]
    fn tally_totals_its_parts() {
        let mut tally = EnergyTally::default();
        EnergyModel::default().charge_link(&mut tally, wire_link(2.0), 128);
        let sum = tally.wire + tally.router + tally.tsv;
        assert_eq!(tally.total(), sum);
        assert!(tally.total().value() > 0.0);
    }
}

//! EHP interconnect topologies.
//!
//! The EHP's chiplets sit on active interposers that provide the
//! network-on-chip (Section II-A.3). A message between chiplets descends
//! through TSVs into the interposer, crosses one or more interposer
//! routers, and ascends through TSVs at the destination — two extra
//! vertical hops compared to a monolithic die (Section V-A).
//!
//! [`Topology::ehp`] builds the paper's package: four GPU clusters of two
//! GPU chiplets (each with its DRAM stack above), two central CPU clusters
//! of four CPU chiplets, and a chain of interposer routers joining the
//! clusters. [`Topology::monolithic`] builds the hypothetical single-die
//! baseline used by Fig. 7, where all endpoints meet at one crossbar.

use std::collections::{BTreeMap, VecDeque};

use ena_model::error::DegradeError;

/// What a network endpoint or switch represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// GPU chiplet `index` (0..8 on the EHP).
    GpuChiplet(u32),
    /// CPU chiplet `index` (0..8 on the EHP).
    CpuChiplet(u32),
    /// 3D DRAM stack `index` (0..8, one atop each GPU chiplet).
    HbmStack(u32),
    /// An interposer router (cluster `index`).
    InterposerRouter(u32),
    /// The single crossbar of the monolithic baseline.
    Crossbar,
    /// External-memory interface `index` on the package edge.
    ExternalInterface(u32),
}

impl NodeKind {
    /// True if this node generates or sinks traffic (not a pure switch).
    pub fn is_endpoint(&self) -> bool {
        !matches!(self, NodeKind::InterposerRouter(_) | NodeKind::Crossbar)
    }

    /// The chiplet this endpoint physically lives on, if any. DRAM stacks
    /// sit directly atop their GPU chiplet, so traffic between the two
    /// never leaves the chiplet footprint.
    pub fn chiplet_site(&self) -> Option<u32> {
        match *self {
            NodeKind::GpuChiplet(i) | NodeKind::HbmStack(i) => Some(i),
            NodeKind::CpuChiplet(i) => Some(100 + i),
            _ => None,
        }
    }
}

/// Index of a node within a [`Topology`].
pub type NodeId = usize;

/// A unidirectional link between two nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Traversal latency in cycles (wire + TSV).
    pub latency_cycles: u32,
    /// Serialization bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Physical length in millimeters (for energy accounting).
    pub length_mm: f64,
    /// Whether this link is a vertical TSV hop.
    pub is_tsv: bool,
}

/// An interconnect graph.
///
/// Supports graceful degradation: nodes and links can be failed in place
/// ([`Topology::fail_node`], [`Topology::fail_link_between`]); routing then
/// works around the casualties, and severed destinations surface as
/// [`DegradeError::Unreachable`] values rather than panics.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<NodeKind>,
    links: Vec<Link>,
    /// Outgoing link indices per node.
    adjacency: Vec<Vec<usize>>,
    /// Per-link liveness (indexed like `links`); failed links stay in the
    /// vector so link-indexed statistics remain stable.
    link_active: Vec<bool>,
    /// Per-node liveness; failed nodes stay in the vector so ids remain
    /// stable.
    node_failed: Vec<bool>,
}

/// Link parameter bundle used while building topologies.
#[derive(Clone, Copy, Debug)]
struct LinkParams {
    latency_cycles: u32,
    bytes_per_cycle: f64,
    length_mm: f64,
    is_tsv: bool,
}

const TSV: LinkParams = LinkParams {
    latency_cycles: 1,
    bytes_per_cycle: 64.0,
    length_mm: 0.1,
    is_tsv: true,
};

const INTERPOSER_HOP: LinkParams = LinkParams {
    latency_cycles: 4,
    bytes_per_cycle: 64.0,
    length_mm: 8.0,
    is_tsv: false,
};

const CROSSBAR_HOP: LinkParams = LinkParams {
    latency_cycles: 2,
    bytes_per_cycle: 64.0,
    length_mm: 4.0,
    is_tsv: false,
};

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Kind of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range. Use [`Topology::try_kind`] for
    /// untrusted ids.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id]
    }

    /// Kind of node `id`, as a value for untrusted ids.
    ///
    /// # Errors
    ///
    /// Returns [`DegradeError::UnknownNode`] if `id` is out of range.
    pub fn try_kind(&self, id: NodeId) -> Result<NodeKind, DegradeError> {
        self.nodes
            .get(id)
            .copied()
            .ok_or(DegradeError::UnknownNode(id))
    }

    /// All links (failed links included, so link indices stay stable; see
    /// [`Topology::link_is_active`]).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Finds the node of the given kind (failed nodes included — ids are
    /// permanent).
    pub fn find(&self, kind: NodeKind) -> Option<NodeId> {
        self.nodes.iter().position(|&k| k == kind)
    }

    /// Node ids of all *live* endpoints of a given predicate; failed
    /// endpoints are excluded.
    pub fn endpoints(&self, pred: impl Fn(NodeKind) -> bool) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|&(i, &k)| k.is_endpoint() && !self.node_failed[i] && pred(k))
            .map(|(i, _)| i)
            .collect()
    }

    /// True if node `id` has been failed.
    pub fn is_failed(&self, id: NodeId) -> bool {
        self.node_failed.get(id).copied().unwrap_or(false)
    }

    /// True if link `li` is still carrying traffic.
    pub fn link_is_active(&self, li: usize) -> bool {
        self.link_active.get(li).copied().unwrap_or(false)
    }

    /// Number of live (active) links.
    pub fn active_link_count(&self) -> usize {
        self.link_active.iter().filter(|&&a| a).count()
    }

    /// Fails node `id`: the node is marked dead and every incident link is
    /// deactivated. Routing thereafter treats it as nonexistent.
    ///
    /// # Errors
    ///
    /// Returns [`DegradeError::UnknownNode`] if `id` is out of range or the
    /// node already failed.
    pub fn fail_node(&mut self, id: NodeId) -> Result<(), DegradeError> {
        if id >= self.nodes.len() || self.node_failed[id] {
            return Err(DegradeError::UnknownNode(id));
        }
        self.node_failed[id] = true;
        for (li, link) in self.links.iter().enumerate() {
            if link.from == id || link.to == id {
                self.link_active[li] = false;
            }
        }
        Ok(())
    }

    /// Fails the node of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`DegradeError::UnknownComponent`] if no live node of that
    /// kind exists.
    pub fn fail_kind(&mut self, kind: NodeKind) -> Result<NodeId, DegradeError> {
        let id = self.find(kind).filter(|&id| !self.node_failed[id]).ok_or(
            DegradeError::UnknownComponent {
                component: "topology node",
                index: self.find(kind).map(|id| id as u64).unwrap_or(u64::MAX),
            },
        )?;
        self.fail_node(id)?;
        Ok(id)
    }

    /// Fails every link between nodes `a` and `b` (both directions).
    ///
    /// # Errors
    ///
    /// Returns [`DegradeError::UnknownNode`] for out-of-range ids, or
    /// [`DegradeError::UnknownComponent`] if no active link joins the pair.
    pub fn fail_link_between(&mut self, a: NodeId, b: NodeId) -> Result<usize, DegradeError> {
        if a >= self.nodes.len() {
            return Err(DegradeError::UnknownNode(a));
        }
        if b >= self.nodes.len() {
            return Err(DegradeError::UnknownNode(b));
        }
        let mut cut = 0;
        for (li, link) in self.links.iter().enumerate() {
            let joins = (link.from == a && link.to == b) || (link.from == b && link.to == a);
            if joins && self.link_active[li] {
                self.link_active[li] = false;
                cut += 1;
            }
        }
        if cut == 0 {
            return Err(DegradeError::UnknownComponent {
                component: "interposer link",
                index: a as u64,
            });
        }
        Ok(cut)
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        self.nodes.push(kind);
        self.adjacency.push(Vec::new());
        self.node_failed.push(false);
        self.nodes.len() - 1
    }

    fn add_duplex(&mut self, a: NodeId, b: NodeId, p: LinkParams) {
        for (from, to) in [(a, b), (b, a)] {
            let link = Link {
                from,
                to,
                latency_cycles: p.latency_cycles,
                bytes_per_cycle: p.bytes_per_cycle,
                length_mm: p.length_mm,
                is_tsv: p.is_tsv,
            };
            self.adjacency[from].push(self.links.len());
            self.links.push(link);
            self.link_active.push(true);
        }
    }

    /// Builds the proposed chiplet EHP package.
    ///
    /// `gpu_chiplets` must be even (two per GPU cluster) and match the
    /// number of HBM stacks; the paper uses 8.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_chiplets` is zero or odd.
    pub fn ehp(gpu_chiplets: u32, cpu_chiplets: u32) -> Self {
        assert!(
            gpu_chiplets > 0 && gpu_chiplets.is_multiple_of(2),
            "GPU chiplets come in pairs"
        );
        let mut t = Topology::default();

        let gpu_clusters = gpu_chiplets / 2;
        let cpu_clusters = 2u32;
        let total_routers = gpu_clusters + cpu_clusters;

        // Interposer routers in package order: half the GPU clusters, the
        // two CPU clusters in the middle, the other half of the GPU
        // clusters (Fig. 2's G G | C C | G G floorplan).
        let mut router_ids = Vec::new();
        for c in 0..total_routers {
            router_ids.push(t.add_node(NodeKind::InterposerRouter(c)));
        }
        for (&a, &b) in router_ids.iter().zip(router_ids.iter().skip(1)) {
            t.add_duplex(a, b, INTERPOSER_HOP);
        }

        // Order clusters: G.. C C G..
        let mut cluster_role = Vec::new();
        for c in 0..gpu_clusters / 2 {
            cluster_role.push(("gpu", c));
        }
        cluster_role.push(("cpu", 0));
        cluster_role.push(("cpu", 1));
        for c in gpu_clusters / 2..gpu_clusters {
            cluster_role.push(("gpu", c));
        }

        let mut next_cpu = 0u32;
        for (slot, &(role, idx)) in cluster_role.iter().enumerate() {
            let router = router_ids[slot];
            match role {
                "gpu" => {
                    for g in [idx * 2, idx * 2 + 1] {
                        let gpu = t.add_node(NodeKind::GpuChiplet(g));
                        t.add_duplex(gpu, router, TSV);
                        // The DRAM stack sits directly on the GPU chiplet.
                        let hbm = t.add_node(NodeKind::HbmStack(g));
                        t.add_duplex(hbm, gpu, TSV);
                        // External interface adjacent to each GPU cluster edge.
                        let ext = t.add_node(NodeKind::ExternalInterface(g));
                        t.add_duplex(ext, router, TSV);
                    }
                }
                _ => {
                    for _ in 0..cpu_chiplets / 2 {
                        let cpu = t.add_node(NodeKind::CpuChiplet(next_cpu));
                        next_cpu += 1;
                        t.add_duplex(cpu, router, TSV);
                    }
                }
            }
        }
        t
    }

    /// Builds the chiplet EHP with the interposer routers closed into a
    /// ring instead of a chain — an ablation on the interposer
    /// interconnect: the ring halves the worst-case hop count between the
    /// edge GPU clusters for one extra link.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_chiplets` is zero or odd.
    pub fn ehp_ring(gpu_chiplets: u32, cpu_chiplets: u32) -> Self {
        let mut t = Self::ehp(gpu_chiplets, cpu_chiplets);
        // Close the router chain into a ring.
        let routers: Vec<NodeId> = (0..t.nodes.len())
            .filter(|&i| matches!(t.nodes[i], NodeKind::InterposerRouter(_)))
            .collect();
        if let (Some(&first), Some(&last)) = (routers.first(), routers.last()) {
            if routers.len() > 2 {
                t.add_duplex(first, last, INTERPOSER_HOP);
            }
        }
        t
    }

    /// Builds the hypothetical monolithic baseline: every endpoint meets at
    /// a single crossbar with no TSV hops.
    pub fn monolithic(gpu_chiplets: u32, cpu_chiplets: u32) -> Self {
        let mut t = Topology::default();
        let xbar = t.add_node(NodeKind::Crossbar);
        for g in 0..gpu_chiplets {
            let gpu = t.add_node(NodeKind::GpuChiplet(g));
            t.add_duplex(gpu, xbar, CROSSBAR_HOP);
            let hbm = t.add_node(NodeKind::HbmStack(g));
            t.add_duplex(hbm, gpu, TSV);
            let ext = t.add_node(NodeKind::ExternalInterface(g));
            t.add_duplex(ext, xbar, CROSSBAR_HOP);
        }
        for c in 0..cpu_chiplets {
            let cpu = t.add_node(NodeKind::CpuChiplet(c));
            t.add_duplex(cpu, xbar, CROSSBAR_HOP);
        }
        t
    }

    /// Shortest routes (by accumulated latency) from `src` to every node,
    /// as a predecessor-link table.
    fn shortest_from(&self, src: NodeId) -> Vec<Option<usize>> {
        // Uniform-ish weights: BFS layered by latency via a simple Dijkstra
        // on small graphs.
        let mut dist = vec![u64::MAX; self.nodes.len()];
        let mut pred: Vec<Option<usize>> = vec![None; self.nodes.len()];
        dist[src] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(n) = queue.pop_front() {
            for &li in &self.adjacency[n] {
                if !self.link_active[li] {
                    continue;
                }
                let link = self.links[li];
                if self.node_failed[link.to] {
                    continue;
                }
                let nd = dist[n] + u64::from(link.latency_cycles);
                if nd < dist[link.to] {
                    dist[link.to] = nd;
                    pred[link.to] = Some(li);
                    queue.push_back(link.to);
                }
            }
        }
        pred
    }

    /// Computes the link sequence of the route from `src` to `dst`,
    /// working around failed links and nodes.
    ///
    /// # Errors
    ///
    /// Returns [`DegradeError::UnknownNode`] for out-of-range or failed
    /// endpoints, and [`DegradeError::Unreachable`] when degradation has
    /// severed every path — an error value, never a panic.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Result<Vec<usize>, DegradeError> {
        for id in [src, dst] {
            if id >= self.nodes.len() || self.node_failed[id] {
                return Err(DegradeError::UnknownNode(id));
            }
        }
        if src == dst {
            return Ok(Vec::new());
        }
        let pred = self.shortest_from(src);
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let li = pred[cur].ok_or(DegradeError::Unreachable { src, dst })?;
            path.push(li);
            cur = self.links[li].from;
        }
        path.reverse();
        Ok(path)
    }

    /// Precomputes routes between all endpoint pairs.
    pub fn route_table(&self) -> RouteTable {
        let endpoints = self.endpoints(|_| true);
        let mut routes = BTreeMap::new();
        for &src in &endpoints {
            let pred = self.shortest_from(src);
            for &dst in &endpoints {
                if src == dst {
                    continue;
                }
                let mut path = Vec::new();
                let mut cur = dst;
                let mut ok = true;
                while cur != src {
                    match pred[cur] {
                        Some(li) => {
                            path.push(li);
                            cur = self.links[li].from;
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    path.reverse();
                    routes.insert((src, dst), path);
                }
            }
        }
        RouteTable { routes }
    }
}

/// Precomputed endpoint-to-endpoint routes.
#[derive(Clone, Debug)]
pub struct RouteTable {
    routes: BTreeMap<(NodeId, NodeId), Vec<usize>>,
}

impl RouteTable {
    /// The link sequence from `src` to `dst` (`None` if unreachable or
    /// `src == dst`).
    pub fn get(&self, src: NodeId, dst: NodeId) -> Option<&[usize]> {
        self.routes.get(&(src, dst)).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ehp_has_the_papers_component_counts() {
        let t = Topology::ehp(8, 8);
        assert_eq!(
            t.endpoints(|k| matches!(k, NodeKind::GpuChiplet(_))).len(),
            8
        );
        assert_eq!(
            t.endpoints(|k| matches!(k, NodeKind::CpuChiplet(_))).len(),
            8
        );
        assert_eq!(t.endpoints(|k| matches!(k, NodeKind::HbmStack(_))).len(), 8);
        assert_eq!(
            t.endpoints(|k| matches!(k, NodeKind::ExternalInterface(_)))
                .len(),
            8
        );
    }

    #[test]
    fn every_endpoint_pair_is_connected() {
        for t in [Topology::ehp(8, 8), Topology::monolithic(8, 8)] {
            let eps = t.endpoints(|_| true);
            let table = t.route_table();
            for &a in &eps {
                for &b in &eps {
                    if a != b {
                        assert!(
                            table.get(a, b).is_some(),
                            "{:?} -> {:?}",
                            t.kind(a),
                            t.kind(b)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn routes_are_contiguous_paths() {
        let t = Topology::ehp(8, 8);
        let gpu0 = t.find(NodeKind::GpuChiplet(0)).unwrap();
        let hbm7 = t.find(NodeKind::HbmStack(7)).unwrap();
        let path = t.route(gpu0, hbm7).unwrap();
        assert!(!path.is_empty());
        let mut cur = gpu0;
        for &li in &path {
            assert_eq!(t.links()[li].from, cur);
            cur = t.links()[li].to;
        }
        assert_eq!(cur, hbm7);
    }

    #[test]
    fn remote_chiplet_routes_pay_two_extra_tsv_hops() {
        let t = Topology::ehp(8, 8);
        let gpu0 = t.find(NodeKind::GpuChiplet(0)).unwrap();
        let local_hbm = t.find(NodeKind::HbmStack(0)).unwrap();
        let remote_hbm = t.find(NodeKind::HbmStack(5)).unwrap();

        // Local: GPU -> its own stack, one TSV hop, no interposer.
        let local = t.route(gpu0, local_hbm).unwrap();
        assert_eq!(local.len(), 1);
        assert!(t.links()[local[0]].is_tsv);

        // Remote: must descend and ascend through TSVs (>= 2 TSV hops) and
        // cross the interposer.
        let remote = t.route(gpu0, remote_hbm).unwrap();
        let tsv_hops = remote.iter().filter(|&&li| t.links()[li].is_tsv).count();
        assert!(tsv_hops >= 2, "tsv hops = {tsv_hops}");
        assert!(remote.len() > local.len());
    }

    #[test]
    fn monolithic_routes_are_shorter_than_chiplet_routes() {
        let ehp = Topology::ehp(8, 8);
        let mono = Topology::monolithic(8, 8);
        let lat = |t: &Topology, a: NodeKind, b: NodeKind| -> u64 {
            let path = t.route(t.find(a).unwrap(), t.find(b).unwrap()).unwrap();
            path.iter()
                .map(|&li| u64::from(t.links()[li].latency_cycles))
                .sum()
        };
        let pairs = [
            (NodeKind::GpuChiplet(0), NodeKind::HbmStack(7)),
            (NodeKind::CpuChiplet(0), NodeKind::HbmStack(3)),
            (NodeKind::GpuChiplet(2), NodeKind::GpuChiplet(5)),
        ];
        for (a, b) in pairs {
            assert!(lat(&mono, a, b) < lat(&ehp, a, b), "{a:?} -> {b:?}");
        }
    }

    #[test]
    fn chiplet_site_groups_stack_with_its_gpu() {
        assert_eq!(
            NodeKind::GpuChiplet(3).chiplet_site(),
            NodeKind::HbmStack(3).chiplet_site()
        );
        assert_ne!(
            NodeKind::GpuChiplet(3).chiplet_site(),
            NodeKind::CpuChiplet(3).chiplet_site()
        );
        assert_eq!(NodeKind::Crossbar.chiplet_site(), None);
    }

    #[test]
    fn ring_shortens_edge_to_edge_routes() {
        let chain = Topology::ehp(8, 8);
        let ring = Topology::ehp_ring(8, 8);
        let lat = |t: &Topology| {
            let a = t.find(NodeKind::GpuChiplet(0)).unwrap();
            let b = t.find(NodeKind::HbmStack(7)).unwrap();
            let path = t.route(a, b).unwrap();
            path.iter()
                .map(|&li| u64::from(t.links()[li].latency_cycles))
                .sum::<u64>()
        };
        assert!(
            lat(&ring) < lat(&chain),
            "ring {} vs chain {}",
            lat(&ring),
            lat(&chain)
        );
        // And the ring stays fully connected.
        let eps = ring.endpoints(|_| true);
        let table = ring.route_table();
        for &x in &eps {
            for &y in &eps {
                if x != y {
                    assert!(table.get(x, y).is_some());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "pairs")]
    fn odd_gpu_chiplet_count_is_rejected() {
        let _ = Topology::ehp(7, 8);
    }

    #[test]
    fn out_of_range_route_endpoints_are_errors_not_panics() {
        let t = Topology::ehp(8, 8);
        let gpu0 = t.find(NodeKind::GpuChiplet(0)).unwrap();
        assert_eq!(
            t.route(gpu0, 10_000),
            Err(DegradeError::UnknownNode(10_000))
        );
        assert_eq!(t.try_kind(10_000), Err(DegradeError::UnknownNode(10_000)));
    }

    #[test]
    fn failed_chiplet_disappears_from_endpoints_and_routes() {
        let mut t = Topology::ehp(8, 8);
        let gpu3 = t.find(NodeKind::GpuChiplet(3)).unwrap();
        t.fail_node(gpu3).unwrap();
        assert!(t.is_failed(gpu3));
        assert!(!t
            .endpoints(|k| matches!(k, NodeKind::GpuChiplet(_)))
            .contains(&gpu3));
        // Routing to the dead chiplet is an explicit error.
        let cpu0 = t.find(NodeKind::CpuChiplet(0)).unwrap();
        assert_eq!(t.route(cpu0, gpu3), Err(DegradeError::UnknownNode(gpu3)));
        // Its stack hangs off the dead chiplet: live but unreachable.
        let hbm3 = t.find(NodeKind::HbmStack(3)).unwrap();
        assert_eq!(
            t.route(cpu0, hbm3),
            Err(DegradeError::Unreachable {
                src: cpu0,
                dst: hbm3
            })
        );
        // Double-failing is rejected.
        assert_eq!(t.fail_node(gpu3), Err(DegradeError::UnknownNode(gpu3)));
        // Everything else stays mutually reachable.
        let eps = t.endpoints(|k| !matches!(k, NodeKind::HbmStack(3)));
        for &a in &eps {
            for &b in &eps {
                if a != b {
                    assert!(t.route(a, b).is_ok(), "{:?} -> {:?}", t.kind(a), t.kind(b));
                }
            }
        }
    }

    #[test]
    fn ring_reroutes_around_a_cut_interposer_link() {
        let mut t = Topology::ehp_ring(8, 8);
        let r0 = t.find(NodeKind::InterposerRouter(0)).unwrap();
        let r1 = t.find(NodeKind::InterposerRouter(1)).unwrap();
        let gpu0 = t.find(NodeKind::GpuChiplet(0)).unwrap();
        let hbm2 = t.find(NodeKind::HbmStack(2)).unwrap();
        let before: u64 = t
            .route(gpu0, hbm2)
            .unwrap()
            .iter()
            .map(|&li| u64::from(t.links()[li].latency_cycles))
            .sum();
        let cut = t.fail_link_between(r0, r1).unwrap();
        assert_eq!(cut, 2, "duplex link cuts both directions");
        // Still reachable (the long way around the ring), at higher cost.
        let after: u64 = t
            .route(gpu0, hbm2)
            .unwrap()
            .iter()
            .map(|&li| u64::from(t.links()[li].latency_cycles))
            .sum();
        assert!(after > before, "reroute {after} should exceed {before}");
        // Cutting a non-existent link is an error value.
        assert!(matches!(
            t.fail_link_between(r0, r1),
            Err(DegradeError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn chain_partition_surfaces_as_unreachable() {
        // The chain topology has no redundancy: one cut severs the package.
        let mut t = Topology::ehp(8, 8);
        let r0 = t.find(NodeKind::InterposerRouter(0)).unwrap();
        let r1 = t.find(NodeKind::InterposerRouter(1)).unwrap();
        t.fail_link_between(r0, r1).unwrap();
        let gpu0 = t.find(NodeKind::GpuChiplet(0)).unwrap();
        let gpu7 = t.find(NodeKind::GpuChiplet(7)).unwrap();
        assert_eq!(
            t.route(gpu0, gpu7),
            Err(DegradeError::Unreachable {
                src: gpu0,
                dst: gpu7
            })
        );
        // The route table simply omits the severed pairs.
        let table = t.route_table();
        assert!(table.get(gpu0, gpu7).is_none());
    }
}

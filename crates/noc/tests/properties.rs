//! Property-based tests for the NoC simulator.

use ena_noc::sim::{NocSim, Packet};
use ena_noc::topology::Topology;
use ena_testkit::prelude::*;

fn arbitrary_endpoints() -> impl Strategy<Value = (usize, usize)> {
    let topo = Topology::ehp(8, 8);
    let eps = topo.endpoints(|_| true);
    let n = eps.len();
    (0..n, 0..n).prop_map(move |(a, b)| (eps[a], eps[b]))
}

proptest! {
    #[test]
    fn routes_are_contiguous_and_terminate((src, dst) in arbitrary_endpoints()) {
        let topo = Topology::ehp(8, 8);
        let route = topo.route(src, dst).expect("connected topology");
        let mut cur = src;
        for &li in &route {
            prop_assert_eq!(topo.links()[li].from, cur);
            cur = topo.links()[li].to;
        }
        prop_assert_eq!(cur, dst);
    }

    #[test]
    fn every_packet_is_delivered_and_accounted(
        seed in 0u64..1000,
        count in 1usize..200,
    ) {
        let topo = Topology::ehp(8, 8);
        let eps = topo.endpoints(|_| true);
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        let packets: Vec<Packet> = (0..count)
            .map(|i| {
                let src = eps[(next() % eps.len() as u64) as usize];
                let mut dst = eps[(next() % eps.len() as u64) as usize];
                if dst == src {
                    dst = eps[(eps.iter().position(|&e| e == src).unwrap() + 1) % eps.len()];
                }
                Packet { src, dst, bytes: 64, inject_cycle: i as u64 }
            })
            .collect();
        let stats = NocSim::new(&topo).run(&packets);
        prop_assert_eq!(stats.delivered, count as u64);
        prop_assert_eq!(stats.total_bytes, 64 * count as u64);
        prop_assert_eq!(stats.local_packets + stats.remote_packets, count as u64);
        let frac = stats.out_of_chiplet_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn contention_never_reduces_latency(
        copies in 1u32..20,
    ) {
        let topo = Topology::ehp(8, 8);
        let gpu = topo.endpoints(|k| matches!(k, ena_noc::NodeKind::GpuChiplet(0)))[0];
        let hbm = topo.endpoints(|k| matches!(k, ena_noc::NodeKind::HbmStack(5)))[0];
        let one = NocSim::new(&topo)
            .run(&[Packet { src: gpu, dst: hbm, bytes: 64, inject_cycle: 0 }])
            .avg_latency_cycles();
        let many: Vec<Packet> = (0..copies)
            .map(|_| Packet { src: gpu, dst: hbm, bytes: 64, inject_cycle: 0 })
            .collect();
        let avg = NocSim::new(&topo).run(&many).avg_latency_cycles();
        prop_assert!(avg >= one - 1e-9, "avg {avg} < uncontended {one}");
    }
}

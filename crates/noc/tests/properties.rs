//! Property-based tests for the NoC simulator.

use ena_noc::sim::{NocSim, Packet};
use ena_noc::topology::Topology;
use ena_testkit::prelude::*;

fn arbitrary_endpoints() -> impl Strategy<Value = (usize, usize)> {
    let topo = Topology::ehp(8, 8);
    let eps = topo.endpoints(|_| true);
    let n = eps.len();
    (0..n, 0..n).prop_map(move |(a, b)| (eps[a], eps[b]))
}

proptest! {
    #[test]
    fn routes_are_contiguous_and_terminate((src, dst) in arbitrary_endpoints()) {
        let topo = Topology::ehp(8, 8);
        let route = topo.route(src, dst).expect("connected topology");
        let mut cur = src;
        for &li in &route {
            prop_assert_eq!(topo.links()[li].from, cur);
            cur = topo.links()[li].to;
        }
        prop_assert_eq!(cur, dst);
    }

    #[test]
    fn every_packet_is_delivered_and_accounted(
        seed in 0u64..1000,
        count in 1usize..200,
    ) {
        let topo = Topology::ehp(8, 8);
        let eps = topo.endpoints(|_| true);
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        let packets: Vec<Packet> = (0..count)
            .map(|i| {
                let src = eps[(next() % eps.len() as u64) as usize];
                let mut dst = eps[(next() % eps.len() as u64) as usize];
                if dst == src {
                    dst = eps[(eps.iter().position(|&e| e == src).unwrap() + 1) % eps.len()];
                }
                Packet { src, dst, bytes: 64, inject_cycle: i as u64 }
            })
            .collect();
        let stats = NocSim::new(&topo).run(&packets);
        prop_assert_eq!(stats.delivered, count as u64);
        prop_assert_eq!(stats.total_bytes, 64 * count as u64);
        prop_assert_eq!(stats.local_packets + stats.remote_packets, count as u64);
        let frac = stats.out_of_chiplet_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn contention_never_reduces_latency(
        copies in 1u32..20,
    ) {
        let topo = Topology::ehp(8, 8);
        let gpu = topo.endpoints(|k| matches!(k, ena_noc::NodeKind::GpuChiplet(0)))[0];
        let hbm = topo.endpoints(|k| matches!(k, ena_noc::NodeKind::HbmStack(5)))[0];
        let one = NocSim::new(&topo)
            .run(&[Packet { src: gpu, dst: hbm, bytes: 64, inject_cycle: 0 }])
            .avg_latency_cycles();
        let many: Vec<Packet> = (0..copies)
            .map(|_| Packet { src: gpu, dst: hbm, bytes: 64, inject_cycle: 0 })
            .collect();
        let avg = NocSim::new(&topo).run(&many).avg_latency_cycles();
        prop_assert!(avg >= one - 1e-9, "avg {avg} < uncontended {one}");
    }
}

/// Digest of every precomputed route on the three package topologies.
/// Any iteration-order nondeterminism in topology construction or the
/// route table lands in this value.
fn route_table_digest() -> u64 {
    let mut h = ena_model::hash::StableHasher::new();
    for topo in [
        Topology::ehp(8, 1),
        Topology::ehp_ring(8, 1),
        Topology::monolithic(8, 1),
    ] {
        let endpoints = topo.endpoints(|_| true);
        let table = topo.route_table();
        for &src in &endpoints {
            for &dst in &endpoints {
                let Some(path) = table.get(src, dst) else {
                    continue;
                };
                h.write_usize(src);
                h.write_usize(dst);
                h.write_usize(path.len());
                for &li in path {
                    h.write_usize(li);
                }
            }
        }
    }
    h.finish()
}

/// Satellite invariant: the route table is identical across two
/// *separate process* runs (fresh hash seeds, fresh address space). The
/// test re-executes its own binary twice in digest mode and compares
/// the printed digests with each other and with the in-process value.
#[test]
fn route_table_is_identical_across_two_process_runs() {
    const MODE: &str = "ENA_NOC_DIGEST_MODE";
    if std::env::var_os(MODE).is_some() {
        println!("digest={:016x}", route_table_digest());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let child_digest = || {
        let out = std::process::Command::new(&exe)
            .args([
                "route_table_is_identical_across_two_process_runs",
                "--exact",
                "--nocapture",
            ])
            .env(MODE, "1")
            .output()
            .expect("child test process");
        assert!(out.status.success(), "child run failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // Under `--nocapture` libtest may print the digest on the same
        // line as the test name, so search by substring.
        let at = stdout
            .find("digest=")
            .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
        stdout[at + "digest=".len()..]
            .chars()
            .take_while(char::is_ascii_hexdigit)
            .collect::<String>()
    };
    let first = child_digest();
    let second = child_digest();
    assert_eq!(first, second, "route table differs between processes");
    assert_eq!(
        first,
        format!("{:016x}", route_table_digest()),
        "parent and child disagree"
    );
}

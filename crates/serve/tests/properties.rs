//! Property tests for the serving layer's headline guarantees:
//! single-flight deduplication, byte-identical responses, pipelined
//! batching, snapshot/restore bit-exactness, and typed admission
//! rejection — all driven hermetically over in-process pipes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use ena_core::dse::Explorer;
use ena_serve::{Client, ServeConfig, Server};
use ena_sweep::SyncPolicy;
use ena_testkit::prelude::*;
use ena_testkit::transport::pair;
use ena_workloads::profile_for;

/// A fresh per-test scratch directory under the cargo tmp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A one-profile config (fast evaluations) with an engine-evaluation
/// counter wired to the probe hook.
fn counted_config(evals: &Arc<AtomicU64>) -> ServeConfig {
    let profiles = vec![profile_for("CoMD").expect("CoMD is a paper app")];
    let mut config = ServeConfig::new(Explorer::default(), profiles);
    let evals = evals.clone();
    config.probe = Some(Arc::new(move |_| {
        evals.fetch_add(1, Ordering::SeqCst);
    }));
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// THE single-flight property: K concurrent connections requesting
    /// the same uncomputed point cost exactly one engine evaluation,
    /// and all K responses are byte-identical.
    #[test]
    fn k_concurrent_identical_requests_cost_one_evaluation(k_pick in 0usize..4) {
        let k = [2usize, 4, 8, 16][k_pick];
        let evals = Arc::new(AtomicU64::new(0));
        let (server, _) = Server::new(counted_config(&evals)).expect("memory store");
        let barrier = Barrier::new(k);

        let responses: Vec<String> = std::thread::scope(|s| {
            let server = &server;
            let barrier = &barrier;
            let clients: Vec<_> = (0..k)
                .map(|_| {
                    let (client_end, server_end) = pair();
                    s.spawn(move || server.handle(server_end));
                    s.spawn(move || {
                        barrier.wait();
                        let mut client = Client::new(client_end);
                        client.request("EVAL 320 1000 3").expect("response")
                    })
                })
                .collect();
            clients.into_iter().map(|j| j.join().expect("client thread")).collect()
        });

        prop_assert!(evals.load(Ordering::SeqCst) == 1,
            "expected exactly 1 engine evaluation for {k} concurrent requests, got {}",
            evals.load(Ordering::SeqCst));
        let first = &responses[0];
        prop_assert!(first.starts_with("OK "), "{first}");
        for r in &responses {
            prop_assert!(r == first, "responses diverged:\n{first}\n{r}");
        }
        let c = server.counters();
        let lookups = c.lookups.load(Ordering::Relaxed);
        let hits = c.hits.load(Ordering::Relaxed);
        let evals_ctr = c.evals.load(Ordering::Relaxed);
        let waits = c.waits.load(Ordering::Relaxed);
        prop_assert!(lookups == k as u64);
        prop_assert!(hits + evals_ctr + waits == lookups,
            "accounting identity broken: {lookups} != {hits}+{evals_ctr}+{waits}");
    }

    /// Snapshot + restart round-trips the shard store bit-exactly: a
    /// server restarted on the snapshotted cache answers the same
    /// requests with byte-identical responses, entirely from memory.
    #[test]
    fn snapshot_restore_round_trips_bit_exactly(
        n_points in 1usize..6,
        snap_pick in 0u32..2,
    ) {
        let snapshot_first = snap_pick == 1;
        let dir = scratch(&format!("snap-restore-{n_points}-{snapshot_first}"));
        let lines: Vec<String> = (0..n_points)
            .map(|i| format!("EVAL {} {} 3", 256 + 32 * (i % 3), 900 + 50 * i))
            .collect();
        let lines: Vec<&str> = lines.iter().map(String::as_str).collect();

        let evals = Arc::new(AtomicU64::new(0));
        let mut config = counted_config(&evals);
        config.cache_dir = Some(dir.clone());
        config.sync = SyncPolicy::Flush;
        let (cold, restored) = Server::new(config.clone()).expect("cold open");
        prop_assert!(restored == 0);
        let (client_end, server_end) = pair();
        let (cold_responses, cold_records) = std::thread::scope(|s| {
            let server = &cold;
            s.spawn(move || server.handle(server_end));
            let mut client = Client::new(client_end);
            let responses = client.pipeline(&lines).expect("cold responses");
            if snapshot_first {
                let snap = client.request("SNAPSHOT").expect("snapshot");
                assert!(snap.starts_with("OK snapshot"), "{snap}");
            }
            (responses, format!("{:?}", server.store().records()))
        });
        let cold_evals = evals.load(Ordering::SeqCst);
        drop(cold); // no clean shutdown: ack => durable must suffice

        let (warm, restored) = Server::new(config).expect("warm open");
        prop_assert!(restored == warm.store().len());
        prop_assert!(format!("{:?}", warm.store().records()) == cold_records,
            "store did not round-trip bit-exactly");
        let (client_end, server_end) = pair();
        let warm_responses = std::thread::scope(|s| {
            let server = &warm;
            s.spawn(move || server.handle(server_end));
            let mut client = Client::new(client_end);
            client.pipeline(&lines).expect("warm responses")
        });
        prop_assert!(warm_responses == cold_responses,
            "responses diverged across restart");
        prop_assert!(evals.load(Ordering::SeqCst) == cold_evals,
            "warm server re-evaluated instead of serving from the restored store");
    }
}

#[test]
fn pipelined_evals_fold_into_one_engine_dispatch() {
    let evals = Arc::new(AtomicU64::new(0));
    let (server, _) = Server::new(counted_config(&evals)).expect("memory store");
    // Distinct points plus one in-batch duplicate.
    let lines = [
        "EVAL 256 900 2",
        "EVAL 288 1000 3",
        "EVAL 320 1100 3",
        "EVAL 256 900 2",
    ];
    let (client_end, server_end) = pair();
    let responses = std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || server.handle(server_end));
        let mut client = Client::new(client_end);
        client.pipeline(&lines).expect("responses")
    });
    assert_eq!(responses.len(), 4);
    assert_eq!(responses[0], responses[3], "duplicate point, same bytes");
    let c = server.counters();
    assert_eq!(
        c.batches.load(Ordering::Relaxed),
        1,
        "4 pipelined EVALs must cost one engine dispatch"
    );
    assert_eq!(
        c.batched_evals.load(Ordering::Relaxed),
        3,
        "3 unique points"
    );
    assert_eq!(evals.load(Ordering::SeqCst), 3);
    assert_eq!(c.hits.load(Ordering::Relaxed), 1, "the in-batch duplicate");
}

#[test]
fn overflowing_the_admission_queue_is_answered_busy() {
    let evals = Arc::new(AtomicU64::new(0));
    let mut config = counted_config(&evals);
    config.queue_cap = 2;
    let (server, _) = Server::new(config).expect("memory store");
    // No worker pool is draining, so the queue fills and stays full.
    let mut rejected = Vec::new();
    for _ in 0..4 {
        let (client_end, server_end) = pair();
        if !server.submit(Box::new(server_end)) {
            rejected.push(client_end);
        }
    }
    assert_eq!(rejected.len(), 2, "third and fourth connections shed");
    for client_end in rejected {
        // The BUSY frame was written at rejection (before the server
        // dropped its end), so reading it must not block.
        let mut reader = ena_serve::FrameReader::new(client_end);
        let frame = reader.read_frame().expect("BUSY frame is well-formed");
        assert_eq!(frame.as_deref(), Some(b"BUSY".as_slice()));
        assert_eq!(reader.read_frame().expect("clean close"), None);
    }
    let c = server.counters();
    assert_eq!(c.busy.load(Ordering::Relaxed), 2);
    assert_eq!(c.connections.load(Ordering::Relaxed), 2);
}

#[test]
fn sweep_then_frontier_matches_the_batch_engine() {
    use ena_core::dse::DesignSpace;
    use ena_sweep::{pareto_frontier, SweepEngine, SweepSpec};

    let profiles = vec![profile_for("CoMD").expect("CoMD is a paper app")];
    let (server, _) =
        Server::new(ServeConfig::new(Explorer::default(), profiles.clone())).expect("memory store");
    let (client_end, server_end) = pair();
    let (sweep_body, frontier_body) = std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || server.handle(server_end));
        let mut client = Client::new(client_end);
        (
            client.request("SWEEP coarse").expect("sweep"),
            client.request("FRONTIER").expect("frontier"),
        )
    });
    assert!(sweep_body.starts_with("OK sweep points="), "{sweep_body}");

    // The frontier over the server's store equals the frontier the
    // batch engine computes over the same space.
    let spec = SweepSpec::new(DesignSpace::coarse(), profiles.clone());
    let outcome = SweepEngine::new(Explorer::default())
        .run(&spec)
        .expect("batch sweep");
    let records: Vec<_> = server
        .store()
        .records()
        .into_iter()
        .map(|(_, r)| (*r).clone())
        .collect();
    let served = pareto_frontier(&Explorer::default(), &records, profiles.len());
    // The server's store is key-ordered while the batch engine walks the
    // space in grid order, so compare the frontiers as sets.
    let as_set = |frontier: &[ena_sweep::FrontierPoint]| -> std::collections::BTreeSet<String> {
        frontier.iter().map(|f| format!("{f:?}")).collect()
    };
    assert_eq!(as_set(&served), as_set(&outcome.frontier));
    assert!(
        frontier_body.starts_with(&format!("OK frontier n={}", served.len())),
        "{frontier_body}"
    );
}

#[test]
fn malformed_requests_get_err_and_the_connection_survives() {
    let evals = Arc::new(AtomicU64::new(0));
    let (server, _) = Server::new(counted_config(&evals)).expect("memory store");
    let (client_end, server_end) = pair();
    std::thread::scope(|s| {
        let server = &server;
        s.spawn(move || server.handle(server_end));
        let mut client = Client::new(client_end);
        let err = client.request("NOPE what").expect("response");
        assert!(err.starts_with("ERR "), "{err}");
        // Same connection keeps serving after a request-level error.
        let ok = client.request("EVAL 320 1000 3").expect("response");
        assert!(ok.starts_with("OK "), "{ok}");
        let stats = client.request("STATS").expect("response");
        assert!(stats.starts_with("OK stats"), "{stats}");
    });
    assert_eq!(server.counters().protocol_errors.load(Ordering::Relaxed), 1);
}

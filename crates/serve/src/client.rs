//! A minimal blocking client for the evaluation service: one framed
//! request, one framed response — plus pipelining, which is what lets
//! the server batch a run of `EVAL`s into a single engine dispatch.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::protocol::{write_frame, FrameReader};

/// A connected client over any `Read + Write` stream (a `TcpStream`,
/// or an in-process pipe end in tests).
#[derive(Debug)]
pub struct Client<S> {
    reader: FrameReader<S>,
}

impl Client<TcpStream> {
    /// Connects over TCP to `addr` (e.g. `127.0.0.1:7878`).
    ///
    /// # Errors
    ///
    /// Propagates the connection error.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Ok(Self::new(TcpStream::connect(addr)?))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Self {
        Self {
            reader: FrameReader::new(stream),
        }
    }

    /// Sends one request line and blocks for its response body.
    ///
    /// # Errors
    ///
    /// Any I/O or framing error, or `UnexpectedEof` if the server
    /// closes before responding (e.g. a `BUSY` rejection already read).
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        write_frame(self.reader.get_mut(), line.as_bytes())?;
        self.read_response()
    }

    /// Sends every request line back-to-back, then reads the responses
    /// in order. Pipelining lands all frames before the server's
    /// handler drains its buffer, so a run of `EVAL`s is grouped into
    /// one engine batch.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; on error, responses already read are
    /// lost.
    pub fn pipeline(&mut self, lines: &[&str]) -> io::Result<Vec<String>> {
        for line in lines {
            write_frame(self.reader.get_mut(), line.as_bytes())?;
        }
        let mut responses = Vec::with_capacity(lines.len());
        for _ in lines {
            responses.push(self.read_response()?);
        }
        Ok(responses)
    }

    fn read_response(&mut self) -> io::Result<String> {
        let frame = self.reader.read_frame()?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })?;
        Ok(String::from_utf8_lossy(&frame).into_owned())
    }
}

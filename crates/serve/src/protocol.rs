//! The wire protocol: length-prefixed frames carrying one ASCII command
//! or response each.
//!
//! # Frame layout
//!
//! ```text
//! <decimal byte length of body>\n<body bytes>
//! ```
//!
//! The length line is plain ASCII digits (no sign, no padding, at most
//! [`MAX_FRAME_DIGITS`] of them) terminated by a single `\n`; the body
//! follows verbatim and is *not* newline-terminated by the framing
//! (multi-line bodies simply contain `\n` bytes). A frame body is at
//! most [`MAX_FRAME`] bytes — a peer announcing more is a protocol
//! error, not an allocation request.
//!
//! # Request grammar
//!
//! ```text
//! EVAL <cus> <mhz> <tbps>      evaluate one design point
//! SWEEP coarse|fine            evaluate a whole design space
//! FRONTIER                     Pareto frontier over every cached record
//! STATS                        serving counters
//! SNAPSHOT                     atomically rewrite the persistent cache
//! SHUTDOWN                     stop accepting and drain
//! ```
//!
//! Responses are one frame each: `OK <payload>`, `ERR <message>`, or
//! `BUSY` (admission rejection — the server closes the connection after
//! sending it).

use std::io::{self, Read, Write};

use ena_core::dse::ConfigPoint;
use ena_model::units::{GigabytesPerSec, Megahertz};

/// Maximum frame body size in bytes.
pub const MAX_FRAME: usize = 64 * 1024;

/// Maximum digits in the length line (enough for [`MAX_FRAME`]).
pub const MAX_FRAME_DIGITS: usize = 8;

/// The admission-control rejection response body.
pub const BUSY: &str = "BUSY";

/// Writes one frame (`length\nbody`) and flushes it.
///
/// # Errors
///
/// Propagates any I/O error from the underlying stream.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(format!("{}\n", body.len()).as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Incremental frame reader over any byte stream.
///
/// Owns the stream (use [`FrameReader::get_mut`] to write responses on
/// the same connection) and an internal buffer, so already-received
/// bytes can be inspected without blocking — the hook the server's
/// request batching uses to group back-to-back `EVAL`s.
#[derive(Debug)]
pub struct FrameReader<S> {
    stream: S,
    buf: Vec<u8>,
    pos: usize,
}

impl<S: Read> FrameReader<S> {
    /// Wraps `stream` with an empty buffer.
    pub fn new(stream: S) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The underlying stream, for writing responses.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Reads the next frame, blocking until it is complete. `Ok(None)`
    /// means the peer closed the connection cleanly at a frame boundary.
    ///
    /// # Errors
    ///
    /// An I/O error from the stream, or `InvalidData` for a malformed
    /// length line, an oversized frame, or EOF mid-frame.
    pub fn read_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                if self.pos == self.buf.len() {
                    return Ok(None); // clean EOF at a frame boundary
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "connection closed mid-frame",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Returns the next frame if its bytes are already buffered, without
    /// reading from the stream. `Ok(None)` means no complete frame is
    /// buffered (the caller should fall back to [`FrameReader::read_frame`]
    /// when it wants to block).
    ///
    /// # Errors
    ///
    /// `InvalidData` for a malformed length line or oversized frame.
    pub fn buffered_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.take_buffered()
    }

    /// Parses one frame out of the buffer, consuming it.
    fn take_buffered(&mut self) -> io::Result<Option<Vec<u8>>> {
        let bytes = &self.buf[self.pos..];
        let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
            if bytes.len() > MAX_FRAME_DIGITS {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "frame length line is not terminated",
                ));
            }
            return Ok(None);
        };
        let digits = &bytes[..nl];
        let len: usize = std::str::from_utf8(digits)
            .ok()
            .filter(|d| !d.is_empty() && d.len() <= MAX_FRAME_DIGITS)
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "malformed frame length line")
            })?;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
            ));
        }
        let body_start = nl + 1;
        if bytes.len() < body_start + len {
            return Ok(None); // body not fully received yet
        }
        let frame = bytes[body_start..body_start + len].to_vec();
        self.pos += body_start + len;
        // Compact once the consumed prefix dominates the buffer, so a
        // long-lived connection does not grow it without bound.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(frame))
    }
}

/// One parsed client request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Request {
    /// Evaluate one design point.
    Eval(EvalPoint),
    /// Evaluate a whole design space and report the reduction.
    Sweep {
        /// `true` for the paper's fine grid, `false` for the coarse one.
        fine: bool,
    },
    /// Pareto frontier over every cached record.
    Frontier,
    /// Serving counters.
    Stats,
    /// Atomically rewrite the persistent cache from the live store.
    Snapshot,
    /// Stop accepting connections and drain.
    Shutdown,
}

/// The design-point coordinates of an `EVAL` request, in the same units
/// the CLI takes (`--cus`, `--mhz`, `--tbps`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalPoint {
    /// Total CU count.
    pub cus: u32,
    /// GPU clock in MHz.
    pub mhz: f64,
    /// In-package bandwidth in TB/s.
    pub tbps: f64,
}

impl EvalPoint {
    /// The sweep-engine design point this request addresses. Uses the
    /// same unit conversions as the batch CLI, so the memoization key —
    /// and therefore the cached record — is shared with `ena sweep`.
    pub fn to_config_point(self) -> ConfigPoint {
        ConfigPoint {
            cus: self.cus,
            clock: Megahertz::new(self.mhz),
            bandwidth: GigabytesPerSec::from_terabytes_per_sec(self.tbps),
        }
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown verb or malformed
    /// operands; the server relays it verbatim in an `ERR` response.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut fields = line.split_whitespace();
        let verb = fields.next().ok_or("empty request")?;
        let request = match verb {
            "EVAL" => {
                let mut operand = |name: &str| -> Result<&str, String> {
                    fields.next().ok_or(format!("EVAL is missing <{name}>"))
                };
                let cus = operand("cus")?;
                let cus: u32 = cus.parse().map_err(|_| format!("bad EVAL cus: {cus}"))?;
                let mhz = operand("mhz")?;
                let mhz: f64 = mhz.parse().map_err(|_| format!("bad EVAL mhz: {mhz}"))?;
                let tbps = operand("tbps")?;
                let tbps: f64 = tbps.parse().map_err(|_| format!("bad EVAL tbps: {tbps}"))?;
                if !mhz.is_finite() || !tbps.is_finite() {
                    return Err("EVAL operands must be finite".into());
                }
                Request::Eval(EvalPoint { cus, mhz, tbps })
            }
            "SWEEP" => match fields.next() {
                Some("coarse") => Request::Sweep { fine: false },
                Some("fine") => Request::Sweep { fine: true },
                other => {
                    return Err(format!(
                        "SWEEP takes 'coarse' or 'fine', got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "FRONTIER" => Request::Frontier,
            "STATS" => Request::Stats,
            "SNAPSHOT" => Request::Snapshot,
            "SHUTDOWN" => Request::Shutdown,
            other => return Err(format!("unknown request verb '{other}'")),
        };
        if let Some(stray) = fields.next() {
            return Err(format!("unexpected operand '{stray}'"));
        }
        Ok(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"EVAL 320 1000 3").unwrap();
        write_frame(&mut wire, b"STATS").unwrap();
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap().unwrap(), b"EVAL 320 1000 3");
        assert_eq!(reader.read_frame().unwrap().unwrap(), b"STATS");
        assert_eq!(reader.read_frame().unwrap(), None);
    }

    #[test]
    fn buffered_frame_never_blocks() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"A").unwrap();
        write_frame(&mut wire, b"B").unwrap();
        // Feed a reader whose stream would block forever after the
        // initial bytes by pre-loading the buffer via read_frame.
        let mut reader = FrameReader::new(&wire[..]);
        assert_eq!(reader.read_frame().unwrap().unwrap(), b"A");
        assert_eq!(reader.buffered_frame().unwrap().unwrap(), b"B");
        assert_eq!(reader.buffered_frame().unwrap(), None);
    }

    #[test]
    fn torn_and_malformed_frames_are_errors() {
        let mut reader = FrameReader::new(&b"5\nabc"[..]);
        assert!(reader.read_frame().is_err(), "EOF mid-frame must error");

        let mut reader = FrameReader::new(&b"zz\nabc"[..]);
        assert!(reader.read_frame().is_err(), "non-numeric length");

        let huge = format!("{}\n", MAX_FRAME + 1);
        let mut reader = FrameReader::new(huge.as_bytes());
        assert!(reader.read_frame().is_err(), "oversized frame");
    }

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(
            Request::parse("EVAL 320 1000 3").unwrap(),
            Request::Eval(EvalPoint {
                cus: 320,
                mhz: 1000.0,
                tbps: 3.0
            })
        );
        assert_eq!(
            Request::parse("SWEEP coarse").unwrap(),
            Request::Sweep { fine: false }
        );
        assert_eq!(
            Request::parse("SWEEP fine").unwrap(),
            Request::Sweep { fine: true }
        );
        assert_eq!(Request::parse("FRONTIER").unwrap(), Request::Frontier);
        assert_eq!(Request::parse("STATS").unwrap(), Request::Stats);
        assert_eq!(Request::parse("SNAPSHOT").unwrap(), Request::Snapshot);
        assert_eq!(Request::parse("SHUTDOWN").unwrap(), Request::Shutdown);

        assert!(Request::parse("EVAL 320 1000")
            .unwrap_err()
            .contains("tbps"));
        assert!(Request::parse("EVAL x 1000 3").unwrap_err().contains("cus"));
        assert!(Request::parse("EVAL 320 inf 3")
            .unwrap_err()
            .contains("finite"));
        assert!(Request::parse("SWEEP medium")
            .unwrap_err()
            .contains("SWEEP"));
        assert!(
            Request::parse("STATS now").unwrap_err().contains("stray")
                || Request::parse("STATS now")
                    .unwrap_err()
                    .contains("unexpected")
        );
        assert!(Request::parse("NOPE").unwrap_err().contains("unknown"));
        assert!(Request::parse("").is_err());
    }
}

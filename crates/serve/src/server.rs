//! The evaluation server: a fixed worker pool serving framed requests
//! over any `Read + Write` connection, with bounded admission, request
//! batching, and the sharded single-flight store behind every answer.
//!
//! # Concurrency shape
//!
//! One acceptor thread hands connections to a bounded queue; `workers`
//! threads pull connections and run each to completion. A connection
//! arriving while the queue is full is answered with a single [`BUSY`]
//! frame and closed — load sheds at admission instead of queueing
//! unboundedly (typed rejection, never a silent hang).
//!
//! # Batching
//!
//! After blocking for one frame, a handler opportunistically drains
//! every *already received* frame (up to `max_batch`) and folds the
//! leading run of `EVAL` requests into one engine chunk — a pipelining
//! client pays one evaluation dispatch for the whole run, and responses
//! still come back in request order.
//!
//! # Accounting identity
//!
//! Every design-point lookup resolves as exactly one of a hit (served
//! from the store or an in-batch duplicate), an eval (this request ran
//! the engine), or a wait (blocked on another request's flight), so in
//! fault-free operation `lookups == hits + evals + waits` — the balance
//! `STATS` exposes and CI asserts.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use ena_core::dse::{ConfigPoint, DesignSpace, Explorer, PointRecord};
use ena_model::hash::MODEL_VERSION;
use ena_model::kernel::KernelProfile;
use ena_sweep::{
    campaign_digest, evaluate_batch, pareto_frontier, point_key, CacheError, CacheRecord as _,
    Failpoint, SyncPolicy, Vfs,
};

use crate::protocol::{write_frame, FrameReader, Request, BUSY};
use crate::store::{Claim, ShardStore};

/// Anything a handler can serve: a TCP stream, or an in-process pipe
/// end from `ena_testkit::transport` in hermetic tests. Blanket-
/// implemented for every `Read + Write + Send` type; the indirection
/// through named methods (rather than `Read`/`Write` supertraits) is
/// what lets `dyn Connection` itself implement `Read + Write` without
/// colliding with std's blanket `Box` impls.
pub trait Connection: Send {
    /// As [`Read::read`].
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// As [`Write::write`].
    fn write_bytes(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// As [`Write::flush`].
    fn flush_bytes(&mut self) -> io::Result<()>;
}

impl<T: Read + Write + Send> Connection for T {
    fn read_bytes(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Read::read(self, buf)
    }

    fn write_bytes(&mut self, buf: &[u8]) -> io::Result<usize> {
        Write::write(self, buf)
    }

    fn flush_bytes(&mut self) -> io::Result<()> {
        Write::flush(self)
    }
}

impl Read for dyn Connection + '_ {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.read_bytes(buf)
    }
}

impl Write for dyn Connection + '_ {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_bytes(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_bytes()
    }
}

/// Monotonic serving counters, all updated with relaxed atomics (each
/// counter is independently meaningful; cross-counter identities are
/// read at quiescent points like a `STATS` request).
#[derive(Debug, Default)]
pub struct Counters {
    /// Connections admitted to the service queue.
    pub connections: AtomicU64,
    /// Connections rejected with a `BUSY` frame at admission.
    pub busy: AtomicU64,
    /// Connections dropped for malformed framing.
    pub protocol_errors: AtomicU64,
    /// `EVAL` requests received.
    pub eval_requests: AtomicU64,
    /// `SWEEP` requests received.
    pub sweep_requests: AtomicU64,
    /// `FRONTIER` requests received.
    pub frontier_requests: AtomicU64,
    /// `STATS` requests received.
    pub stats_requests: AtomicU64,
    /// `SNAPSHOT` requests received.
    pub snapshot_requests: AtomicU64,
    /// `SHUTDOWN` requests received.
    pub shutdown_requests: AtomicU64,
    /// Design-point lookups against the store (one per `EVAL`, one per
    /// point of a `SWEEP`).
    pub lookups: AtomicU64,
    /// Lookups answered from the store or an in-batch duplicate.
    pub hits: AtomicU64,
    /// Lookups whose request ran the engine itself.
    pub evals: AtomicU64,
    /// Lookups that blocked on another request's in-flight evaluation.
    pub waits: AtomicU64,
    /// Engine dispatches (each covering one or more points).
    pub batches: AtomicU64,
    /// Points evaluated inside batched dispatches.
    pub batched_evals: AtomicU64,
    /// Records appended to the persistent cache.
    pub appended: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Server construction parameters. Build with [`ServeConfig::new`] and
/// override fields as needed.
#[derive(Clone)]
pub struct ServeConfig {
    /// The explorer evaluating design points.
    pub explorer: Explorer,
    /// Application profiles evaluated at every point (their content is
    /// folded into the campaign digest, hence into every cache key).
    pub profiles: Vec<KernelProfile>,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Pending connections admitted beyond the ones in service; the
    /// next arrival is answered `BUSY`.
    pub queue_cap: usize,
    /// Largest run of `EVAL` requests folded into one engine dispatch,
    /// and the chunk size of a `SWEEP`.
    pub max_batch: usize,
    /// Directory for the persistent cache; `None` serves from memory
    /// only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Filesystem the cache goes through (fault-injectable in tests).
    pub fs: Arc<dyn Vfs>,
    /// Durability policy for cache appends.
    pub sync: SyncPolicy,
    /// Test hook invoked with the memoization key once per fresh engine
    /// evaluation — the observable the single-flight property counts.
    pub probe: Option<Failpoint>,
}

impl ServeConfig {
    /// A config with the serving defaults: 4 workers, 16 queued
    /// connections, 64-point batches, no persistence.
    pub fn new(explorer: Explorer, profiles: Vec<KernelProfile>) -> Self {
        Self {
            explorer,
            profiles,
            workers: 4,
            queue_cap: 16,
            max_batch: 64,
            cache_dir: None,
            fs: Arc::new(ena_sweep::RealFs),
            sync: SyncPolicy::default(),
            probe: None,
        }
    }
}

/// Locks a mutex, recovering from poisoning: queue and address state
/// are always consistent at unlock time.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// How one point of a resolve batch is pending, index-aligned with the
/// input points.
enum PendingPoint {
    /// Already published when claimed.
    Ready(Arc<PointRecord>),
    /// This batch leads the key; the result lands in the resolved map.
    Lead,
    /// Duplicate of a key this batch leads.
    LocalDup,
    /// Another request leads the key.
    Wait(crate::store::FollowerTicket),
}

/// The evaluation server (see the module docs).
pub struct Server {
    explorer: Explorer,
    profiles: Vec<KernelProfile>,
    workers: usize,
    queue_cap: usize,
    max_batch: usize,
    probe: Option<Failpoint>,
    campaign: u64,
    store: ShardStore,
    counters: Counters,
    queue: Mutex<VecDeque<Box<dyn Connection>>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    wake_addr: Mutex<Option<SocketAddr>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .field("max_batch", &self.max_batch)
            .field("campaign", &format_args!("{:016x}", self.campaign))
            .field("records", &self.store.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Builds the server: derives the campaign digest from the explorer
    /// and profiles (the same digest `ena sweep` uses, so cache files
    /// interoperate) and opens the store, warm-starting from any
    /// surviving cache file. Returns the server and the number of
    /// records restored.
    ///
    /// # Errors
    ///
    /// A [`CacheError`] opening the persistent cache.
    pub fn new(config: ServeConfig) -> Result<(Self, usize), CacheError> {
        let campaign = campaign_digest(&config.explorer, &config.profiles);
        let (store, restored) = ShardStore::open(
            config.cache_dir.as_deref(),
            config.fs,
            config.sync,
            campaign,
            MODEL_VERSION,
        )?;
        Ok((
            Self {
                explorer: config.explorer,
                profiles: config.profiles,
                workers: config.workers.max(1),
                queue_cap: config.queue_cap.max(1),
                max_batch: config.max_batch.max(1),
                probe: config.probe,
                campaign,
                store,
                counters: Counters::default(),
                queue: Mutex::new(VecDeque::new()),
                queue_ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
                wake_addr: Mutex::new(None),
            },
            restored,
        ))
    }

    /// The serving counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The campaign digest every cache key is derived from.
    pub fn campaign(&self) -> u64 {
        self.campaign
    }

    /// The sharded record store.
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// True once a `SHUTDOWN` request has been served.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Admits one connection: queued for a worker (`true`), or — when
    /// the queue is at capacity or the server is draining — answered
    /// with a [`BUSY`] frame and dropped (`false`).
    pub fn submit(&self, mut conn: Box<dyn Connection>) -> bool {
        {
            let mut queue = lock(&self.queue);
            if !self.is_shutdown() && queue.len() < self.queue_cap {
                queue.push_back(conn);
                Counters::bump(&self.counters.connections, 1);
                self.queue_ready.notify_one();
                return true;
            }
        }
        Counters::bump(&self.counters.busy, 1);
        if write_frame(&mut conn, BUSY.as_bytes()).is_err() {
            // The peer is gone; the rejection was moot anyway.
        }
        false
    }

    /// Runs the accept loop plus the worker pool over `listener`,
    /// returning the final stats render once a `SHUTDOWN` request has
    /// been served and every admitted connection has drained.
    ///
    /// # Errors
    ///
    /// Only listener-level faults (reading the local address); per-
    /// connection I/O errors are absorbed by the handlers.
    pub fn serve(&self, listener: TcpListener) -> io::Result<String> {
        let addr = listener.local_addr()?;
        *lock(&self.wake_addr) = Some(addr);
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| self.worker_loop());
            }
            for stream in listener.incoming() {
                if self.is_shutdown() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                self.submit(Box::new(stream));
            }
            // Wake any worker still parked on an empty queue so the
            // scope can join them.
            self.queue_ready.notify_all();
        });
        Ok(self.render_stats())
    }

    /// One worker: pull connections until shutdown *and* the queue has
    /// drained (admitted connections are always served, never dropped).
    fn worker_loop(&self) {
        loop {
            let conn = {
                let mut queue = lock(&self.queue);
                loop {
                    if let Some(conn) = queue.pop_front() {
                        break Some(conn);
                    }
                    if self.is_shutdown() {
                        break None;
                    }
                    queue = self
                        .queue_ready
                        .wait(queue)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            match conn {
                Some(conn) => self.handle(conn),
                None => return,
            }
        }
    }

    /// Flips the shutdown flag and unblocks the acceptor (via a no-op
    /// connection to its own listener) and all parked workers.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_ready.notify_all();
        let addr = *lock(&self.wake_addr);
        if let Some(addr) = addr {
            drop(TcpStream::connect(addr));
        }
    }

    /// Serves one connection to completion. Public so tests can drive
    /// the full request path over an in-process pipe without sockets.
    pub fn handle<S: Read + Write>(&self, stream: S) {
        let mut reader = FrameReader::new(stream);
        let mut pending: VecDeque<Vec<u8>> = VecDeque::new();
        let mut framing_dead = false;
        loop {
            if pending.is_empty() {
                if framing_dead {
                    return;
                }
                match reader.read_frame() {
                    Ok(Some(frame)) => pending.push_back(frame),
                    Ok(None) => return, // clean close
                    Err(e) => {
                        Counters::bump(&self.counters.protocol_errors, 1);
                        let body = format!("ERR {e}");
                        drop(write_frame(reader.get_mut(), body.as_bytes()));
                        return;
                    }
                }
                // Fold in everything the client already pipelined.
                while pending.len() < self.max_batch {
                    match reader.buffered_frame() {
                        Ok(Some(frame)) => pending.push_back(frame),
                        Ok(None) => break,
                        Err(_) => {
                            Counters::bump(&self.counters.protocol_errors, 1);
                            framing_dead = true;
                            break;
                        }
                    }
                }
            }
            if !self.step(&mut reader, &mut pending) {
                return;
            }
        }
    }

    /// Processes the front of the pending queue: a leading run of
    /// `EVAL`s as one batch, or a single other request. Returns `false`
    /// when the connection should close.
    fn step<S: Read + Write>(
        &self,
        reader: &mut FrameReader<S>,
        pending: &mut VecDeque<Vec<u8>>,
    ) -> bool {
        let mut evals: Vec<ConfigPoint> = Vec::new();
        while let Some(front) = pending.front() {
            let line = String::from_utf8_lossy(front);
            match Request::parse(&line) {
                Ok(Request::Eval(point)) => {
                    evals.push(point.to_config_point());
                    pending.pop_front();
                }
                _ => break,
            }
        }
        if !evals.is_empty() {
            Counters::bump(&self.counters.eval_requests, evals.len() as u64);
            for (key, result) in self.resolve_batch(&evals) {
                let body = match result {
                    Ok(record) => format!("OK {key:016x} {}", record.encode()),
                    Err(message) => format!("ERR {message}"),
                };
                if write_frame(reader.get_mut(), body.as_bytes()).is_err() {
                    return false;
                }
            }
            return true;
        }
        let Some(front) = pending.pop_front() else {
            return true;
        };
        let line = String::from_utf8_lossy(&front).into_owned();
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(message) => {
                Counters::bump(&self.counters.protocol_errors, 1);
                let body = format!("ERR {message}");
                return write_frame(reader.get_mut(), body.as_bytes()).is_ok();
            }
        };
        let (body, keep_open) = match request {
            // A leading EVAL is consumed by the batching loop above, so
            // this arm is unreachable in practice; keep it total anyway.
            Request::Eval(point) => {
                Counters::bump(&self.counters.eval_requests, 1);
                let batch = [point.to_config_point()];
                let body = match self.resolve_batch(&batch).pop() {
                    Some((key, Ok(record))) => format!("OK {key:016x} {}", record.encode()),
                    Some((_, Err(message))) => format!("ERR {message}"),
                    None => "ERR evaluation produced no record".to_string(),
                };
                (body, true)
            }
            Request::Sweep { fine } => {
                Counters::bump(&self.counters.sweep_requests, 1);
                (self.respond_sweep(fine), true)
            }
            Request::Frontier => {
                Counters::bump(&self.counters.frontier_requests, 1);
                (self.respond_frontier(), true)
            }
            Request::Stats => {
                Counters::bump(&self.counters.stats_requests, 1);
                (format!("OK stats\n{}", self.render_stats()), true)
            }
            Request::Snapshot => {
                Counters::bump(&self.counters.snapshot_requests, 1);
                let body = match self.store.snapshot() {
                    Ok((records, generation)) => {
                        format!("OK snapshot records={records} generation={generation}")
                    }
                    Err(e) => format!("ERR {e}"),
                };
                (body, true)
            }
            Request::Shutdown => {
                Counters::bump(&self.counters.shutdown_requests, 1);
                self.begin_shutdown();
                ("OK bye".to_string(), false)
            }
        };
        write_frame(reader.get_mut(), body.as_bytes()).is_ok() && keep_open
    }

    /// Resolves an ordered batch of points against the store with
    /// single-flight semantics: every key this batch claims leadership
    /// of is evaluated in ONE engine dispatch; follower entries block on
    /// their leaders. Returns `(key, record-or-error)` in input order.
    fn resolve_batch(
        &self,
        points: &[ConfigPoint],
    ) -> Vec<(u64, Result<Arc<PointRecord>, String>)> {
        Counters::bump(&self.counters.lookups, points.len() as u64);
        let keyed: Vec<(u64, ConfigPoint)> = points
            .iter()
            .map(|p| (point_key(self.campaign, p), *p))
            .collect();

        // Claim every key, collecting the set this batch must evaluate.
        let mut states: Vec<PendingPoint> = Vec::with_capacity(keyed.len());
        let mut tokens: BTreeMap<u64, crate::store::LeaderToken<'_>> = BTreeMap::new();
        let mut to_eval: Vec<(u64, ConfigPoint)> = Vec::new();
        for (key, point) in &keyed {
            if tokens.contains_key(key) {
                states.push(PendingPoint::LocalDup);
                continue;
            }
            match self.store.claim(*key) {
                Claim::Ready(record) => states.push(PendingPoint::Ready(record)),
                Claim::Leader(token) => {
                    tokens.insert(*key, token);
                    to_eval.push((*key, *point));
                    states.push(PendingPoint::Lead);
                }
                Claim::Follower(ticket) => states.push(PendingPoint::Wait(ticket)),
            }
        }

        // One engine dispatch for the whole leading set, then publish.
        let mut resolved: BTreeMap<u64, Result<Arc<PointRecord>, String>> = BTreeMap::new();
        if !to_eval.is_empty() {
            Counters::bump(&self.counters.batches, 1);
            Counters::bump(&self.counters.batched_evals, to_eval.len() as u64);
            if let Some(probe) = &self.probe {
                for (key, _) in &to_eval {
                    probe(*key);
                }
            }
            for (key, record) in evaluate_batch(&self.explorer, &to_eval, &self.profiles) {
                let Some(token) = tokens.remove(&key) else {
                    continue;
                };
                let outcome = match self.store.publish(token, record) {
                    Ok(record) => {
                        if self.store.is_persistent() {
                            Counters::bump(&self.counters.appended, 1);
                        }
                        Ok(record)
                    }
                    Err(e) => Err(e.to_string()),
                };
                resolved.insert(key, outcome);
            }
        }

        // Settle every entry in input order.
        states
            .into_iter()
            .zip(keyed)
            .map(|(state, (key, point))| {
                let result = match state {
                    PendingPoint::Ready(record) => {
                        Counters::bump(&self.counters.hits, 1);
                        Ok(record)
                    }
                    PendingPoint::Lead => {
                        Counters::bump(&self.counters.evals, 1);
                        resolved
                            .get(&key)
                            .cloned()
                            .unwrap_or_else(|| Err("evaluation produced no record".into()))
                    }
                    PendingPoint::LocalDup => {
                        Counters::bump(&self.counters.hits, 1);
                        resolved
                            .get(&key)
                            .cloned()
                            .unwrap_or_else(|| Err("evaluation produced no record".into()))
                    }
                    PendingPoint::Wait(ticket) => self.settle_wait(key, point, ticket),
                };
                (key, result)
            })
            .collect()
    }

    /// Settles a follower entry: wait for the leader; if the leader
    /// abandoned (publish fault), re-claim — possibly becoming the new
    /// leader and evaluating solo.
    fn settle_wait(
        &self,
        key: u64,
        point: ConfigPoint,
        ticket: crate::store::FollowerTicket,
    ) -> Result<Arc<PointRecord>, String> {
        let mut outcome = self.store.wait(ticket);
        loop {
            if let Some(record) = outcome {
                Counters::bump(&self.counters.waits, 1);
                return Ok(record);
            }
            match self.store.claim(key) {
                Claim::Ready(record) => {
                    Counters::bump(&self.counters.hits, 1);
                    return Ok(record);
                }
                Claim::Follower(ticket) => outcome = self.store.wait(ticket),
                Claim::Leader(token) => {
                    Counters::bump(&self.counters.evals, 1);
                    Counters::bump(&self.counters.batches, 1);
                    Counters::bump(&self.counters.batched_evals, 1);
                    if let Some(probe) = &self.probe {
                        probe(key);
                    }
                    let record = self.explorer.evaluate_point(point, &self.profiles);
                    return match self.store.publish(token, record) {
                        Ok(record) => {
                            if self.store.is_persistent() {
                                Counters::bump(&self.counters.appended, 1);
                            }
                            Ok(record)
                        }
                        Err(e) => Err(e.to_string()),
                    };
                }
            }
        }
    }

    /// Serves `SWEEP`: the whole design space through the store in
    /// `max_batch` chunks, then the oracle reduction.
    fn respond_sweep(&self, fine: bool) -> String {
        let space = if fine {
            DesignSpace::paper()
        } else {
            DesignSpace::coarse()
        };
        let points = space.points();
        let mut records: Vec<PointRecord> = Vec::with_capacity(points.len());
        for chunk in points.chunks(self.max_batch) {
            for (_, result) in self.resolve_batch(chunk) {
                match result {
                    Ok(record) => records.push((*record).clone()),
                    Err(message) => return format!("ERR {message}"),
                }
            }
        }
        match self.explorer.reduce(&records, &self.profiles) {
            Ok(result) => format!(
                "OK sweep points={} feasible={} best cus={} mhz={} gbps={}",
                result.evaluated,
                result.feasible,
                result.best_mean.cus,
                result.best_mean.clock.value(),
                result.best_mean.bandwidth.value(),
            ),
            Err(e) => format!("ERR {e}"),
        }
    }

    /// Serves `FRONTIER`: the Pareto frontier over every record the
    /// store holds, in the store's deterministic key order.
    fn respond_frontier(&self) -> String {
        let records: Vec<PointRecord> = self
            .store
            .records()
            .into_iter()
            .map(|(_, record)| (*record).clone())
            .collect();
        let frontier = pareto_frontier(&self.explorer, &records, self.profiles.len());
        let mut body = format!("OK frontier n={}", frontier.len());
        for fp in &frontier {
            use std::fmt::Write as _;
            // fmt::Write to a String is infallible; discard the Ok.
            let _ = write!(
                body,
                "\n{} {} {} score={:.6} peak_w={:.3} peak_c={:.3}",
                fp.point.cus,
                fp.point.clock.value(),
                fp.point.bandwidth.value(),
                fp.score,
                fp.peak_power_w,
                fp.peak_dram_c,
            );
        }
        body
    }

    /// Renders the counters as stable text (no wall-clock, no
    /// addresses) — the `STATS` body and [`Server::serve`]'s return.
    pub fn render_stats(&self) -> String {
        let c = &self.counters;
        let lookups = Counters::get(&c.lookups);
        let hits = Counters::get(&c.hits);
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64 * 100.0
        };
        format!(
            "connections={} busy={} protocol_errors={}\n\
             requests: eval={} sweep={} frontier={} stats={} snapshot={} shutdown={}\n\
             cache: lookups={lookups} hits={hits} evals={} waits={} hit_rate={hit_rate:.1}%\n\
             batch: batches={} batched_evals={}\n\
             store: records={} appended={} persistent={}",
            Counters::get(&c.connections),
            Counters::get(&c.busy),
            Counters::get(&c.protocol_errors),
            Counters::get(&c.eval_requests),
            Counters::get(&c.sweep_requests),
            Counters::get(&c.frontier_requests),
            Counters::get(&c.stats_requests),
            Counters::get(&c.snapshot_requests),
            Counters::get(&c.shutdown_requests),
            Counters::get(&c.evals),
            Counters::get(&c.waits),
            Counters::get(&c.batches),
            Counters::get(&c.batched_evals),
            self.store.len(),
            Counters::get(&c.appended),
            self.store.is_persistent(),
        )
    }
}

//! ena-serve: a persistent concurrent evaluation service over the
//! deterministic sweep engine.
//!
//! The batch CLI answers one sweep per process; interactive
//! exploration of the paper's design space (HPCA'17 exascale APU) wants
//! the opposite shape — a long-lived process that keeps every evaluated
//! point hot and answers single-point probes in microseconds. This
//! crate provides that as four layers, std-only:
//!
//! | Module | Layer |
//! |---|---|
//! | [`protocol`] | Length-prefixed frames, `EVAL`/`SWEEP`/`FRONTIER`/`STATS`/`SNAPSHOT`/`SHUTDOWN` grammar |
//! | [`store`] | Sharded in-memory record store with single-flight dedup over the crash-consistent disk cache |
//! | [`server`] | Worker pool, bounded admission (`BUSY`), request batching |
//! | [`client`] | Blocking client with pipelining |
//!
//! # Guarantees
//!
//! - **Single flight**: K concurrent requests for one uncomputed point
//!   cost exactly one engine evaluation; all K responses are
//!   byte-identical.
//! - **Ack implies durable**: with a cache directory configured, a
//!   record is appended (and under `SyncPolicy::PerRecord`, fsynced)
//!   before any `OK` carrying it is written to a client.
//! - **Warm restart**: a restarted server reloads every intact record
//!   of the campaign's cache file; `SNAPSHOT` compacts the file
//!   atomically (write-temp → fsync → rename) while serving.
//! - **Key compatibility**: memoization keys are the sweep engine's
//!   `point_key` under the same campaign digest, so the server and
//!   `ena sweep` share cache files in both directions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::Client;
pub use protocol::{write_frame, EvalPoint, FrameReader, Request, BUSY, MAX_FRAME};
pub use server::{Connection, Counters, ServeConfig, Server};
pub use store::{Claim, FollowerTicket, LeaderToken, ShardStore, SHARD_COUNT};

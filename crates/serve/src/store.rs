//! The shared memoization layer: a sharded, in-memory concurrent store
//! over the sweep's crash-consistent disk cache, with single-flight
//! deduplication.
//!
//! # Sharding
//!
//! Records live in [`SHARD_COUNT`] shards, each a `Mutex<BTreeMap>`
//! keyed by the sweep engine's content address
//! ([`ena_sweep::point_key`]). A request only ever locks the one shard
//! its key hashes to, so unrelated evaluations never contend; within a
//! shard the `BTreeMap` keeps iteration deterministic.
//!
//! # Single flight
//!
//! A lookup of an uncomputed key installs an *in-flight* slot and makes
//! the caller the **leader** for that key; concurrent lookups of the
//! same key become **followers** and block on the leader's result. K
//! concurrent requests for one uncomputed point therefore cost exactly
//! one engine evaluation, and all K observe the same published
//! `Arc<PointRecord>` — byte-identical responses by construction. A
//! leader that dies without publishing (panic, failed append) abandons
//! the flight: followers wake, observe the abandonment, and re-claim,
//! so one crashed request never wedges the key.
//!
//! # Durability
//!
//! With a cache directory configured, every publish appends to the same
//! `ena-sweep-cache/2` file a batch sweep of the same campaign would
//! write — the append happens *before* the record is acknowledged to
//! any client, so an `OK` response implies the record survives a crash
//! (under [`SyncPolicy::PerRecord`], power loss too). [`ShardStore::snapshot`]
//! additionally rewrites the whole file from the in-memory store through
//! the write-temp → fsync → atomic-rename path, compacting repair
//! lineage and healing a poisoned append handle.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use ena_core::dse::PointRecord;
use ena_sweep::{CacheError, DiskCache, SyncPolicy, Vfs};

/// Number of shards. A small power of two: enough to decorrelate the
/// worker pool's lock traffic, cheap to scan for snapshots.
pub const SHARD_COUNT: usize = 16;

/// One key's in-flight computation: followers block on `done` until the
/// leader publishes into `state` or abandons.
#[derive(Debug, Default)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug, Default)]
struct FlightState {
    result: Option<Arc<PointRecord>>,
    abandoned: bool,
}

/// A shard slot: either a published record or a flight in progress.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Arc<PointRecord>),
    InFlight(Arc<Flight>),
}

/// What a [`ShardStore::claim`] resolved to.
#[derive(Debug)]
pub enum Claim<'a> {
    /// The record is already published.
    Ready(Arc<PointRecord>),
    /// The caller owns the evaluation: it must [`ShardStore::publish`]
    /// through the token (or drop it to abandon the flight).
    Leader(LeaderToken<'a>),
    /// Another caller is evaluating; wait via [`ShardStore::wait`].
    Follower(FollowerTicket),
}

/// Leadership of one in-flight key. Dropping the token without
/// publishing abandons the flight (followers wake and re-claim), so a
/// panicking evaluation can never wedge the key.
#[derive(Debug)]
pub struct LeaderToken<'a> {
    store: &'a ShardStore,
    key: u64,
    flight: Arc<Flight>,
    published: bool,
}

impl Drop for LeaderToken<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.store.abandon(self.key, &self.flight);
        }
    }
}

/// A follower's handle on another caller's in-flight evaluation.
#[derive(Debug)]
pub struct FollowerTicket {
    flight: Arc<Flight>,
}

/// The sharded single-flight store (see the module docs).
///
/// # Lock order
///
/// The store owns two tiers of locks: the per-shard mutexes and the
/// single `disk` mutex. No method ever holds two of them at once —
/// `publish` appends to disk *before* touching a shard, `snapshot`
/// copies the shards out (via [`ShardStore::records`]) *before* taking
/// `disk` — so the store contributes no shard↔disk edge to the
/// workspace lock-acquisition graph (see `artifacts/lock_graph.txt`;
/// the only outgoing edge is `disk` → the injected VFS's internal
/// bookkeeping lock, which never locks back). Keep it that way: acquire
/// at most one `ShardStore` lock per scope, and if that ever has to
/// change, the documented order is shard → disk, never the reverse.
#[derive(Debug)]
pub struct ShardStore {
    shards: Vec<Mutex<BTreeMap<u64, Slot>>>,
    disk: Option<Mutex<DiskCache<PointRecord>>>,
}

/// Locks a mutex, recovering the guard from a poisoned lock: shard and
/// cache state are always internally consistent at unlock time, so a
/// panicking peer must not cascade into every later request.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ShardStore {
    /// Opens the store. With `dir` set, the campaign's v2 cache file is
    /// opened (creating or repairing as needed) through `fs`/`sync` and
    /// every intact on-disk record is loaded into the shards — the
    /// warm-start path a restarted server takes. Returns the store and
    /// the number of records restored.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] for any I/O fault opening the disk
    /// cache; corrupt content degrades to misses instead of erroring.
    pub fn open(
        dir: Option<&Path>,
        fs: Arc<dyn Vfs>,
        sync: SyncPolicy,
        campaign: u64,
        version: &str,
    ) -> Result<(Self, usize), CacheError> {
        let mut shards = Vec::with_capacity(SHARD_COUNT);
        for _ in 0..SHARD_COUNT {
            shards.push(Mutex::new(BTreeMap::new()));
        }
        let store = Self { shards, disk: None };
        let Some(dir) = dir else {
            return Ok((store, 0));
        };
        let (cache, entries) = DiskCache::open_with(fs, sync, dir, campaign, version)?;
        let restored = entries.len();
        for (key, record) in entries {
            lock(&store.shards[Self::shard_of(key)]).insert(key, Slot::Ready(Arc::new(record)));
        }
        Ok((
            Self {
                disk: Some(Mutex::new(cache)),
                ..store
            },
            restored,
        ))
    }

    fn shard_of(key: u64) -> usize {
        (key % SHARD_COUNT as u64) as usize
    }

    /// True when the store persists records to disk.
    pub fn is_persistent(&self) -> bool {
        self.disk.is_some()
    }

    /// Number of published records across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock(s)
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when no record is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves one key: a published record, leadership of a fresh
    /// flight, or a follower ticket on someone else's flight.
    pub fn claim(&self, key: u64) -> Claim<'_> {
        let mut shard = lock(&self.shards[Self::shard_of(key)]);
        match shard.get(&key) {
            Some(Slot::Ready(record)) => Claim::Ready(record.clone()),
            Some(Slot::InFlight(flight)) => Claim::Follower(FollowerTicket {
                flight: flight.clone(),
            }),
            None => {
                let flight = Arc::new(Flight::default());
                shard.insert(key, Slot::InFlight(flight.clone()));
                Claim::Leader(LeaderToken {
                    store: self,
                    key,
                    flight,
                    published: false,
                })
            }
        }
    }

    /// Publishes the leader's record: appended to the disk cache first
    /// (acknowledgement implies durability), then installed in the shard
    /// and handed to every waiting follower.
    ///
    /// # Errors
    ///
    /// Returns the [`CacheError`] from a failed append. The flight is
    /// abandoned (followers re-claim) and nothing is published — an
    /// error response never leaves a half-acknowledged record behind.
    pub fn publish(
        &self,
        mut token: LeaderToken<'_>,
        record: PointRecord,
    ) -> Result<Arc<PointRecord>, CacheError> {
        if let Some(disk) = &self.disk {
            // ena:durability(disk): append-before-acknowledge — the fsynced
            // append must complete under the cache lock so a concurrent
            // snapshot/append never interleaves with a half-written record.
            lock(disk).append(token.key, &record)?;
            // On Err: token drops unpublished → abandon wakes followers.
        }
        let record = Arc::new(record);
        {
            let mut shard = lock(&self.shards[Self::shard_of(token.key)]);
            shard.insert(token.key, Slot::Ready(record.clone()));
        }
        {
            let mut state = lock(&token.flight.state);
            state.result = Some(record.clone());
        }
        token.flight.done.notify_all();
        token.published = true;
        Ok(record)
    }

    /// Abandons an unpublished flight: the slot is removed so the next
    /// claimant becomes a fresh leader, and waiting followers wake to
    /// `None`.
    fn abandon(&self, key: u64, flight: &Arc<Flight>) {
        {
            let mut shard = lock(&self.shards[Self::shard_of(key)]);
            // Only remove the slot if it still holds *this* flight; a
            // successor leader may already have claimed the key.
            if let Some(Slot::InFlight(current)) = shard.get(&key) {
                if Arc::ptr_eq(current, flight) {
                    shard.remove(&key);
                }
            }
        }
        let mut state = lock(&flight.state);
        state.abandoned = true;
        drop(state);
        flight.done.notify_all();
    }

    /// Blocks until the ticket's flight resolves. `Some` is the leader's
    /// published record; `None` means the leader abandoned — the caller
    /// should re-[`ShardStore::claim`] the key.
    pub fn wait(&self, ticket: FollowerTicket) -> Option<Arc<PointRecord>> {
        let mut state = lock(&ticket.flight.state);
        loop {
            if let Some(record) = &state.result {
                return Some(record.clone());
            }
            if state.abandoned {
                return None;
            }
            state = ticket
                .flight
                .done
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Every published record, in ascending key order (deterministic
    /// regardless of shard layout or publish interleaving).
    pub fn records(&self) -> Vec<(u64, Arc<PointRecord>)> {
        let mut all: Vec<(u64, Arc<PointRecord>)> = Vec::new();
        for shard in &self.shards {
            for (key, slot) in lock(shard).iter() {
                if let Slot::Ready(record) = slot {
                    all.push((*key, record.clone()));
                }
            }
        }
        all.sort_by_key(|(key, _)| *key);
        all
    }

    /// Atomically rewrites the persistent cache from the live store (the
    /// `SNAPSHOT` command): every published record, in key order, lands
    /// in a fresh image via write-temp → fsync → rename. Returns the
    /// record count and the new file generation.
    ///
    /// # Errors
    ///
    /// A [`CacheError`] when no cache directory is configured (`op`
    /// "snapshot") or when the rewrite faults; the live file is left
    /// untouched on fault.
    pub fn snapshot(&self) -> Result<(usize, u64), CacheError> {
        let Some(disk) = &self.disk else {
            return Err(CacheError {
                op: "snapshot",
                path: std::path::PathBuf::new(),
                source: std::io::Error::other("no persistent cache configured"),
            });
        };
        let entries: Vec<(u64, PointRecord)> = self
            .records()
            .into_iter()
            .map(|(key, record)| (key, (*record).clone()))
            .collect();
        // ena:durability(disk): the write-temp → fsync → rename rewrite must
        // run under the cache lock so no append lands between the image
        // write and the generation bump (the entries themselves were copied
        // out above without holding `disk`).
        let mut cache = lock(disk);
        cache.snapshot(&entries)?;
        Ok((entries.len(), cache.generation()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_core::dse::{ConfigPoint, PointEval};
    use ena_model::units::{GigabytesPerSec, Megahertz};
    use ena_sweep::RealFs;

    fn record(seed: f64) -> PointRecord {
        PointRecord {
            point: ConfigPoint {
                cus: 320,
                clock: Megahertz::new(1000.0),
                bandwidth: GigabytesPerSec::new(3000.0),
            },
            evals: vec![PointEval {
                throughput: 100.0 + seed,
                package_power: 150.0,
                peak_dram_c: 70.0,
            }],
        }
    }

    fn memory_store() -> ShardStore {
        ShardStore::open(None, Arc::new(RealFs), SyncPolicy::default(), 0, "v1")
            .unwrap()
            .0
    }

    #[test]
    fn leader_publishes_and_followers_share_the_arc() {
        let store = memory_store();
        let Claim::Leader(token) = store.claim(7) else {
            panic!("first claim must lead");
        };
        let Claim::Follower(ticket) = store.claim(7) else {
            panic!("second claim must follow");
        };
        let published = store.publish(token, record(0.0)).unwrap();
        let waited = store.wait(ticket).expect("leader published");
        assert!(Arc::ptr_eq(&published, &waited));
        let Claim::Ready(ready) = store.claim(7) else {
            panic!("post-publish claim must be ready");
        };
        assert!(Arc::ptr_eq(&published, &ready));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn abandoned_leader_lets_a_follower_reclaim() {
        let store = memory_store();
        let Claim::Leader(token) = store.claim(7) else {
            panic!("first claim must lead");
        };
        let Claim::Follower(ticket) = store.claim(7) else {
            panic!("second claim must follow");
        };
        drop(token); // leader dies without publishing
        assert!(store.wait(ticket).is_none(), "follower sees abandonment");
        let Claim::Leader(token) = store.claim(7) else {
            panic!("re-claim after abandonment must lead");
        };
        store.publish(token, record(1.0)).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn concurrent_followers_wake_across_threads() {
        let store = Arc::new(memory_store());
        let Claim::Leader(token) = store.claim(42) else {
            panic!("first claim must lead");
        };
        let mut joins = Vec::new();
        for _ in 0..4 {
            let store = store.clone();
            joins.push(std::thread::spawn(move || match store.claim(42) {
                Claim::Ready(r) => r,
                Claim::Follower(t) => store.wait(t).expect("published"),
                Claim::Leader(_) => panic!("leadership is already taken"),
            }));
        }
        let published = store.publish(token, record(2.0)).unwrap();
        for join in joins {
            let seen = join.join().expect("follower thread");
            assert!(Arc::ptr_eq(&published, &seen));
        }
    }

    #[test]
    fn persistent_store_round_trips_and_restores() {
        let dir = std::env::temp_dir().join("ena-serve-store-roundtrip");
        let _removed = std::fs::remove_dir_all(&dir);
        let (store, restored) =
            ShardStore::open(Some(&dir), Arc::new(RealFs), SyncPolicy::Flush, 0xC0, "v1").unwrap();
        assert_eq!(restored, 0);
        let Claim::Leader(token) = store.claim(7) else {
            panic!("lead");
        };
        store.publish(token, record(0.5)).unwrap();
        let (records, generation) = store.snapshot().unwrap();
        assert_eq!(records, 1);
        assert_eq!(generation, 1);
        drop(store);

        let (warm, restored) =
            ShardStore::open(Some(&dir), Arc::new(RealFs), SyncPolicy::Flush, 0xC0, "v1").unwrap();
        assert_eq!(restored, 1);
        let Claim::Ready(rec) = warm.claim(7) else {
            panic!("restored record must be ready");
        };
        assert_eq!(*rec, record(0.5));
    }

    #[test]
    fn snapshot_without_disk_is_a_typed_error() {
        let store = memory_store();
        let err = store.snapshot().unwrap_err();
        assert_eq!(err.op, "snapshot");
        assert!(err.to_string().contains("no persistent cache"), "{err}");
    }
}

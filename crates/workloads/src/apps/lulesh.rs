//! LULESH: unstructured shock hydrodynamics.
//!
//! The Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics proxy
//! operates on a hexahedral mesh. Its dominant kernel (`CalcVolumeForce`)
//! gathers the eight corner nodes of every element through an indirection
//! array, computes element volumes/gradients, and scatters force
//! contributions back to the nodes.
//!
//! The paper classifies LULESH as memory-intensive with *irregular* access
//! patterns that make it latency- rather than bandwidth-sensitive
//! (Section V-B). We reproduce the irregularity by renumbering nodes with a
//! deterministic permutation, as happens in practice with general
//! unstructured meshes.

use ena_model::kernel::KernelCategory;
use ena_testkit::rng::StdRng;

use crate::app::{KernelRun, ProxyApp, RunConfig};
use crate::apps::array_base;
use crate::trace::Tracer;

const COORD_BASE: u64 = array_base(0);
const FORCE_BASE: u64 = array_base(1);
const ELEM_BASE: u64 = array_base(2);
const CONN_BASE: u64 = array_base(3);

/// A hexahedral mesh: `n^3` elements over `(n+1)^3` nodes with permuted
/// (irregular) node numbering.
struct HexMesh {
    /// Element -> 8 node ids.
    connectivity: Vec<[u32; 8]>,
    /// Node coordinates, indexed by the permuted node id.
    coords: Vec<[f64; 3]>,
}

impl HexMesh {
    fn build(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let nn = n + 1;
        let node_count = nn * nn * nn;

        // Permute node ids to reproduce unstructured-mesh irregularity.
        let mut perm: Vec<u32> = (0..node_count as u32).collect();
        rng.shuffle(&mut perm);

        let mut coords = vec![[0.0f64; 3]; node_count];
        for z in 0..nn {
            for y in 0..nn {
                for x in 0..nn {
                    let structured = (z * nn + y) * nn + x;
                    let id = perm[structured] as usize;
                    coords[id] = [
                        x as f64 + rng.random_range(-0.05..0.05),
                        y as f64 + rng.random_range(-0.05..0.05),
                        z as f64 + rng.random_range(-0.05..0.05),
                    ];
                }
            }
        }

        let mut connectivity = Vec::with_capacity(n * n * n);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let corner = |dx: usize, dy: usize, dz: usize| {
                        perm[((z + dz) * nn + (y + dy)) * nn + (x + dx)]
                    };
                    connectivity.push([
                        corner(0, 0, 0),
                        corner(1, 0, 0),
                        corner(1, 1, 0),
                        corner(0, 1, 0),
                        corner(0, 0, 1),
                        corner(1, 0, 1),
                        corner(1, 1, 1),
                        corner(0, 1, 1),
                    ]);
                }
            }
        }
        Self {
            connectivity,
            coords,
        }
    }
}

/// Volume of a hexahedron via the triple-product formula used by LULESH
/// (simplified to the parallelepiped spanned by three edge vectors).
fn hex_volume(c: &[[f64; 3]; 8]) -> f64 {
    let e = |a: usize, b: usize, k: usize| c[b][k] - c[a][k];
    let [ux0, ux1, ux2] = [e(0, 1, 0), e(0, 1, 1), e(0, 1, 2)];
    let [vy0, vy1, vy2] = [e(0, 3, 0), e(0, 3, 1), e(0, 3, 2)];
    let [wz0, wz1, wz2] = [e(0, 4, 0), e(0, 4, 1), e(0, 4, 2)];
    ux0 * (vy1 * wz2 - vy2 * wz1) - ux1 * (vy0 * wz2 - vy2 * wz0) + ux2 * (vy0 * wz1 - vy1 * wz0)
}

/// The LULESH hydrodynamics proxy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Lulesh;

impl ProxyApp for Lulesh {
    fn name(&self) -> &'static str {
        "LULESH"
    }

    fn description(&self) -> &'static str {
        "Hydrodynamic simulation"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::MemoryIntensive
    }

    fn run(&self, cfg: &RunConfig) -> KernelRun {
        let mut tracer = Tracer::for_config(cfg);
        let n = cfg.problem_size.max(4) as usize;
        let mesh = HexMesh::build(n, cfg.seed);

        let mut checksum = 0.0f64;
        for (e, conn) in mesh.connectivity.iter().enumerate() {
            // Read the connectivity row (8 x u32).
            tracer.read(CONN_BASE + (e * 32) as u64, 32);
            // Gather corner coordinates through the indirection: the
            // permuted ids make these effectively random reads.
            let mut corners = [[0.0f64; 3]; 8];
            for (k, &node) in conn.iter().enumerate() {
                tracer.read(COORD_BASE + u64::from(node) * 24, 24);
                corners[k] = mesh.coords[node as usize];
            }
            let vol = hex_volume(&corners);
            tracer.flops(35);

            // Element-centered state update (pressure/energy EOS step).
            tracer.read(ELEM_BASE + (e * 48) as u64, 48);
            let p = (vol.abs() + 1e-6).ln() * 0.4;
            let q = vol * vol * 1e-3;
            checksum += p + q;
            tracer.flops(40);
            tracer.write(ELEM_BASE + (e * 48) as u64, 48);

            // Scatter nodal forces: read-modify-write per corner node.
            for &node in conn {
                tracer.read(FORCE_BASE + u64::from(node) * 24, 24);
                tracer.flops(9);
                tracer.write(FORCE_BASE + u64::from(node) * 24, 24);
            }
        }

        let (trace, counters) = tracer.into_parts();
        KernelRun {
            trace,
            counters,
            checksum: std::hint::black_box(checksum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_memory_bound() {
        let run = Lulesh.run(&RunConfig::small());
        let opb = run.ops_per_byte();
        assert!(opb < 1.0, "ops/byte = {opb}");
    }

    #[test]
    fn accesses_are_irregular() {
        let run = Lulesh.run(&RunConfig::small());
        // Node permutation destroys streaming behaviour.
        assert!(run.trace.sequential_fraction() < 0.3);
    }

    #[test]
    fn hex_volume_of_unit_cube_is_one() {
        let c = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
            [0.0, 1.0, 1.0],
        ];
        assert!((hex_volume(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mesh_connectivity_is_consistent() {
        let mesh = HexMesh::build(4, 7);
        assert_eq!(mesh.connectivity.len(), 64);
        assert_eq!(mesh.coords.len(), 125);
        // Every referenced node exists and corners of an element are distinct.
        for conn in &mesh.connectivity {
            let mut ids = conn.to_vec();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8);
            assert!(ids.iter().all(|&i| (i as usize) < mesh.coords.len()));
        }
    }

    #[test]
    fn element_volumes_are_near_unit() {
        // The jittered mesh still has volumes near 1.
        let mesh = HexMesh::build(4, 42);
        for conn in &mesh.connectivity {
            let mut corners = [[0.0f64; 3]; 8];
            for (k, &node) in conn.iter().enumerate() {
                corners[k] = mesh.coords[node as usize];
            }
            let v = hex_volume(&corners);
            assert!((0.5..1.5).contains(&v), "volume = {v}");
        }
    }
}

//! CoMD: molecular-dynamics force kernels (EAM and Lennard-Jones).
//!
//! CoMD is the DOE co-design proxy for classical molecular dynamics. The
//! dominant kernel computes short-range interatomic forces using a cell
//! list: atoms live in cells of roughly the cutoff radius, and each atom
//! interacts with atoms in its own and neighboring cells.
//!
//! Two variants mirror the paper's Table I:
//! - [`CoMd`] — Embedded Atom Method (EAM): a pairwise pass, an embedding
//!   pass through a tabulated function, and a second pairwise pass; more
//!   memory traffic per interaction.
//! - [`CoMdLj`] — Lennard-Jones: a single pairwise pass with more math per
//!   visited pair.
//!
//! Both are *balanced* kernels: they stress compute and memory together.

use ena_model::kernel::KernelCategory;
use ena_testkit::rng::StdRng;

use crate::app::{KernelRun, ProxyApp, RunConfig};
use crate::apps::array_base;
use crate::trace::Tracer;

/// Atoms per cell (CoMD's default FCC lattice gives 4 atoms/unit cell).
const ATOMS_PER_CELL: usize = 4;
/// Interaction cutoff, in units of the cell edge.
const CUTOFF: f64 = 1.0;

/// Logical base addresses of the kernel's data arrays.
const POS_BASE: u64 = array_base(0);
const FORCE_BASE: u64 = array_base(1);
const EMBED_BASE: u64 = array_base(2);
const TABLE_BASE: u64 = array_base(3);

struct Lattice {
    dim: usize,
    positions: Vec<[f64; 3]>,
}

impl Lattice {
    fn build(dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = dim * dim * dim * ATOMS_PER_CELL;
        let mut positions = Vec::with_capacity(n);
        for cz in 0..dim {
            for cy in 0..dim {
                for cx in 0..dim {
                    for _ in 0..ATOMS_PER_CELL {
                        positions.push([
                            cx as f64 + rng.random_range(0.0..1.0),
                            cy as f64 + rng.random_range(0.0..1.0),
                            cz as f64 + rng.random_range(0.0..1.0),
                        ]);
                    }
                }
            }
        }
        Self { dim, positions }
    }

    fn cell_atoms(&self, cx: usize, cy: usize, cz: usize) -> std::ops::Range<usize> {
        let cell = (cz * self.dim + cy) * self.dim + cx;
        cell * ATOMS_PER_CELL..(cell + 1) * ATOMS_PER_CELL
    }

    /// Periodic neighbor coordinates (including the cell itself).
    fn neighbors(&self, c: usize) -> [usize; 3] {
        let d = self.dim;
        [(c + d - 1) % d, c, (c + 1) % d]
    }
}

/// Runs one cell-list force pass. `flops_per_pair` is the arithmetic cost
/// charged per in-cutoff pair; `extra_bytes_per_atom` models per-atom
/// auxiliary state read alongside positions (EAM's embedding density).
fn force_pass(
    lat: &Lattice,
    tracer: &mut Tracer,
    flops_per_pair: u64,
    extra_bytes_per_atom: u32,
) -> f64 {
    let mut energy = 0.0f64;
    let d = lat.dim;
    for cz in 0..d {
        for cy in 0..d {
            for cx in 0..d {
                for i in lat.cell_atoms(cx, cy, cz) {
                    tracer.read(POS_BASE + (i * 24) as u64, 24);
                    if extra_bytes_per_atom > 0 {
                        tracer.read(EMBED_BASE + (i * 8) as u64, extra_bytes_per_atom);
                    }
                    let [pix, piy, piz] = lat.positions[i];
                    let (mut fx, mut fy, mut fz) = (0.0f64, 0.0f64, 0.0f64);
                    for nz in lat.neighbors(cz) {
                        for ny in lat.neighbors(cy) {
                            for nx in lat.neighbors(cx) {
                                for j in lat.cell_atoms(nx, ny, nz) {
                                    if i == j {
                                        continue;
                                    }
                                    tracer.read(POS_BASE + (j * 24) as u64, 24);
                                    let [pjx, pjy, pjz] = lat.positions[j];
                                    let dx = pix - pjx;
                                    let dy = piy - pjy;
                                    let dz = piz - pjz;
                                    let r2 = dx * dx + dy * dy + dz * dz;
                                    tracer.flops(8);
                                    if r2 < CUTOFF * CUTOFF && r2 > 1e-12 {
                                        // Inverse-power interaction core:
                                        // stands in for LJ 6-12 / EAM pair term.
                                        let inv_r2 = 1.0 / r2;
                                        let inv_r6 = inv_r2 * inv_r2 * inv_r2;
                                        let scalar = inv_r6 * (inv_r6 - 0.5) * inv_r2;
                                        fx += scalar * dx;
                                        fy += scalar * dy;
                                        fz += scalar * dz;
                                        energy += inv_r6 * (inv_r6 - 1.0);
                                        tracer.flops(flops_per_pair);
                                    }
                                }
                            }
                        }
                    }
                    tracer.write(FORCE_BASE + (i * 24) as u64, 24);
                    std::hint::black_box([fx, fy, fz]);
                }
            }
        }
    }
    energy
}

fn run_comd(cfg: &RunConfig, eam: bool) -> KernelRun {
    let mut tracer = Tracer::for_config(cfg);
    let dim = cfg.problem_size.max(3) as usize;
    let lat = Lattice::build(dim, cfg.seed);

    let mut checksum;
    if eam {
        // Pass 1: pair density accumulation.
        checksum = force_pass(&lat, &mut tracer, 12, 8);
        // Embedding pass: per-atom table interpolation (memory heavy).
        let natoms = lat.positions.len();
        for i in 0..natoms {
            tracer.read(EMBED_BASE + (i * 8) as u64, 8);
            let [x, _, _] = lat.positions[i];
            let rho = x.abs() + 0.1;
            let idx = ((rho * 37.0) as usize % 4096) * 16;
            tracer.read(TABLE_BASE + idx as u64, 16);
            checksum += rho.sqrt() * 0.01;
            tracer.flops(6);
            tracer.write(EMBED_BASE + (i * 8) as u64, 8);
        }
        // Pass 2: embedding-force pair pass.
        checksum += force_pass(&lat, &mut tracer, 10, 8);
    } else {
        // Single Lennard-Jones pass with the full 6-12 arithmetic.
        checksum = force_pass(&lat, &mut tracer, 24, 0);
    }

    let (trace, counters) = tracer.into_parts();
    KernelRun {
        trace,
        counters,
        checksum: std::hint::black_box(checksum),
    }
}

/// CoMD with the Embedded Atom Method potential (Table I: "CoMD").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoMd;

impl ProxyApp for CoMd {
    fn name(&self) -> &'static str {
        "CoMD"
    }

    fn description(&self) -> &'static str {
        "Molecular-dynamics algorithms (Embedded Atom)"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::Balanced
    }

    fn run(&self, cfg: &RunConfig) -> KernelRun {
        run_comd(cfg, true)
    }
}

/// CoMD with the Lennard-Jones potential (Table I: "CoMD-LJ").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoMdLj;

impl ProxyApp for CoMdLj {
    fn name(&self) -> &'static str {
        "CoMD-LJ"
    }

    fn description(&self) -> &'static str {
        "Molecular-dynamics algorithms (Lennard-Jones)"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::Balanced
    }

    fn run(&self, cfg: &RunConfig) -> KernelRun {
        run_comd(cfg, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_are_balanced_intensity() {
        let cfg = RunConfig::small();
        for run in [CoMd.run(&cfg), CoMdLj.run(&cfg)] {
            let opb = run.ops_per_byte();
            // Neither extreme: well above stream kernels, far below MaxFlops.
            assert!(opb > 1.0 && opb < 500.0, "ops/byte = {opb}");
        }
    }

    #[test]
    fn eam_moves_more_memory_than_lj() {
        let cfg = RunConfig::small();
        let eam = CoMd.run(&cfg);
        let lj = CoMdLj.run(&cfg);
        assert!(eam.trace.total_bytes() > lj.trace.total_bytes());
    }

    #[test]
    fn work_scales_with_lattice_volume() {
        let mut cfg = RunConfig::small();
        cfg.problem_size = 4;
        let small = CoMdLj.run(&cfg);
        cfg.problem_size = 8;
        let big = CoMdLj.run(&cfg);
        let ratio = big.counters.dp_flops as f64 / small.counters.dp_flops as f64;
        // Volume grows 8x; pairwise work should track it.
        assert!(ratio > 6.0 && ratio < 10.0, "ratio = {ratio}");
    }

    #[test]
    fn forces_have_reuse_from_the_cell_list() {
        // EAM's multi-pass structure revisits lines even at DRAM level.
        let run = CoMd.run(&RunConfig::small());
        assert!(run.trace.reuse_factor() > 2.0);
    }
}

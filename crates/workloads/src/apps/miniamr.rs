//! MiniAMR: 3D stencil computation with adaptive mesh refinement.
//!
//! MiniAMR applies a 7-point stencil over a forest of fixed-size blocks,
//! where regions of interest are refined into 8 child blocks. The kernel is
//! a streaming, low-intensity sweep — memory-intensive per the paper — with
//! extra traffic at coarse/fine boundaries for ghost exchange.

use ena_model::kernel::KernelCategory;
use ena_testkit::rng::StdRng;

use crate::app::{KernelRun, ProxyApp, RunConfig};
use crate::apps::array_base;
use crate::trace::Tracer;

const CELLS_BASE: u64 = array_base(0);
const GHOST_BASE: u64 = array_base(1);

/// Cells along one edge of a block (MiniAMR default is 10; we use 8).
const BLOCK_EDGE: usize = 8;
const BLOCK_CELLS: usize = BLOCK_EDGE * BLOCK_EDGE * BLOCK_EDGE;

/// One AMR block: its refinement level and cell payload.
struct Block {
    level: u8,
    cells: Vec<f64>,
}

/// Builds the block forest: a coarse `root_dim^3` arrangement where a
/// seed-chosen fraction of blocks is refined into eight children.
fn build_forest(root_dim: usize, seed: u64) -> Vec<Block> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut blocks = Vec::new();
    for _ in 0..root_dim * root_dim * root_dim {
        let refine = rng.random_range(0.0..1.0) < 0.25;
        if refine {
            for _ in 0..8 {
                blocks.push(Block {
                    level: 1,
                    cells: (0..BLOCK_CELLS)
                        .map(|_| rng.random_range(0.0..1.0))
                        .collect(),
                });
            }
        } else {
            blocks.push(Block {
                level: 0,
                cells: (0..BLOCK_CELLS)
                    .map(|_| rng.random_range(0.0..1.0))
                    .collect(),
            });
        }
    }
    blocks
}

/// The MiniAMR stencil proxy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MiniAmr;

impl ProxyApp for MiniAmr {
    fn name(&self) -> &'static str {
        "MiniAMR"
    }

    fn description(&self) -> &'static str {
        "3D stencil computation with adaptive mesh refinement"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::MemoryIntensive
    }

    fn run(&self, cfg: &RunConfig) -> KernelRun {
        let mut tracer = Tracer::for_config(cfg);
        let root_dim = (cfg.problem_size.max(4) as usize) / 2;
        let mut forest = build_forest(root_dim, cfg.seed);

        let mut checksum = 0.0f64;
        let block_bytes = (BLOCK_CELLS * 8) as u64;
        let n = BLOCK_EDGE;
        for (b, block) in forest.iter_mut().enumerate() {
            let base = CELLS_BASE + b as u64 * block_bytes;

            // Ghost exchange: faces of the block are refreshed from
            // neighbors; refined blocks interpolate (extra math).
            let face_cells = (n * n) as u64;
            for face in 0..6u64 {
                tracer.read(GHOST_BASE + (b as u64 * 6 + face) * face_cells * 8, 4096);
                tracer.flops(if block.level > 0 { 4 * face_cells } else { 0 });
            }

            // 7-point stencil sweep, streaming through the block.
            let old = block.cells.clone();
            for z in 1..n - 1 {
                for y in 1..n - 1 {
                    for x in 1..n - 1 {
                        let c = (z * n + y) * n + x;
                        tracer.read(base + (c * 8) as u64, 24);
                        tracer.read(base + ((c - n) * 8) as u64, 8);
                        tracer.read(base + ((c + n) * 8) as u64, 8);
                        tracer.read(base + ((c - n * n) * 8) as u64, 8);
                        tracer.read(base + ((c + n * n) * 8) as u64, 8);
                        block.cells[c] = (old[c]
                            + old[c - 1]
                            + old[c + 1]
                            + old[c - n]
                            + old[c + n]
                            + old[c - n * n]
                            + old[c + n * n])
                            / 7.0;
                        tracer.flops(7);
                        tracer.write(base + (c * 8) as u64, 8);
                    }
                }
            }
            checksum += block.cells[(n / 2 * n + n / 2) * n + n / 2];
        }

        let (trace, counters) = tracer.into_parts();
        KernelRun {
            trace,
            counters,
            checksum: std::hint::black_box(checksum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_memory_bound() {
        let run = MiniAmr.run(&RunConfig::small());
        let opb = run.ops_per_byte();
        assert!(opb < 1.0, "ops/byte = {opb}");
    }

    #[test]
    fn streaming_sweep_is_fairly_sequential() {
        let run = MiniAmr.run(&RunConfig::small());
        assert!(run.trace.sequential_fraction() > 0.2);
    }

    #[test]
    fn refinement_increases_block_count() {
        let unrefined = 4 * 4 * 4;
        let forest = build_forest(4, 1);
        assert!(forest.len() > unrefined);
        assert!(forest.iter().any(|b| b.level == 1));
        assert!(forest.iter().any(|b| b.level == 0));
    }

    #[test]
    fn stencil_preserves_mean_of_interior() {
        // A uniform field is a fixed point of the 7-point average.
        let mut forest = build_forest(2, 3);
        for b in &mut forest {
            for c in b.cells.iter_mut() {
                *c = 2.5;
            }
        }
        // Run one block's stencil by hand.
        let n = BLOCK_EDGE;
        let old = forest[0].cells.clone();
        let c = (3 * n + 3) * n + 3;
        let avg = (old[c]
            + old[c - 1]
            + old[c + 1]
            + old[c - n]
            + old[c + n]
            + old[c - n * n]
            + old[c + n * n])
            / 7.0;
        assert!((avg - 2.5).abs() < 1e-12);
    }
}

//! The seven proxy applications of the paper's Table I.
//!
//! | Category | Application | Kernel implemented here |
//! |---|---|---|
//! | Compute-intensive | [`MaxFlops`] | register-resident FMA chains |
//! | Balanced | [`CoMd`] | cell-list EAM force kernel |
//! | Balanced | [`CoMdLj`] | cell-list Lennard-Jones force kernel |
//! | Balanced | [`Hpgmg`] | geometric multigrid V-cycle |
//! | Memory-intensive | [`Lulesh`] | indirect hex-mesh hydrodynamics step |
//! | Memory-intensive | [`MiniAmr`] | 7-point stencil over refined blocks |
//! | Memory-intensive | [`XsBench`] | Monte Carlo cross-section lookups |
//! | Memory-intensive | [`Snap`] | discrete-ordinates transport sweep |

mod comd;
mod hpgmg;
mod lulesh;
mod maxflops;
mod miniamr;
mod snap;
mod xsbench;

pub use comd::{CoMd, CoMdLj};
pub use hpgmg::Hpgmg;
pub use lulesh::Lulesh;
pub use maxflops::MaxFlops;
pub use miniamr::MiniAmr;
pub use snap::Snap;
pub use xsbench::XsBench;

use crate::app::ProxyApp;

/// Logical base address of the `i`-th data array of an application.
///
/// Arrays are spaced 1 GiB apart in the app's flat logical address space so
/// traces never alias across arrays.
pub(crate) const fn array_base(i: u64) -> u64 {
    i << 30
}

/// All proxy applications in the paper's Table I order.
pub fn all_apps() -> Vec<Box<dyn ProxyApp>> {
    vec![
        Box::new(MaxFlops),
        Box::new(CoMd),
        Box::new(CoMdLj),
        Box::new(Hpgmg),
        Box::new(Lulesh),
        Box::new(MiniAmr),
        Box::new(XsBench),
        Box::new(Snap),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RunConfig;

    #[test]
    fn suite_has_eight_workloads_with_unique_names() {
        let apps = all_apps();
        assert_eq!(apps.len(), 8);
        let mut names: Vec<_> = apps.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn every_app_is_deterministic_across_runs() {
        let cfg = RunConfig::small();
        for app in all_apps() {
            let a = app.run(&cfg);
            let b = app.run(&cfg);
            assert_eq!(a.checksum.to_bits(), b.checksum.to_bits(), "{}", app.name());
            assert_eq!(a.trace.len(), b.trace.len(), "{}", app.name());
            assert_eq!(a.counters, b.counters, "{}", app.name());
        }
    }

    #[test]
    fn every_app_does_real_floating_point_work() {
        let cfg = RunConfig::small();
        for app in all_apps() {
            let run = app.run(&cfg);
            assert!(run.counters.dp_flops > 0, "{}", app.name());
            assert!(run.checksum.is_finite(), "{}", app.name());
        }
    }

    #[test]
    fn array_bases_do_not_alias() {
        assert_eq!(array_base(0), 0);
        assert_eq!(array_base(1), 1 << 30);
        assert!(array_base(2) - array_base(1) >= 1 << 30);
    }
}

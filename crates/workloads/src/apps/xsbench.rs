//! XSBench: Monte Carlo neutron-transport cross-section lookups.
//!
//! XSBench isolates the dominant kernel of Monte Carlo particle transport:
//! for a random particle energy and material, binary-search the unionized
//! energy grid, then gather and interpolate the microscopic cross sections
//! of every nuclide in the material. The access pattern is essentially
//! random over a multi-gigabyte table — the paper's most memory-/latency-
//! intensive workload (89 % external traffic).

use ena_model::kernel::KernelCategory;
use ena_testkit::rng::StdRng;

use crate::app::{KernelRun, ProxyApp, RunConfig};
use crate::apps::array_base;
use crate::trace::Tracer;

const GRID_BASE: u64 = array_base(0);
const XS_BASE: u64 = array_base(1);
const MAT_BASE: u64 = array_base(2);

/// Number of interaction channels per grid point (total, elastic, absorption,
/// fission, nu-fission — as in the real XSBench).
const CHANNELS: usize = 5;

/// A scaled-down unionized energy grid.
struct NuclideData {
    /// Sorted unionized energy grid.
    energies: Vec<f64>,
    /// Per-nuclide cross sections at each grid point, flattened
    /// `[gridpoint][nuclide][channel]`.
    xs: Vec<f64>,
    nuclides: usize,
    /// Materials: list of nuclide indices per material.
    materials: Vec<Vec<u32>>,
}

impl NuclideData {
    fn build(gridpoints: usize, nuclides: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut energies: Vec<f64> = (0..gridpoints)
            .map(|_| rng.random_range(1e-11..20.0f64))
            .collect();
        energies.sort_by(|a, b| a.total_cmp(b));
        let xs = (0..gridpoints * nuclides * CHANNELS)
            .map(|_| rng.random_range(0.0..10.0))
            .collect();
        // 12 materials with varying nuclide counts (fuel has many).
        let materials = (0..12)
            .map(|m| {
                let count = if m == 0 {
                    nuclides.min(32)
                } else {
                    rng.random_range(2..8)
                };
                (0..count)
                    .map(|_| rng.random_range(0..nuclides as u32))
                    .collect()
            })
            .collect();
        Self {
            energies,
            xs,
            nuclides,
            materials,
        }
    }

    /// Binary search for the grid interval containing `e`, tracing each probe.
    fn grid_search(&self, e: f64, tracer: &mut Tracer) -> usize {
        let mut lo = 0usize;
        let mut hi = self.energies.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            tracer.read(GRID_BASE + (mid * 8) as u64, 8);
            tracer.int_ops(3);
            if self.energies[mid] <= e {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// The XSBench lookup proxy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XsBench;

impl ProxyApp for XsBench {
    fn name(&self) -> &'static str {
        "XSBench"
    }

    fn description(&self) -> &'static str {
        "Monte Carlo particle transport simulation"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::MemoryIntensive
    }

    fn run(&self, cfg: &RunConfig) -> KernelRun {
        let mut tracer = Tracer::for_config(cfg);
        let gridpoints = (cfg.problem_size as usize).max(4) * 2048;
        let nuclides = 64;
        let data = NuclideData::build(gridpoints, nuclides, cfg.seed);
        let lookups = (cfg.problem_size as usize).max(4) * 1500;

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0FFEE);
        let mut checksum = 0.0f64;
        for _ in 0..lookups {
            let e = rng.random_range(1e-11..20.0f64);
            let mat = rng.random_range(0..data.materials.len());
            tracer.read(MAT_BASE + (mat * 64) as u64, 64);
            let idx = data.grid_search(e, &mut tracer);

            // Gather and interpolate each nuclide of the material.
            let span = data.energies[idx + 1] - data.energies[idx];
            let frac = if span > 0.0 {
                (e - data.energies[idx]) / span
            } else {
                0.0
            };
            tracer.flops(3);
            let mats = data.materials[mat].clone();
            for nuc in mats {
                let lo = (idx * data.nuclides + nuc as usize) * CHANNELS;
                let hi = ((idx + 1) * data.nuclides + nuc as usize) * CHANNELS;
                tracer.read(XS_BASE + (lo * 8) as u64, (CHANNELS * 8) as u32);
                tracer.read(XS_BASE + (hi * 8) as u64, (CHANNELS * 8) as u32);
                for c in 0..CHANNELS {
                    let v = data.xs[lo + c] * (1.0 - frac) + data.xs[hi + c] * frac;
                    checksum += v;
                    tracer.flops(4);
                }
            }
        }

        let (trace, counters) = tracer.into_parts();
        KernelRun {
            trace,
            counters,
            checksum: std::hint::black_box(checksum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_strongly_memory_bound() {
        let run = XsBench.run(&RunConfig::small());
        let opb = run.ops_per_byte();
        assert!(opb < 0.5, "ops/byte = {opb}");
    }

    #[test]
    fn accesses_are_random() {
        let run = XsBench.run(&RunConfig::small());
        // Straddling 40-byte gathers produce some adjacent line pairs, but
        // the stream stays far from streaming behaviour.
        assert!(run.trace.sequential_fraction() < 0.25);
    }

    #[test]
    fn grid_search_finds_the_bracketing_interval() {
        let data = NuclideData::build(4096, 8, 11);
        let mut tracer = Tracer::with_capacity_cap(64);
        for &e in &[1e-6, 0.5, 5.0, 19.0] {
            let idx = data.grid_search(e, &mut tracer);
            assert!(data.energies[idx] <= e || idx == 0);
            assert!(e <= data.energies[idx + 1] || data.energies[idx] > e);
        }
    }

    #[test]
    fn footprint_scales_with_gridpoints() {
        let mut cfg = RunConfig::small();
        cfg.problem_size = 4;
        let small = XsBench.run(&cfg).trace.footprint_bytes();
        cfg.problem_size = 8;
        let big = XsBench.run(&cfg).trace.footprint_bytes();
        assert!(big > small);
    }

    #[test]
    fn mostly_reads() {
        let run = XsBench.run(&RunConfig::small());
        assert!(run.trace.write_fraction() < 0.05);
    }
}

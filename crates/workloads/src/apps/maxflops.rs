//! MaxFlops: the peak-floating-point-throughput microbenchmark.
//!
//! Mirrors the SHOC `MaxFlops` workload the paper uses to measure maximum
//! achievable DP throughput: long chains of independent fused multiply-adds
//! on register-resident accumulators, with essentially no memory traffic
//! beyond loading and storing the small accumulator block once.

use ena_model::kernel::KernelCategory;

use crate::app::{KernelRun, ProxyApp, RunConfig};
use crate::apps::array_base;
use crate::trace::Tracer;

/// Number of independent accumulator lanes (emulates SIMD breadth).
const LANES: usize = 64;

/// FMA iterations per lane per unit of problem size.
const ITERS_PER_SIZE: u64 = 4096;

/// The compute-intensive peak-throughput kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxFlops;

impl ProxyApp for MaxFlops {
    fn name(&self) -> &'static str {
        "MaxFlops"
    }

    fn description(&self) -> &'static str {
        "Measures maximum FP throughput"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::ComputeIntensive
    }

    fn run(&self, cfg: &RunConfig) -> KernelRun {
        let mut tracer = Tracer::for_config(cfg);

        let base = array_base(0);
        let mut acc = [0.0f64; LANES];
        // Seed-dependent multiplier keeps the chain from folding to a
        // compile-time constant.
        let mul = 1.000000001 + (cfg.seed % 7) as f64 * 1e-12;

        // Load the accumulator block once.
        for (i, a) in acc.iter_mut().enumerate() {
            *a = 0.5 + i as f64 * 1e-3;
            tracer.read(base + (i * 8) as u64, 8);
        }

        let iters = ITERS_PER_SIZE * u64::from(cfg.problem_size);
        for _ in 0..iters {
            for a in &mut acc {
                // One FMA: 2 FLOPs.
                *a = a.mul_add(mul, 1e-9);
            }
        }
        tracer.flops(iters * LANES as u64 * 2);

        // Store the block once.
        for i in 0..LANES {
            tracer.write(base + (i * 8) as u64, 8);
        }

        let checksum = std::hint::black_box(acc.iter().sum());
        let (trace, counters) = tracer.into_parts();
        KernelRun {
            trace,
            counters,
            checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_intensity_is_extreme() {
        let run = MaxFlops.run(&RunConfig::small());
        // Thousands of FLOPs per byte: firmly compute-intensive.
        assert!(run.ops_per_byte() > 1000.0);
    }

    #[test]
    fn flops_scale_linearly_with_problem_size() {
        let mut cfg = RunConfig::small();
        let f1 = MaxFlops.run(&cfg).counters.dp_flops;
        cfg.problem_size *= 2;
        let f2 = MaxFlops.run(&cfg).counters.dp_flops;
        assert_eq!(f2, f1 * 2);
    }

    #[test]
    fn memory_footprint_is_tiny_and_size_independent() {
        let mut cfg = RunConfig::small();
        let a = MaxFlops.run(&cfg).trace.total_bytes();
        cfg.problem_size *= 4;
        let b = MaxFlops.run(&cfg).trace.total_bytes();
        assert_eq!(a, b);
        assert!(a <= 64 * 64);
    }

    #[test]
    fn different_seeds_change_the_result() {
        let mut cfg = RunConfig::small();
        let a = MaxFlops.run(&cfg).checksum;
        cfg.seed += 1;
        let b = MaxFlops.run(&cfg).checksum;
        assert_ne!(a.to_bits(), b.to_bits());
    }
}

//! HPGMG: geometric multigrid, the HPC ranking proxy.
//!
//! Implements one full multigrid V-cycle on a 3D Poisson problem: Jacobi
//! smoothing (7-point stencil), residual evaluation, full-weighting
//! restriction to the coarser grid, recursion, and trilinear-ish
//! prolongation with correction. A balanced kernel: stencils reuse
//! neighbors from cache, but every sweep streams the full grid.

use ena_model::kernel::KernelCategory;
use ena_testkit::rng::StdRng;

use crate::app::{KernelRun, ProxyApp, RunConfig};
use crate::apps::array_base;
use crate::trace::Tracer;

const U_BASE: u64 = array_base(0);
const RHS_BASE: u64 = array_base(1);
const RES_BASE: u64 = array_base(2);

/// 3D grid with fringe-free interior indexing.
struct Grid {
    n: usize,
    data: Vec<f64>,
}

impl Grid {
    fn new(n: usize) -> Self {
        Grid {
            n,
            data: vec![0.0; n * n * n],
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.n + y) * self.n + x
    }
}

struct VCycle<'a> {
    tracer: &'a mut Tracer,
    /// Byte offset separating consecutive multigrid levels within an array.
    level_offset: u64,
}

impl VCycle<'_> {
    /// One weighted-Jacobi sweep of `u` toward `A u = f`.
    fn smooth(&mut self, u: &mut Grid, f: &Grid, level: u64) {
        let n = u.n;
        let lvl = level * self.level_offset;
        let old = u.data.clone();
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let c = u.idx(x, y, z);
                    self.tracer.read(U_BASE + lvl + (c * 8) as u64, 8);
                    // Stencil neighbor loads; x-neighbors share the line.
                    self.tracer.read(U_BASE + lvl + ((c - 1) * 8) as u64, 24);
                    self.tracer.read(U_BASE + lvl + ((c - n) * 8) as u64, 8);
                    self.tracer.read(U_BASE + lvl + ((c + n) * 8) as u64, 8);
                    self.tracer.read(U_BASE + lvl + ((c - n * n) * 8) as u64, 8);
                    self.tracer.read(U_BASE + lvl + ((c + n * n) * 8) as u64, 8);
                    self.tracer.read(RHS_BASE + lvl + (c * 8) as u64, 8);
                    let sum = old[c - 1]
                        + old[c + 1]
                        + old[c - n]
                        + old[c + n]
                        + old[c - n * n]
                        + old[c + n * n];
                    let jac = (sum - f.data[c]) / 6.0;
                    u.data[c] = old[c] + 0.8 * (jac - old[c]);
                    self.tracer.flops(10);
                    self.tracer.write(U_BASE + lvl + (c * 8) as u64, 8);
                }
            }
        }
    }

    /// Residual r = f - A u.
    fn residual(&mut self, u: &Grid, f: &Grid, r: &mut Grid, level: u64) {
        let n = u.n;
        let lvl = level * self.level_offset;
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let c = u.idx(x, y, z);
                    self.tracer.read(U_BASE + lvl + (c * 8) as u64, 32);
                    self.tracer.read(RHS_BASE + lvl + (c * 8) as u64, 8);
                    let lap = u.data[c - 1]
                        + u.data[c + 1]
                        + u.data[c - n]
                        + u.data[c + n]
                        + u.data[c - n * n]
                        + u.data[c + n * n]
                        - 6.0 * u.data[c];
                    r.data[c] = f.data[c] - lap;
                    self.tracer.flops(9);
                    self.tracer.write(RES_BASE + lvl + (c * 8) as u64, 8);
                }
            }
        }
    }

    /// Full-weighting restriction of `fine` onto `coarse` (injection core).
    fn restrict(&mut self, fine: &Grid, coarse: &mut Grid, level: u64) {
        let lvl = level * self.level_offset;
        let nxt = (level + 1) * self.level_offset;
        let nc = coarse.n;
        for z in 1..nc - 1 {
            for y in 1..nc - 1 {
                for x in 1..nc - 1 {
                    let fc = fine.idx(x * 2, y * 2, z * 2);
                    self.tracer.read(RES_BASE + lvl + (fc * 8) as u64, 16);
                    let c = coarse.idx(x, y, z);
                    coarse.data[c] =
                        0.5 * fine.data[fc] + 0.25 * (fine.data[fc - 1] + fine.data[fc + 1]);
                    self.tracer.flops(4);
                    self.tracer.write(RHS_BASE + nxt + (c * 8) as u64, 8);
                }
            }
        }
    }

    /// Prolongation of the coarse correction back onto the fine grid.
    fn prolong(&mut self, coarse: &Grid, fine: &mut Grid, level: u64) {
        let lvl = level * self.level_offset;
        let nxt = (level + 1) * self.level_offset;
        let nf = fine.n;
        for z in 1..nf - 1 {
            for y in 1..nf - 1 {
                for x in 1..nf - 1 {
                    let c = coarse.idx(x / 2, y / 2, z / 2);
                    self.tracer.read(U_BASE + nxt + (c * 8) as u64, 8);
                    let f = fine.idx(x, y, z);
                    fine.data[f] += coarse.data[c];
                    self.tracer.flops(1);
                    self.tracer.write(U_BASE + lvl + (f * 8) as u64, 8);
                }
            }
        }
    }

    fn v_cycle(&mut self, u: &mut Grid, f: &Grid, level: u64) -> f64 {
        self.smooth(u, f, level);
        self.smooth(u, f, level);
        if u.n > 8 {
            let mut r = Grid::new(u.n);
            self.residual(u, f, &mut r, level);
            let nc = u.n / 2;
            let mut cf = Grid::new(nc);
            self.restrict(&r, &mut cf, level);
            let mut cu = Grid::new(nc);
            self.v_cycle(&mut cu, &cf, level + 1);
            self.prolong(&cu, u, level);
        }
        self.smooth(u, f, level);
        u.data.iter().sum()
    }
}

/// The HPGMG geometric-multigrid proxy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hpgmg;

impl ProxyApp for Hpgmg {
    fn name(&self) -> &'static str {
        "HPGMG"
    }

    fn description(&self) -> &'static str {
        "Ranks HPC systems (geometric multigrid)"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::Balanced
    }

    fn run(&self, cfg: &RunConfig) -> KernelRun {
        let mut tracer = Tracer::for_config(cfg);
        // Power-of-two grid edge: problem_size 16 -> 16^3 fine grid.
        let n = (cfg.problem_size.max(8) as usize).next_power_of_two();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut u = Grid::new(n);
        let mut f = Grid::new(n);
        for v in f.data.iter_mut() {
            *v = rng.random_range(-1.0..1.0);
        }

        let level_offset = (n * n * n * 8) as u64;
        let mut cycle = VCycle {
            tracer: &mut tracer,
            level_offset,
        };
        let checksum = cycle.v_cycle(&mut u, &f, 0);

        let (trace, counters) = tracer.into_parts();
        KernelRun {
            trace,
            counters,
            checksum: std::hint::black_box(checksum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_sits_in_the_balanced_band() {
        let run = Hpgmg.run(&RunConfig::small());
        let opb = run.ops_per_byte();
        assert!(opb > 0.1 && opb < 10.0, "ops/byte = {opb}");
    }

    #[test]
    fn v_cycle_visits_multiple_levels() {
        let mut cfg = RunConfig::small();
        cfg.problem_size = 16;
        let run = Hpgmg.run(&cfg);
        // Footprint must exceed two of the fine level's arrays: the sweep
        // touches u, rhs, and residual plus the coarser levels.
        let two_fine_arrays = 2 * 16u64.pow(3) * 8;
        assert!(run.trace.footprint_bytes() > two_fine_arrays);
    }

    #[test]
    fn smoothing_reduces_residual_norm() {
        // Direct numerical check of the smoother on a small grid.
        let mut tracer = Tracer::with_capacity_cap(16);
        let mut cycle = VCycle {
            tracer: &mut tracer,
            level_offset: 1 << 20,
        };
        let n = 8;
        let mut u = Grid::new(n);
        let mut f = Grid::new(n);
        f.data[u.idx(4, 4, 4)] = 1.0;
        let mut r = Grid::new(n);
        cycle.residual(&u, &f, &mut r, 0);
        let norm0: f64 = r.data.iter().map(|v| v * v).sum();
        for _ in 0..20 {
            cycle.smooth(&mut u, &f, 0);
        }
        cycle.residual(&u, &f, &mut r, 0);
        let norm1: f64 = r.data.iter().map(|v| v * v).sum();
        assert!(norm1 < norm0 * 0.5, "norm0={norm0} norm1={norm1}");
    }

    #[test]
    fn stencil_traffic_is_mostly_reads() {
        let mut cfg = RunConfig::small();
        cfg.problem_size = 16;
        let run = Hpgmg.run(&cfg);
        let wf = run.trace.write_fraction();
        assert!(wf < 0.6, "write fraction = {wf}");
        assert!(wf > 0.02, "write fraction = {wf}");
    }
}

//! SNAP: discrete-ordinates neutral-particle transport.
//!
//! SNAP proxies the PARTISN transport code: for every angular direction in
//! an octant, a wavefront sweep propagates angular flux through a 3D
//! structured grid; each cell solve combines upwind fluxes with scattering
//! source terms for several energy groups. The kernel streams large
//! per-cell state (flux moments, cross sections) with modest arithmetic —
//! memory-intensive, but structured and prefetch-friendly.

use ena_model::kernel::KernelCategory;
use ena_testkit::rng::StdRng;

use crate::app::{KernelRun, ProxyApp, RunConfig};
use crate::apps::array_base;
use crate::trace::Tracer;

const FLUX_BASE: u64 = array_base(0);
const SIGMA_BASE: u64 = array_base(1);
const SOURCE_BASE: u64 = array_base(2);
const PSI_BASE: u64 = array_base(3);

/// Energy groups per cell solve.
const GROUPS: usize = 8;
/// Angular directions swept (one octant of an S4 quadrature, doubled).
const ANGLES: usize = 8;

/// The SNAP transport-sweep proxy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snap;

impl ProxyApp for Snap {
    fn name(&self) -> &'static str {
        "SNAP"
    }

    fn description(&self) -> &'static str {
        "Discrete ordinates neutral particle transport application"
    }

    fn category(&self) -> KernelCategory {
        KernelCategory::MemoryIntensive
    }

    fn run(&self, cfg: &RunConfig) -> KernelRun {
        let mut tracer = Tracer::for_config(cfg);
        let n = cfg.problem_size.max(4) as usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let cells = n * n * n;
        let mut flux = vec![0.0f64; cells * GROUPS];
        let sigma: Vec<f64> = (0..cells * GROUPS)
            .map(|_| rng.random_range(0.1..2.0))
            .collect();
        let source: Vec<f64> = (0..cells * GROUPS)
            .map(|_| rng.random_range(0.0..1.0))
            .collect();

        let idx = |x: usize, y: usize, z: usize| (z * n + y) * n + x;
        let cell_bytes = (GROUPS * 8) as u64;

        let mut checksum = 0.0f64;
        for angle in 0..ANGLES {
            // Direction cosines for this ordinate.
            let mu = 0.35 + 0.08 * angle as f64;
            // Edge flux state for the wavefront (per-angle working set).
            let mut psi_edge = [0.5f64; GROUPS];
            for z in 0..n {
                for y in 0..n {
                    for x in 0..n {
                        let c = idx(x, y, z);
                        // Upwind angular fluxes from the three inflow faces.
                        if x > 0 {
                            tracer.read(PSI_BASE + (idx(x - 1, y, z) as u64) * cell_bytes, 64);
                        }
                        if y > 0 {
                            tracer.read(PSI_BASE + (idx(x, y - 1, z) as u64) * cell_bytes, 64);
                        }
                        if z > 0 {
                            tracer.read(PSI_BASE + (idx(x, y, z - 1) as u64) * cell_bytes, 64);
                        }
                        // Cross sections and source for the cell.
                        tracer.read(SIGMA_BASE + c as u64 * cell_bytes, 64);
                        tracer.read(SOURCE_BASE + c as u64 * cell_bytes, 64);

                        for g in 0..GROUPS {
                            let s = source[c * GROUPS + g] + 0.3 * psi_edge[g];
                            let denom = sigma[c * GROUPS + g] + 2.0 * mu;
                            let psi = s / denom;
                            flux[c * GROUPS + g] += psi * mu;
                            psi_edge[g] = 2.0 * psi - psi_edge[g];
                            tracer.flops(8);
                        }
                        // Write outflow angular flux and accumulate moments.
                        tracer.write(PSI_BASE + c as u64 * cell_bytes, 64);
                        tracer.read(FLUX_BASE + c as u64 * cell_bytes, 64);
                        tracer.write(FLUX_BASE + c as u64 * cell_bytes, 64);
                    }
                }
            }
            checksum += psi_edge.iter().sum::<f64>();
        }
        checksum += flux[cells / 2 * GROUPS];

        let (trace, counters) = tracer.into_parts();
        KernelRun {
            trace,
            counters,
            checksum: std::hint::black_box(checksum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_memory_bound_but_structured() {
        let run = Snap.run(&RunConfig::small());
        let opb = run.ops_per_byte();
        assert!(opb < 1.0, "ops/byte = {opb}");
        // Structured sweep: the per-angle passes revisit the same cell
        // state, giving far more temporal reuse than XSBench's random walk.
        assert!(run.trace.reuse_factor() > 5.0);
    }

    #[test]
    fn work_scales_with_grid_and_angles() {
        let mut cfg = RunConfig::small();
        cfg.problem_size = 4;
        let small = Snap.run(&cfg);
        cfg.problem_size = 8;
        let big = Snap.run(&cfg);
        let ratio = big.counters.dp_flops as f64 / small.counters.dp_flops as f64;
        assert!((ratio - 8.0).abs() < 0.5, "ratio = {ratio}");
    }

    #[test]
    fn flux_solution_is_positive_and_bounded() {
        let run = Snap.run(&RunConfig::small());
        assert!(run.checksum.is_finite());
        assert!(run.checksum > 0.0);
    }

    #[test]
    fn traffic_mix_includes_writes() {
        let run = Snap.run(&RunConfig::small());
        let wf = run.trace.write_fraction();
        assert!(wf > 0.1 && wf < 0.6, "write fraction = {wf}");
    }
}

//! Memory-trace recording for the proxy mini-kernels.
//!
//! Each proxy application executes a real (scaled-down) computation while
//! reporting its loads and stores to a [`Tracer`]. Addresses are *logical*
//! byte addresses in the application's flat data space (array base + offset),
//! which downstream consumers (the memory and NoC simulators) interleave
//! across physical resources.
//!
//! Traces are recorded at cache-line granularity with consecutive-duplicate
//! suppression, approximating the request stream a last-level cache would
//! emit toward DRAM.

use std::collections::BTreeSet;

/// Cache-line size used for trace coalescing (bytes).
pub const LINE_BYTES: u64 = 64;

/// Direction of a memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One cache-line-granular memory access in a kernel's trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Line-aligned logical byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// The cache-line index of this access.
    pub fn line(&self) -> u64 {
        self.addr / LINE_BYTES
    }
}

/// A recorded memory trace plus running statistics.
///
/// The statistics (footprint, sequentiality, read/write mix) are maintained
/// incrementally so they are available even when the access list itself is
/// capped to bound memory use.
#[derive(Clone, Debug, Default)]
pub struct MemoryTrace {
    accesses: Vec<Access>,
    capacity_cap: Option<usize>,
    total_accesses: u64,
    writes: u64,
    sequential: u64,
    last_line: Option<u64>,
    touched_lines: BTreeSet<u64>,
}

impl MemoryTrace {
    /// Creates an empty trace with unbounded storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace that stores at most `cap` accesses (statistics keep
    /// counting past the cap).
    pub fn with_capacity_cap(cap: usize) -> Self {
        Self {
            capacity_cap: Some(cap),
            ..Self::default()
        }
    }

    fn record(&mut self, access: Access) {
        self.total_accesses += 1;
        if access.kind == AccessKind::Write {
            self.writes += 1;
        }
        let line = access.line();
        if let Some(last) = self.last_line {
            if line == last + 1 {
                self.sequential += 1;
            }
        }
        self.last_line = Some(line);
        self.touched_lines.insert(line);
        if self
            .capacity_cap
            .is_none_or(|cap| self.accesses.len() < cap)
        {
            self.accesses.push(access);
        }
    }

    /// The stored accesses (possibly truncated to the capacity cap).
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Total number of recorded accesses, including those past the cap.
    pub fn len(&self) -> u64 {
        self.total_accesses
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total_accesses == 0
    }

    /// Total bytes moved (accesses x line size).
    pub fn total_bytes(&self) -> u64 {
        self.total_accesses * LINE_BYTES
    }

    /// Fraction of accesses that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.writes as f64 / self.total_accesses as f64
        }
    }

    /// Fraction of accesses whose line directly follows the previous line —
    /// a cheap proxy for streaming (prefetch-friendly) behaviour.
    pub fn sequential_fraction(&self) -> f64 {
        if self.total_accesses <= 1 {
            0.0
        } else {
            self.sequential as f64 / (self.total_accesses - 1) as f64
        }
    }

    /// Number of distinct cache lines touched.
    pub fn footprint_lines(&self) -> u64 {
        self.touched_lines.len() as u64
    }

    /// Data footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_lines() * LINE_BYTES
    }

    /// Mean number of accesses per touched line (temporal reuse).
    pub fn reuse_factor(&self) -> f64 {
        let lines = self.footprint_lines();
        if lines == 0 {
            0.0
        } else {
            self.total_accesses as f64 / lines as f64
        }
    }
}

/// Operation counters accumulated by a kernel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Double-precision floating-point operations executed.
    pub dp_flops: u64,
    /// Integer/address operations executed (informational).
    pub int_ops: u64,
}

impl OpCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` double-precision FLOPs.
    pub fn add_flops(&mut self, n: u64) {
        self.dp_flops += n;
    }

    /// Adds `n` integer operations.
    pub fn add_int_ops(&mut self, n: u64) {
        self.int_ops += n;
    }
}

/// A small set-associative LRU filter cache.
///
/// Models the on-chip cache hierarchy between the kernel and DRAM: only
/// misses (and dirty evictions) reach the recorded trace, so the trace
/// approximates the DRAM-level request stream rather than the raw
/// load/store stream.
#[derive(Clone, Debug)]
struct FilterCache {
    /// `sets[s]` holds up to `ways` entries of `(line, dirty)`, LRU-first.
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
}

/// Outcome of probing the filter cache.
enum FilterOutcome {
    Hit,
    Miss {
        /// Dirty victim line that must be written back, if any.
        writeback: Option<u64>,
    },
}

impl FilterCache {
    fn new(total_lines: usize, ways: usize) -> Self {
        assert!(ways > 0 && total_lines >= ways, "degenerate cache geometry");
        let sets = (total_lines / ways).next_power_of_two();
        Self {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
        }
    }

    fn access(&mut self, line: u64, is_write: bool) -> FilterOutcome {
        let set_count = self.sets.len() as u64;
        let set = &mut self.sets[(line % set_count) as usize];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (_, dirty) = set.remove(pos);
            set.push((line, dirty || is_write));
            return FilterOutcome::Hit;
        }
        let writeback = if set.len() == self.ways {
            let (victim, dirty) = set.remove(0);
            dirty.then_some(victim)
        } else {
            None
        };
        set.push((line, is_write));
        FilterOutcome::Miss { writeback }
    }
}

/// Records a kernel's memory behaviour and op counts as it executes.
///
/// With a filter cache attached (the default for
/// [`Tracer::for_config`]), the recorded trace contains only the accesses
/// that would miss the on-chip hierarchy and the resulting writebacks.
#[derive(Clone, Debug)]
pub struct Tracer {
    trace: MemoryTrace,
    counters: OpCounters,
    coalesce_line: Option<(u64, AccessKind)>,
    filter: Option<FilterCache>,
}

/// Default filter-cache capacity in lines (32 KiB of 64 B lines).
const DEFAULT_FILTER_LINES: usize = 512;
/// Default filter-cache associativity.
const DEFAULT_FILTER_WAYS: usize = 8;

impl Tracer {
    /// Creates a tracer storing the full raw access stream (no cache filter).
    pub fn new() -> Self {
        Self {
            trace: MemoryTrace::new(),
            counters: OpCounters::new(),
            coalesce_line: None,
            filter: None,
        }
    }

    /// Creates a tracer storing at most `cap` accesses (no cache filter).
    pub fn with_capacity_cap(cap: usize) -> Self {
        Self {
            trace: MemoryTrace::with_capacity_cap(cap),
            counters: OpCounters::new(),
            coalesce_line: None,
            filter: None,
        }
    }

    /// Creates the standard tracer for a proxy-app run: trace storage capped
    /// per the config and a small cache filter so the trace approximates
    /// DRAM-level traffic.
    pub fn for_config(cfg: &crate::app::RunConfig) -> Self {
        let mut t = match cfg.trace_cap {
            Some(cap) => Self::with_capacity_cap(cap),
            None => Self::new(),
        };
        t.filter = Some(FilterCache::new(DEFAULT_FILTER_LINES, DEFAULT_FILTER_WAYS));
        t
    }

    /// Attaches a cache filter of `lines` total lines and `ways`
    /// associativity; subsequent accesses record only misses/writebacks.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or `lines < ways`.
    pub fn with_filter_cache(mut self, lines: usize, ways: usize) -> Self {
        self.filter = Some(FilterCache::new(lines, ways));
        self
    }

    /// Records a load of `bytes` bytes at logical address `addr`.
    pub fn read(&mut self, addr: u64, bytes: u32) {
        self.touch(addr, bytes, AccessKind::Read);
    }

    /// Records a store of `bytes` bytes at logical address `addr`.
    pub fn write(&mut self, addr: u64, bytes: u32) {
        self.touch(addr, bytes, AccessKind::Write);
    }

    fn touch(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        debug_assert!(bytes > 0, "zero-byte access");
        let first = addr / LINE_BYTES;
        let last = (addr + u64::from(bytes) - 1) / LINE_BYTES;
        for line in first..=last {
            // Suppress immediately repeated touches of the same line with the
            // same direction: they would hit in even the smallest cache.
            if self.coalesce_line == Some((line, kind)) {
                continue;
            }
            self.coalesce_line = Some((line, kind));
            match &mut self.filter {
                None => self.trace.record(Access {
                    addr: line * LINE_BYTES,
                    kind,
                }),
                Some(cache) => match cache.access(line, kind == AccessKind::Write) {
                    FilterOutcome::Hit => {}
                    FilterOutcome::Miss { writeback } => {
                        self.trace.record(Access {
                            addr: line * LINE_BYTES,
                            kind,
                        });
                        if let Some(victim) = writeback {
                            self.trace.record(Access {
                                addr: victim * LINE_BYTES,
                                kind: AccessKind::Write,
                            });
                        }
                    }
                },
            }
        }
    }

    /// Adds `n` double-precision FLOPs to the counters.
    pub fn flops(&mut self, n: u64) {
        self.counters.add_flops(n);
    }

    /// Adds `n` integer operations to the counters.
    pub fn int_ops(&mut self, n: u64) {
        self.counters.add_int_ops(n);
    }

    /// The accumulated counters.
    pub fn counters(&self) -> OpCounters {
        self.counters
    }

    /// Finishes tracing, returning the trace and counters.
    ///
    /// If a filter cache is attached, its remaining dirty lines are flushed
    /// as writebacks first, so the trace accounts for all DRAM write
    /// traffic the kernel generated.
    pub fn into_parts(mut self) -> (MemoryTrace, OpCounters) {
        if let Some(cache) = self.filter.take() {
            let mut dirty: Vec<u64> = cache
                .sets
                .iter()
                .flatten()
                .filter(|&&(_, d)| d)
                .map(|&(line, _)| line)
                .collect();
            dirty.sort_unstable();
            for line in dirty {
                self.trace.record(Access {
                    addr: line * LINE_BYTES,
                    kind: AccessKind::Write,
                });
            }
        }
        (self.trace, self.counters)
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_repeated_same_line_touches() {
        let mut t = Tracer::new();
        t.read(0, 8);
        t.read(8, 8);
        t.read(16, 8); // all in line 0 -> one access
        t.read(64, 8); // line 1
        let (trace, _) = t.into_parts();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.accesses()[0].line(), 0);
        assert_eq!(trace.accesses()[1].line(), 1);
    }

    #[test]
    fn read_then_write_to_same_line_records_both() {
        let mut t = Tracer::new();
        t.read(0, 8);
        t.write(0, 8);
        let (trace, _) = t.into_parts();
        assert_eq!(trace.len(), 2);
        assert!((trace.write_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn straddling_access_touches_both_lines() {
        let mut t = Tracer::new();
        t.read(60, 8); // crosses the line-0/line-1 boundary
        let (trace, _) = t.into_parts();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn sequential_fraction_of_streaming_is_high() {
        let mut t = Tracer::new();
        for i in 0..1000u64 {
            t.read(i * LINE_BYTES, 64);
        }
        let (trace, _) = t.into_parts();
        assert!(trace.sequential_fraction() > 0.99);
        assert_eq!(trace.footprint_lines(), 1000);
        assert!((trace.reuse_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_pattern_has_low_sequentiality() {
        let mut t = Tracer::new();
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.read((x % 100_000) * LINE_BYTES, 8);
        }
        let (trace, _) = t.into_parts();
        assert!(trace.sequential_fraction() < 0.05);
    }

    #[test]
    fn capacity_cap_truncates_storage_not_stats() {
        let mut t = Tracer::with_capacity_cap(10);
        for i in 0..100u64 {
            t.write(i * LINE_BYTES, 64);
        }
        let (trace, _) = t.into_parts();
        assert_eq!(trace.accesses().len(), 10);
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.footprint_lines(), 100);
        assert!((trace.write_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = Tracer::new();
        t.flops(10);
        t.flops(5);
        t.int_ops(3);
        assert_eq!(t.counters().dp_flops, 15);
        assert_eq!(t.counters().int_ops, 3);
    }

    #[test]
    fn empty_trace_stats_are_safe() {
        let trace = MemoryTrace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.write_fraction(), 0.0);
        assert_eq!(trace.sequential_fraction(), 0.0);
        assert_eq!(trace.reuse_factor(), 0.0);
    }
}

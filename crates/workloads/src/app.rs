//! The proxy-application abstraction.
//!
//! Every paper workload (Table I) is a [`ProxyApp`]: a scaled-down but
//! *real* computation that executes deterministically from a seed, counts
//! its floating-point work, and records its memory trace through a
//! [`Tracer`](crate::trace::Tracer). The measured run
//! ([`KernelRun`]) feeds both the trace-driven simulators and the analytic
//! characterization in [`crate::characterize`].

use ena_model::kernel::KernelCategory;

use crate::trace::{MemoryTrace, OpCounters};

/// Parameters for one proxy-app execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Linear problem-size knob. Each app documents how it scales its data
    /// set from this (typically a grid dimension or particle-cell count).
    pub problem_size: u32,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Optional cap on stored trace entries (statistics keep counting).
    pub trace_cap: Option<usize>,
}

impl RunConfig {
    /// A small configuration suitable for unit tests.
    pub fn small() -> Self {
        Self {
            problem_size: 8,
            seed: 0x5EED,
            trace_cap: Some(200_000),
        }
    }

    /// The reference configuration used for characterization runs.
    pub fn reference() -> Self {
        Self {
            problem_size: 16,
            seed: 0x5EED,
            trace_cap: Some(2_000_000),
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// The result of executing a proxy app once.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Recorded DRAM-level memory trace.
    pub trace: MemoryTrace,
    /// Operation counters.
    pub counters: OpCounters,
    /// A floating-point digest of the computed result; used to verify
    /// determinism and to keep the computation observable.
    pub checksum: f64,
}

impl KernelRun {
    /// Measured arithmetic intensity: DP FLOPs per byte of traced traffic.
    ///
    /// Returns `f64::INFINITY` for kernels that generated no traffic.
    pub fn ops_per_byte(&self) -> f64 {
        let bytes = self.trace.total_bytes();
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.counters.dp_flops as f64 / bytes as f64
        }
    }
}

/// A proxy application from the paper's Table I.
///
/// Implementations are stateless descriptions; all run state lives inside
/// [`ProxyApp::run`]. The trait is object-safe so workload suites can be
/// held as `Vec<Box<dyn ProxyApp>>`.
pub trait ProxyApp {
    /// The paper's name for the application (e.g. `"LULESH"`).
    fn name(&self) -> &'static str;

    /// Table I description.
    fn description(&self) -> &'static str;

    /// Paper Section IV category.
    fn category(&self) -> KernelCategory;

    /// Executes the dominant kernel once and returns its measurements.
    fn run(&self, cfg: &RunConfig) -> KernelRun;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_per_byte_handles_no_traffic() {
        let run = KernelRun {
            trace: MemoryTrace::new(),
            counters: OpCounters {
                dp_flops: 100,
                int_ops: 0,
            },
            checksum: 0.0,
        };
        assert!(run.ops_per_byte().is_infinite());
    }

    #[test]
    fn run_config_constructors() {
        assert!(RunConfig::small().problem_size < RunConfig::reference().problem_size);
        assert_eq!(RunConfig::default(), RunConfig::reference());
    }
}

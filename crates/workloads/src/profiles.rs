//! Calibrated kernel profiles for the paper's workload suite.
//!
//! The analytic models in `ena-core` consume [`KernelProfile`]s. The values
//! here are calibrated so the model reproduces the paper's reported
//! behaviour: the scaling shapes of Figs. 4-6, the 60-95 % out-of-chiplet
//! traffic of Fig. 7, the 46-89 % external-memory traffic of Section V-B,
//! and the per-category sensitivities of Section IV. Fields that our
//! mini-kernels can measure directly (intensity ordering, write mix,
//! category) are cross-checked against measurement in this module's tests.

use ena_model::kernel::{KernelCategory, KernelProfile};

/// Convenience constructor for the calibrated profiles.
#[allow(clippy::too_many_arguments)]
fn profile(
    name: &str,
    category: KernelCategory,
    ops_per_byte: f64,
    utilization: f64,
    parallelism: f64,
    latency_sensitivity: f64,
    contention_sensitivity: f64,
    write_fraction: f64,
    ext_traffic_fraction: f64,
    out_of_chiplet_fraction: f64,
    serial_fraction: f64,
) -> KernelProfile {
    let p = KernelProfile {
        name: name.to_owned(),
        category,
        ops_per_byte,
        utilization,
        parallelism,
        latency_sensitivity,
        contention_sensitivity,
        write_fraction,
        ext_traffic_fraction,
        out_of_chiplet_fraction,
        serial_fraction,
    };
    debug_assert!(p.validate().is_ok());
    p
}

/// The calibrated profiles of all eight paper workloads, in Table I order.
pub fn paper_profiles() -> Vec<KernelProfile> {
    use KernelCategory::{Balanced, ComputeIntensive, MemoryIntensive};
    vec![
        profile(
            "MaxFlops",
            ComputeIntensive,
            1.0e4,
            0.91,
            1.00,
            0.00,
            0.00,
            0.02,
            0.01,
            0.60,
            0.000,
        ),
        profile(
            "CoMD", Balanced, 11.0, 0.55, 0.92, 0.15, 0.06, 0.15, 0.46, 0.70, 0.010,
        ),
        profile(
            "CoMD-LJ", Balanced, 9.0, 0.60, 0.92, 0.15, 0.08, 0.12, 0.50, 0.75, 0.010,
        ),
        profile(
            "HPGMG", Balanced, 5.0, 0.50, 0.85, 0.25, 0.15, 0.25, 0.60, 0.80, 0.020,
        ),
        profile(
            "LULESH",
            MemoryIntensive,
            2.5,
            0.50,
            0.70,
            0.55,
            0.20,
            0.35,
            0.70,
            0.85,
            0.020,
        ),
        profile(
            "MiniAMR",
            MemoryIntensive,
            2.0,
            0.50,
            0.85,
            0.25,
            0.30,
            0.30,
            0.75,
            0.80,
            0.020,
        ),
        profile(
            "XSBench",
            MemoryIntensive,
            0.9,
            0.40,
            0.60,
            0.70,
            0.30,
            0.02,
            0.89,
            0.95,
            0.010,
        ),
        profile(
            "SNAP",
            MemoryIntensive,
            1.5,
            0.45,
            0.90,
            0.20,
            0.25,
            0.35,
            0.80,
            0.90,
            0.020,
        ),
    ]
}

/// Looks up one calibrated profile by its paper name.
pub fn profile_for(name: &str) -> Option<KernelProfile> {
    paper_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::RunConfig;
    use crate::apps::all_apps;
    use crate::characterize::Characterization;

    #[test]
    fn all_profiles_validate() {
        for p in paper_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn profile_names_match_the_app_suite() {
        let profiles = paper_profiles();
        let apps = all_apps();
        assert_eq!(profiles.len(), apps.len());
        for app in &apps {
            assert!(
                profiles.iter().any(|p| p.name == app.name()),
                "missing profile for {}",
                app.name()
            );
        }
    }

    #[test]
    fn profile_categories_match_app_categories() {
        let apps = all_apps();
        for p in paper_profiles() {
            let app = apps.iter().find(|a| a.name() == p.name).unwrap();
            assert_eq!(p.category, app.category(), "{}", p.name);
        }
    }

    #[test]
    fn ext_traffic_fractions_span_the_papers_range() {
        // Section V-B: 46 % to 89 % of traffic may access off-package memory.
        let profiles = paper_profiles();
        let non_compute: Vec<_> = profiles
            .iter()
            .filter(|p| p.category != ena_model::KernelCategory::ComputeIntensive)
            .collect();
        let min = non_compute
            .iter()
            .map(|p| p.ext_traffic_fraction)
            .fold(1.0, f64::min);
        let max = non_compute
            .iter()
            .map(|p| p.ext_traffic_fraction)
            .fold(0.0, f64::max);
        assert!((min - 0.46).abs() < 1e-9, "min = {min}");
        assert!((max - 0.89).abs() < 1e-9, "max = {max}");
    }

    #[test]
    fn out_of_chiplet_fractions_span_fig7_range() {
        // Fig. 7: 60-95 % of traffic leaves the source chiplet.
        for p in paper_profiles() {
            assert!(
                (0.6..=0.95).contains(&p.out_of_chiplet_fraction),
                "{}: {}",
                p.name,
                p.out_of_chiplet_fraction
            );
        }
    }

    #[test]
    fn calibrated_intensity_ordering_matches_measured_ordering() {
        // The calibrated ops/byte values are LLC-level while the traces are
        // rawer, but the *ordering* across apps must agree.
        let cfg = RunConfig::small();
        let apps = all_apps();
        let mut measured: Vec<(String, f64)> = apps
            .iter()
            .map(|a| {
                let c = Characterization::measure(a.as_ref(), &cfg);
                (c.name.clone(), c.ops_per_byte)
            })
            .collect();
        measured.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let measured_rank: Vec<&str> = measured.iter().map(|(n, _)| n.as_str()).collect();
        // MaxFlops must dominate and XSBench must be near the bottom.
        assert_eq!(measured_rank[0], "MaxFlops");
        let xs_pos = measured_rank.iter().position(|&n| n == "XSBench").unwrap();
        assert!(xs_pos >= 5, "XSBench rank {xs_pos} in {measured_rank:?}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile_for("LULESH").is_some());
        assert!(profile_for("nope").is_none());
    }
}

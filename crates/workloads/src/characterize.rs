//! Workload characterization (paper Section IV).
//!
//! Turns a measured [`KernelRun`] into the summary statistics the paper's
//! methodology extracts from hardware performance counters, and buckets
//! kernels into the three Section IV categories.

use ena_model::kernel::KernelCategory;

use crate::app::{KernelRun, ProxyApp, RunConfig};

/// Summary statistics measured from one kernel execution.
#[derive(Clone, Debug, PartialEq)]
pub struct Characterization {
    /// Application name.
    pub name: String,
    /// Measured arithmetic intensity (DP FLOPs per DRAM byte).
    pub ops_per_byte: f64,
    /// Fraction of traffic that is writes.
    pub write_fraction: f64,
    /// Fraction of line-sequential accesses (streaming friendliness).
    pub sequential_fraction: f64,
    /// Distinct bytes touched.
    pub footprint_bytes: u64,
    /// Mean accesses per touched line (temporal reuse).
    pub reuse_factor: f64,
    /// Total DP FLOPs executed.
    pub dp_flops: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
}

impl Characterization {
    /// Measures `app` at the given configuration.
    pub fn measure(app: &dyn ProxyApp, cfg: &RunConfig) -> Self {
        let run = app.run(cfg);
        Self::from_run(app.name(), &run)
    }

    /// Derives the characterization from an existing run.
    pub fn from_run(name: &str, run: &KernelRun) -> Self {
        Self {
            name: name.to_owned(),
            ops_per_byte: run.ops_per_byte(),
            write_fraction: run.trace.write_fraction(),
            sequential_fraction: run.trace.sequential_fraction(),
            footprint_bytes: run.trace.footprint_bytes(),
            reuse_factor: run.trace.reuse_factor(),
            dp_flops: run.counters.dp_flops,
            total_bytes: run.trace.total_bytes(),
        }
    }

    /// Buckets the measured intensity into the paper's categories, using the
    /// baseline EHP's machine balance as the pivot.
    pub fn category(&self, machine_balance: f64) -> KernelCategory {
        ena_model::kernel::KernelProfile::categorize(self.ops_per_byte, machine_balance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{all_apps, Lulesh, MaxFlops};

    /// Machine balance of the paper baseline: 20.48 TF / 3 TB/s ~ 6.8, but
    /// our traced traffic is LLC-filtered, so use a softer pivot for the
    /// raw-trace categorization checks.
    const BALANCE: f64 = 1.0;

    #[test]
    fn maxflops_measures_compute_intensive() {
        let c = Characterization::measure(&MaxFlops, &RunConfig::small());
        assert_eq!(c.category(BALANCE), KernelCategory::ComputeIntensive);
    }

    #[test]
    fn lulesh_measures_memory_intensive() {
        let c = Characterization::measure(&Lulesh, &RunConfig::small());
        assert_eq!(c.category(BALANCE), KernelCategory::MemoryIntensive);
    }

    #[test]
    fn measured_ordering_matches_paper_table_i() {
        // Intensity ordering: MaxFlops >> balanced (CoMD*) > memory-bound.
        let cfg = RunConfig::small();
        let by_name: std::collections::BTreeMap<String, Characterization> = all_apps()
            .iter()
            .map(|a| {
                let c = Characterization::measure(a.as_ref(), &cfg);
                (c.name.clone(), c)
            })
            .collect();
        let opb = |n: &str| by_name[n].ops_per_byte;
        assert!(opb("MaxFlops") > opb("CoMD-LJ"));
        assert!(opb("CoMD-LJ") > opb("LULESH"));
        assert!(opb("CoMD") > opb("XSBench"));
        assert!(opb("HPGMG") > opb("XSBench"));
    }

    #[test]
    fn characterization_is_consistent_with_run() {
        let run = MaxFlops.run(&RunConfig::small());
        let c = Characterization::from_run("MaxFlops", &run);
        assert_eq!(c.dp_flops, run.counters.dp_flops);
        assert_eq!(c.total_bytes, run.trace.total_bytes());
    }
}

//! Proxy-application workloads for the ENA toolkit (paper Table I).
//!
//! The HPCA 2017 exascale-APU study characterizes seven open-source proxy
//! applications plus a peak-FLOPS microbenchmark, then drives every
//! experiment from their measured scaling behaviour. This crate provides:
//!
//! - [`apps`] — executable mini-kernel implementations of all eight
//!   workloads. Each runs a real (scaled-down) computation deterministically
//!   from a seed while recording a DRAM-level memory trace.
//! - [`trace`] — the tracing infrastructure ([`Tracer`](trace::Tracer),
//!   [`MemoryTrace`](trace::MemoryTrace)).
//! - [`characterize`] — Section IV-style summary statistics from a run.
//! - [`profiles`] — calibrated [`KernelProfile`](ena_model::KernelProfile)s
//!   consumed by the analytic models in `ena-core`.
//!
//! # Example
//!
//! ```
//! use ena_workloads::app::{ProxyApp, RunConfig};
//! use ena_workloads::apps::Lulesh;
//! use ena_workloads::characterize::Characterization;
//!
//! let run = Lulesh.run(&RunConfig::small());
//! let stats = Characterization::from_run("LULESH", &run);
//! assert!(stats.ops_per_byte < 1.0); // memory-intensive
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod apps;
pub mod characterize;
pub mod profiles;
pub mod trace;

pub use app::{KernelRun, ProxyApp, RunConfig};
pub use characterize::Characterization;
pub use profiles::{paper_profiles, profile_for};

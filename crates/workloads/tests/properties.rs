//! Property-based tests for the tracing infrastructure.

use ena_testkit::prelude::*;
use ena_workloads::trace::{Tracer, LINE_BYTES};

proptest! {
    #[test]
    fn trace_statistics_are_internally_consistent(
        ops in ena_testkit::collection::vec((0u64..1u64 << 24, 1u32..256, any::<bool>()), 1..500),
    ) {
        let mut t = Tracer::new();
        for &(addr, bytes, write) in &ops {
            if write {
                t.write(addr, bytes);
            } else {
                t.read(addr, bytes);
            }
        }
        let (trace, _) = t.into_parts();
        prop_assert!(!trace.is_empty());
        prop_assert_eq!(trace.total_bytes(), trace.len() * LINE_BYTES);
        prop_assert!(trace.footprint_lines() <= trace.len());
        let wf = trace.write_fraction();
        prop_assert!((0.0..=1.0).contains(&wf));
        let sf = trace.sequential_fraction();
        prop_assert!((0.0..=1.0).contains(&sf));
        prop_assert!(trace.reuse_factor() >= 1.0);
        // Stored accesses are line-aligned.
        for a in trace.accesses() {
            prop_assert_eq!(a.addr % LINE_BYTES, 0);
        }
    }

    #[test]
    fn filter_cache_only_removes_traffic(
        ops in ena_testkit::collection::vec((0u64..1u64 << 20, any::<bool>()), 1..500),
    ) {
        let mut raw = Tracer::new();
        let mut filtered = Tracer::new().with_filter_cache(128, 4);
        for &(addr, write) in &ops {
            if write {
                raw.write(addr, 8);
                filtered.write(addr, 8);
            } else {
                raw.read(addr, 8);
                filtered.read(addr, 8);
            }
        }
        let (raw_trace, _) = raw.into_parts();
        let (filtered_trace, _) = filtered.into_parts();
        // The filter can add writebacks but each miss line was also in the
        // raw trace, so the footprint can only shrink or stay equal.
        prop_assert!(filtered_trace.footprint_lines() <= raw_trace.footprint_lines());
        // And read traffic can only shrink.
        let reads = |t: &ena_workloads::trace::MemoryTrace| {
            (t.len() as f64 * (1.0 - t.write_fraction())).round() as u64
        };
        prop_assert!(reads(&filtered_trace) <= reads(&raw_trace));
    }

    #[test]
    fn capacity_cap_never_loses_statistics(
        ops in ena_testkit::collection::vec(0u64..1u64 << 16, 1..300),
        cap in 1usize..50,
    ) {
        let mut unbounded = Tracer::new();
        let mut capped = Tracer::with_capacity_cap(cap);
        for &addr in &ops {
            unbounded.read(addr, 8);
            capped.read(addr, 8);
        }
        let (a, _) = unbounded.into_parts();
        let (b, _) = capped.into_parts();
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.footprint_lines(), b.footprint_lines());
        prop_assert!(b.accesses().len() <= cap);
    }
}

/// Digest of the full characterization of every proxy app at the small
/// reference configuration — every statistic the paper's Table I
/// methodology extracts, hashed bit-exactly.
fn characterization_digest() -> u64 {
    use ena_workloads::app::RunConfig;
    use ena_workloads::apps::all_apps;
    use ena_workloads::characterize::Characterization;
    let mut h = ena_model::hash::StableHasher::new();
    for app in all_apps() {
        let c = Characterization::measure(app.as_ref(), &RunConfig::small());
        h.write_str(&c.name);
        h.write_f64(c.ops_per_byte);
        h.write_f64(c.write_fraction);
        h.write_f64(c.sequential_fraction);
        h.write_u64(c.footprint_bytes);
        h.write_f64(c.reuse_factor);
        h.write_u64(c.dp_flops);
        h.write_u64(c.total_bytes);
    }
    h.finish()
}

/// Satellite invariant: workload characterization is identical across
/// two *separate process* runs. The test re-executes its own binary
/// twice in digest mode and compares the printed digests with each
/// other and with the in-process value.
#[test]
fn characterization_is_identical_across_two_process_runs() {
    const MODE: &str = "ENA_WORKLOADS_DIGEST_MODE";
    if std::env::var_os(MODE).is_some() {
        println!("digest={:016x}", characterization_digest());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let child_digest = || {
        let out = std::process::Command::new(&exe)
            .args([
                "characterization_is_identical_across_two_process_runs",
                "--exact",
                "--nocapture",
            ])
            .env(MODE, "1")
            .output()
            .expect("child test process");
        assert!(out.status.success(), "child run failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // Under `--nocapture` libtest may print the digest on the same
        // line as the test name, so search by substring.
        let at = stdout
            .find("digest=")
            .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
        stdout[at + "digest=".len()..]
            .chars()
            .take_while(char::is_ascii_hexdigit)
            .collect::<String>()
    };
    let first = child_digest();
    let second = child_digest();
    assert_eq!(first, second, "characterization differs between processes");
    assert_eq!(
        first,
        format!("{:016x}", characterization_digest()),
        "parent and child disagree"
    );
}

//! Pareto-frontier extraction over (mean performance, peak power, peak
//! temperature).
//!
//! The best-mean reduction answers "which single point wins"; the
//! frontier answers the design question behind Figs. 4-9 — which points
//! are *efficient*, i.e. cannot improve one axis without paying on
//! another. Scores reuse the exact normalization of the sequential
//! oracle ([`ena_core::dse::geomean_score`]) so the frontier provably
//! contains the best-mean point.

use ena_core::dse::{app_maxima, geomean_score, ConfigPoint, PointRecord};
use ena_core::Explorer;

/// One efficient design point with its three objective values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontierPoint {
    /// The design point.
    pub point: ConfigPoint,
    /// Geometric-mean log-score across applications (higher is better).
    pub score: f64,
    /// Worst-case package power across applications (W, lower is better).
    pub peak_power_w: f64,
    /// Worst-case estimated peak DRAM temperature across applications
    /// (°C, lower is better).
    pub peak_dram_c: f64,
}

impl FrontierPoint {
    /// True if `self` Pareto-dominates `other`: no worse on every axis,
    /// strictly better on at least one.
    fn dominates(&self, other: &Self) -> bool {
        let no_worse = self.score >= other.score
            && self.peak_power_w <= other.peak_power_w
            && self.peak_dram_c <= other.peak_dram_c;
        let better = self.score > other.score
            || self.peak_power_w < other.peak_power_w
            || self.peak_dram_c < other.peak_dram_c;
        no_worse && better
    }
}

/// Generic dominance filter: the indices of `items` not dominated by any
/// other item, in input order. `dominates(a, b)` must mean "`a` is no
/// worse than `b` on every axis and strictly better on at least one" —
/// an irreflexive relation, so ties survive. This is the shared kernel
/// behind both the node-level frontier here and the multi-node fabric
/// frontier in `ena-fabric`.
pub fn frontier_indices<T>(items: &[T], dominates: impl Fn(&T, &T) -> bool) -> Vec<usize> {
    (0..items.len())
        .filter(|&i| !items.iter().any(|other| dominates(other, &items[i])))
        .collect()
}

/// Extracts the Pareto frontier over the budget-feasible records, in the
/// records' (design-space) order.
pub fn pareto_frontier(
    explorer: &Explorer,
    records: &[PointRecord],
    n_apps: usize,
) -> Vec<FrontierPoint> {
    let feasible: Vec<&PointRecord> = records.iter().filter(|r| explorer.is_feasible(r)).collect();
    let app_max = app_maxima(feasible.iter().copied(), n_apps);

    let candidates: Vec<FrontierPoint> = feasible
        .iter()
        .map(|r| FrontierPoint {
            point: r.point,
            score: geomean_score(&r.evals, &app_max),
            peak_power_w: r.evals.iter().map(|e| e.package_power).fold(0.0, f64::max),
            peak_dram_c: r.evals.iter().map(|e| e.peak_dram_c).fold(0.0, f64::max),
        })
        .collect();

    frontier_indices(&candidates, FrontierPoint::dominates)
        .into_iter()
        .map(|i| candidates[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_core::dse::PointEval;
    use ena_model::units::{GigabytesPerSec, Megahertz};

    fn rec(cus: u32, throughput: f64, power: f64, temp: f64) -> PointRecord {
        PointRecord {
            point: ConfigPoint {
                cus,
                clock: Megahertz::new(1000.0),
                bandwidth: GigabytesPerSec::new(3000.0),
            },
            evals: vec![PointEval {
                throughput,
                package_power: power,
                peak_dram_c: temp,
            }],
        }
    }

    #[test]
    fn dominated_points_are_dropped_and_ties_survive() {
        let records = vec![
            rec(192, 100.0, 100.0, 70.0), // dominated by the 256 point
            rec(256, 120.0, 90.0, 68.0),  // frontier
            rec(320, 150.0, 120.0, 75.0), // frontier: best score
            rec(384, 150.0, 120.0, 75.0), // tie with 320: both survive
        ];
        let frontier = pareto_frontier(&Explorer::default(), &records, 1);
        let cus: Vec<u32> = frontier.iter().map(|f| f.point.cus).collect();
        assert_eq!(cus, vec![256, 320, 384]);
    }

    #[test]
    fn infeasible_points_never_reach_the_frontier() {
        let records = vec![
            rec(192, 100.0, 100.0, 70.0),
            rec(384, 999.0, 500.0, 95.0), // busts the 160 W budget
        ];
        let frontier = pareto_frontier(&Explorer::default(), &records, 1);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].point.cus, 192);
    }
}

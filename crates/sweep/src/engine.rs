//! The sweep engine: memoized, parallel, resumable design-space
//! exploration that is byte-identical to the sequential oracle.
//!
//! Determinism argument, in three parts:
//!
//! 1. **Same kernel.** Every point is evaluated by
//!    [`Explorer::evaluate_point`] — the exact function the sequential
//!    [`Explorer::explore`] calls — and the simulator underneath is
//!    deterministic, so a point's record does not depend on *when*,
//!    *where*, or *how often* it is computed.
//! 2. **Order-independent merge.** Workers return chunks tagged with
//!    their index; the engine reassembles records in design-space point
//!    order before reducing. Scheduling order never reaches the
//!    reduction.
//! 3. **Bit-exact memoization.** Cached records store `f64`s by bit
//!    pattern (in memory and on disk), so a cache hit replays the very
//!    bits a fresh evaluation would produce.
//!
//! Hence `reduce(merge(...))` sees the same bytes whatever the thread
//! count, cache temperature, or interruption history.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ena_core::dse::{DesignSpace, DseError, DseResult, PointRecord};
use ena_core::Explorer;
use ena_model::hash::{StableHash, StableHasher, MODEL_VERSION};
use ena_model::kernel::KernelProfile;
use ena_testkit::chaos::{RealFs, Vfs};

use crate::cache::{CacheError, DiskCache, SyncPolicy};
use crate::pareto::{pareto_frontier, FrontierPoint};
use crate::pool::{map_chunks_supervised, PoolError, RetryPolicy, WorkerStats};

#[cfg(feature = "timing")]
mod clock {
    /// Wall-clock run timer, available only under the `timing` feature:
    /// everything outside telemetry stays wall-clock-free so results are
    /// a pure function of inputs.
    #[derive(Clone, Copy, Debug)]
    pub struct RunClock(std::time::Instant);

    impl RunClock {
        pub fn start() -> Self {
            Self(std::time::Instant::now())
        }

        pub fn elapsed(&self) -> std::time::Duration {
            self.0.elapsed()
        }
    }
}

#[cfg(not(feature = "timing"))]
mod clock {
    /// Deterministic stand-in: without the `timing` feature every run
    /// reports zero elapsed time, keeping the default build free of
    /// wall-clock reads.
    #[derive(Clone, Copy, Debug)]
    pub struct RunClock;

    impl RunClock {
        pub fn start() -> Self {
            Self
        }

        pub fn elapsed(&self) -> std::time::Duration {
            std::time::Duration::ZERO
        }
    }
}

/// Where memoized evaluations live between runs.
#[derive(Clone, Debug)]
pub enum CacheMode {
    /// In-process only: hits across runs of the same engine instance.
    Memory,
    /// Persistent under the given directory: hits across processes, and
    /// checkpoint/resume of interrupted campaigns.
    Disk(PathBuf),
}

/// One sweep request.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// The design space to sweep.
    pub space: DesignSpace,
    /// Application profiles to evaluate at every point.
    pub profiles: Vec<KernelProfile>,
    /// Worker thread count (clamped to at least 1).
    pub jobs: usize,
    /// Points per work-stealing chunk.
    pub chunk_points: usize,
    /// Memoization layer.
    pub cache: CacheMode,
    /// Evaluate at most this many *fresh* (uncached) points, then stop
    /// with [`SweepError::Interrupted`] — everything evaluated so far is
    /// already checkpointed. `None` runs to completion. Exists to make
    /// interruption deterministic and testable.
    pub fresh_limit: Option<usize>,
    /// Filesystem the disk cache talks through: [`RealFs`] in
    /// production, a seeded `ChaosFs` in chaos campaigns.
    pub fs: Arc<dyn Vfs>,
    /// Durability policy for cache appends (checkpoints).
    pub sync: SyncPolicy,
    /// Retry budget for panicking chunks before they are quarantined.
    pub retry: RetryPolicy,
}

impl SweepSpec {
    /// A sequential, memory-cached spec over `space` and `profiles`,
    /// on the real filesystem with default durability and retry policy.
    pub fn new(space: DesignSpace, profiles: Vec<KernelProfile>) -> Self {
        Self {
            space,
            profiles,
            jobs: 1,
            chunk_points: 16,
            cache: CacheMode::Memory,
            fresh_limit: None,
            fs: Arc::new(RealFs),
            sync: SyncPolicy::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Sweep progress/efficiency telemetry.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// Points in the swept space.
    pub total_points: usize,
    /// Points answered from the memoization cache.
    pub cache_hits: usize,
    /// Points evaluated fresh this run.
    pub fresh_evals: usize,
    /// Chunks handed to the pool.
    pub chunks: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Per-worker execution counters (utilization).
    pub workers: Vec<WorkerStats>,
}

impl Telemetry {
    /// Fraction of points served by the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.total_points as f64
        }
    }

    /// Overall points per second (cached and fresh).
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.total_points as f64 / secs
        }
    }
}

/// One chunk the supervisor pulled out of the sweep, with the point
/// keys it was carrying.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantineEntry {
    /// Index of the chunk in submission order.
    pub chunk_index: usize,
    /// Memoization keys of the points in the chunk.
    pub keys: Vec<u64>,
    /// Attempts made before quarantine (1 + retries).
    pub attempts: u32,
    /// Panic message of the final attempt.
    pub message: String,
    /// Modeled retry backoff consumed (µs).
    pub backoff_us: f64,
}

/// Deterministic account of everything quarantined during a sweep,
/// ordered by chunk index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QuarantineReport {
    /// Quarantined chunks in chunk-index order.
    pub entries: Vec<QuarantineEntry>,
}

impl QuarantineReport {
    /// True when nothing was quarantined (the run is byte-identical to
    /// the sequential oracle).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total points pulled out of the sweep.
    pub fn points(&self) -> usize {
        self.entries.iter().map(|e| e.keys.len()).sum()
    }

    /// Renders the report as stable text (no wall-clock, no addresses).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // fmt::Write to a String is infallible; discard the Ok values.
        let _ = writeln!(
            out,
            "quarantine: {} chunk(s), {} point(s)",
            self.entries.len(),
            self.points()
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "  chunk {} ({} points, {} attempts, backoff {:.1} us): {}",
                e.chunk_index,
                e.keys.len(),
                e.attempts,
                e.backoff_us,
                e.message
            );
        }
        out
    }
}

/// Everything a completed sweep produced.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The oracle reductions (best-mean, Table II per-app bests).
    pub result: DseResult,
    /// Pareto frontier over (mean perf, peak power, peak temperature).
    pub frontier: Vec<FrontierPoint>,
    /// Every evaluated record, in design-space point order. Quarantined
    /// points are absent (and listed in `quarantine`).
    pub records: Vec<PointRecord>,
    /// Chunks the supervisor quarantined after exhausting retries.
    /// Empty on a healthy run — and an empty report guarantees the
    /// outcome is byte-identical to the sequential oracle.
    pub quarantine: QuarantineReport,
    /// Run telemetry.
    pub telemetry: Telemetry,
}

/// Sweep failure modes.
#[derive(Debug)]
pub enum SweepError {
    /// The design space has no points.
    EmptySpace,
    /// No application profiles were supplied.
    EmptyProfiles,
    /// The run hit its `fresh_limit`; progress is checkpointed.
    Interrupted {
        /// Fresh points evaluated (and checkpointed) before stopping.
        completed: usize,
        /// Fresh points the full campaign still needs.
        remaining: usize,
    },
    /// The persistent cache failed.
    Cache(CacheError),
    /// The worker pool lost chunks before completing the sweep.
    Pool(PoolError),
    /// The reduction over the merged records failed.
    Dse(DseError),
    /// A point's record vanished between evaluation and merge — an
    /// engine-internal invariant violation, reported rather than assumed.
    MissingRecord {
        /// The memoization key with no record.
        key: u64,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptySpace => write!(f, "empty design space"),
            Self::EmptyProfiles => write!(f, "no profiles to evaluate"),
            Self::Interrupted {
                completed,
                remaining,
            } => write!(
                f,
                "sweep interrupted after {completed} fresh evaluations ({remaining} remaining, checkpointed)"
            ),
            Self::Cache(e) => write!(f, "sweep cache: {e}"),
            Self::Pool(e) => write!(f, "sweep pool: {e}"),
            Self::Dse(e) => write!(f, "sweep reduction: {e}"),
            Self::MissingRecord { key } => {
                write!(f, "no record for point key {key:#018x} at merge time")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Cache(e) => Some(e),
            Self::Pool(e) => Some(e),
            Self::Dse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheError> for SweepError {
    fn from(e: CacheError) -> Self {
        Self::Cache(e)
    }
}

impl From<PoolError> for SweepError {
    fn from(e: PoolError) -> Self {
        Self::Pool(e)
    }
}

impl From<DseError> for SweepError {
    fn from(e: DseError) -> Self {
        Self::Dse(e)
    }
}

/// A hook invoked with each point's memoization key just before the
/// point is evaluated. May panic — that is its purpose: chaos campaigns
/// inject deterministic worker kills through it, and the supervised pool
/// catches them. Production sweeps leave it unset.
pub type Failpoint = Arc<dyn Fn(u64) + Send + Sync>;

/// Digest of everything besides the point coordinates that determines an
/// evaluation: budget, evaluation options, and the profile set. The
/// model version is deliberately *not* folded in — it lives in the
/// cache-file header so a bump is detected and evicted rather than
/// silently shunted to a fresh file next to the stale one.
///
/// Public so other memoization layers (e.g. `ena-serve`'s shard store)
/// address the *same* cache files the sweep engine writes.
pub fn campaign_digest(explorer: &Explorer, profiles: &[KernelProfile]) -> u64 {
    let mut h = StableHasher::new();
    h.write_f64(explorer.budget.value());
    // EvalOptions has no stable-hash impl of its own; its Debug form
    // covers every field (miss fraction + optimization list).
    h.write_str(&format!("{:?}", explorer.options));
    profiles.stable_hash(&mut h);
    h.finish()
}

/// Content address of one design point within a campaign — the
/// memoization key used in memory and on disk. Shared with `ena-serve`
/// so a serving cache and a sweep cache are interchangeable.
pub fn point_key(campaign: u64, point: &ena_core::dse::ConfigPoint) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(campaign);
    h.write_u32(point.cus);
    h.write_f64(point.clock.value());
    h.write_f64(point.bandwidth.value());
    h.finish()
}

/// Evaluates one batch of keyed points as a single engine chunk:
/// sequentially, in the order given, through the same pure
/// [`Explorer::evaluate_point`] kernel the sweep pool uses. Results are
/// therefore byte-identical to any other evaluation of the same points.
pub fn evaluate_batch(
    explorer: &Explorer,
    batch: &[(u64, ena_core::dse::ConfigPoint)],
    profiles: &[KernelProfile],
) -> Vec<(u64, PointRecord)> {
    batch
        .iter()
        .map(|(key, point)| (*key, explorer.evaluate_point(*point, profiles)))
        .collect()
}

/// The memoizing sweep engine.
pub struct SweepEngine {
    explorer: Explorer,
    version: String,
    memo: BTreeMap<u64, PointRecord>,
    failpoint: Option<Failpoint>,
}

impl std::fmt::Debug for SweepEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepEngine")
            .field("explorer", &self.explorer)
            .field("version", &self.version)
            .field("memo_entries", &self.memo.len())
            .field("failpoint", &self.failpoint.is_some())
            .finish()
    }
}

impl SweepEngine {
    /// An engine evaluating through `explorer`, stamped with the current
    /// [`MODEL_VERSION`].
    pub fn new(explorer: Explorer) -> Self {
        Self {
            explorer,
            version: MODEL_VERSION.to_string(),
            memo: BTreeMap::new(),
            failpoint: None,
        }
    }

    /// Installs a [`Failpoint`] invoked before every fresh evaluation
    /// (chaos/test hook; production engines leave it unset).
    pub fn with_failpoint(mut self, failpoint: Failpoint) -> Self {
        self.failpoint = Some(failpoint);
        self
    }

    /// Overrides the model-version stamp (test hook for the eviction
    /// path; production code keeps the default).
    pub fn with_version(mut self, version: impl Into<String>) -> Self {
        self.version = version.into();
        self.memo.clear();
        self
    }

    /// The explorer this engine evaluates through.
    pub fn explorer(&self) -> &Explorer {
        &self.explorer
    }

    /// This engine's campaign digest over `profiles`; see the free
    /// function [`campaign_digest`].
    pub fn campaign_digest(&self, profiles: &[KernelProfile]) -> u64 {
        campaign_digest(&self.explorer, profiles)
    }

    /// Runs one sweep: resolves cache hits, evaluates the remainder on
    /// the work-stealing pool, merges in point order, and reduces.
    ///
    /// # Errors
    ///
    /// [`SweepError::Interrupted`] when `fresh_limit` stops the run early
    /// (already-evaluated points are checkpointed),
    /// [`SweepError::Cache`] / [`SweepError::Pool`] on infrastructure
    /// failures, [`SweepError::Dse`] when the reduction fails (e.g. no
    /// feasible point under the budget), and the empty-input variants.
    pub fn run(&mut self, spec: &SweepSpec) -> Result<SweepOutcome, SweepError> {
        let started = clock::RunClock::start();
        if spec.space.is_empty() {
            return Err(SweepError::EmptySpace);
        }
        if spec.profiles.is_empty() {
            return Err(SweepError::EmptyProfiles);
        }

        let campaign = self.campaign_digest(&spec.profiles);
        let mut disk = match &spec.cache {
            CacheMode::Memory => None,
            CacheMode::Disk(dir) => {
                let (cache, entries) =
                    DiskCache::open_with(spec.fs.clone(), spec.sync, dir, campaign, &self.version)?;
                for (key, record) in entries {
                    self.memo.insert(key, record);
                }
                Some(cache)
            }
        };

        let points = spec.space.points();
        let keys: Vec<u64> = points.iter().map(|p| point_key(campaign, p)).collect();

        let fresh: Vec<(u64, ena_core::dse::ConfigPoint)> = keys
            .iter()
            .zip(&points)
            .filter(|(key, _)| !self.memo.contains_key(*key))
            .map(|(key, point)| (*key, *point))
            .collect();
        let cache_hits = points.len() - fresh.len();
        let fresh_total = fresh.len();
        let scheduled = fresh_total.min(spec.fresh_limit.unwrap_or(fresh_total));
        let interrupted = scheduled < fresh_total;

        let chunk_points = spec.chunk_points.max(1);
        let mut chunks: Vec<Vec<(u64, ena_core::dse::ConfigPoint)>> = Vec::new();
        for slice in fresh[..scheduled].chunks(chunk_points) {
            chunks.push(slice.to_vec());
        }
        let n_chunks = chunks.len();

        // Keys per chunk, kept for quarantine reporting (the chunks
        // themselves move into the pool).
        let chunk_keys: Vec<Vec<u64>> = chunks
            .iter()
            .map(|c| c.iter().map(|(k, _)| *k).collect())
            .collect();

        let explorer = &self.explorer;
        let profiles = &spec.profiles;
        let failpoint = self.failpoint.clone();
        let mut io_error: Option<CacheError> = None;
        let (chunk_results, workers) = map_chunks_supervised(
            spec.jobs,
            chunks,
            &spec.retry,
            |(key, point)| {
                if let Some(fp) = &failpoint {
                    fp(*key);
                }
                (*key, explorer.evaluate_point(*point, profiles))
            },
            |_, results: &[(u64, PointRecord)]| {
                // Checkpoint every fresh record as it lands; an error here
                // aborts the run after the pool drains.
                if let Some(cache) = disk.as_mut() {
                    if io_error.is_none() {
                        for (key, record) in results {
                            if let Err(e) = cache.append(*key, record) {
                                io_error = Some(e);
                                break;
                            }
                        }
                    }
                }
            },
        )?;
        if let Some(e) = io_error {
            return Err(SweepError::Cache(e));
        }

        let mut quarantine = QuarantineReport::default();
        for verdict in chunk_results {
            match verdict {
                Ok(results) => {
                    for (key, record) in results {
                        self.memo.insert(key, record);
                    }
                }
                Err(q) => quarantine.entries.push(QuarantineEntry {
                    chunk_index: q.index,
                    keys: chunk_keys[q.index].clone(),
                    attempts: q.attempts,
                    message: q.message,
                    backoff_us: q.backoff_us,
                }),
            }
        }
        quarantine.entries.sort_by_key(|e| e.chunk_index);
        let quarantined_keys: BTreeSet<u64> = quarantine
            .entries
            .iter()
            .flat_map(|e| e.keys.iter().copied())
            .collect();

        if interrupted {
            return Err(SweepError::Interrupted {
                completed: scheduled,
                remaining: fresh_total - scheduled,
            });
        }

        // Merge in design-space point order: the only order the
        // reduction ever sees. Quarantined points are excluded (and
        // accounted for in the report); any *other* missing record is an
        // engine-internal invariant violation.
        let mut records = Vec::with_capacity(keys.len());
        for key in &keys {
            match self.memo.get(key) {
                Some(record) => records.push(record.clone()),
                None if quarantined_keys.contains(key) => {}
                None => return Err(SweepError::MissingRecord { key: *key }),
            }
        }

        let result = self.explorer.reduce(&records, &spec.profiles)?;
        let frontier = pareto_frontier(&self.explorer, &records, spec.profiles.len());
        let telemetry = Telemetry {
            total_points: points.len(),
            cache_hits,
            fresh_evals: scheduled - quarantine.points(),
            chunks: n_chunks,
            jobs: spec.jobs.max(1),
            elapsed: started.elapsed(),
            workers,
        };
        Ok(SweepOutcome {
            result,
            frontier,
            records,
            quarantine,
            telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_are_rejected() {
        let mut engine = SweepEngine::new(Explorer::default());
        let empty_space = DesignSpace {
            cu_counts: vec![],
            clocks: vec![],
            bandwidths: vec![],
        };
        assert!(matches!(
            engine.run(&SweepSpec::new(empty_space, vec![])),
            Err(SweepError::EmptySpace)
        ));
        assert!(matches!(
            engine.run(&SweepSpec::new(DesignSpace::coarse(), vec![])),
            Err(SweepError::EmptyProfiles)
        ));
    }

    #[test]
    fn telemetry_rates_are_sane() {
        let t = Telemetry {
            total_points: 100,
            cache_hits: 90,
            fresh_evals: 10,
            chunks: 2,
            jobs: 2,
            elapsed: Duration::from_millis(500),
            workers: vec![],
        };
        assert!((t.hit_rate() - 0.9).abs() < 1e-12);
        assert!((t.points_per_sec() - 200.0).abs() < 1e-9);
    }
}

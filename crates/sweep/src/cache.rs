//! Persistent content-addressed sweep cache with checkpoint/resume,
//! hardened for crash consistency.
//!
//! One campaign (a fixed budget, evaluation options, and profile set)
//! maps to one append-only file under the cache directory, named by the
//! campaign digest. Each line is one evaluated design point: its
//! content-addressed key, the point coordinates, every `f64` observable
//! as an IEEE-754 bit pattern in hex — so a record round-trips through
//! disk *bit-exactly* — and a CRC32 trailer over the rest of the line.
//!
//! The cache is generic over its record type through [`CacheRecord`]:
//! the node-level sweep persists [`PointRecord`]s, the multi-node fabric
//! sweeps persist their own records, and all share the same header,
//! CRC, eviction, and torn-tail machinery. Crash-consistency rests on
//! three mechanisms:
//!
//! - **Per-line CRC32.** A damaged line — torn tail, flipped bytes, even
//!   a flip that stays valid hex — fails its checksum and degrades the
//!   file to its intact prefix instead of silently decoding to a wrong
//!   number. Non-UTF-8 garbage is handled the same way: parsing is
//!   byte-level, so foreign bytes at the tail only cost the tail.
//! - **Explicit sync policy.** Every acknowledged append is flushed to
//!   the OS; under [`SyncPolicy::PerRecord`] (the default) it is also
//!   fsynced, so an `Ok` from [`DiskCache::append`] means the record
//!   survives power loss. Only acknowledged records are promised.
//! - **Atomic repair.** Evicting a stale file or truncating a torn tail
//!   never overwrites the live file in place: the repaired image is
//!   written to a temp file, fsynced, and atomically renamed over the
//!   original. A crash mid-repair leaves either the old file or the new
//!   one, never a half-written hybrid. Each rewrite bumps the
//!   `generation` counter in the header, so readers can tell a repaired
//!   lineage from the original.
//!
//! All filesystem access goes through [`Vfs`], so the whole layer can be
//! driven by `ena-testkit`'s seeded [`ChaosFs`](ena_testkit::chaos::ChaosFs)
//! fault injector in chaos campaigns.

use std::io::{self, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ena_core::dse::{ConfigPoint, PointEval, PointRecord};
use ena_model::units::{GigabytesPerSec, Megahertz};
use ena_testkit::chaos::{RealFs, Vfs, VfsFile};

/// Magic tag of the cache file format.
///
/// v2 added the per-line CRC32 trailer and the `generation` header
/// field; v1 files fail the header match and are evicted wholesale,
/// exactly like any other foreign file.
const FORMAT: &str = "ena-sweep-cache/2";

/// A record type the cache can persist: one line of space-separated
/// fields per record, with every `f64` encoded by bit pattern so the
/// round trip is bit-exact.
pub trait CacheRecord: Sized + Clone {
    /// Record-format tag folded into the file header, so caches holding
    /// different record types never deserialize into each other.
    const TAG: &'static str;

    /// Encodes the record as space-separated fields (no newline, no key,
    /// no checksum).
    fn encode(&self) -> String;

    /// Decodes a record from the field iterator positioned just past the
    /// key. Returns `None` for damaged input; the caller treats the line
    /// (and everything after it) as a torn tail.
    fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self>;
}

/// When appended records are pushed toward stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Flush to the OS after every record: a process crash loses
    /// nothing, but records the OS has not yet written back may be lost
    /// to a power failure.
    Flush,
    /// Flush *and* fsync after every record: an acknowledged append is
    /// durable across power loss. The default — sweeps checkpoint once
    /// per evaluated point, and evaluation dominates the fsync cost
    /// (see `BENCH_sweep.json` for the measured gap).
    #[default]
    PerRecord,
}

/// A cache I/O failure, tagged with the operation and the file or
/// directory involved.
///
/// Only genuine I/O faults reach this type: *corrupt content* (foreign
/// bytes, stale model stamps, torn lines, checksum failures) is not an
/// error — the damaged records are evicted and the affected points
/// simply re-evaluate, so a mangled cache degrades to a miss instead of
/// killing the sweep.
#[derive(Debug)]
pub struct CacheError {
    /// What the cache was doing when the fault hit.
    pub op: &'static str,
    /// The cache file or directory the operation touched.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl CacheError {
    fn new(op: &'static str, path: &Path, source: io::Error) -> Self {
        Self {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep cache {} on {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// On-disk cache of one campaign's evaluated records.
pub struct DiskCache<R: CacheRecord = PointRecord> {
    fs: Arc<dyn Vfs>,
    path: PathBuf,
    writer: Box<dyn VfsFile>,
    sync: SyncPolicy,
    campaign: u64,
    version: String,
    generation: u64,
    /// Set when an append fails: the file tail is then in an unknown
    /// state, and blindly appending after it could strand acknowledged
    /// records behind garbage (prefix degradation stops at the first
    /// damaged line). A poisoned handle refuses further appends; the
    /// next open repairs the tail.
    poisoned: bool,
    _record: PhantomData<fn() -> R>,
}

impl<R: CacheRecord> std::fmt::Debug for DiskCache<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCache")
            .field("path", &self.path)
            .field("sync", &self.sync)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

/// What `load` found on disk.
struct Loaded<R> {
    entries: Vec<(u64, R)>,
    generation: u64,
    /// True when the on-disk image needs a repair rewrite: damaged
    /// lines were dropped, the header was foreign, or the file did not
    /// exist yet.
    rewrite: bool,
}

impl<R: CacheRecord> DiskCache<R> {
    /// File name of a campaign's cache inside `dir`.
    pub fn file_name(campaign: u64) -> String {
        format!("campaign-{campaign:016x}.sweep")
    }

    /// Opens (creating if needed) the cache for `campaign` on the real
    /// filesystem with the default [`SyncPolicy`], returning the handle
    /// plus every intact record already on disk.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] for any I/O fault; corrupt *content*
    /// never errors (damaged records degrade to cache misses).
    pub fn open(
        dir: &Path,
        campaign: u64,
        version: &str,
    ) -> Result<(Self, Vec<(u64, R)>), CacheError> {
        Self::open_with(
            Arc::new(RealFs),
            SyncPolicy::default(),
            dir,
            campaign,
            version,
        )
    }

    /// Opens (creating if needed) the cache for `campaign` through an
    /// explicit filesystem and sync policy.
    ///
    /// A file with a foreign or damaged header — including a mismatched
    /// record tag or model-version stamp — is replaced by a fresh one
    /// with a bumped generation; a torn or corrupt tail is truncated to
    /// the intact prefix. Both repairs go through write-temp → fsync →
    /// atomic rename, never an in-place overwrite.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] for any I/O fault creating the
    /// directory, reading the file, rewriting it, or reopening it for
    /// append. Corrupt *content* never errors: damaged records degrade
    /// to cache misses.
    pub fn open_with(
        fs: Arc<dyn Vfs>,
        sync: SyncPolicy,
        dir: &Path,
        campaign: u64,
        version: &str,
    ) -> Result<(Self, Vec<(u64, R)>), CacheError> {
        fs.create_dir_all(dir)
            .map_err(|e| CacheError::new("create directory", dir, e))?;
        let path = dir.join(Self::file_name(campaign));

        let loaded = Self::load(fs.as_ref(), &path, campaign, version)?;
        if loaded.rewrite {
            Self::rewrite(
                fs.as_ref(),
                &path,
                campaign,
                version,
                loaded.generation,
                &loaded.entries,
            )?;
        }
        let writer = fs
            .open_append(&path)
            .map_err(|e| CacheError::new("open for append", &path, e))?;
        Ok((
            Self {
                fs,
                path,
                writer,
                sync,
                campaign,
                version: version.to_string(),
                generation: loaded.generation,
                poisoned: false,
                _record: PhantomData,
            },
            loaded.entries,
        ))
    }

    /// Replaces the on-disk image with a live snapshot of `entries`,
    /// through the same write-temp → fsync → atomic-rename machinery as
    /// crash repair: a kill at any instant leaves either the old image
    /// or the new one, never a hybrid. The generation is bumped so the
    /// snapshot lineage is visible to readers, and a handle poisoned by
    /// a failed append is healed (the snapshot rewrote the whole file
    /// from in-memory truth, so the damaged tail is gone).
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] for any I/O fault writing, syncing, or
    /// renaming the snapshot, or reopening the file for append. On
    /// error the live file is untouched and the handle is poisoned.
    pub fn snapshot(&mut self, entries: &[(u64, R)]) -> Result<(), CacheError> {
        let generation = self.generation + 1;
        let result = Self::rewrite(
            self.fs.as_ref(),
            &self.path,
            self.campaign,
            &self.version,
            generation,
            entries,
        )
        .and_then(|()| {
            self.fs
                .open_append(&self.path)
                .map_err(|e| CacheError::new("open for append", &self.path, e))
        });
        match result {
            Ok(writer) => {
                self.writer = writer;
                self.generation = generation;
                self.poisoned = false;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Reads and validates the on-disk image, degrading damage to the
    /// intact prefix (byte-level: non-UTF-8 garbage only costs the lines
    /// it touches).
    fn load(
        fs: &dyn Vfs,
        path: &Path,
        campaign: u64,
        version: &str,
    ) -> Result<Loaded<R>, CacheError> {
        let bytes = match fs.read_bytes(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // First open of this campaign: fresh file, generation 0.
                return Ok(Loaded {
                    entries: Vec::new(),
                    generation: 0,
                    rewrite: true,
                });
            }
            Err(e) => return Err(CacheError::new("read", path, e)),
        };

        // Split into newline-terminated lines; a trailing fragment with
        // no newline is a torn final line and is dropped up front.
        let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        let mut damaged = false;
        match lines.pop() {
            Some(last) if last.is_empty() => {}
            Some(_torn_fragment) => damaged = true,
            None => {}
        }
        let mut lines = lines.into_iter();

        let header = lines
            .next()
            .and_then(|raw| std::str::from_utf8(raw).ok())
            .and_then(|line| parse_header::<R>(line, campaign, version));
        let Some(generation) = header else {
            // Foreign bytes, stale stamp, or wrong record tag: evict
            // wholesale under a bumped generation. The old generation is
            // unreadable, so restart the lineage at 1 to distinguish the
            // replacement from a fresh generation-0 file.
            return Ok(Loaded {
                entries: Vec::new(),
                generation: 1,
                rewrite: true,
            });
        };

        let mut entries = Vec::new();
        for raw in lines {
            let parsed = std::str::from_utf8(raw).ok().and_then(parse_entry::<R>);
            match parsed {
                Some(entry) => entries.push(entry),
                // Torn or corrupt line: drop it and everything after —
                // with an append-only writer nothing valid follows
                // damage, and the CRC keeps a half-line from decoding.
                None => {
                    damaged = true;
                    break;
                }
            }
        }

        Ok(Loaded {
            entries,
            generation: if damaged { generation + 1 } else { generation },
            rewrite: damaged,
        })
    }

    /// Writes a repaired image (header + intact entries) to a temp file,
    /// fsyncs it, and atomically renames it over the live file.
    fn rewrite(
        fs: &dyn Vfs,
        path: &Path,
        campaign: u64,
        version: &str,
        generation: u64,
        entries: &[(u64, R)],
    ) -> Result<(), CacheError> {
        let tmp = path.with_extension("sweep.tmp");
        let mut file = fs
            .create(&tmp)
            .map_err(|e| CacheError::new("create repair temp", &tmp, e))?;
        let image: String = std::iter::once(header_line::<R>(campaign, version, generation))
            .chain(entries.iter().map(|(k, r)| entry_line(*k, r)))
            .map(|l| l + "\n")
            .collect();
        file.write_all(image.as_bytes())
            .map_err(|e| CacheError::new("write repair temp", &tmp, e))?;
        file.flush()
            .map_err(|e| CacheError::new("flush repair temp", &tmp, e))?;
        file.sync_all()
            .map_err(|e| CacheError::new("sync repair temp", &tmp, e))?;
        drop(file);
        fs.rename(&tmp, path)
            .map_err(|e| CacheError::new("rename repair temp", path, e))?;
        // Repair is complete and durable; clean up nothing: the rename
        // consumed the temp file.
        Ok(())
    }

    /// Appends one evaluated record and pushes it toward stable storage
    /// per the [`SyncPolicy`] (each record is a checkpoint).
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] for any I/O fault during the append; the
    /// record is only *acknowledged* — promised to survive — when this
    /// returns `Ok`. After a failed append the handle is poisoned (the
    /// file tail may hold a partial line) and every further append
    /// fails; reopening the cache repairs the tail.
    pub fn append(&mut self, key: u64, record: &R) -> Result<(), CacheError> {
        if self.poisoned {
            return Err(CacheError::new(
                "append after failed append",
                &self.path,
                io::Error::other("cache handle poisoned; reopen to repair the tail"),
            ));
        }
        let result = self.append_inner(key, record);
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    fn append_inner(&mut self, key: u64, record: &R) -> Result<(), CacheError> {
        let line = entry_line(key, record) + "\n";
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| CacheError::new("append", &self.path, e))?;
        self.writer
            .flush()
            .map_err(|e| CacheError::new("flush append", &self.path, e))?;
        if self.sync == SyncPolicy::PerRecord {
            self.writer
                .sync_all()
                .map_err(|e| CacheError::new("sync append", &self.path, e))?;
        }
        Ok(())
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Generation counter from the header: 0 for a fresh file, bumped by
    /// every eviction or torn-tail repair since.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Removes the campaign's cache file through the cache's filesystem.
    ///
    /// A missing file is not an error (nothing to remove); any other
    /// fault is surfaced — deletion is part of the durability contract,
    /// not a best-effort cleanup.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] for any I/O fault other than the file
    /// already being gone.
    pub fn remove(self) -> Result<(), CacheError> {
        match self.fs.remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CacheError::new("remove", &self.path, e)),
        }
    }
}

/// Verification report over one cache file (see [`verify_file`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Keys of every intact record, in file order.
    pub keys: Vec<u64>,
    /// Generation counter from the header.
    pub generation: u64,
    /// True when a torn or corrupt tail was dropped (legal after a
    /// crash: the tail was never acknowledged).
    pub torn_tail: bool,
}

/// Why [`verify_file`] rejected a cache file. Every variant names the
/// offending path: verification failures are operator-facing, and a
/// message that cannot say *which* file failed is useless in a cache
/// directory holding one file per campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The file could not be read at all.
    Unreadable {
        /// The file that could not be read.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        error: String,
    },
    /// The header line is missing or does not parse for this record
    /// type, campaign, and version.
    BadHeader {
        /// The file whose header was rejected.
        path: PathBuf,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unreadable { path, error } => {
                write!(f, "cache file {} unreadable: {error}", path.display())
            }
            Self::BadHeader { path } => write!(
                f,
                "cache file {} header is missing or foreign",
                path.display()
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Strictly verifies a cache file on the real filesystem: the header
/// must parse for this record type and every line up to an optional torn
/// tail must pass its CRC. Used by chaos campaigns to assert that a
/// faulted run can never leave an unparseable file behind.
///
/// # Errors
///
/// [`VerifyError::Unreadable`] when the file cannot be read,
/// [`VerifyError::BadHeader`] when the header is missing or foreign.
/// Damage *after* the header is not an error — it is reported as
/// `torn_tail`, the legal crash residue.
pub fn verify_file<R: CacheRecord>(
    path: &Path,
    campaign: u64,
    version: &str,
) -> Result<VerifyReport, VerifyError> {
    let bytes = RealFs
        .read_bytes(path)
        .map_err(|e| VerifyError::Unreadable {
            path: path.to_path_buf(),
            error: e.to_string(),
        })?;
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    let mut torn_tail = false;
    match lines.pop() {
        Some(last) if last.is_empty() => {}
        Some(_torn_fragment) => torn_tail = true,
        None => {}
    }
    let mut lines = lines.into_iter();
    let generation = lines
        .next()
        .and_then(|raw| std::str::from_utf8(raw).ok())
        .and_then(|line| parse_header::<R>(line, campaign, version))
        .ok_or_else(|| VerifyError::BadHeader {
            path: path.to_path_buf(),
        })?;
    let mut keys = Vec::new();
    for raw in lines {
        match std::str::from_utf8(raw).ok().and_then(parse_entry::<R>) {
            Some((key, _)) => keys.push(key),
            None => {
                torn_tail = true;
                break;
            }
        }
    }
    Ok(VerifyReport {
        keys,
        generation,
        torn_tail,
    })
}

/// What the header of a cache file declares, extracted without knowing
/// the record type, campaign, or version in advance (see
/// [`read_file_info`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheFileInfo {
    /// Record-format tag (e.g. `dse-point/1`).
    pub record_tag: String,
    /// Model-version stamp the file was written under.
    pub model: String,
    /// Campaign digest.
    pub campaign: u64,
    /// Generation counter.
    pub generation: u64,
}

/// Reads just the header of a cache file and returns what it declares,
/// so tooling (e.g. `ena cache verify`) can dispatch to the right
/// [`CacheRecord`] type and then verify the file against its *own*
/// stamps rather than externally supplied ones.
///
/// # Errors
///
/// [`VerifyError::Unreadable`] when the file cannot be read,
/// [`VerifyError::BadHeader`] when the first line is not a well-formed
/// v2 cache header.
pub fn read_file_info(path: &Path) -> Result<CacheFileInfo, VerifyError> {
    let bytes = RealFs
        .read_bytes(path)
        .map_err(|e| VerifyError::Unreadable {
            path: path.to_path_buf(),
            error: e.to_string(),
        })?;
    let bad_header = || VerifyError::BadHeader {
        path: path.to_path_buf(),
    };
    let header = bytes
        .split(|&b| b == b'\n')
        .next()
        .and_then(|raw| std::str::from_utf8(raw).ok())
        .ok_or_else(bad_header)?;
    let mut fields = header.split(' ');
    if fields.next() != Some(FORMAT) {
        return Err(bad_header());
    }
    let mut tagged = |tag: &str| -> Option<String> {
        fields
            .next()?
            .strip_prefix(tag)
            .filter(|v| !v.is_empty())
            .map(str::to_string)
    };
    let record_tag = tagged("record=").ok_or_else(bad_header)?;
    let model = tagged("model=").ok_or_else(bad_header)?;
    let campaign = tagged("campaign=")
        .as_deref()
        .and_then(hex_field)
        .ok_or_else(bad_header)?;
    let generation = tagged("generation=")
        .as_deref()
        .and_then(hex_field)
        .ok_or_else(bad_header)?;
    if fields.next().is_some() {
        return Err(bad_header());
    }
    Ok(CacheFileInfo {
        record_tag,
        model,
        campaign,
        generation,
    })
}

/// Parses one fixed-width hex `u64` field (16 digits exactly).
///
/// Every `u64` and `f64`-bit-pattern field in the cache format is
/// written `{:016x}`, so a shorter field can only be a truncated line —
/// a plain `from_str_radix` would happily decode it to a *different*
/// number, turning a torn tail into silent corruption. Record `decode`
/// implementations should parse hex fields through this.
pub fn hex_field(field: &str) -> Option<u64> {
    if field.len() != 16 {
        return None;
    }
    u64::from_str_radix(field, 16).ok()
}

/// Parses one fixed-width hex `u32` field (8 digits exactly), the shape
/// of the CRC32 trailer.
fn hex_field_u32(field: &str) -> Option<u32> {
    if field.len() != 8 {
        return None;
    }
    u32::from_str_radix(field, 16).ok()
}

/// CRC32 (IEEE 802.3, reflected 0xEDB88320 polynomial) lookup table,
/// built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut c = i;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i as usize] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the per-line checksum of the cache format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        let index = (c ^ u32::from(b)) & 0xFF;
        c = CRC_TABLE[index as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

fn header_line<R: CacheRecord>(campaign: u64, version: &str, generation: u64) -> String {
    format!(
        "{FORMAT} record={} model={version} campaign={campaign:016x} generation={generation:016x}",
        R::TAG
    )
}

fn parse_header<R: CacheRecord>(line: &str, campaign: u64, version: &str) -> Option<u64> {
    let prefix = format!(
        "{FORMAT} record={} model={version} campaign={campaign:016x} generation=",
        R::TAG
    );
    hex_field(line.strip_prefix(&prefix)?)
}

fn entry_line<R: CacheRecord>(key: u64, record: &R) -> String {
    let body = format!("{key:016x} {}", record.encode());
    let crc = crc32(body.as_bytes());
    format!("{body} {crc:08x}")
}

fn parse_entry<R: CacheRecord>(line: &str) -> Option<(u64, R)> {
    let (body, crc_field) = line.rsplit_once(' ')?;
    if hex_field_u32(crc_field)? != crc32(body.as_bytes()) {
        return None;
    }
    let mut fields = body.split(' ');
    let key = hex_field(fields.next()?)?;
    let record = R::decode(&mut fields)?;
    if fields.next().is_some() {
        return None;
    }
    Some((key, record))
}

impl CacheRecord for PointRecord {
    const TAG: &'static str = "dse-point/1";

    fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut line = format!(
            "{} {:016x} {:016x} {}",
            self.point.cus,
            self.point.clock.value().to_bits(),
            self.point.bandwidth.value().to_bits(),
            self.evals.len(),
        );
        for e in &self.evals {
            // fmt::Write to a String is infallible; discard the Ok.
            let _ = write!(
                line,
                " {:016x} {:016x} {:016x}",
                e.throughput.to_bits(),
                e.package_power.to_bits(),
                e.peak_dram_c.to_bits(),
            );
        }
        line
    }

    fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self> {
        let cus: u32 = fields.next()?.parse().ok()?;
        let clock = f64::from_bits(hex_field(fields.next()?)?);
        let bandwidth = f64::from_bits(hex_field(fields.next()?)?);
        let n: usize = fields.next()?.parse().ok()?;
        let mut evals = Vec::with_capacity(n);
        for _ in 0..n {
            let mut f = || Some(f64::from_bits(hex_field(fields.next()?)?));
            evals.push(PointEval {
                throughput: f()?,
                package_power: f()?,
                peak_dram_c: f()?,
            });
        }
        Some(PointRecord {
            point: ConfigPoint {
                cus,
                clock: Megahertz::new(clock),
                bandwidth: GigabytesPerSec::new(bandwidth),
            },
            evals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn record(seed: f64) -> PointRecord {
        PointRecord {
            point: ConfigPoint {
                cus: 320,
                clock: Megahertz::new(1000.0 + seed),
                bandwidth: GigabytesPerSec::new(3000.0),
            },
            evals: vec![
                PointEval {
                    throughput: 1234.5678 + seed,
                    package_power: 158.999,
                    peak_dram_c: 71.25,
                },
                PointEval {
                    throughput: 0.1 + seed,
                    package_power: 140.0,
                    peak_dram_c: 68.0,
                },
            ],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ena-sweep-cache-test-{name}"));
        match fs::remove_dir_all(&dir) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => panic!("cannot clear scratch dir {}: {e}", dir.display()),
        }
        dir
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let dir = tmp("roundtrip");
        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty());
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(0.125)).unwrap();
        drop(cache);

        let (_, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0)), (22, record(0.125))]);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC32 check: crc32(b"123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn mismatched_version_stamp_evicts_the_file() {
        let dir = tmp("stamp");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        drop(cache);

        let (cache, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v2").unwrap();
        assert!(loaded.is_empty(), "stale entries must be evicted");
        assert_eq!(cache.generation(), 1, "eviction must bump the generation");
        drop(cache);
        // And the eviction is durable: reopening under the old stamp
        // finds nothing either.
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn mismatched_record_tag_evicts_the_file() {
        #[derive(Clone, Debug, PartialEq)]
        struct Other(u64);
        impl CacheRecord for Other {
            const TAG: &'static str = "other/1";
            fn encode(&self) -> String {
                format!("{:016x}", self.0)
            }
            fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self> {
                Some(Other(u64::from_str_radix(fields.next()?, 16).ok()?))
            }
        }

        let dir = tmp("tag");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        drop(cache);

        // Same campaign digest and version, different record type: the
        // header tag differs, so the foreign file is evicted wholesale.
        let (_, loaded) = DiskCache::<Other>::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty(), "foreign record tag must evict");
        let (mut cache, _) = DiskCache::<Other>::open(&dir, 7, "v1").unwrap();
        cache.append(5, &Other(42)).unwrap();
        drop(cache);
        let (_, loaded) = DiskCache::<Other>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(5, Other(42))]);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal_and_bumps_the_generation() {
        let dir = tmp("torn");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        let path = cache.path().to_path_buf();
        assert_eq!(cache.generation(), 0);
        drop(cache);

        // Simulate a kill mid-append: truncate the last line in half.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 20]).unwrap();

        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0))]);
        assert_eq!(cache.generation(), 1, "repair must bump the generation");
        // The repaired file keeps accepting appends.
        cache.append(22, &record(1.0)).unwrap();
        drop(cache);
        let (cache, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(cache.generation(), 1, "clean reopen keeps the generation");
    }

    #[test]
    fn valid_hex_bit_flip_is_caught_by_the_crc() {
        let dir = tmp("bitflip");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        // Flip one hex digit inside the *last* record's payload. The
        // line still lexes as valid fixed-width hex fields — before the
        // CRC trailer this decoded to a silently wrong number.
        let mut text = fs::read_to_string(&path).unwrap();
        let flip_at = text.len() - 15; // inside the final f64 field, before the CRC
        let original = text.as_bytes()[flip_at];
        let replacement = if original == b'3' { '4' } else { '3' };
        text.replace_range(flip_at..flip_at + 1, &replacement.to_string());
        fs::write(&path, &text).unwrap();

        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(
            loaded,
            vec![(11, record(0.0))],
            "the flipped record must fail its CRC and degrade to a miss"
        );
    }

    #[test]
    fn garbage_in_the_middle_degrades_to_a_shorter_prefix() {
        let dir = tmp("midbytes");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        cache.append(33, &record(2.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        // Flip bytes in the middle record (line 3 of the file): the
        // intact prefix must load, the damage must cost points, not the
        // process.
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == 2 {
                    "zz not-hex 1 &&& garbage".to_string()
                } else {
                    (*l).to_string()
                }
            })
            .collect();
        fs::write(&path, mangled.join("\n") + "\n").unwrap();

        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0))], "intact prefix survives");
        // The repaired file keeps accepting appends.
        cache.append(22, &record(1.0)).unwrap();
        drop(cache);
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded.len(), 2);
    }

    #[test]
    fn non_utf8_tail_costs_only_the_tail() {
        let dir = tmp("nonutf8");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        // A torn write can leave raw garbage — including invalid UTF-8 —
        // after the acknowledged records. Parsing is byte-level, so the
        // acknowledged prefix must survive (v1 evicted the whole file
        // here, losing acknowledged records).
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xFF, 0xFE, 0x00, 0xC3]);
        fs::write(&path, &bytes).unwrap();

        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(
            loaded,
            vec![(11, record(0.0))],
            "acknowledged records must survive trailing garbage"
        );
        cache.append(22, &record(1.0)).unwrap();
        drop(cache);
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0)), (22, record(1.0))]);
    }

    #[test]
    fn repair_is_atomic_under_injected_rename_failure() {
        use ena_testkit::chaos::{ChaosConfig, ChaosFs};

        let dir = tmp("atomic");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);
        // Tear the tail so reopening needs a repair.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 20]).unwrap();

        // Fail *every* operation: the repair cannot even start, and the
        // live file must be untouched (no in-place overwrite).
        let before = fs::read(&path).unwrap();
        let chaos = Arc::new(ChaosFs::new(
            3,
            ChaosConfig {
                fail_permille: 1000,
                short_permille: 0,
                torn_permille: 0,
            },
        ));
        let err = DiskCache::<PointRecord>::open_with(chaos, SyncPolicy::PerRecord, &dir, 7, "v1")
            .unwrap_err();
        assert!(err.to_string().contains("chaos"), "{err}");
        assert_eq!(
            fs::read(&path).unwrap(),
            before,
            "a failed repair must leave the live file byte-identical"
        );

        // And a clean retry on the real filesystem recovers the prefix.
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0))]);
    }

    #[test]
    fn acknowledged_appends_survive_chaos() {
        use ena_testkit::chaos::{ChaosConfig, ChaosFs};

        let dir = tmp("chaos-ack");
        // Drive many appends through a moderately hostile filesystem.
        // Every append that returns Ok is acknowledged; after the dust
        // settles, a clean reopen must see every acknowledged record.
        let mut acknowledged: Vec<u64> = Vec::new();
        for round in 0..8u64 {
            let chaos = Arc::new(ChaosFs::new(round, ChaosConfig::default_rates()));
            let opened =
                DiskCache::<PointRecord>::open_with(chaos, SyncPolicy::PerRecord, &dir, 7, "v1");
            let Ok((mut cache, loaded)) = opened else {
                continue; // injected open failure: nothing acknowledged
            };
            let loaded_keys: Vec<u64> = loaded.iter().map(|(k, _)| *k).collect();
            for key in &acknowledged {
                assert!(
                    loaded_keys.contains(key),
                    "round {round}: acknowledged record {key} lost"
                );
            }
            for i in 0..32u64 {
                let key = round * 100 + i;
                if cache.append(key, &record(i as f64)).is_ok() {
                    acknowledged.push(key);
                }
            }
        }
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        let keys: Vec<u64> = loaded.iter().map(|(k, _)| *k).collect();
        for key in &acknowledged {
            assert!(keys.contains(key), "acknowledged record {key} lost");
        }
        assert!(
            !acknowledged.is_empty(),
            "chaos must let some appends through"
        );
    }

    #[test]
    fn verify_file_accepts_clean_and_torn_rejects_foreign() {
        let dir = tmp("verify");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        let report = verify_file::<PointRecord>(&path, 7, "v1").unwrap();
        assert_eq!(report.keys, vec![11, 22]);
        assert!(!report.torn_tail);

        // Torn tail: still verifies, flagged as torn.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 20]).unwrap();
        let report = verify_file::<PointRecord>(&path, 7, "v1").unwrap();
        assert_eq!(report.keys, vec![11]);
        assert!(report.torn_tail);

        // Foreign header: rejected, naming the file.
        fs::write(&path, "not a cache file\n").unwrap();
        assert_eq!(
            verify_file::<PointRecord>(&path, 7, "v1").unwrap_err(),
            VerifyError::BadHeader { path: path.clone() }
        );
    }

    #[test]
    fn verify_errors_name_the_offending_path() {
        let dir = tmp("verify-path");
        let missing = dir.join("campaign-0000000000000000.sweep");
        let err = verify_file::<PointRecord>(&missing, 0, "v1").unwrap_err();
        assert!(
            err.to_string().contains(&missing.display().to_string()),
            "{err}"
        );
        fs::create_dir_all(&dir).unwrap();
        let foreign = dir.join("foreign.sweep");
        fs::write(&foreign, "junk\n").unwrap();
        let err = verify_file::<PointRecord>(&foreign, 0, "v1").unwrap_err();
        assert!(
            err.to_string().contains(&foreign.display().to_string()),
            "{err}"
        );
        let err = read_file_info(&foreign).unwrap_err();
        assert!(
            err.to_string().contains(&foreign.display().to_string()),
            "{err}"
        );
    }

    #[test]
    fn read_file_info_reports_the_header_stamps() {
        let dir = tmp("info");
        let (mut cache, _) = DiskCache::open(&dir, 0xABCD, "v7").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        let info = read_file_info(&path).unwrap();
        assert_eq!(
            info,
            CacheFileInfo {
                record_tag: "dse-point/1".into(),
                model: "v7".into(),
                campaign: 0xABCD,
                generation: 0,
            }
        );
    }

    #[test]
    fn snapshot_rewrites_atomically_and_heals_poison() {
        let dir = tmp("snapshot");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        let path = cache.path().to_path_buf();

        // Snapshot a *different* entry set (e.g. the in-memory shard
        // store truth): the image is replaced wholesale, bit-exactly,
        // under a bumped generation.
        let entries = vec![(33, record(2.0)), (44, record(3.0))];
        cache.snapshot(&entries).unwrap();
        assert_eq!(cache.generation(), 1);
        // The handle keeps accepting appends after the snapshot.
        cache.append(55, &record(4.0)).unwrap();
        drop(cache);

        let (cache, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(
            loaded,
            vec![(33, record(2.0)), (44, record(3.0)), (55, record(4.0))]
        );
        assert_eq!(cache.generation(), 1);
        drop(cache);

        let report = verify_file::<PointRecord>(&path, 7, "v1").unwrap();
        assert_eq!(report.keys, vec![33, 44, 55]);
        assert!(!report.torn_tail);
    }

    #[test]
    fn failed_snapshot_leaves_the_live_file_untouched() {
        let dir = tmp("snapshot-fail");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);
        let before = fs::read(&path).unwrap();

        // Reopen through a filesystem that fails temp-file creation: the
        // snapshot must error without corrupting the live image, and
        // poison the handle.
        #[derive(Debug)]
        struct NoCreate;
        impl Vfs for NoCreate {
            fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
                RealFs.create_dir_all(dir)
            }
            fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
                RealFs.read_bytes(path)
            }
            fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
                RealFs.open_append(path)
            }
            fn create(&self, _path: &Path) -> io::Result<Box<dyn VfsFile>> {
                Err(io::Error::other("injected create failure"))
            }
            fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
                RealFs.rename(from, to)
            }
            fn remove_file(&self, path: &Path) -> io::Result<()> {
                RealFs.remove_file(path)
            }
        }
        let (mut cache, _) = DiskCache::<PointRecord>::open_with(
            Arc::new(NoCreate),
            SyncPolicy::PerRecord,
            &dir,
            7,
            "v1",
        )
        .unwrap();
        let err = cache.snapshot(&[(99, record(9.0))]).unwrap_err();
        assert!(err.to_string().contains("injected create failure"), "{err}");
        assert_eq!(fs::read(&path).unwrap(), before);
        // Poisoned until the next open.
        assert!(cache.append(22, &record(1.0)).is_err());
    }

    #[test]
    fn error_sources_chain_to_the_underlying_io_error() {
        use std::error::Error as _;

        let cache_err = CacheError {
            op: "append",
            path: PathBuf::from("/tmp/x.sweep"),
            source: io::Error::other("disk on fire"),
        };
        assert!(cache_err.source().is_some());
        assert!(
            cache_err.to_string().contains("/tmp/x.sweep"),
            "{cache_err}"
        );

        let sweep_err = crate::engine::SweepError::Cache(cache_err);
        let chained = sweep_err.source().expect("cache source");
        assert!(chained.to_string().contains("/tmp/x.sweep"), "{chained}");
        assert!(crate::engine::SweepError::EmptySpace.source().is_none());

        let verify_err = VerifyError::Unreadable {
            path: PathBuf::from("/tmp/y.sweep"),
            error: "gone".into(),
        };
        // VerifyError carries a rendered message, not a live source.
        assert!(verify_err.source().is_none());
        assert!(
            verify_err.to_string().contains("/tmp/y.sweep"),
            "{verify_err}"
        );
    }

    #[test]
    fn remove_is_idempotent_and_checked() {
        let dir = tmp("remove");
        let (cache, _) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        let path = cache.path().to_path_buf();
        cache.remove().unwrap();
        assert!(!path.exists());
        // Removing an already-gone file is fine.
        let (cache, _) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        fs::remove_file(&path).unwrap();
        cache.remove().unwrap();
    }

    #[test]
    fn different_campaigns_use_different_files() {
        assert_ne!(
            DiskCache::<PointRecord>::file_name(1),
            DiskCache::<PointRecord>::file_name(2)
        );
    }
}

//! Persistent content-addressed sweep cache with checkpoint/resume.
//!
//! One campaign (a fixed budget, evaluation options, and profile set)
//! maps to one append-only file under the cache directory, named by the
//! campaign digest. Each line is one evaluated design point: its
//! content-addressed key, the point coordinates, and every `f64`
//! observable as an IEEE-754 bit pattern in hex — so a record
//! round-trips through disk *bit-exactly*, which is what lets a resumed
//! sweep reproduce an uninterrupted one byte-for-byte.
//!
//! The cache is generic over its record type through [`CacheRecord`]:
//! the node-level sweep persists [`PointRecord`]s, the multi-node fabric
//! sweep persists its own records, and both share the same header,
//! eviction, and torn-tail machinery. The header line carries the record
//! tag and the model-version stamp. A file whose stamp does not match
//! the running binary is evicted wholesale on open: numbers computed by
//! an older model must never leak into fresh results. A truncated
//! trailing line (a sweep killed mid-append) is ignored, so a crash
//! costs at most one point.

use std::fs;
use std::io::{self, BufWriter, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use ena_core::dse::{ConfigPoint, PointEval, PointRecord};
use ena_model::units::{GigabytesPerSec, Megahertz};

/// Magic tag of the cache file format.
const FORMAT: &str = "ena-sweep-cache/1";

/// A record type the cache can persist: one line of space-separated
/// fields per record, with every `f64` encoded by bit pattern so the
/// round trip is bit-exact.
pub trait CacheRecord: Sized + Clone {
    /// Record-format tag folded into the file header, so caches holding
    /// different record types never deserialize into each other.
    const TAG: &'static str;

    /// Encodes the record as space-separated fields (no newline, no key).
    fn encode(&self) -> String;

    /// Decodes a record from the field iterator positioned just past the
    /// key. Returns `None` for damaged input; the caller treats the line
    /// (and everything after it) as a torn tail.
    fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self>;
}

/// A cache I/O failure, tagged with the file or directory involved.
///
/// Only genuine I/O faults reach this type: *corrupt content* (foreign
/// bytes, stale model stamps, torn lines) is not an error — the damaged
/// records are evicted and the affected points simply re-evaluate, so a
/// mangled cache degrades to a miss instead of killing the sweep.
#[derive(Debug)]
pub struct CacheError {
    /// The cache file or directory the operation touched.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl CacheError {
    fn new(path: &Path, source: io::Error) -> Self {
        Self {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep cache I/O on {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// On-disk cache of one campaign's evaluated records.
#[derive(Debug)]
pub struct DiskCache<R: CacheRecord = PointRecord> {
    path: PathBuf,
    writer: BufWriter<fs::File>,
    _record: PhantomData<fn() -> R>,
}

impl<R: CacheRecord> DiskCache<R> {
    /// File name of a campaign's cache inside `dir`.
    pub fn file_name(campaign: u64) -> String {
        format!("campaign-{campaign:016x}.sweep")
    }

    /// Opens (creating if needed) the cache for `campaign`, returning the
    /// handle plus every intact record already on disk.
    ///
    /// A file with a foreign or damaged header — including a mismatched
    /// record tag or model-version stamp — is deleted and recreated
    /// empty.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] for any I/O fault creating the directory
    /// or file. Corrupt *content* never errors: damaged records degrade
    /// to cache misses.
    pub fn open(
        dir: &Path,
        campaign: u64,
        version: &str,
    ) -> Result<(Self, Vec<(u64, R)>), CacheError> {
        fs::create_dir_all(dir).map_err(|e| CacheError::new(dir, e))?;
        let path = dir.join(Self::file_name(campaign));

        let mut entries: Vec<(u64, R)> = Vec::new();
        let mut valid = false;
        if let Ok(text) = fs::read_to_string(&path) {
            let mut lines = text.lines();
            if lines.next() == Some(header_line::<R>(campaign, version).as_str()) {
                valid = true;
                for line in lines {
                    match parse_entry::<R>(line) {
                        Some(entry) => entries.push(entry),
                        // Torn tail from an interrupted append: drop the
                        // rest, the points will simply be re-evaluated.
                        None => break,
                    }
                }
            }
        }

        if !valid {
            // Stale stamp or foreign bytes: evict, then start fresh.
            let _ = fs::remove_file(&path);
            let mut writer = BufWriter::new(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| CacheError::new(&path, e))?,
            );
            writeln!(writer, "{}", header_line::<R>(campaign, version))
                .map_err(|e| CacheError::new(&path, e))?;
            writer.flush().map_err(|e| CacheError::new(&path, e))?;
            return Ok((
                Self {
                    path,
                    writer,
                    _record: PhantomData,
                },
                Vec::new(),
            ));
        }

        // Re-append only the intact prefix if damaged lines were dropped.
        let intact: String = std::iter::once(header_line::<R>(campaign, version))
            .chain(entries.iter().map(|(k, r)| entry_line(*k, r)))
            .map(|l| l + "\n")
            .collect();
        fs::write(&path, &intact).map_err(|e| CacheError::new(&path, e))?;
        let writer = BufWriter::new(
            fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(|e| CacheError::new(&path, e))?,
        );
        Ok((
            Self {
                path,
                writer,
                _record: PhantomData,
            },
            entries,
        ))
    }

    /// Appends one evaluated record and flushes it to disk (each record
    /// is a checkpoint).
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] for any I/O fault during the append.
    pub fn append(&mut self, key: u64, record: &R) -> Result<(), CacheError> {
        writeln!(self.writer, "{}", entry_line(key, record))
            .map_err(|e| CacheError::new(&self.path, e))?;
        self.writer
            .flush()
            .map_err(|e| CacheError::new(&self.path, e))
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses one fixed-width hex `u64` field (16 digits exactly).
///
/// Every `u64` and `f64`-bit-pattern field in the cache format is
/// written `{:016x}`, so a shorter field can only be a truncated line —
/// a plain `from_str_radix` would happily decode it to a *different*
/// number, turning a torn tail into silent corruption. Record `decode`
/// implementations should parse hex fields through this.
pub fn hex_field(field: &str) -> Option<u64> {
    if field.len() != 16 {
        return None;
    }
    u64::from_str_radix(field, 16).ok()
}

fn header_line<R: CacheRecord>(campaign: u64, version: &str) -> String {
    format!(
        "{FORMAT} record={} model={version} campaign={campaign:016x}",
        R::TAG
    )
}

fn entry_line<R: CacheRecord>(key: u64, record: &R) -> String {
    format!("{key:016x} {}", record.encode())
}

fn parse_entry<R: CacheRecord>(line: &str) -> Option<(u64, R)> {
    let mut fields = line.split(' ');
    let key = hex_field(fields.next()?)?;
    let record = R::decode(&mut fields)?;
    if fields.next().is_some() {
        return None;
    }
    Some((key, record))
}

impl CacheRecord for PointRecord {
    const TAG: &'static str = "dse-point/1";

    fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut line = format!(
            "{} {:016x} {:016x} {}",
            self.point.cus,
            self.point.clock.value().to_bits(),
            self.point.bandwidth.value().to_bits(),
            self.evals.len(),
        );
        for e in &self.evals {
            // fmt::Write to a String is infallible; discard the Ok.
            let _ = write!(
                line,
                " {:016x} {:016x} {:016x}",
                e.throughput.to_bits(),
                e.package_power.to_bits(),
                e.peak_dram_c.to_bits(),
            );
        }
        line
    }

    fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self> {
        let cus: u32 = fields.next()?.parse().ok()?;
        let clock = f64::from_bits(hex_field(fields.next()?)?);
        let bandwidth = f64::from_bits(hex_field(fields.next()?)?);
        let n: usize = fields.next()?.parse().ok()?;
        let mut evals = Vec::with_capacity(n);
        for _ in 0..n {
            let mut f = || Some(f64::from_bits(hex_field(fields.next()?)?));
            evals.push(PointEval {
                throughput: f()?,
                package_power: f()?,
                peak_dram_c: f()?,
            });
        }
        Some(PointRecord {
            point: ConfigPoint {
                cus,
                clock: Megahertz::new(clock),
                bandwidth: GigabytesPerSec::new(bandwidth),
            },
            evals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: f64) -> PointRecord {
        PointRecord {
            point: ConfigPoint {
                cus: 320,
                clock: Megahertz::new(1000.0 + seed),
                bandwidth: GigabytesPerSec::new(3000.0),
            },
            evals: vec![
                PointEval {
                    throughput: 1234.5678 + seed,
                    package_power: 158.999,
                    peak_dram_c: 71.25,
                },
                PointEval {
                    throughput: 0.1 + seed,
                    package_power: 140.0,
                    peak_dram_c: 68.0,
                },
            ],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ena-sweep-cache-test-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let dir = tmp("roundtrip");
        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty());
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(0.125)).unwrap();
        drop(cache);

        let (_, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0)), (22, record(0.125))]);
    }

    #[test]
    fn mismatched_version_stamp_evicts_the_file() {
        let dir = tmp("stamp");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        drop(cache);

        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v2").unwrap();
        assert!(loaded.is_empty(), "stale entries must be evicted");
        // And the eviction is durable: reopening under the old stamp
        // finds nothing either.
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn mismatched_record_tag_evicts_the_file() {
        #[derive(Clone, Debug, PartialEq)]
        struct Other(u64);
        impl CacheRecord for Other {
            const TAG: &'static str = "other/1";
            fn encode(&self) -> String {
                format!("{:016x}", self.0)
            }
            fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self> {
                Some(Other(u64::from_str_radix(fields.next()?, 16).ok()?))
            }
        }

        let dir = tmp("tag");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        drop(cache);

        // Same campaign digest and version, different record type: the
        // header tag differs, so the foreign file is evicted wholesale.
        let (_, loaded) = DiskCache::<Other>::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty(), "foreign record tag must evict");
        let (mut cache, _) = DiskCache::<Other>::open(&dir, 7, "v1").unwrap();
        cache.append(5, &Other(42)).unwrap();
        drop(cache);
        let (_, loaded) = DiskCache::<Other>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(5, Other(42))]);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmp("torn");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        // Simulate a kill mid-append: truncate the last line in half.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 20]).unwrap();

        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0))]);
        // The repaired file keeps accepting appends.
        cache.append(22, &record(1.0)).unwrap();
        drop(cache);
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded.len(), 2);
    }

    #[test]
    fn garbage_in_the_middle_degrades_to_a_shorter_prefix() {
        let dir = tmp("midbytes");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        cache.append(33, &record(2.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        // Flip bytes in the middle record (line 3 of the file): the
        // intact prefix must load, the damage must cost points, not the
        // process.
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == 2 {
                    "zz not-hex 1 &&& garbage".to_string()
                } else {
                    (*l).to_string()
                }
            })
            .collect();
        fs::write(&path, mangled.join("\n") + "\n").unwrap();

        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0))], "intact prefix survives");
        // The repaired file keeps accepting appends.
        cache.append(22, &record(1.0)).unwrap();
        drop(cache);
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded.len(), 2);
    }

    #[test]
    fn non_utf8_bytes_evict_the_file_not_the_process() {
        let dir = tmp("nonutf8");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xFF, 0xFE, 0x00, 0xC3]);
        fs::write(&path, &bytes).unwrap();

        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty(), "undecodable file is evicted wholesale");
        cache.append(11, &record(0.0)).unwrap();
        drop(cache);
        let (_, loaded) = DiskCache::<PointRecord>::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0))]);
    }

    #[test]
    fn different_campaigns_use_different_files() {
        assert_ne!(
            DiskCache::<PointRecord>::file_name(1),
            DiskCache::<PointRecord>::file_name(2)
        );
    }
}

//! Persistent content-addressed sweep cache with checkpoint/resume.
//!
//! One campaign (a fixed budget, evaluation options, and profile set)
//! maps to one append-only file under the cache directory, named by the
//! campaign digest. Each line is one evaluated design point: its
//! content-addressed key, the point coordinates, and every `f64`
//! observable as an IEEE-754 bit pattern in hex — so a record
//! round-trips through disk *bit-exactly*, which is what lets a resumed
//! sweep reproduce an uninterrupted one byte-for-byte.
//!
//! The header line carries the model-version stamp. A file whose stamp
//! does not match the running binary is evicted wholesale on open:
//! numbers computed by an older model must never leak into fresh
//! results. A truncated trailing line (a sweep killed mid-append) is
//! ignored, so a crash costs at most one point.

use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use ena_core::dse::{ConfigPoint, PointEval, PointRecord};
use ena_model::units::{GigabytesPerSec, Megahertz};

/// Magic tag of the cache file format.
const FORMAT: &str = "ena-sweep-cache/1";

/// On-disk cache of one campaign's evaluated points.
#[derive(Debug)]
pub struct DiskCache {
    path: PathBuf,
    writer: BufWriter<fs::File>,
}

impl DiskCache {
    /// File name of a campaign's cache inside `dir`.
    pub fn file_name(campaign: u64) -> String {
        format!("campaign-{campaign:016x}.sweep")
    }

    /// Opens (creating if needed) the cache for `campaign`, returning the
    /// handle plus every intact record already on disk.
    ///
    /// A file with a foreign or damaged header — including a mismatched
    /// model-version stamp — is deleted and recreated empty.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn open(
        dir: &Path,
        campaign: u64,
        version: &str,
    ) -> io::Result<(Self, Vec<(u64, PointRecord)>)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(Self::file_name(campaign));

        let mut entries = Vec::new();
        let mut valid = false;
        if let Ok(text) = fs::read_to_string(&path) {
            let mut lines = text.lines();
            if lines.next() == Some(header_line(campaign, version).as_str()) {
                valid = true;
                for line in lines {
                    match parse_entry(line) {
                        Some(entry) => entries.push(entry),
                        // Torn tail from an interrupted append: drop the
                        // rest, the points will simply be re-evaluated.
                        None => break,
                    }
                }
            }
        }

        if !valid {
            // Stale stamp or foreign bytes: evict, then start fresh.
            let _ = fs::remove_file(&path);
            let mut writer = BufWriter::new(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?,
            );
            writeln!(writer, "{}", header_line(campaign, version))?;
            writer.flush()?;
            return Ok((Self { path, writer }, Vec::new()));
        }

        // Re-append only the intact prefix if a torn tail was dropped.
        let intact: String = std::iter::once(header_line(campaign, version))
            .chain(entries.iter().map(|(k, r)| entry_line(*k, r)))
            .map(|l| l + "\n")
            .collect();
        fs::write(&path, &intact)?;
        let writer = BufWriter::new(fs::OpenOptions::new().append(true).open(&path)?);
        Ok((Self { path, writer }, entries))
    }

    /// Appends one evaluated point and flushes it to disk (each record is
    /// a checkpoint).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the append.
    pub fn append(&mut self, key: u64, record: &PointRecord) -> io::Result<()> {
        writeln!(self.writer, "{}", entry_line(key, record))?;
        self.writer.flush()
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header_line(campaign: u64, version: &str) -> String {
    format!("{FORMAT} model={version} campaign={campaign:016x}")
}

fn entry_line(key: u64, record: &PointRecord) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "{key:016x} {} {:016x} {:016x} {}",
        record.point.cus,
        record.point.clock.value().to_bits(),
        record.point.bandwidth.value().to_bits(),
        record.evals.len(),
    );
    for e in &record.evals {
        write!(
            line,
            " {:016x} {:016x} {:016x}",
            e.throughput.to_bits(),
            e.package_power.to_bits(),
            e.peak_dram_c.to_bits(),
        )
        .expect("writing to String cannot fail");
    }
    line
}

fn parse_entry(line: &str) -> Option<(u64, PointRecord)> {
    let mut fields = line.split(' ');
    let key = u64::from_str_radix(fields.next()?, 16).ok()?;
    let cus: u32 = fields.next()?.parse().ok()?;
    let clock = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
    let bandwidth = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
    let n: usize = fields.next()?.parse().ok()?;
    let mut evals = Vec::with_capacity(n);
    for _ in 0..n {
        let mut f = || {
            Some(f64::from_bits(
                u64::from_str_radix(fields.next()?, 16).ok()?,
            ))
        };
        evals.push(PointEval {
            throughput: f()?,
            package_power: f()?,
            peak_dram_c: f()?,
        });
    }
    if fields.next().is_some() {
        return None;
    }
    Some((
        key,
        PointRecord {
            point: ConfigPoint {
                cus,
                clock: Megahertz::new(clock),
                bandwidth: GigabytesPerSec::new(bandwidth),
            },
            evals,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: f64) -> PointRecord {
        PointRecord {
            point: ConfigPoint {
                cus: 320,
                clock: Megahertz::new(1000.0 + seed),
                bandwidth: GigabytesPerSec::new(3000.0),
            },
            evals: vec![
                PointEval {
                    throughput: 1234.5678 + seed,
                    package_power: 158.999,
                    peak_dram_c: 71.25,
                },
                PointEval {
                    throughput: 0.1 + seed,
                    package_power: 140.0,
                    peak_dram_c: 68.0,
                },
            ],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ena-sweep-cache-test-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let dir = tmp("roundtrip");
        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty());
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(0.125)).unwrap();
        drop(cache);

        let (_, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0)), (22, record(0.125))]);
    }

    #[test]
    fn mismatched_version_stamp_evicts_the_file() {
        let dir = tmp("stamp");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        drop(cache);

        let (_, loaded) = DiskCache::open(&dir, 7, "v2").unwrap();
        assert!(loaded.is_empty(), "stale entries must be evicted");
        // And the eviction is durable: reopening under the old stamp
        // finds nothing either.
        let (_, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmp("torn");
        let (mut cache, _) = DiskCache::open(&dir, 7, "v1").unwrap();
        cache.append(11, &record(0.0)).unwrap();
        cache.append(22, &record(1.0)).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        // Simulate a kill mid-append: truncate the last line in half.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 20]).unwrap();

        let (mut cache, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded, vec![(11, record(0.0))]);
        // The repaired file keeps accepting appends.
        cache.append(22, &record(1.0)).unwrap();
        drop(cache);
        let (_, loaded) = DiskCache::open(&dir, 7, "v1").unwrap();
        assert_eq!(loaded.len(), 2);
    }

    #[test]
    fn different_campaigns_use_different_files() {
        assert_ne!(DiskCache::file_name(1), DiskCache::file_name(2));
    }
}

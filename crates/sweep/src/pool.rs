//! A std-only work-stealing thread pool for chunked sweeps, with worker
//! supervision.
//!
//! The pool is deliberately small: each worker owns a deque of chunks,
//! pops its own work from the front, and steals from a sibling's back
//! when it runs dry. Completed chunks stream back to the caller's thread
//! (for checkpointing) tagged with their chunk index, and the final
//! result vector is assembled *by index* — so the merged output is
//! independent of scheduling order and worker count by construction.
//!
//! Supervision ([`map_chunks_supervised`]) catches panics *per chunk*
//! rather than letting them kill the worker thread: a panicking chunk is
//! retried under the caller's [`RetryPolicy`] (the evaluation kernel is
//! deterministic, but the failure may be environmental — an injected
//! chaos kill, a transient resource fault), and a chunk that fails every
//! attempt is *quarantined* — reported, with its panic message and the
//! modeled backoff it consumed, instead of aborting the sweep. A
//! quarantine-free supervised run executes exactly the same evaluations
//! as the unsupervised pool, so its output is byte-identical to the
//! sequential oracle.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

pub use ena_hsa::runtime::RetryPolicy;

/// Per-worker execution counters, the raw material of the utilization
/// telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Chunks this worker executed.
    pub chunks: u64,
    /// Items this worker evaluated.
    pub points: u64,
    /// Chunks this worker stole from a sibling's queue.
    pub steals: u64,
    /// Chunk attempts re-run after a caught panic.
    pub retries: u64,
}

/// A chunk that failed every attempt its [`RetryPolicy`] allowed and was
/// pulled out of the sweep instead of aborting it.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantinedChunk {
    /// Index of the chunk in submission order.
    pub index: usize,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// Panic message of the final attempt.
    pub message: String,
    /// Modeled backoff consumed across retries (µs). Modeled, not
    /// slept: the pool stays wall-clock-free so supervised runs remain
    /// deterministic.
    pub backoff_us: f64,
}

enum Message<R> {
    Chunk { index: usize, results: Vec<R> },
    Quarantined(QuarantinedChunk),
    Done { worker: usize, stats: WorkerStats },
}

/// A pool run that could not deliver every chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// One or more workers disappeared before delivering their chunks;
    /// `missing` chunks never completed.
    WorkerLost {
        /// Number of chunks that never completed.
        missing: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PoolError::WorkerLost { missing } => {
                write!(f, "worker pool lost {missing} chunk(s) before completion")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Locks a queue, recovering the guard from a poisoned sibling: the data
/// is a plain deque of pending chunks, valid regardless of where another
/// worker died.
fn lock_queue<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    q.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload (the `&str`/`String` payloads `panic!`
/// and `panic_any` produce) into a stable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Maps `f` over every item of every chunk on `jobs` worker threads.
///
/// `on_chunk` runs on the calling thread, once per completed chunk in
/// completion order (suitable for streaming checkpoints and progress).
/// The returned chunk results are ordered by chunk index regardless of
/// which worker computed them or when.
///
/// A panicking `f` does not kill the worker thread: the chunk is
/// reported lost (no retries at this layer — use
/// [`map_chunks_supervised`] for retry/quarantine semantics).
///
/// # Errors
///
/// Returns [`PoolError::WorkerLost`] if any chunk failed to complete
/// (the remaining results are discarded rather than silently returned
/// incomplete).
pub fn map_chunks<T, R, F, C>(
    jobs: usize,
    chunks: Vec<Vec<T>>,
    f: F,
    on_chunk: C,
) -> Result<(Vec<Vec<R>>, Vec<WorkerStats>), PoolError>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
    C: FnMut(usize, &[R]),
{
    let no_retries = RetryPolicy {
        max_retries: 0,
        backoff_us: 0.0,
    };
    let (results, stats) = map_chunks_supervised(jobs, chunks, &no_retries, f, on_chunk)?;
    let mut merged = Vec::with_capacity(results.len());
    let mut missing = 0usize;
    for slot in results {
        match slot {
            Ok(chunk) => merged.push(chunk),
            Err(_) => missing += 1,
        }
    }
    if missing > 0 {
        return Err(PoolError::WorkerLost { missing });
    }
    Ok((merged, stats))
}

/// Maps `f` over every item of every chunk on `jobs` worker threads,
/// supervising each chunk: a panic is caught, the chunk is retried up to
/// `retry.max_retries` times (charging `retry`'s modeled backoff), and a
/// chunk that fails every attempt comes back as
/// `Err(`[`QuarantinedChunk`]`)` in its result slot while the rest of
/// the sweep completes normally.
///
/// `on_chunk` runs on the calling thread for *completed* chunks only —
/// quarantined chunks are never checkpointed.
///
/// # Errors
///
/// Returns [`PoolError::WorkerLost`] only if a worker vanished without
/// delivering a verdict for its chunks (a bug, not a caught panic —
/// caught panics become quarantines, not errors).
pub fn map_chunks_supervised<T, R, F, C>(
    jobs: usize,
    chunks: Vec<Vec<T>>,
    retry: &RetryPolicy,
    f: F,
    mut on_chunk: C,
) -> Result<(Vec<Result<Vec<R>, QuarantinedChunk>>, Vec<WorkerStats>), PoolError>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
    C: FnMut(usize, &[R]),
{
    let jobs = jobs.max(1);
    let n_chunks = chunks.len();

    // Round-robin initial distribution across per-worker deques.
    let queues: Vec<Mutex<VecDeque<(usize, Vec<T>)>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, chunk) in chunks.into_iter().enumerate() {
        lock_queue(&queues[index % jobs]).push_back((index, chunk));
    }

    let (tx, rx) = mpsc::channel::<Message<R>>();
    let mut results: Vec<Option<Result<Vec<R>, QuarantinedChunk>>> =
        (0..n_chunks).map(|_| None).collect();
    let mut worker_stats = vec![WorkerStats::default(); jobs];

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let f = &f;
            scope.spawn(move || {
                let mut stats = WorkerStats::default();
                loop {
                    // Own queue first (front), then steal (back) so a
                    // victim's locality-ordered head stays with it.
                    let mut job = lock_queue(&queues[w]).pop_front();
                    let mut stolen = false;
                    if job.is_none() {
                        for offset in 1..jobs {
                            let victim = (w + offset) % jobs;
                            job = lock_queue(&queues[victim]).pop_back();
                            if job.is_some() {
                                stolen = true;
                                break;
                            }
                        }
                    }
                    let Some((index, chunk)) = job else { break };
                    if stolen {
                        stats.steals += 1;
                    }
                    stats.chunks += 1;
                    stats.points += chunk.len() as u64;

                    // Supervised execution: 1 + max_retries attempts,
                    // each over the whole chunk (the kernel is
                    // deterministic, so a partial result has no value).
                    let attempts = retry.max_retries.saturating_add(1);
                    let mut backoff_us = 0.0;
                    let mut verdict = None;
                    for attempt in 1..=attempts {
                        match catch_unwind(AssertUnwindSafe(|| {
                            chunk.iter().map(f).collect::<Vec<R>>()
                        })) {
                            Ok(chunk_results) => {
                                verdict = Some(Ok(chunk_results));
                                break;
                            }
                            Err(payload) => {
                                let message = panic_message(payload.as_ref());
                                if attempt < attempts {
                                    stats.retries += 1;
                                    backoff_us += retry.backoff_for(attempt);
                                } else {
                                    verdict = Some(Err(QuarantinedChunk {
                                        index,
                                        attempts,
                                        message,
                                        backoff_us,
                                    }));
                                }
                            }
                        }
                    }
                    let message = match verdict {
                        Some(Ok(results)) => Message::Chunk { index, results },
                        Some(Err(q)) => Message::Quarantined(q),
                        // attempts >= 1, so a verdict always exists; keep
                        // the worker alive regardless.
                        None => Message::Quarantined(QuarantinedChunk {
                            index,
                            attempts,
                            message: "<no attempt executed>".to_string(),
                            backoff_us,
                        }),
                    };
                    if tx.send(message).is_err() {
                        break;
                    }
                }
                let _ = tx.send(Message::Done { worker: w, stats });
            });
        }
        drop(tx);

        // Drain on the caller's thread: checkpoint callbacks happen here,
        // so `on_chunk` needs no synchronization.
        let mut done = 0;
        while done < jobs {
            match rx.recv() {
                Ok(Message::Chunk {
                    index,
                    results: chunk_results,
                }) => {
                    on_chunk(index, &chunk_results);
                    results[index] = Some(Ok(chunk_results));
                }
                Ok(Message::Quarantined(q)) => {
                    let index = q.index;
                    results[index] = Some(Err(q));
                }
                Ok(Message::Done { worker, stats }) => {
                    worker_stats[worker] = stats;
                    done += 1;
                }
                // Every sender dropped without its Done: workers are gone;
                // whatever chunks are missing stay None and surface below.
                Err(_) => break,
            }
        }
    });

    let mut merged = Vec::with_capacity(n_chunks);
    let mut missing = 0usize;
    for slot in results {
        match slot {
            Some(verdict) => merged.push(verdict),
            None => missing += 1,
        }
    }
    if missing > 0 {
        return Err(PoolError::WorkerLost { missing });
    }
    Ok((merged, worker_stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks() -> Vec<Vec<u64>> {
        (0..13u64)
            .map(|c| (0..5).map(|i| c * 10 + i).collect())
            .collect()
    }

    #[test]
    fn merge_is_index_ordered_for_any_job_count() {
        let input = chunks();
        let expect: Vec<Vec<u64>> = input
            .iter()
            .map(|c| c.iter().map(|x| x * 3).collect())
            .collect();
        for jobs in [1, 2, 7, 32] {
            let (got, stats) = map_chunks(jobs, input.clone(), |x| x * 3, |_, _| {}).unwrap();
            assert_eq!(got, expect, "jobs = {jobs}");
            assert_eq!(stats.len(), jobs);
            assert_eq!(stats.iter().map(|s| s.points).sum::<u64>(), 65);
            assert_eq!(stats.iter().map(|s| s.chunks).sum::<u64>(), 13);
        }
    }

    #[test]
    fn on_chunk_streams_every_chunk_exactly_once() {
        let mut seen = vec![0u32; 13];
        map_chunks(
            3,
            chunks(),
            |x| *x,
            |index, results| {
                assert_eq!(results.len(), 5);
                seen[index] += 1;
            },
        )
        .unwrap();
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn zero_jobs_clamps_to_one_and_empty_input_is_fine() {
        let (got, stats) = map_chunks(0, Vec::<Vec<u64>>::new(), |x| *x, |_, _| {}).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats.len(), 1);
    }

    #[test]
    fn a_persistent_panic_is_quarantined_not_fatal() {
        let (results, stats) = map_chunks_supervised(
            2,
            chunks(),
            &RetryPolicy::default(),
            |x| {
                assert!(*x != 62, "injected failure on item 62");
                *x * 3
            },
            |index, _| assert_ne!(index, 6, "quarantined chunk must not checkpoint"),
        )
        .unwrap();
        assert_eq!(results.len(), 13);
        for (i, slot) in results.iter().enumerate() {
            if i == 6 {
                let q = slot.as_ref().unwrap_err();
                assert_eq!(q.index, 6);
                assert_eq!(q.attempts, 4, "1 + default max_retries");
                assert!(q.message.contains("62"), "{}", q.message);
                assert!(q.backoff_us > 0.0);
            } else {
                let ok = slot.as_ref().unwrap();
                assert_eq!(ok.len(), 5);
            }
        }
        assert_eq!(stats.iter().map(|s| s.retries).sum::<u64>(), 3);
    }

    #[test]
    fn unsupervised_map_chunks_reports_a_panicking_chunk_as_lost() {
        let err = map_chunks(
            2,
            chunks(),
            |x| {
                assert!(*x != 62, "injected failure");
                *x
            },
            |_, _| {},
        )
        .unwrap_err();
        assert_eq!(err, PoolError::WorkerLost { missing: 1 });
    }

    #[test]
    fn quarantine_free_supervised_run_matches_the_unsupervised_pool() {
        let input = chunks();
        let (plain, _) = map_chunks(3, input.clone(), |x| x * 7, |_, _| {}).unwrap();
        let (supervised, _) =
            map_chunks_supervised(3, input, &RetryPolicy::default(), |x| x * 7, |_, _| {}).unwrap();
        let supervised: Vec<Vec<u64>> = supervised.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(plain, supervised);
    }
}

//! A std-only work-stealing thread pool for chunked sweeps.
//!
//! The pool is deliberately small: each worker owns a deque of chunks,
//! pops its own work from the front, and steals from a sibling's back
//! when it runs dry. Completed chunks stream back to the caller's thread
//! (for checkpointing) tagged with their chunk index, and the final
//! result vector is assembled *by index* — so the merged output is
//! independent of scheduling order and worker count by construction.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Per-worker execution counters, the raw material of the utilization
/// telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Chunks this worker executed.
    pub chunks: u64,
    /// Items this worker evaluated.
    pub points: u64,
    /// Chunks this worker stole from a sibling's queue.
    pub steals: u64,
}

enum Message<R> {
    Chunk { index: usize, results: Vec<R> },
    Done { worker: usize, stats: WorkerStats },
}

/// A pool run that could not deliver every chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// One or more workers disappeared before delivering their chunks;
    /// `missing` chunks never completed.
    WorkerLost {
        /// Number of chunks that never completed.
        missing: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PoolError::WorkerLost { missing } => {
                write!(f, "worker pool lost {missing} chunk(s) before completion")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Locks a queue, recovering the guard from a poisoned sibling: the data
/// is a plain deque of pending chunks, valid regardless of where another
/// worker died.
fn lock_queue<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    q.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Maps `f` over every item of every chunk on `jobs` worker threads.
///
/// `on_chunk` runs on the calling thread, once per completed chunk in
/// completion order (suitable for streaming checkpoints and progress).
/// The returned chunk results are ordered by chunk index regardless of
/// which worker computed them or when.
///
/// # Errors
///
/// Returns [`PoolError::WorkerLost`] if a worker hung up before its
/// chunks completed (the remaining results are discarded rather than
/// silently returned incomplete).
pub fn map_chunks<T, R, F, C>(
    jobs: usize,
    chunks: Vec<Vec<T>>,
    f: F,
    mut on_chunk: C,
) -> Result<(Vec<Vec<R>>, Vec<WorkerStats>), PoolError>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
    C: FnMut(usize, &[R]),
{
    let jobs = jobs.max(1);
    let n_chunks = chunks.len();

    // Round-robin initial distribution across per-worker deques.
    let queues: Vec<Mutex<VecDeque<(usize, Vec<T>)>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, chunk) in chunks.into_iter().enumerate() {
        lock_queue(&queues[index % jobs]).push_back((index, chunk));
    }

    let (tx, rx) = mpsc::channel::<Message<R>>();
    let mut results: Vec<Option<Vec<R>>> = (0..n_chunks).map(|_| None).collect();
    let mut worker_stats = vec![WorkerStats::default(); jobs];

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let f = &f;
            scope.spawn(move || {
                let mut stats = WorkerStats::default();
                loop {
                    // Own queue first (front), then steal (back) so a
                    // victim's locality-ordered head stays with it.
                    let mut job = lock_queue(&queues[w]).pop_front();
                    let mut stolen = false;
                    if job.is_none() {
                        for offset in 1..jobs {
                            let victim = (w + offset) % jobs;
                            job = lock_queue(&queues[victim]).pop_back();
                            if job.is_some() {
                                stolen = true;
                                break;
                            }
                        }
                    }
                    let Some((index, chunk)) = job else { break };
                    if stolen {
                        stats.steals += 1;
                    }
                    stats.chunks += 1;
                    stats.points += chunk.len() as u64;
                    let results: Vec<R> = chunk.iter().map(f).collect();
                    if tx.send(Message::Chunk { index, results }).is_err() {
                        break;
                    }
                }
                let _ = tx.send(Message::Done { worker: w, stats });
            });
        }
        drop(tx);

        // Drain on the caller's thread: checkpoint callbacks happen here,
        // so `on_chunk` needs no synchronization.
        let mut done = 0;
        while done < jobs {
            match rx.recv() {
                Ok(Message::Chunk {
                    index,
                    results: chunk_results,
                }) => {
                    on_chunk(index, &chunk_results);
                    results[index] = Some(chunk_results);
                }
                Ok(Message::Done { worker, stats }) => {
                    worker_stats[worker] = stats;
                    done += 1;
                }
                // Every sender dropped without its Done: workers are gone;
                // whatever chunks are missing stay None and surface below.
                Err(_) => break,
            }
        }
    });

    let mut merged = Vec::with_capacity(n_chunks);
    let mut missing = 0usize;
    for slot in results {
        match slot {
            Some(chunk) => merged.push(chunk),
            None => missing += 1,
        }
    }
    if missing > 0 {
        return Err(PoolError::WorkerLost { missing });
    }
    Ok((merged, worker_stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks() -> Vec<Vec<u64>> {
        (0..13u64)
            .map(|c| (0..5).map(|i| c * 10 + i).collect())
            .collect()
    }

    #[test]
    fn merge_is_index_ordered_for_any_job_count() {
        let input = chunks();
        let expect: Vec<Vec<u64>> = input
            .iter()
            .map(|c| c.iter().map(|x| x * 3).collect())
            .collect();
        for jobs in [1, 2, 7, 32] {
            let (got, stats) = map_chunks(jobs, input.clone(), |x| x * 3, |_, _| {}).unwrap();
            assert_eq!(got, expect, "jobs = {jobs}");
            assert_eq!(stats.len(), jobs);
            assert_eq!(stats.iter().map(|s| s.points).sum::<u64>(), 65);
            assert_eq!(stats.iter().map(|s| s.chunks).sum::<u64>(), 13);
        }
    }

    #[test]
    fn on_chunk_streams_every_chunk_exactly_once() {
        let mut seen = vec![0u32; 13];
        map_chunks(
            3,
            chunks(),
            |x| *x,
            |index, results| {
                assert_eq!(results.len(), 5);
                seen[index] += 1;
            },
        )
        .unwrap();
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn zero_jobs_clamps_to_one_and_empty_input_is_fine() {
        let (got, stats) = map_chunks(0, Vec::<Vec<u64>>::new(), |x| *x, |_, _| {}).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats.len(), 1);
    }
}

//! Seeded chaos campaigns over the sweep engine's own execution paths.
//!
//! A campaign runs the same sweep many times against a hostile
//! substrate — a [`ChaosFs`] injecting I/O faults into every cache
//! operation, plus a [`Failpoint`](crate::engine::Failpoint) injecting
//! worker kills (panics) at seeded points — and asserts the three
//! invariants a serving layer needs from this substrate:
//!
//! 1. **Every surviving cache file parses cleanly.** After any faulted
//!    run, the campaign's cache file must have a valid header and
//!    CRC-intact records, with damage confined to an unacknowledged
//!    torn tail. An unparseable file means the crash-consistency
//!    machinery (atomic repair, append poisoning) has a hole.
//! 2. **Resume never loses acknowledged records.** The set of intact
//!    records on disk grows monotonically across runs: a repair may
//!    truncate un-acknowledged garbage, never acknowledged data.
//! 3. **The final frontier equals the fault-free frontier.** After the
//!    faulted runs, one clean run resumes from whatever survived and
//!    must produce a Pareto frontier byte-identical to a fault-free
//!    oracle run — cached partial progress plus re-evaluation of the
//!    missing points reconstructs the exact result.
//!
//! Everything is a pure function of the campaign seed, so a failing
//! campaign replays exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use ena_core::dse::DesignSpace;
use ena_core::Explorer;
use ena_model::kernel::KernelProfile;
use ena_testkit::chaos::{ChaosConfig, ChaosFs};
use ena_testkit::rng::SplitMix64;

use crate::cache::{verify_file, DiskCache, SyncPolicy};
use crate::engine::{CacheMode, Failpoint, SweepEngine, SweepError, SweepSpec};
use ena_core::dse::PointRecord;

/// One chaos campaign request.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Master seed: every injected fault and kill derives from it.
    pub seed: u64,
    /// Faulted runs before the final clean run.
    pub runs: u32,
    /// Worker threads per sweep.
    pub jobs: usize,
    /// Points per work-stealing chunk.
    pub chunk_points: usize,
    /// Directory holding the campaign's disk cache.
    pub dir: PathBuf,
    /// Filesystem fault rates for the faulted runs.
    pub fs_faults: ChaosConfig,
    /// Chance (per mille, per point) that evaluation panics on *every*
    /// attempt — the chunk ends up quarantined.
    pub kill_persistent_permille: u16,
    /// Chance (per mille, per point) that evaluation panics on its
    /// first attempt only — the supervised retry succeeds.
    pub kill_transient_permille: u16,
    /// The design space to sweep.
    pub space: DesignSpace,
    /// Application profiles evaluated at every point.
    pub profiles: Vec<KernelProfile>,
}

impl ChaosSpec {
    /// A small default campaign over `space`/`profiles`, caching under
    /// `dir`: 3 faulted runs, 2 workers, moderate fault rates.
    pub fn new(dir: PathBuf, space: DesignSpace, profiles: Vec<KernelProfile>) -> Self {
        Self {
            seed: 0xC0FFEE,
            runs: 3,
            jobs: 2,
            chunk_points: 4,
            dir,
            fs_faults: ChaosConfig::default_rates(),
            kill_persistent_permille: 40,
            kill_transient_permille: 80,
            space,
            profiles,
        }
    }
}

/// What one faulted run did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Run index (0-based).
    pub run: u32,
    /// How the sweep ended: completed (with quarantine count) or the
    /// error that stopped it.
    pub outcome: String,
    /// Filesystem operations the chaos layer observed.
    pub fs_ops: u64,
    /// Filesystem faults injected (failed + short + torn).
    pub fs_faults_injected: u64,
    /// Intact records on disk after the run.
    pub on_disk: usize,
    /// True when the file ended in an (unacknowledged) torn tail.
    pub torn_tail: bool,
}

/// Outcome of a whole campaign: per-run summaries plus the final
/// invariant checks. Produced only when every invariant held.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosReport {
    /// Campaign seed.
    pub seed: u64,
    /// Points in the swept space.
    pub total_points: usize,
    /// Per-run summaries, in run order.
    pub runs: Vec<RunSummary>,
    /// Records recovered from disk by the final clean run.
    pub final_recovered: usize,
    /// Cache-file generation after the final run (repairs bump it).
    pub final_generation: u64,
}

impl ChaosReport {
    /// Renders the report as stable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // fmt::Write to a String is infallible; discard the Ok values.
        let _ = writeln!(
            out,
            "chaos campaign seed={:#x} points={} runs={}",
            self.seed,
            self.total_points,
            self.runs.len()
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "  run {}: {} | fs ops {} faults {} | on disk {}{}",
                r.run,
                r.outcome,
                r.fs_ops,
                r.fs_faults_injected,
                r.on_disk,
                if r.torn_tail { " (torn tail)" } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "  final: recovered {} of {} records, generation {}",
            self.final_recovered, self.total_points, self.final_generation
        );
        let _ = writeln!(
            out,
            "invariants: all hold (caches parseable, no acknowledged record lost, frontier == fault-free)"
        );
        out
    }
}

/// A violated invariant (or a campaign that could not run at all).
#[derive(Debug)]
pub enum ChaosError {
    /// Clearing or probing the cache directory failed.
    Setup {
        /// The file or directory the setup step touched.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The fault-free oracle run failed — the campaign has no baseline.
    Oracle(SweepError),
    /// The final clean run failed outright.
    FinalRun(SweepError),
    /// Invariant 1 violated: a faulted run left an unparseable cache
    /// file behind.
    UnparseableCache {
        /// Run after which the file failed verification.
        run: u32,
        /// What the verifier rejected.
        error: String,
    },
    /// Invariant 2 violated: records that were intact on disk after an
    /// earlier run vanished.
    LostRecords {
        /// Run after which the loss was detected.
        run: u32,
        /// Keys present before, missing now.
        missing: Vec<u64>,
    },
    /// A run completed but its acknowledged records do not add up:
    /// completed points and on-disk records disagree.
    AckMismatch {
        /// Run with the mismatch.
        run: u32,
        /// Records the run's outcome implies are on disk.
        expected: usize,
        /// Records actually found.
        found: usize,
    },
    /// The final clean run still had quarantined chunks.
    FinalQuarantine {
        /// Points quarantined in the clean run.
        points: usize,
    },
    /// Invariant 3 violated: the final frontier differs from the
    /// fault-free frontier.
    FrontierMismatch {
        /// Fault-free frontier rendering.
        expected: String,
        /// Post-chaos frontier rendering.
        got: String,
    },
    /// The final run's cache hits disagree with what was on disk: the
    /// resume did not use every recovered record.
    ResumeMismatch {
        /// Intact records on disk before the final run.
        on_disk: usize,
        /// Cache hits the final run reported.
        cache_hits: usize,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Setup { path, source } => {
                write!(f, "chaos campaign setup on {}: {source}", path.display())
            }
            Self::Oracle(e) => write!(f, "chaos oracle run failed: {e}"),
            Self::FinalRun(e) => write!(f, "chaos final clean run failed: {e}"),
            Self::UnparseableCache { run, error } => {
                write!(
                    f,
                    "invariant violated after run {run}: cache file unparseable: {error}"
                )
            }
            Self::LostRecords { run, missing } => write!(
                f,
                "invariant violated after run {run}: {} acknowledged record(s) lost",
                missing.len()
            ),
            Self::AckMismatch {
                run,
                expected,
                found,
            } => write!(
                f,
                "run {run}: completed run implies {expected} records on disk, found {found}"
            ),
            Self::FinalQuarantine { points } => {
                write!(f, "final clean run quarantined {points} point(s)")
            }
            Self::FrontierMismatch { .. } => {
                write!(f, "final frontier differs from the fault-free frontier")
            }
            Self::ResumeMismatch {
                on_disk,
                cache_hits,
            } => write!(
                f,
                "final run resumed {cache_hits} hits but {on_disk} records were on disk"
            ),
        }
    }
}

impl std::error::Error for ChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Setup { source, .. } => Some(source),
            Self::Oracle(e) | Self::FinalRun(e) => Some(e),
            _ => None,
        }
    }
}

/// Builds the seeded kill failpoint for one run: a pure function of
/// `(run_seed, key)` decides persistent/transient/no kill, and a shared
/// per-key invocation counter makes transient kills fire on the first
/// attempt only.
fn kill_failpoint(run_seed: u64, persistent_permille: u16, transient_permille: u16) -> Failpoint {
    let invocations: Mutex<BTreeMap<u64, u32>> = Mutex::new(BTreeMap::new());
    Arc::new(move |key| {
        let invocation = {
            let mut map = invocations
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let n = map.entry(key).or_insert(0);
            *n += 1;
            *n
        };
        let draw = SplitMix64::new(run_seed ^ key.rotate_left(17)).next_u64() % 1000;
        let persistent = u64::from(persistent_permille);
        let transient = persistent + u64::from(transient_permille);
        if draw < persistent {
            // The panic *is* the injected fault; the supervised pool
            // catches it, retries, and quarantines the chunk.
            std::panic::panic_any(format!("chaos kill (persistent) at point {key:#018x}"));
        }
        if draw < transient && invocation == 1 {
            std::panic::panic_any(format!("chaos kill (transient) at point {key:#018x}"));
        }
    })
}

/// Renders a frontier for byte-exact comparison.
fn render_frontier(frontier: &[crate::pareto::FrontierPoint]) -> String {
    format!("{frontier:#?}")
}

/// Runs a seeded chaos campaign and checks every invariant.
///
/// The sequence: one fault-free oracle run (memory cache) to fix the
/// expected frontier; `spec.runs` faulted runs against the disk cache
/// with injected I/O faults and worker kills, each followed by strict
/// verification of the surviving cache file; then one clean run that
/// must resume from the survivors and reproduce the oracle frontier
/// byte-for-byte.
///
/// # Errors
///
/// A [`ChaosError`] naming the violated invariant (or the setup/oracle
/// failure that kept the campaign from running). A faulted run *failing*
/// is not an error — injected faults are supposed to hurt — but the
/// state it leaves behind must still verify.
pub fn run_chaos_campaign(
    explorer: &Explorer,
    spec: &ChaosSpec,
) -> Result<ChaosReport, ChaosError> {
    // Fault-free oracle: fixes the expected frontier.
    let mut oracle = SweepEngine::new(explorer.clone());
    let oracle_spec = SweepSpec {
        jobs: spec.jobs,
        chunk_points: spec.chunk_points,
        ..SweepSpec::new(spec.space.clone(), spec.profiles.clone())
    };
    let baseline = oracle.run(&oracle_spec).map_err(ChaosError::Oracle)?;
    let expected_frontier = render_frontier(&baseline.frontier);
    let total_points = baseline.telemetry.total_points;
    let campaign = oracle.campaign_digest(&spec.profiles);
    let version = ena_model::hash::MODEL_VERSION;
    let cache_path = spec.dir.join(DiskCache::<PointRecord>::file_name(campaign));

    // Fresh directory: the campaign owns `spec.dir`.
    match std::fs::remove_dir_all(&spec.dir) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(ChaosError::Setup {
                path: spec.dir.clone(),
                source: e,
            })
        }
    }

    let mut runs = Vec::new();
    let mut seen_keys: BTreeSet<u64> = BTreeSet::new();
    for run in 0..spec.runs {
        let run_seed = SplitMix64::new(spec.seed.wrapping_add(u64::from(run))).next_u64();
        let chaos = ChaosFs::new(run_seed, spec.fs_faults);
        let mut engine = SweepEngine::new(explorer.clone()).with_failpoint(kill_failpoint(
            run_seed,
            spec.kill_persistent_permille,
            spec.kill_transient_permille,
        ));
        let run_spec = SweepSpec {
            jobs: spec.jobs,
            chunk_points: spec.chunk_points,
            cache: CacheMode::Disk(spec.dir.clone()),
            fs: Arc::new(chaos.clone()),
            sync: SyncPolicy::PerRecord,
            ..SweepSpec::new(spec.space.clone(), spec.profiles.clone())
        };
        let result = engine.run(&run_spec);
        let counts = chaos.counts();

        // Invariant 1: whatever survived must parse cleanly.
        let (on_disk, torn_tail) = match std::fs::metadata(&cache_path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), false),
            Err(e) => {
                return Err(ChaosError::Setup {
                    path: cache_path.clone(),
                    source: e,
                })
            }
            Ok(_) => match verify_file::<PointRecord>(&cache_path, campaign, version) {
                Ok(report) => (report.keys, report.torn_tail),
                Err(e) => {
                    return Err(ChaosError::UnparseableCache {
                        run,
                        error: e.to_string(),
                    })
                }
            },
        };
        let keys: BTreeSet<u64> = on_disk.iter().copied().collect();

        // Invariant 2: nothing intact before this run may vanish.
        let missing: Vec<u64> = seen_keys.difference(&keys).copied().collect();
        if !missing.is_empty() {
            return Err(ChaosError::LostRecords { run, missing });
        }
        seen_keys = keys;

        let outcome = match &result {
            Ok(outcome) => {
                // A completed run acknowledged every non-quarantined
                // fresh point; together with the resumed prefix that is
                // the whole space minus the quarantined points.
                let expected = total_points - outcome.quarantine.points();
                if on_disk.len() != expected {
                    return Err(ChaosError::AckMismatch {
                        run,
                        expected,
                        found: on_disk.len(),
                    });
                }
                if outcome.quarantine.is_empty() {
                    "completed".to_string()
                } else {
                    format!(
                        "completed ({} point(s) quarantined)",
                        outcome.quarantine.points()
                    )
                }
            }
            Err(e) => format!("failed ({e})"),
        };
        runs.push(RunSummary {
            run,
            outcome,
            fs_ops: counts.ops,
            fs_faults_injected: counts.injected(),
            on_disk: on_disk.len(),
            torn_tail,
        });
    }

    // Final clean run: resume from the survivors, no faults, no kills.
    let mut engine = SweepEngine::new(explorer.clone());
    let final_spec = SweepSpec {
        jobs: spec.jobs,
        chunk_points: spec.chunk_points,
        cache: CacheMode::Disk(spec.dir.clone()),
        ..SweepSpec::new(spec.space.clone(), spec.profiles.clone())
    };
    let outcome = engine.run(&final_spec).map_err(ChaosError::FinalRun)?;
    if !outcome.quarantine.is_empty() {
        return Err(ChaosError::FinalQuarantine {
            points: outcome.quarantine.points(),
        });
    }
    if outcome.telemetry.cache_hits != seen_keys.len() {
        return Err(ChaosError::ResumeMismatch {
            on_disk: seen_keys.len(),
            cache_hits: outcome.telemetry.cache_hits,
        });
    }
    let got_frontier = render_frontier(&outcome.frontier);
    if got_frontier != expected_frontier {
        return Err(ChaosError::FrontierMismatch {
            expected: expected_frontier,
            got: got_frontier,
        });
    }
    let final_report = verify_file::<PointRecord>(&cache_path, campaign, version).map_err(|e| {
        ChaosError::UnparseableCache {
            run: spec.runs,
            error: e.to_string(),
        }
    })?;

    Ok(ChaosReport {
        seed: spec.seed,
        total_points,
        runs,
        final_recovered: seen_keys.len(),
        final_generation: final_report.generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_model::kernel::KernelCategory;
    use ena_model::units::{GigabytesPerSec, Megahertz};

    fn small_space() -> DesignSpace {
        DesignSpace {
            cu_counts: vec![128, 256, 320],
            clocks: vec![Megahertz::new(800.0), Megahertz::new(1000.0)],
            bandwidths: vec![GigabytesPerSec::new(2000.0), GigabytesPerSec::new(3000.0)],
        }
    }

    fn profiles() -> Vec<KernelProfile> {
        vec![
            KernelProfile {
                name: "chaos-a".into(),
                category: KernelCategory::Balanced,
                ops_per_byte: 8.0,
                utilization: 0.6,
                parallelism: 0.9,
                latency_sensitivity: 0.2,
                contention_sensitivity: 0.2,
                write_fraction: 0.3,
                ext_traffic_fraction: 0.5,
                out_of_chiplet_fraction: 0.85,
                serial_fraction: 0.02,
            },
            KernelProfile {
                name: "chaos-b".into(),
                category: KernelCategory::Balanced,
                ops_per_byte: 0.5,
                utilization: 0.5,
                parallelism: 0.8,
                latency_sensitivity: 0.4,
                contention_sensitivity: 0.3,
                write_fraction: 0.4,
                ext_traffic_fraction: 0.6,
                out_of_chiplet_fraction: 0.9,
                serial_fraction: 0.05,
            },
        ]
    }

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ena-chaos-campaign-{name}"))
    }

    #[test]
    fn campaign_invariants_hold_across_seeds() {
        for seed in [0xC0FFEE, 1, 2] {
            let spec = ChaosSpec {
                seed,
                runs: 3,
                ..ChaosSpec::new(scratch("invariants"), small_space(), profiles())
            };
            let report = run_chaos_campaign(&Explorer::default(), &spec)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
            assert_eq!(report.total_points, 12);
            assert_eq!(report.runs.len(), 3);
            assert_eq!(
                report.final_recovered, 12,
                "clean final run fills the cache"
            );
            assert!(report.render().contains("invariants: all hold"));
        }
    }

    #[test]
    fn campaign_is_deterministic_for_a_fixed_seed_single_job() {
        let spec = ChaosSpec {
            jobs: 1,
            runs: 2,
            ..ChaosSpec::new(scratch("determinism"), small_space(), profiles())
        };
        let a = run_chaos_campaign(&Explorer::default(), &spec).unwrap();
        let b = run_chaos_campaign(&Explorer::default(), &spec).unwrap();
        assert_eq!(a, b, "same seed, same campaign, byte-identical report");
        assert!(
            a.runs.iter().any(|r| r.fs_faults_injected > 0),
            "default rates must actually inject faults: {a:?}"
        );
    }
}

//! Deterministic parallel design-space exploration for the ENA toolkit.
//!
//! The paper's central artifact (Sections V-VI) is a sweep: over a
//! thousand EHP configurations evaluated under a 160 W budget to find the
//! best-mean design and the Table II per-app oracles. This crate turns
//! that sweep from a loop into a subsystem:
//!
//! - [`pool`] — a std-only work-stealing thread pool with an
//!   order-independent, index-keyed merge and per-chunk supervision
//!   (caught panics, bounded retries, deterministic quarantine).
//! - [`cache`] — content-addressed memoization with a crash-consistent
//!   on-disk layer (bit-exact round-trip, per-line CRC32, explicit
//!   flush+fsync policy, atomic temp-and-rename repair, generation
//!   header) enabling checkpoint/resume, all behind the injectable
//!   [`Vfs`](ena_testkit::chaos::Vfs) filesystem trait.
//! - [`pareto`] — frontier extraction over (mean perf, peak power, peak
//!   DRAM temperature).
//! - [`engine`] — the [`SweepEngine`] tying them together, with
//!   [`Telemetry`] (cache hit rate, points/sec, per-worker utilization).
//! - [`chaos`] — seeded chaos campaigns that drive the whole stack
//!   through injected I/O faults and worker kills and assert the
//!   serving invariants (parseable caches, no lost acknowledged
//!   records, fault-free frontier).
//!
//! The headline property: a [`SweepEngine`] run is **byte-identical** to
//! the sequential [`Explorer`](ena_core::Explorer) oracle for any thread
//! count, cache state, or interruption history — parallelism and
//! memoization are pure go-faster knobs, never sources of drift.
//!
//! # Example
//!
//! ```
//! use ena_core::dse::DesignSpace;
//! use ena_core::Explorer;
//! use ena_sweep::{SweepEngine, SweepSpec};
//! use ena_workloads::paper_profiles;
//!
//! let mut engine = SweepEngine::new(Explorer::default());
//! let spec = SweepSpec {
//!     jobs: 2,
//!     ..SweepSpec::new(DesignSpace::coarse(), paper_profiles())
//! };
//! let outcome = engine.run(&spec).expect("sweep completes");
//! assert_eq!(
//!     outcome.result,
//!     Explorer::default().explore(&spec.space, &spec.profiles).unwrap(),
//! );
//! // The frontier contains the best-mean point.
//! assert!(outcome
//!     .frontier
//!     .iter()
//!     .any(|f| f.point == outcome.result.best_mean));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod engine;
pub mod pareto;
pub mod pool;

pub use cache::{
    crc32, hex_field, read_file_info, verify_file, CacheError, CacheFileInfo, CacheRecord,
    DiskCache, SyncPolicy, VerifyError, VerifyReport,
};
pub use chaos::{run_chaos_campaign, ChaosError, ChaosReport, ChaosSpec};
pub use engine::{
    campaign_digest, evaluate_batch, point_key, CacheMode, Failpoint, QuarantineEntry,
    QuarantineReport, SweepEngine, SweepError, SweepOutcome, SweepSpec, Telemetry,
};
pub use pareto::{frontier_indices, pareto_frontier, FrontierPoint};
pub use pool::{map_chunks, map_chunks_supervised, QuarantinedChunk, RetryPolicy, WorkerStats};

pub use ena_testkit::chaos::{ChaosConfig, ChaosFs, RealFs, Vfs};

//! Property-based tests for the sweep engine's headline guarantees:
//! parallel == sequential, resumed == uninterrupted, frontier sanity,
//! and bit-exact persistence.

use std::path::PathBuf;

use ena_core::dse::DesignSpace;
use ena_core::Explorer;
use ena_model::units::Watts;
use ena_sweep::{
    hex_field, map_chunks_supervised, CacheMode, CacheRecord, DiskCache, RetryPolicy, SweepEngine,
    SweepError, SweepSpec,
};
use ena_testkit::prelude::*;
use ena_workloads::paper_profiles;

/// A fresh per-test scratch directory under the cargo tmp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn coarse_spec() -> SweepSpec {
    SweepSpec::new(DesignSpace::coarse(), paper_profiles())
}

/// Byte-level rendering of a result: `Debug` of `f64` prints the shortest
/// round-trip decimal, so distinct bit patterns render distinctly.
fn render<T: std::fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}

#[test]
fn parallel_equals_sequential_for_every_job_count() {
    let spec = coarse_spec();
    let oracle = render(
        &Explorer::default()
            .explore(&spec.space, &spec.profiles)
            .unwrap(),
    );
    for jobs in [1, 2, 7] {
        let outcome = SweepEngine::new(Explorer::default())
            .run(&SweepSpec {
                jobs,
                ..spec.clone()
            })
            .expect("sweep completes");
        assert_eq!(render(&outcome.result), oracle, "jobs = {jobs}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chunk geometry is a pure scheduling knob: any chunk size at any
    /// worker count merges to the same bytes.
    #[test]
    fn chunking_never_changes_the_result(
        chunk_points in 1u32..64,
        jobs in 1u32..8,
    ) {
        let spec = coarse_spec();
        let oracle = render(&Explorer::default().explore(&spec.space, &spec.profiles).unwrap());
        let outcome = SweepEngine::new(Explorer::default())
            .run(&SweepSpec {
                jobs: jobs as usize,
                chunk_points: chunk_points as usize,
                ..spec
            })
            .expect("sweep completes");
        prop_assert!(render(&outcome.result) == oracle);
    }

    /// Killing a campaign after `k` fresh points and resuming from its
    /// checkpoint reproduces the uninterrupted sweep byte-for-byte.
    #[test]
    fn resumed_sweep_equals_uninterrupted(k in 1u32..489) {
        let dir = scratch(&format!("resume-{k}"));
        let spec = SweepSpec {
            jobs: 2,
            cache: CacheMode::Disk(dir.clone()),
            ..coarse_spec()
        };
        let total = spec.space.len();

        let interrupted = SweepEngine::new(Explorer::default()).run(&SweepSpec {
            fresh_limit: Some(k as usize),
            ..spec.clone()
        });
        match interrupted {
            Err(SweepError::Interrupted { completed, remaining }) => {
                prop_assert!(completed == k as usize);
                prop_assert!(completed + remaining == total);
            }
            other => prop_assert!(false, "expected interruption, got {other:?}"),
        }

        // A brand-new engine (fresh process) resumes from disk.
        let resumed = SweepEngine::new(Explorer::default())
            .run(&spec)
            .expect("resumed sweep completes");
        prop_assert!(resumed.telemetry.cache_hits == k as usize);
        prop_assert!(resumed.telemetry.fresh_evals == total - k as usize);

        let oracle = Explorer::default().explore(&spec.space, &spec.profiles).unwrap();
        prop_assert!(render(&resumed.result) == render(&oracle));
    }

    /// Parallel equals sequential under any (feasible) power budget, not
    /// just the paper's 160 W.
    #[test]
    fn budgets_do_not_break_the_equivalence(budget_w in 110u32..220) {
        let explorer = Explorer {
            budget: Watts::new(f64::from(budget_w)),
            ..Explorer::default()
        };
        let spec = SweepSpec { jobs: 7, ..coarse_spec() };
        let oracle = render(&explorer.explore(&spec.space, &spec.profiles).unwrap());
        let outcome = SweepEngine::new(explorer)
            .run(&spec)
            .expect("sweep completes");
        prop_assert!(render(&outcome.result) == oracle);
    }
}

/// A minimal record type for corrupting caches without paying for real
/// design-point evaluations.
#[derive(Clone, Debug, PartialEq)]
struct TestRecord {
    value: f64,
}

impl CacheRecord for TestRecord {
    const TAG: &'static str = "proptest/1";

    fn encode(&self) -> String {
        format!("{:016x}", self.value.to_bits())
    }

    fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self> {
        Some(TestRecord {
            value: f64::from_bits(hex_field(fields.next()?)?),
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any corruption of a cache file — truncation at an arbitrary byte,
    /// or an arbitrary flipped byte — degrades to cache misses, never a
    /// `CacheError`: `open` still succeeds, returns a (possibly empty)
    /// prefix of the original records, and the rewritten file serves
    /// clean hits on the next open.
    #[test]
    fn corrupt_cache_entries_degrade_to_misses(
        records in 1u32..8,
        damage_at in 0.0f64..1.0,
        mode in 0u32..3,
    ) {
        let flip = mode >= 1;
        let dir = scratch(&format!("corrupt-{records}-{mode}"));
        let originals: Vec<(u64, TestRecord)> = (0..u64::from(records))
            .map(|i| (i + 1, TestRecord { value: 0.25 + i as f64 }))
            .collect();
        let (mut cache, _) = DiskCache::<TestRecord>::open(&dir, 7, "v1").unwrap();
        for (key, rec) in &originals {
            cache.append(*key, rec).unwrap();
        }
        let path = cache.path().to_path_buf();
        drop(cache);

        // Damage an arbitrary offset: cut the tail (mode 0), overwrite
        // one byte with a character outside the format's alphabet
        // (mode 1), or — the case only the CRC trailer can catch —
        // overwrite it with a *valid* hex digit (mode 2).
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = ((bytes.len() - 1) as f64 * damage_at) as usize;
        if flip {
            bytes[offset] = if mode == 1 {
                b'z'
            } else if bytes[offset] == b'a' {
                b'b'
            } else {
                b'a'
            };
            std::fs::write(&path, &bytes).unwrap();
        } else {
            std::fs::write(&path, &bytes[..offset]).unwrap();
        }

        // Corrupt content is not an I/O error; the survivors are an
        // exact prefix of what was written.
        let (mut cache, loaded) = DiskCache::<TestRecord>::open(&dir, 7, "v1")
            .expect("corruption must degrade to misses, not CacheError");
        prop_assert!(loaded.len() <= originals.len());
        prop_assert!(
            loaded == originals[..loaded.len()],
            "flip={flip} offset={offset} loaded={loaded:?}"
        );

        // The repaired file accepts the missing records again and then
        // serves the full campaign cleanly.
        for (key, rec) in &originals[loaded.len()..] {
            cache.append(*key, rec).unwrap();
        }
        drop(cache);
        let (_, reloaded) = DiskCache::<TestRecord>::open(&dir, 7, "v1").unwrap();
        prop_assert!(reloaded == originals);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A panicking closure in one chunk neither deadlocks the pool nor
    /// corrupts any other chunk: at every worker count the poisoned
    /// chunk is quarantined after its full retry allowance and every
    /// other chunk's results are byte-identical to the panic-free run.
    #[test]
    fn a_panicking_chunk_is_contained(
        n_chunks in 2usize..12,
        victim in 0usize..12,
        jobs_pick in 0usize..4,
        retries in 0u32..3,
    ) {
        let jobs = [1, 2, 4, 8][jobs_pick];
        let victim = victim % n_chunks;
        let chunks: Vec<Vec<u64>> = (0..n_chunks as u64)
            .map(|c| (0..4).map(|i| c * 100 + i).collect())
            .collect();
        let retry = RetryPolicy { max_retries: retries, backoff_us: 5.0 };
        let victim_marker = victim as u64 * 100;

        let (verdicts, _) = map_chunks_supervised(
            jobs,
            chunks.clone(),
            &retry,
            |x| {
                assert!(*x != victim_marker, "poisoned item {x}");
                x * 3
            },
            |index, _| assert!(index != victim, "quarantined chunk reached on_chunk"),
        ).expect("supervised pool never dies from a caught panic");

        let (oracle, _) = map_chunks_supervised(
            jobs,
            chunks,
            &retry,
            |x| x * 3,
            |_, _| {},
        ).expect("panic-free run completes");

        prop_assert!(verdicts.len() == n_chunks);
        for (i, (got, want)) in verdicts.iter().zip(&oracle).enumerate() {
            if i == victim {
                let q = got.as_ref().expect_err("victim chunk must be quarantined");
                prop_assert!(q.index == victim);
                prop_assert!(q.attempts == retries + 1, "attempts={}", q.attempts);
                prop_assert!(q.message.contains("poisoned item"), "{}", q.message);
            } else {
                prop_assert!(
                    got.as_ref().ok() == want.as_ref().ok(),
                    "chunk {i} corrupted by a panic in chunk {victim}"
                );
            }
        }
    }
}

#[test]
fn pareto_frontier_contains_the_best_mean_point() {
    let spec = coarse_spec();
    let outcome = SweepEngine::new(Explorer::default())
        .run(&spec)
        .expect("sweep completes");
    assert!(
        outcome
            .frontier
            .iter()
            .any(|f| f.point == outcome.result.best_mean),
        "frontier misses best-mean {:?}",
        outcome.result.best_mean
    );
    // Frontier points are mutually non-dominated on the raw axes.
    for a in &outcome.frontier {
        for b in &outcome.frontier {
            let dominates = a.score >= b.score
                && a.peak_power_w <= b.peak_power_w
                && a.peak_dram_c <= b.peak_dram_c
                && (a.score > b.score
                    || a.peak_power_w < b.peak_power_w
                    || a.peak_dram_c < b.peak_dram_c);
            assert!(!dominates, "{:?} dominates {:?}", a.point, b.point);
        }
    }
}

#[test]
fn disk_cache_round_trips_bit_exactly() {
    let dir = scratch("roundtrip");
    let spec = SweepSpec {
        jobs: 2,
        cache: CacheMode::Disk(dir),
        ..coarse_spec()
    };
    let cold = SweepEngine::new(Explorer::default())
        .run(&spec)
        .expect("cold sweep completes");
    assert_eq!(cold.telemetry.cache_hits, 0);

    let warm = SweepEngine::new(Explorer::default())
        .run(&spec)
        .expect("warm sweep completes");
    assert_eq!(warm.telemetry.cache_hits, spec.space.len());
    assert_eq!(warm.telemetry.fresh_evals, 0);

    // Every record — not just the reductions — survives the disk
    // round-trip bit-for-bit.
    assert_eq!(render(&cold.records), render(&warm.records));
    assert_eq!(render(&cold.result), render(&warm.result));
    assert_eq!(render(&cold.frontier), render(&warm.frontier));
}

#[test]
fn bumping_the_model_version_forces_full_reevaluation() {
    let dir = scratch("version-bump");
    let spec = SweepSpec {
        cache: CacheMode::Disk(dir),
        ..coarse_spec()
    };
    let total = spec.space.len();

    let v1 = SweepEngine::new(Explorer::default())
        .run(&spec)
        .expect("v1 sweep completes");
    assert_eq!(v1.telemetry.fresh_evals, total);

    // Same cache directory, bumped stamp: every stale entry is evicted
    // and every point re-evaluated.
    let mut bumped = SweepEngine::new(Explorer::default()).with_version("ena-model/test-bump");
    let v2 = bumped.run(&spec).expect("bumped sweep completes");
    assert_eq!(v2.telemetry.cache_hits, 0, "stale entries must not hit");
    assert_eq!(v2.telemetry.fresh_evals, total);
    assert_eq!(render(&v1.result), render(&v2.result));

    // The rewritten cache now serves the bumped stamp.
    let again = bumped.run(&spec).expect("warm bumped sweep completes");
    assert_eq!(again.telemetry.cache_hits, total);
}

#[test]
fn worker_telemetry_accounts_for_every_point() {
    let spec = SweepSpec {
        jobs: 4,
        chunk_points: 8,
        ..coarse_spec()
    };
    let outcome = SweepEngine::new(Explorer::default())
        .run(&spec)
        .expect("sweep completes");
    let t = &outcome.telemetry;
    assert_eq!(t.workers.len(), 4);
    assert_eq!(
        t.workers.iter().map(|w| w.points).sum::<u64>(),
        spec.space.len() as u64
    );
    assert!(t.points_per_sec() > 0.0);
    assert_eq!(t.hit_rate(), 0.0);
}

//! Bulk-synchronous scale-out estimation over a simulated fabric.
//!
//! The analytic scaling path ([`project_system`]) multiplies node
//! throughput by the node count: communication is free. This module
//! simulates what the analytic path abstracts away. One iteration of a
//! bulk-synchronous application is
//!
//! ```text
//! iteration = max over nodes (compute x straggler slowdown)
//!           + halo exchange + all-reduce
//! ```
//!
//! with the collective times compiled against the concrete (possibly
//! degraded) fabric by [`crate::collective::schedule`]. The fraction of
//! the iteration a *healthy* node spends computing is the fleet
//! efficiency; achieved exaflops are the linear projection derated by
//! exactly that factor — computed with the same floating-point
//! expression as [`SystemProjection::derated`], so at full health the
//! analytic and simulated paths agree *bitwise*, and the end-to-end
//! consistency suite can assert equality rather than tolerance.
//!
//! [`project_system`]: ena_core::system::project_system
//! [`SystemProjection`]: ena_core::system::SystemProjection

use std::collections::BTreeMap;

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_core::system::SystemProjection;
use ena_model::config::EhpConfig;
use ena_workloads::profile_for;

use crate::collective::{schedule, CollectiveKind};
use crate::topology::{FabricError, FabricGraph};

/// Relative tolerance within which the analytic linear projection must
/// agree with the simulated fabric estimate at small node counts
/// (N in {2, 4, 8}).
///
/// The gap between the two paths *is* the communication efficiency
/// `1 - e`: the linear projection assumes `e = 1`. With the standard
/// 8 GB working set, the compute phase of a memory-bound kernel runs
/// ~2.7 ms while halo + all-reduce cost tens to a few hundred
/// microseconds on any shipped topology, so `e` stays above 0.9 at
/// small N and the relative gap below this bound. A breach means a
/// calibration drifted on one side — the consistency suite in
/// `tests/end_to_end.rs` exists to catch exactly that.
pub const SMALL_N_TOLERANCE: f64 = 0.10;

/// Everything that determines one scale-out estimate besides the fabric.
#[derive(Clone, Debug)]
pub struct ScaleOutSpec {
    /// Paper workload driving the node model (e.g. `"CoMD"`).
    pub workload: String,
    /// Per-node hardware configuration.
    pub base: EhpConfig,
    /// Per-node working set in bytes (sets the compute phase and, via
    /// its surface-to-volume ratio, the halo size).
    pub payload_bytes: f64,
    /// Per-node all-reduce contribution in bytes (residuals, dot
    /// products).
    pub reduce_bytes: f64,
}

impl ScaleOutSpec {
    /// The standard fleet spec: paper-baseline nodes, an 8 GB working
    /// set (the EHP's in-package capacity), 1 MB reductions.
    pub fn standard(workload: impl Into<String>) -> Self {
        Self {
            workload: workload.into(),
            base: EhpConfig::paper_baseline(),
            payload_bytes: 8e9,
            reduce_bytes: 1e6,
        }
    }

    /// Halo bytes from the working set's surface-to-volume ratio: a 3D
    /// domain of `V` bytes has faces of order `V^(2/3)`.
    pub fn halo_bytes(&self) -> f64 {
        self.payload_bytes.max(0.0).powf(2.0 / 3.0)
    }
}

/// One fleet-level estimate over a concrete fabric state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleOutEstimate {
    /// Surviving nodes.
    pub nodes_alive: usize,
    /// Healthy-node compute phase (us).
    pub compute_us: f64,
    /// Slowest node's compute phase after straggler slowdowns (us).
    pub slowest_compute_us: f64,
    /// Halo exchange + all-reduce time on this fabric (us).
    pub comm_us: f64,
    /// Fraction of the iteration a healthy node spends computing.
    pub efficiency: f64,
    /// Achieved fleet throughput in exaflops.
    pub exaflops: f64,
    /// Fleet power in megawatts (stragglers and blocked nodes still
    /// burn full power).
    pub power_mw: f64,
    /// Per-node throughput in teraflops.
    pub node_teraflops: f64,
}

impl ScaleOutEstimate {
    /// Relative gap between this estimate and an analytic projection's
    /// exaflops (the quantity bounded by [`SMALL_N_TOLERANCE`]).
    pub fn analytic_gap(&self, projection: &SystemProjection) -> f64 {
        if projection.exaflops == 0.0 {
            0.0
        } else {
            (self.exaflops - projection.exaflops).abs() / projection.exaflops
        }
    }
}

/// Estimates fleet throughput for `spec` on the current state of
/// `graph`, with `stragglers` mapping node index to compute-slowdown
/// factor (1.0 = healthy; dead nodes are read from the graph).
///
/// # Errors
///
/// [`FabricError::UnknownWorkload`] for an uncalibrated workload name,
/// plus any routing error while compiling the collectives.
pub fn estimate(
    graph: &FabricGraph,
    spec: &ScaleOutSpec,
    stragglers: &BTreeMap<u32, f64>,
) -> Result<ScaleOutEstimate, FabricError> {
    let profile = profile_for(&spec.workload)
        .ok_or_else(|| FabricError::UnknownWorkload(spec.workload.clone()))?;
    let sim = NodeSimulator::new();
    let eval = sim.evaluate(&spec.base, &profile, &EvalOptions::default());
    let node_gflops = eval.perf.throughput.value();
    let node_tf = eval.perf.throughput.teraflops();

    // Compute phase: the iteration touches the working set once at the
    // kernel's arithmetic intensity, at the node's *achieved* rate.
    let ops = spec.payload_bytes * profile.ops_per_byte.max(1e-6);
    let compute_us = if node_gflops > 0.0 {
        ops / (node_gflops * 1e3)
    } else {
        0.0
    };

    // Bulk-synchronous barrier: everyone waits for the slowest node.
    let alive = graph.alive_ehp();
    let worst_slowdown = alive
        .iter()
        .map(|&i| stragglers.get(&(i as u32)).copied().unwrap_or(1.0).max(1.0))
        .fold(1.0f64, f64::max);
    let slowest_compute_us = compute_us * worst_slowdown;

    let halo = schedule(graph, CollectiveKind::HaloExchange, spec.halo_bytes())?;
    let reduce = schedule(graph, CollectiveKind::AllReduceRing, spec.reduce_bytes)?;
    let comm_us = halo.total.value() + reduce.total.value();

    let iteration_us = slowest_compute_us + comm_us;
    let efficiency = if iteration_us > 0.0 {
        compute_us / iteration_us
    } else {
        1.0
    };

    // Bitwise-identical to project_system(..).derated(efficiency) for a
    // fully-alive fleet: same sub-expressions in the same order.
    let exaflops = (node_tf * alive.len() as f64 / 1e6) * efficiency.clamp(0.0, 1.0);
    let power_mw = eval.node_power().value() * alive.len() as f64 / 1e6;

    Ok(ScaleOutEstimate {
        nodes_alive: alive.len(),
        compute_us,
        slowest_compute_us,
        comm_us,
        efficiency,
        exaflops,
        power_mw,
        node_teraflops: node_tf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FabricKind;
    use ena_core::system::project_system;

    fn healthy_estimate(kind: FabricKind, nodes: u32) -> ScaleOutEstimate {
        let graph = FabricGraph::build(kind, nodes).unwrap();
        estimate(&graph, &ScaleOutSpec::standard("CoMD"), &BTreeMap::new()).unwrap()
    }

    #[test]
    fn healthy_fleets_are_communication_efficient() {
        for kind in FabricKind::ALL {
            let est = healthy_estimate(kind, 8);
            assert!(
                est.efficiency > 1.0 - SMALL_N_TOLERANCE && est.efficiency <= 1.0,
                "{kind}: efficiency = {}",
                est.efficiency
            );
            assert!(est.comm_us > 0.0);
            assert!(est.compute_us > est.comm_us);
        }
    }

    #[test]
    fn the_estimate_matches_the_derated_projection_bitwise() {
        let spec = ScaleOutSpec::standard("CoMD");
        let profile = profile_for("CoMD").unwrap();
        for nodes in [2u32, 4, 8] {
            let est = healthy_estimate(FabricKind::Torus, nodes);
            let projection = project_system(
                &NodeSimulator::new(),
                &spec.base,
                &profile,
                &EvalOptions::default(),
                u64::from(nodes),
            );
            let derated = projection.derated(est.efficiency);
            assert_eq!(est.exaflops, derated.exaflops, "nodes = {nodes}");
            assert!(est.analytic_gap(&projection) < SMALL_N_TOLERANCE);
        }
    }

    #[test]
    fn stragglers_stretch_the_barrier_without_changing_power() {
        let graph = FabricGraph::build(FabricKind::DragonflyLite, 16).unwrap();
        let spec = ScaleOutSpec::standard("CoMD");
        let healthy = estimate(&graph, &spec, &BTreeMap::new()).unwrap();
        let mut stragglers = BTreeMap::new();
        stragglers.insert(5u32, 1.5);
        let slow = estimate(&graph, &spec, &stragglers).unwrap();
        assert!(slow.slowest_compute_us > healthy.slowest_compute_us);
        assert!(slow.efficiency < healthy.efficiency);
        assert!(slow.exaflops < healthy.exaflops);
        assert_eq!(slow.power_mw, healthy.power_mw);
        // Sub-unity slowdowns clamp to healthy rather than speeding up.
        let mut bogus = BTreeMap::new();
        bogus.insert(5u32, 0.5);
        let clamped = estimate(&graph, &spec, &bogus).unwrap();
        assert_eq!(clamped.slowest_compute_us, healthy.slowest_compute_us);
    }

    #[test]
    fn dead_nodes_shrink_the_fleet() {
        let mut graph = FabricGraph::build(FabricKind::Torus, 16).unwrap();
        let spec = ScaleOutSpec::standard("CoMD");
        let healthy = estimate(&graph, &spec, &BTreeMap::new()).unwrap();
        graph.fail_ehp(7).unwrap();
        let degraded = estimate(&graph, &spec, &BTreeMap::new()).unwrap();
        assert_eq!(degraded.nodes_alive, 15);
        assert!(degraded.exaflops < healthy.exaflops);
        assert!(degraded.power_mw < healthy.power_mw);
    }

    #[test]
    fn unknown_workloads_are_errors() {
        let graph = FabricGraph::build(FabricKind::Torus, 4).unwrap();
        let mut spec = ScaleOutSpec::standard("CoMD");
        spec.workload = "NoSuchKernel".into();
        assert!(matches!(
            estimate(&graph, &spec, &BTreeMap::new()),
            Err(FabricError::UnknownWorkload(_))
        ));
    }
}

//! Collective-communication schedules with per-link contention.
//!
//! A collective is compiled against a concrete (possibly degraded)
//! [`FabricGraph`] into [`Round`]s of concurrent [`Transfer`]s. Each
//! round's duration is the *serialization* time of its most-loaded
//! channel — every transfer whose route crosses a channel queues behind
//! the others, so bytes accumulate per channel and the bottleneck sets
//! the pace — plus the longest route's end-to-end *latency*. Rounds that
//! repeat (the all-reduce ring's `2(n-1)` steps) carry a repeat count
//! instead of being materialized, keeping schedules small at any scale.
//!
//! Routes come from [`FabricGraph::route`], which is deterministic, so a
//! schedule (and its [`CollectiveSchedule::digest`]) is a pure function
//! of the graph state — the second half of the cross-process determinism
//! guarantee.

use std::collections::BTreeMap;

use core::fmt;

use ena_faults::RetryPolicy;
use ena_model::hash::{StableHash, StableHasher};
use ena_model::units::Microseconds;

use crate::topology::{FabricError, FabricGraph};

/// The shipped collective patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollectiveKind {
    /// Ring all-reduce: `2(n-1)` steps of neighbor chunk exchange.
    AllReduceRing,
    /// Nearest-neighbor halo exchange (right then left around the ring).
    HaloExchange,
    /// Dense all-to-all: everyone sends a slice to everyone else.
    AllToAll,
}

impl CollectiveKind {
    /// Every shipped collective, in a fixed order.
    pub const ALL: [CollectiveKind; 3] = [
        CollectiveKind::AllReduceRing,
        CollectiveKind::HaloExchange,
        CollectiveKind::AllToAll,
    ];

    /// The report label.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::AllReduceRing => "all-reduce-ring",
            CollectiveKind::HaloExchange => "halo-exchange",
            CollectiveKind::AllToAll => "all-to-all",
        }
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl StableHash for CollectiveKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            CollectiveKind::AllReduceRing => 0,
            CollectiveKind::HaloExchange => 1,
            CollectiveKind::AllToAll => 2,
        });
    }
}

/// One point-to-point message inside a round.
#[derive(Clone, Debug, PartialEq)]
pub struct Transfer {
    /// Source EHP vertex.
    pub src: usize,
    /// Destination EHP vertex.
    pub dst: usize,
    /// Message size in bytes.
    pub bytes: f64,
    /// Directed channel indices the message traverses.
    pub route: Vec<usize>,
}

/// A set of transfers that start together.
#[derive(Clone, Debug, PartialEq)]
pub struct Round {
    /// The concurrent transfers.
    pub transfers: Vec<Transfer>,
    /// Time the most-loaded channel spends draining its queued bytes.
    pub serialization_us: f64,
    /// End-to-end latency of the longest route in the round.
    pub latency_us: f64,
    /// How many times this round executes back to back.
    pub repeat: u64,
}

impl Round {
    /// Duration of one execution of this round.
    pub fn step_us(&self) -> f64 {
        self.serialization_us + self.latency_us
    }
}

/// A compiled collective.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectiveSchedule {
    /// The pattern this schedule implements.
    pub kind: CollectiveKind,
    /// The rounds, in execution order.
    pub rounds: Vec<Round>,
    /// Total time including repeats.
    pub total: Microseconds,
    /// Most bytes any single channel carries within one round — the
    /// contention hot spot.
    pub peak_link_bytes: f64,
}

impl CollectiveSchedule {
    /// Stable digest of the full schedule (routes, loads, timings): what
    /// the cross-process determinism suite compares.
    pub fn digest(&self) -> u64 {
        let mut h = StableHasher::new();
        self.kind.stable_hash(&mut h);
        h.write_usize(self.rounds.len());
        for round in &self.rounds {
            h.write_u64(round.repeat);
            h.write_f64(round.serialization_us);
            h.write_f64(round.latency_us);
            h.write_usize(round.transfers.len());
            for t in &round.transfers {
                h.write_usize(t.src);
                h.write_usize(t.dst);
                h.write_f64(t.bytes);
                h.write_usize(t.route.len());
                for &li in &t.route {
                    h.write_usize(li);
                }
            }
        }
        h.write_f64(self.total.value());
        h.write_f64(self.peak_link_bytes);
        h.finish()
    }
}

/// Routes one message and prices it into the per-channel load map.
fn transfer(
    graph: &FabricGraph,
    loads: &mut BTreeMap<usize, f64>,
    src: usize,
    dst: usize,
    bytes: f64,
) -> Result<Transfer, FabricError> {
    let route = graph.route(src, dst)?;
    for &li in &route {
        *loads.entry(li).or_insert(0.0) += bytes;
    }
    Ok(Transfer {
        src,
        dst,
        bytes,
        route,
    })
}

/// Seals a round: serialization from the loaded channels' *effective*
/// (degradation-scaled) bandwidth, latency from the longest route.
fn seal_round(
    graph: &FabricGraph,
    transfers: Vec<Transfer>,
    loads: &BTreeMap<usize, f64>,
    repeat: u64,
) -> Round {
    let mut serialization_us: f64 = 0.0;
    for (&li, &bytes) in loads {
        let gbps = graph.channel_gbps(li);
        if gbps > 0.0 {
            // GB/s is bytes/ns, so bytes / (gbps * 1e3) is microseconds.
            serialization_us = serialization_us.max(bytes / (gbps * 1e3));
        }
    }
    let mut latency_us: f64 = 0.0;
    for t in &transfers {
        let route_latency: f64 = t
            .route
            .iter()
            .filter_map(|&li| graph.links().get(li))
            .map(|l| l.latency.value())
            .sum();
        latency_us = latency_us.max(route_latency);
    }
    Round {
        transfers,
        serialization_us,
        latency_us,
        repeat,
    }
}

/// Compiles `kind` moving `bytes_per_node` bytes of application data per
/// node over the surviving endpoints of `graph`.
///
/// # Errors
///
/// Propagates routing errors — in particular
/// [`FabricError::Unreachable`] when degradation has partitioned the
/// survivors.
pub fn schedule(
    graph: &FabricGraph,
    kind: CollectiveKind,
    bytes_per_node: f64,
) -> Result<CollectiveSchedule, FabricError> {
    let alive = graph.alive_ehp();
    let n = alive.len();
    let mut rounds = Vec::new();
    if n >= 2 {
        match kind {
            CollectiveKind::AllReduceRing => {
                // Ring all-reduce over the alive-node ring: each of the
                // 2(n-1) steps exchanges one 1/n chunk with the ring
                // successor. All steps are load-isomorphic, so compile
                // one representative round with a repeat count.
                let chunk = bytes_per_node / n as f64;
                let mut loads = BTreeMap::new();
                let mut transfers = Vec::with_capacity(n);
                for (i, &src) in alive.iter().enumerate() {
                    let dst = alive[(i + 1) % n];
                    transfers.push(transfer(graph, &mut loads, src, dst, chunk)?);
                }
                rounds.push(seal_round(graph, transfers, &loads, 2 * (n as u64 - 1)));
            }
            CollectiveKind::HaloExchange => {
                // Right-neighbor shift, then left-neighbor shift: the two
                // directions use different channels (asymmetric links),
                // so they are separate rounds.
                for step in 0..2usize {
                    let mut loads = BTreeMap::new();
                    let mut transfers = Vec::with_capacity(n);
                    for (i, &src) in alive.iter().enumerate() {
                        let dst = if step == 0 {
                            alive[(i + 1) % n]
                        } else {
                            alive[(i + n - 1) % n]
                        };
                        transfers.push(transfer(graph, &mut loads, src, dst, bytes_per_node)?);
                    }
                    rounds.push(seal_round(graph, transfers, &loads, 1));
                }
            }
            CollectiveKind::AllToAll => {
                // One dense round: every survivor slices its payload over
                // the other n-1.
                let slice = bytes_per_node / (n as f64 - 1.0);
                let mut loads = BTreeMap::new();
                let mut transfers = Vec::with_capacity(n * (n - 1));
                for &src in &alive {
                    for &dst in &alive {
                        if src != dst {
                            transfers.push(transfer(graph, &mut loads, src, dst, slice)?);
                        }
                    }
                }
                rounds.push(seal_round(graph, transfers, &loads, 1));
            }
        }
    }
    let total: f64 = rounds.iter().map(|r| r.step_us() * r.repeat as f64).sum();
    let peak_link_bytes = rounds
        .iter()
        .flat_map(|r| {
            // Recompute per-round channel loads from the transfers: the
            // sealed rounds dropped the maps.
            let mut loads = BTreeMap::new();
            for t in &r.transfers {
                for &li in &t.route {
                    *loads.entry(li).or_insert(0.0) += t.bytes;
                }
            }
            loads.into_values()
        })
        .fold(0.0f64, f64::max);
    Ok(CollectiveSchedule {
        kind,
        rounds,
        total: Microseconds::new(total),
        peak_link_bytes,
    })
}

/// Per-link CRC retransmit pricing for collective schedules.
///
/// Inter-node links protect flits with CRC; a failed check retransmits
/// after a bounded exponential backoff governed by the hardened
/// [`RetryPolicy`]. Pricing is *expected-value* and therefore
/// deterministic: the same model applied to the same schedule always
/// yields the same stretched schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetransmitModel {
    /// Mean CRC failures per gigabyte crossing one link. Zero disables
    /// the model (the schedule is returned byte-identical).
    pub errors_per_gb: f64,
    /// Retry policy bounding attempts, backoff, and total timeout.
    pub retry: RetryPolicy,
}

impl RetransmitModel {
    /// The acceptance model: one CRC failure per ~20 GB per link under
    /// the default bounded-backoff policy.
    pub fn standard() -> Self {
        Self {
            errors_per_gb: 0.05,
            retry: RetryPolicy::default(),
        }
    }

    /// Probability that a channel carrying `bytes` suffers at least one
    /// CRC failure (Poisson arrival of errors along the payload).
    pub fn failure_probability(&self, bytes: f64) -> f64 {
        1.0 - (-(bytes / 1e9) * self.errors_per_gb).exp()
    }

    /// Expected transmissions per delivery when each attempt fails with
    /// probability `p`, truncated at the retry budget: `sum p^i`.
    pub fn expected_transmissions(&self, p: f64) -> f64 {
        let attempts = self.retry.max_retries.min(64);
        let mut sum = 0.0;
        let mut term = 1.0;
        for _ in 0..=attempts {
            sum += term;
            term *= p;
        }
        sum
    }

    /// Expected backoff stall per delivery: each retry `i` happens with
    /// probability `p^i` and waits the policy's doubling (capped)
    /// backoff. Bounded by the policy's worst-case timeout, so a lossy
    /// link can stall a round but never hang it.
    pub fn expected_backoff_us(&self, p: f64) -> f64 {
        let attempts = self.retry.max_retries.min(64);
        let mut total = 0.0;
        let mut prob = 1.0;
        for attempt in 1..=attempts {
            prob *= p;
            total += prob * self.retry.backoff_for(attempt);
        }
        total.min(self.retry.timeout_us())
    }
}

/// Compiles `kind` like [`schedule`], then stretches every round by the
/// expected CRC retransmit cost on its most-loaded channel: the
/// serialization time scales by the expected transmission count and the
/// round latency absorbs the expected (bounded) backoff stall.
///
/// A zero-error model returns the plain schedule byte-identically, so
/// healthy-path digests and goldens are unaffected.
///
/// # Errors
///
/// Propagates routing errors exactly as [`schedule`] does.
pub fn schedule_with_retransmits(
    graph: &FabricGraph,
    kind: CollectiveKind,
    bytes_per_node: f64,
    model: &RetransmitModel,
) -> Result<CollectiveSchedule, FabricError> {
    let base = schedule(graph, kind, bytes_per_node)?;
    if model.errors_per_gb <= 0.0 {
        return Ok(base);
    }
    let peak_link_bytes = base.peak_link_bytes;
    let mut rounds = base.rounds;
    for round in &mut rounds {
        let mut loads = BTreeMap::new();
        for t in &round.transfers {
            for &li in &t.route {
                *loads.entry(li).or_insert(0.0) += t.bytes;
            }
        }
        let peak = loads.into_values().fold(0.0f64, f64::max);
        let p = model.failure_probability(peak);
        round.serialization_us *= model.expected_transmissions(p);
        round.latency_us += model.expected_backoff_us(p);
    }
    let total: f64 = rounds.iter().map(|r| r.step_us() * r.repeat as f64).sum();
    Ok(CollectiveSchedule {
        kind,
        rounds,
        total: Microseconds::new(total),
        peak_link_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FabricKind;

    fn fabric(kind: FabricKind, n: u32) -> FabricGraph {
        FabricGraph::build(kind, n).unwrap()
    }

    #[test]
    fn all_reduce_repeats_two_n_minus_one_times() {
        let g = fabric(FabricKind::Torus, 8);
        let s = schedule(&g, CollectiveKind::AllReduceRing, 1e6).unwrap();
        assert_eq!(s.rounds.len(), 1);
        assert_eq!(s.rounds.first().unwrap().repeat, 14);
        assert_eq!(s.rounds.first().unwrap().transfers.len(), 8);
        assert!(s.total.value() > 0.0);
    }

    #[test]
    fn halo_shifts_right_then_left_in_separate_rounds() {
        let g = fabric(FabricKind::Torus, 8);
        let s = schedule(&g, CollectiveKind::HaloExchange, 4e6).unwrap();
        assert_eq!(s.rounds.len(), 2);
        for round in &s.rounds {
            assert_eq!(round.transfers.len(), 8);
            assert_eq!(round.repeat, 1);
            assert!(round.step_us() > 0.0);
        }
        // The reverse channels (48 GB/s) bottleneck each shift: the
        // wrap-around transfer crosses one in both directions.
        let first = s.rounds.first().unwrap();
        assert!((first.serialization_us - 4e6 / 48e3).abs() < 1e-9);
    }

    #[test]
    fn all_to_all_is_the_contention_heavy_pattern() {
        let g = fabric(FabricKind::FatTree, 16);
        let a2a = schedule(&g, CollectiveKind::AllToAll, 1e6).unwrap();
        let halo = schedule(&g, CollectiveKind::HaloExchange, 1e6).unwrap();
        assert_eq!(a2a.rounds.first().unwrap().transfers.len(), 16 * 15);
        assert!(
            a2a.peak_link_bytes > halo.peak_link_bytes,
            "a2a {} vs halo {}",
            a2a.peak_link_bytes,
            halo.peak_link_bytes
        );
    }

    #[test]
    fn degraded_links_stretch_serialization() {
        let healthy = fabric(FabricKind::DragonflyLite, 16);
        let before = schedule(&healthy, CollectiveKind::AllToAll, 1e6).unwrap();
        let mut degraded = fabric(FabricKind::DragonflyLite, 16);
        degraded.degrade_route(0, 12, 80).unwrap();
        let after = schedule(&degraded, CollectiveKind::AllToAll, 1e6).unwrap();
        assert!(after.total > before.total);
    }

    #[test]
    fn dead_nodes_drop_out_of_the_pattern() {
        let mut g = fabric(FabricKind::DragonflyLite, 16);
        g.fail_ehp(3).unwrap();
        g.fail_ehp(9).unwrap();
        let s = schedule(&g, CollectiveKind::AllReduceRing, 1e6).unwrap();
        let round = s.rounds.first().unwrap();
        assert_eq!(round.transfers.len(), 14);
        assert_eq!(round.repeat, 26);
        assert!(round
            .transfers
            .iter()
            .all(|t| t.src != 3 && t.dst != 3 && t.src != 9 && t.dst != 9));
    }

    #[test]
    fn single_survivor_schedules_are_empty() {
        let mut g = fabric(FabricKind::Torus, 2);
        g.fail_ehp(1).unwrap();
        for kind in CollectiveKind::ALL {
            let s = schedule(&g, kind, 1e6).unwrap();
            assert!(s.rounds.is_empty());
            assert_eq!(s.total, Microseconds::ZERO);
        }
    }

    #[test]
    fn zero_error_retransmit_model_is_byte_identical() {
        let g = fabric(FabricKind::Torus, 8);
        let model = RetransmitModel {
            errors_per_gb: 0.0,
            ..RetransmitModel::standard()
        };
        for kind in CollectiveKind::ALL {
            let plain = schedule(&g, kind, 2e6).unwrap();
            let priced = schedule_with_retransmits(&g, kind, 2e6, &model).unwrap();
            assert_eq!(plain, priced);
            assert_eq!(plain.digest(), priced.digest());
        }
    }

    #[test]
    fn retransmits_stretch_rounds_but_stay_bounded() {
        let g = fabric(FabricKind::FatTree, 16);
        let model = RetransmitModel::standard();
        for kind in CollectiveKind::ALL {
            let plain = schedule(&g, kind, 4e6).unwrap();
            let priced = schedule_with_retransmits(&g, kind, 4e6, &model).unwrap();
            assert!(priced.total > plain.total, "{kind}");
            for (before, after) in plain.rounds.iter().zip(&priced.rounds) {
                assert!(after.serialization_us >= before.serialization_us);
                // The added stall is the expected backoff, which the
                // policy bounds by its worst-case timeout.
                let added = after.latency_us - before.latency_us;
                assert!(added >= 0.0);
                assert!(added <= model.retry.timeout_us() + 1e-9);
            }
        }
    }

    #[test]
    fn lossier_links_cost_strictly_more() {
        let g = fabric(FabricKind::DragonflyLite, 16);
        let mut last = schedule(&g, CollectiveKind::AllToAll, 4e6)
            .unwrap()
            .total
            .value();
        for errors_per_gb in [0.02, 0.1, 0.5] {
            let model = RetransmitModel {
                errors_per_gb,
                ..RetransmitModel::standard()
            };
            let total = schedule_with_retransmits(&g, CollectiveKind::AllToAll, 4e6, &model)
                .unwrap()
                .total
                .value();
            assert!(total > last, "rate {errors_per_gb}: {total} vs {last}");
            last = total;
        }
    }

    #[test]
    fn digests_are_stable_and_kind_sensitive() {
        let g = fabric(FabricKind::FatTree, 8);
        let a = schedule(&g, CollectiveKind::AllReduceRing, 1e6).unwrap();
        let b = schedule(&g, CollectiveKind::AllReduceRing, 1e6).unwrap();
        assert_eq!(a.digest(), b.digest());
        let halo = schedule(&g, CollectiveKind::HaloExchange, 1e6).unwrap();
        assert_ne!(a.digest(), halo.digest());
    }
}

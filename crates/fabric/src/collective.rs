//! Collective-communication schedules with per-link contention.
//!
//! A collective is compiled against a concrete (possibly degraded)
//! [`FabricGraph`] into [`Round`]s of concurrent [`Transfer`]s. Each
//! round's duration is the *serialization* time of its most-loaded
//! channel — every transfer whose route crosses a channel queues behind
//! the others, so bytes accumulate per channel and the bottleneck sets
//! the pace — plus the longest route's end-to-end *latency*. Rounds that
//! repeat (the all-reduce ring's `2(n-1)` steps) carry a repeat count
//! instead of being materialized, keeping schedules small at any scale.
//!
//! Routes come from [`FabricGraph::route`], which is deterministic, so a
//! schedule (and its [`CollectiveSchedule::digest`]) is a pure function
//! of the graph state — the second half of the cross-process determinism
//! guarantee.

use std::collections::BTreeMap;

use core::fmt;

use ena_model::hash::{StableHash, StableHasher};
use ena_model::units::Microseconds;

use crate::topology::{FabricError, FabricGraph};

/// The shipped collective patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollectiveKind {
    /// Ring all-reduce: `2(n-1)` steps of neighbor chunk exchange.
    AllReduceRing,
    /// Nearest-neighbor halo exchange (right then left around the ring).
    HaloExchange,
    /// Dense all-to-all: everyone sends a slice to everyone else.
    AllToAll,
}

impl CollectiveKind {
    /// Every shipped collective, in a fixed order.
    pub const ALL: [CollectiveKind; 3] = [
        CollectiveKind::AllReduceRing,
        CollectiveKind::HaloExchange,
        CollectiveKind::AllToAll,
    ];

    /// The report label.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::AllReduceRing => "all-reduce-ring",
            CollectiveKind::HaloExchange => "halo-exchange",
            CollectiveKind::AllToAll => "all-to-all",
        }
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl StableHash for CollectiveKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            CollectiveKind::AllReduceRing => 0,
            CollectiveKind::HaloExchange => 1,
            CollectiveKind::AllToAll => 2,
        });
    }
}

/// One point-to-point message inside a round.
#[derive(Clone, Debug, PartialEq)]
pub struct Transfer {
    /// Source EHP vertex.
    pub src: usize,
    /// Destination EHP vertex.
    pub dst: usize,
    /// Message size in bytes.
    pub bytes: f64,
    /// Directed channel indices the message traverses.
    pub route: Vec<usize>,
}

/// A set of transfers that start together.
#[derive(Clone, Debug, PartialEq)]
pub struct Round {
    /// The concurrent transfers.
    pub transfers: Vec<Transfer>,
    /// Time the most-loaded channel spends draining its queued bytes.
    pub serialization_us: f64,
    /// End-to-end latency of the longest route in the round.
    pub latency_us: f64,
    /// How many times this round executes back to back.
    pub repeat: u64,
}

impl Round {
    /// Duration of one execution of this round.
    pub fn step_us(&self) -> f64 {
        self.serialization_us + self.latency_us
    }
}

/// A compiled collective.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectiveSchedule {
    /// The pattern this schedule implements.
    pub kind: CollectiveKind,
    /// The rounds, in execution order.
    pub rounds: Vec<Round>,
    /// Total time including repeats.
    pub total: Microseconds,
    /// Most bytes any single channel carries within one round — the
    /// contention hot spot.
    pub peak_link_bytes: f64,
}

impl CollectiveSchedule {
    /// Stable digest of the full schedule (routes, loads, timings): what
    /// the cross-process determinism suite compares.
    pub fn digest(&self) -> u64 {
        let mut h = StableHasher::new();
        self.kind.stable_hash(&mut h);
        h.write_usize(self.rounds.len());
        for round in &self.rounds {
            h.write_u64(round.repeat);
            h.write_f64(round.serialization_us);
            h.write_f64(round.latency_us);
            h.write_usize(round.transfers.len());
            for t in &round.transfers {
                h.write_usize(t.src);
                h.write_usize(t.dst);
                h.write_f64(t.bytes);
                h.write_usize(t.route.len());
                for &li in &t.route {
                    h.write_usize(li);
                }
            }
        }
        h.write_f64(self.total.value());
        h.write_f64(self.peak_link_bytes);
        h.finish()
    }
}

/// Routes one message and prices it into the per-channel load map.
fn transfer(
    graph: &FabricGraph,
    loads: &mut BTreeMap<usize, f64>,
    src: usize,
    dst: usize,
    bytes: f64,
) -> Result<Transfer, FabricError> {
    let route = graph.route(src, dst)?;
    for &li in &route {
        *loads.entry(li).or_insert(0.0) += bytes;
    }
    Ok(Transfer {
        src,
        dst,
        bytes,
        route,
    })
}

/// Seals a round: serialization from the loaded channels' *effective*
/// (degradation-scaled) bandwidth, latency from the longest route.
fn seal_round(
    graph: &FabricGraph,
    transfers: Vec<Transfer>,
    loads: &BTreeMap<usize, f64>,
    repeat: u64,
) -> Round {
    let mut serialization_us: f64 = 0.0;
    for (&li, &bytes) in loads {
        let gbps = graph.channel_gbps(li);
        if gbps > 0.0 {
            // GB/s is bytes/ns, so bytes / (gbps * 1e3) is microseconds.
            serialization_us = serialization_us.max(bytes / (gbps * 1e3));
        }
    }
    let mut latency_us: f64 = 0.0;
    for t in &transfers {
        let route_latency: f64 = t
            .route
            .iter()
            .filter_map(|&li| graph.links().get(li))
            .map(|l| l.latency.value())
            .sum();
        latency_us = latency_us.max(route_latency);
    }
    Round {
        transfers,
        serialization_us,
        latency_us,
        repeat,
    }
}

/// Compiles `kind` moving `bytes_per_node` bytes of application data per
/// node over the surviving endpoints of `graph`.
///
/// # Errors
///
/// Propagates routing errors — in particular
/// [`FabricError::Unreachable`] when degradation has partitioned the
/// survivors.
pub fn schedule(
    graph: &FabricGraph,
    kind: CollectiveKind,
    bytes_per_node: f64,
) -> Result<CollectiveSchedule, FabricError> {
    let alive = graph.alive_ehp();
    let n = alive.len();
    let mut rounds = Vec::new();
    if n >= 2 {
        match kind {
            CollectiveKind::AllReduceRing => {
                // Ring all-reduce over the alive-node ring: each of the
                // 2(n-1) steps exchanges one 1/n chunk with the ring
                // successor. All steps are load-isomorphic, so compile
                // one representative round with a repeat count.
                let chunk = bytes_per_node / n as f64;
                let mut loads = BTreeMap::new();
                let mut transfers = Vec::with_capacity(n);
                for (i, &src) in alive.iter().enumerate() {
                    let dst = alive[(i + 1) % n];
                    transfers.push(transfer(graph, &mut loads, src, dst, chunk)?);
                }
                rounds.push(seal_round(graph, transfers, &loads, 2 * (n as u64 - 1)));
            }
            CollectiveKind::HaloExchange => {
                // Right-neighbor shift, then left-neighbor shift: the two
                // directions use different channels (asymmetric links),
                // so they are separate rounds.
                for step in 0..2usize {
                    let mut loads = BTreeMap::new();
                    let mut transfers = Vec::with_capacity(n);
                    for (i, &src) in alive.iter().enumerate() {
                        let dst = if step == 0 {
                            alive[(i + 1) % n]
                        } else {
                            alive[(i + n - 1) % n]
                        };
                        transfers.push(transfer(graph, &mut loads, src, dst, bytes_per_node)?);
                    }
                    rounds.push(seal_round(graph, transfers, &loads, 1));
                }
            }
            CollectiveKind::AllToAll => {
                // One dense round: every survivor slices its payload over
                // the other n-1.
                let slice = bytes_per_node / (n as f64 - 1.0);
                let mut loads = BTreeMap::new();
                let mut transfers = Vec::with_capacity(n * (n - 1));
                for &src in &alive {
                    for &dst in &alive {
                        if src != dst {
                            transfers.push(transfer(graph, &mut loads, src, dst, slice)?);
                        }
                    }
                }
                rounds.push(seal_round(graph, transfers, &loads, 1));
            }
        }
    }
    let total: f64 = rounds.iter().map(|r| r.step_us() * r.repeat as f64).sum();
    let peak_link_bytes = rounds
        .iter()
        .flat_map(|r| {
            // Recompute per-round channel loads from the transfers: the
            // sealed rounds dropped the maps.
            let mut loads = BTreeMap::new();
            for t in &r.transfers {
                for &li in &t.route {
                    *loads.entry(li).or_insert(0.0) += t.bytes;
                }
            }
            loads.into_values()
        })
        .fold(0.0f64, f64::max);
    Ok(CollectiveSchedule {
        kind,
        rounds,
        total: Microseconds::new(total),
        peak_link_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FabricKind;

    fn fabric(kind: FabricKind, n: u32) -> FabricGraph {
        FabricGraph::build(kind, n).unwrap()
    }

    #[test]
    fn all_reduce_repeats_two_n_minus_one_times() {
        let g = fabric(FabricKind::Torus, 8);
        let s = schedule(&g, CollectiveKind::AllReduceRing, 1e6).unwrap();
        assert_eq!(s.rounds.len(), 1);
        assert_eq!(s.rounds.first().unwrap().repeat, 14);
        assert_eq!(s.rounds.first().unwrap().transfers.len(), 8);
        assert!(s.total.value() > 0.0);
    }

    #[test]
    fn halo_shifts_right_then_left_in_separate_rounds() {
        let g = fabric(FabricKind::Torus, 8);
        let s = schedule(&g, CollectiveKind::HaloExchange, 4e6).unwrap();
        assert_eq!(s.rounds.len(), 2);
        for round in &s.rounds {
            assert_eq!(round.transfers.len(), 8);
            assert_eq!(round.repeat, 1);
            assert!(round.step_us() > 0.0);
        }
        // The reverse channels (48 GB/s) bottleneck each shift: the
        // wrap-around transfer crosses one in both directions.
        let first = s.rounds.first().unwrap();
        assert!((first.serialization_us - 4e6 / 48e3).abs() < 1e-9);
    }

    #[test]
    fn all_to_all_is_the_contention_heavy_pattern() {
        let g = fabric(FabricKind::FatTree, 16);
        let a2a = schedule(&g, CollectiveKind::AllToAll, 1e6).unwrap();
        let halo = schedule(&g, CollectiveKind::HaloExchange, 1e6).unwrap();
        assert_eq!(a2a.rounds.first().unwrap().transfers.len(), 16 * 15);
        assert!(
            a2a.peak_link_bytes > halo.peak_link_bytes,
            "a2a {} vs halo {}",
            a2a.peak_link_bytes,
            halo.peak_link_bytes
        );
    }

    #[test]
    fn degraded_links_stretch_serialization() {
        let healthy = fabric(FabricKind::DragonflyLite, 16);
        let before = schedule(&healthy, CollectiveKind::AllToAll, 1e6).unwrap();
        let mut degraded = fabric(FabricKind::DragonflyLite, 16);
        degraded.degrade_route(0, 12, 80).unwrap();
        let after = schedule(&degraded, CollectiveKind::AllToAll, 1e6).unwrap();
        assert!(after.total > before.total);
    }

    #[test]
    fn dead_nodes_drop_out_of_the_pattern() {
        let mut g = fabric(FabricKind::DragonflyLite, 16);
        g.fail_ehp(3).unwrap();
        g.fail_ehp(9).unwrap();
        let s = schedule(&g, CollectiveKind::AllReduceRing, 1e6).unwrap();
        let round = s.rounds.first().unwrap();
        assert_eq!(round.transfers.len(), 14);
        assert_eq!(round.repeat, 26);
        assert!(round
            .transfers
            .iter()
            .all(|t| t.src != 3 && t.dst != 3 && t.src != 9 && t.dst != 9));
    }

    #[test]
    fn single_survivor_schedules_are_empty() {
        let mut g = fabric(FabricKind::Torus, 2);
        g.fail_ehp(1).unwrap();
        for kind in CollectiveKind::ALL {
            let s = schedule(&g, kind, 1e6).unwrap();
            assert!(s.rounds.is_empty());
            assert_eq!(s.total, Microseconds::ZERO);
        }
    }

    #[test]
    fn digests_are_stable_and_kind_sensitive() {
        let g = fabric(FabricKind::FatTree, 8);
        let a = schedule(&g, CollectiveKind::AllReduceRing, 1e6).unwrap();
        let b = schedule(&g, CollectiveKind::AllReduceRing, 1e6).unwrap();
        assert_eq!(a.digest(), b.digest());
        let halo = schedule(&g, CollectiveKind::HaloExchange, 1e6).unwrap();
        assert_ne!(a.digest(), halo.digest());
    }
}

//! Young/Daly checkpoint/restart recovery for multi-node fleets.
//!
//! A fleet of `N` nodes fails `N` times as often as one node, and every
//! failure rolls the whole bulk-synchronous application back to its last
//! checkpoint. The [`RecoveryModel`] turns a node MTBF and a checkpoint
//! cost into the achieved efficiency at any fleet size, two independent
//! ways:
//!
//! - **analytically** — the Young/Daly closed form
//!   ([`checkpoint_efficiency`]) at the optimal interval
//!   `tau = sqrt(2 * delta * M_sys)`;
//! - **mechanistically** — a seeded Monte Carlo checkpoint/restart
//!   campaign ([`FaultCampaign::simulate`]) on bitwise-identical
//!   parameters (the optimal interval is read off the very
//!   [`FaultCampaign`] the simulation runs, so the two paths cannot
//!   drift apart).
//!
//! The two must agree within [`DALY_TOLERANCE`] — the same
//! analytic-vs-simulated cross-check discipline
//! [`SystemProjection::derated`](ena_core::system::SystemProjection::derated)
//! gets from the scale-out estimator.

use core::fmt;

use ena_core::resilience::{
    checkpoint_efficiency, checkpoint_efficiency_at, FaultCampaign, Protection, ResilienceModel,
};
use ena_model::config::EhpConfig;
use ena_model::hash::{StableHash, StableHasher};
use ena_workloads::profile_for;

/// Maximum tolerated gap between the analytic Young/Daly efficiency and
/// the simulated campaign at any fleet size the acceptance tests run
/// (N in {2, 4, 8} and the standard campaign sizes).
pub const DALY_TOLERANCE: f64 = 0.06;

/// Simulated machine-hours behind every Monte Carlo efficiency figure —
/// matches the intra-node availability cross-check horizon.
pub const RECOVERY_CAMPAIGN_HOURS: f64 = 20_000.0;

/// Node MTBF + checkpoint cost, the two inputs Young/Daly needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryModel {
    /// Mean time between failures of one node, hours.
    pub node_mttf_hours: f64,
    /// Cost of writing one global checkpoint, minutes.
    pub checkpoint_minutes: f64,
}

impl RecoveryModel {
    /// A model from explicit parameters (the `--mtbf` /
    /// `--checkpoint-cost` CLI path).
    pub fn new(node_mttf_hours: f64, checkpoint_minutes: f64) -> Self {
        Self {
            node_mttf_hours,
            checkpoint_minutes,
        }
    }

    /// Derives the node MTBF from the resilience model's silent-fault
    /// assessment of `config` running `workload` (nominal voltage,
    /// ECC + RMT — the protected configuration the paper assumes), or
    /// `None` for an unknown workload.
    pub fn from_node_assessment(
        config: &EhpConfig,
        workload: &str,
        checkpoint_minutes: f64,
    ) -> Option<Self> {
        let profile = profile_for(workload)?;
        let reliability =
            ResilienceModel::default().assess(config, &profile, 1.0, Protection::ecc_and_rmt());
        Some(Self {
            node_mttf_hours: reliability.node_mttf_hours(),
            checkpoint_minutes,
        })
    }

    /// System MTTF of an `nodes`-node fleet, hours.
    pub fn system_mttf_hours(&self, nodes: u32) -> f64 {
        self.node_mttf_hours / f64::from(nodes.max(1))
    }

    /// The campaign the Monte Carlo leg runs at `nodes`: Young/Daly
    /// optimal interval, restart cost equal to the checkpoint cost. The
    /// analytic leg reads its interval off this same struct, so the two
    /// paths share bitwise-identical parameters.
    pub fn campaign(&self, nodes: u32) -> FaultCampaign {
        FaultCampaign::with_optimal_interval(
            self.system_mttf_hours(nodes),
            self.checkpoint_minutes / 60.0,
        )
    }

    /// Daly's optimal checkpoint interval at `nodes`, hours.
    pub fn optimal_interval_hours(&self, nodes: u32) -> f64 {
        self.campaign(nodes).interval_hours
    }

    /// Closed-form Young/Daly efficiency at `nodes` (optimal interval).
    pub fn analytic_efficiency(&self, nodes: u32) -> f64 {
        checkpoint_efficiency(self.system_mttf_hours(nodes), self.checkpoint_minutes)
    }

    /// Closed-form efficiency at an explicit interval (the
    /// checkpoint-interval sweep axis).
    pub fn analytic_efficiency_at(&self, nodes: u32, interval_hours: f64) -> f64 {
        checkpoint_efficiency_at(
            self.system_mttf_hours(nodes),
            self.checkpoint_minutes,
            interval_hours,
        )
    }

    /// Measured efficiency of the seeded Monte Carlo campaign at `nodes`
    /// (optimal interval).
    pub fn simulated_efficiency(&self, nodes: u32, seed: u64) -> f64 {
        self.campaign(nodes).simulate(RECOVERY_CAMPAIGN_HOURS, seed)
    }

    /// Measured efficiency at an explicit interval.
    pub fn simulated_efficiency_at(&self, nodes: u32, interval_hours: f64, seed: u64) -> f64 {
        FaultCampaign {
            interval_hours,
            ..self.campaign(nodes)
        }
        .simulate(RECOVERY_CAMPAIGN_HOURS, seed)
    }

    /// Both legs at once: the cross-checked estimate campaigns report.
    pub fn assess(&self, nodes: u32, seed: u64) -> RecoveryEstimate {
        RecoveryEstimate {
            nodes,
            system_mttf_hours: self.system_mttf_hours(nodes),
            interval_hours: self.optimal_interval_hours(nodes),
            analytic: self.analytic_efficiency(nodes),
            simulated: self.simulated_efficiency(nodes, seed),
        }
    }
}

impl StableHash for RecoveryModel {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(self.node_mttf_hours);
        h.write_f64(self.checkpoint_minutes);
    }
}

impl fmt::Display for RecoveryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node MTBF {:.1} h, checkpoint {:.1} min",
            self.node_mttf_hours, self.checkpoint_minutes
        )
    }
}

/// One fleet-size recovery assessment: the analytic prediction next to
/// the simulated measurement it is checked against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryEstimate {
    /// Fleet size assessed.
    pub nodes: u32,
    /// System MTTF at that size, hours.
    pub system_mttf_hours: f64,
    /// Daly optimal checkpoint interval, hours.
    pub interval_hours: f64,
    /// Closed-form Young/Daly efficiency.
    pub analytic: f64,
    /// Monte Carlo campaign efficiency on the same parameters.
    pub simulated: f64,
}

impl RecoveryEstimate {
    /// Absolute disagreement between the two legs.
    pub fn gap(&self) -> f64 {
        (self.analytic - self.simulated).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RecoveryModel {
        RecoveryModel::new(96.0, 3.0)
    }

    #[test]
    fn analytic_matches_simulation_at_small_fleets() {
        // The acceptance criterion: N in {2, 4, 8}, stated tolerance.
        for nodes in [2u32, 4, 8] {
            let est = model().assess(nodes, 0xFA17);
            assert!(
                est.gap() < DALY_TOLERANCE,
                "N={nodes}: analytic {:.4} vs simulated {:.4}",
                est.analytic,
                est.simulated
            );
            assert!(est.analytic > 0.0 && est.analytic < 1.0);
        }
    }

    #[test]
    fn the_two_legs_share_bitwise_identical_parameters() {
        let m = model();
        for nodes in [2u32, 8, 64] {
            let campaign = m.campaign(nodes);
            // The analytic interval IS the simulated campaign's interval.
            assert_eq!(m.optimal_interval_hours(nodes), campaign.interval_hours);
            assert_eq!(m.system_mttf_hours(nodes), campaign.mttf_hours);
            // And the closed form evaluated at that interval is the
            // closed form at the optimum.
            assert_eq!(
                m.analytic_efficiency_at(nodes, campaign.interval_hours),
                m.analytic_efficiency(nodes)
            );
        }
    }

    #[test]
    fn efficiency_is_monotone_in_fleet_size_and_fault_rate() {
        let m = model();
        // More nodes -> more faults -> strictly less efficiency.
        let mut last = 1.0;
        for nodes in [1u32, 2, 4, 8, 16, 64, 256] {
            let eff = m.analytic_efficiency(nodes);
            assert!(eff < last, "N={nodes}: {eff} vs {last}");
            last = eff;
        }
        // Shorter node MTBF (higher fault rate) -> less efficiency.
        let sturdy = RecoveryModel::new(200.0, 3.0).analytic_efficiency(64);
        let fragile = RecoveryModel::new(20.0, 3.0).analytic_efficiency(64);
        assert!(fragile < sturdy);
    }

    #[test]
    fn off_optimal_intervals_simulate_worse() {
        let m = model();
        let nodes = 8;
        let tau = m.optimal_interval_hours(nodes);
        let at_opt = m.simulated_efficiency(nodes, 7);
        let short = m.simulated_efficiency_at(nodes, tau / 8.0, 7);
        let long = m.simulated_efficiency_at(nodes, tau * 8.0, 7);
        assert!(at_opt > short, "opt {at_opt} vs short {short}");
        assert!(at_opt > long, "opt {at_opt} vs long {long}");
    }

    #[test]
    fn assessment_derives_from_the_resilience_model() {
        let m =
            RecoveryModel::from_node_assessment(&EhpConfig::paper_baseline(), "CoMD", 3.0).unwrap();
        assert!(m.node_mttf_hours > 1.0, "MTBF {}", m.node_mttf_hours);
        assert!(RecoveryModel::from_node_assessment(
            &EhpConfig::paper_baseline(),
            "NoSuchKernel",
            3.0
        )
        .is_none());
    }
}

//! Cabinet-level inter-node fabric topologies and deterministic routing.
//!
//! A [`FabricGraph`] connects EHP nodes (and, for the fat-tree, leaf and
//! spine switches) with Infinity-Fabric-style links whose latency and
//! bandwidth are *asymmetric per direction* — every physical connection
//! is a pair of directed channels with their own parameters, matching
//! the measured forward/reverse asymmetry of real inter-APU links.
//!
//! Three topologies ship, all built so that no single node or physical
//! link failure can partition the surviving EHP endpoints:
//!
//! - **fat-tree** — every EHP node is dual-homed to two leaf switches,
//!   every leaf uplinks to two spines;
//! - **torus** — a 2D wrap-around grid when the node count factors into
//!   a grid with both sides >= 3, otherwise a bidirectional ring (dual
//!   rail for the 2-node degenerate case);
//! - **dragonfly-lite** — groups of ~4 nodes, all-to-all inside each
//!   group, one global link per node to a rotating remote group (a
//!   single fully connected group below 8 nodes).
//!
//! Routing is breadth-first and hop-minimal with a lowest-index
//! tie-break, so the route table is a pure function of the graph — the
//! basis of the cross-process determinism guarantee.

use std::collections::BTreeMap;

use core::fmt;

use ena_model::error::DegradeError;
use ena_model::hash::{StableHash, StableHasher};
use ena_model::units::{GigabytesPerSec, Microseconds};

/// Everything that can go wrong building, mutating, or routing a fabric.
#[derive(Debug)]
pub enum FabricError {
    /// A fabric needs at least two EHP nodes.
    TooFewNodes {
        /// The offending node count.
        nodes: u32,
    },
    /// The topology name is not one of the shipped kinds.
    UnknownTopology(String),
    /// The workload name has no calibrated profile.
    UnknownWorkload(String),
    /// A node index outside the fabric.
    UnknownNode(usize),
    /// The operation targeted a failed node.
    DeadNode(usize),
    /// No live route exists between two endpoints.
    Unreachable {
        /// Source EHP node.
        from: usize,
        /// Destination EHP node.
        to: usize,
    },
    /// The requested failure would kill the last surviving EHP node.
    NoSurvivors,
    /// A bandwidth-degradation percentage outside `0..100`.
    BadPercent(u32),
    /// An intra-node campaign (driving a straggler's slowdown) failed.
    IntraNode(DegradeError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewNodes { nodes } => {
                write!(f, "a fabric needs at least 2 EHP nodes, got {nodes}")
            }
            Self::UnknownTopology(s) => write!(
                f,
                "unknown fabric topology '{s}'; known: fat-tree, torus, dragonfly"
            ),
            Self::UnknownWorkload(s) => write!(f, "unknown workload '{s}'"),
            Self::UnknownNode(i) => write!(f, "node {i} is outside the fabric"),
            Self::DeadNode(i) => write!(f, "node {i} has failed"),
            Self::Unreachable { from, to } => {
                write!(f, "no live route from node {from} to node {to}")
            }
            Self::NoSurvivors => write!(f, "failure would kill the last surviving node"),
            Self::BadPercent(p) => write!(f, "degradation percent {p} outside 0..100"),
            Self::IntraNode(e) => write!(f, "intra-node straggler campaign: {e}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::IntraNode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DegradeError> for FabricError {
    fn from(e: DegradeError) -> Self {
        Self::IntraNode(e)
    }
}

/// The shipped cabinet topologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FabricKind {
    /// Dual-homed two-level fat-tree (leaf + spine switches).
    FatTree,
    /// 2D wrap-around grid, degrading to a bidirectional ring.
    Torus,
    /// Dragonfly-lite: dense groups bridged by global links.
    DragonflyLite,
}

impl FabricKind {
    /// Every shipped topology, in a fixed order.
    pub const ALL: [FabricKind; 3] = [
        FabricKind::FatTree,
        FabricKind::Torus,
        FabricKind::DragonflyLite,
    ];

    /// The CLI / cache-file label.
    pub fn label(self) -> &'static str {
        match self {
            FabricKind::FatTree => "fat-tree",
            FabricKind::Torus => "torus",
            FabricKind::DragonflyLite => "dragonfly",
        }
    }

    /// Parses a CLI label.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownTopology`] for anything but `fat-tree`,
    /// `torus`, `dragonfly` (or `dragonfly-lite`).
    pub fn parse(s: &str) -> Result<Self, FabricError> {
        match s {
            "fat-tree" | "fattree" => Ok(FabricKind::FatTree),
            "torus" => Ok(FabricKind::Torus),
            "dragonfly" | "dragonfly-lite" => Ok(FabricKind::DragonflyLite),
            other => Err(FabricError::UnknownTopology(other.to_string())),
        }
    }
}

impl fmt::Display for FabricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl StableHash for FabricKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(match self {
            FabricKind::FatTree => 0,
            FabricKind::Torus => 1,
            FabricKind::DragonflyLite => 2,
        });
    }
}

/// What a fabric graph vertex is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricNodeKind {
    /// An EHP compute node (a traffic endpoint).
    Ehp(u32),
    /// A fat-tree leaf switch.
    Leaf(u32),
    /// A fat-tree spine switch.
    Spine(u32),
}

/// One *directed* channel of a physical link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricLink {
    /// Source vertex.
    pub from: usize,
    /// Destination vertex.
    pub to: usize,
    /// Traversal latency of this direction.
    pub latency: Microseconds,
    /// Healthy bandwidth of this direction.
    pub bandwidth: GigabytesPerSec,
}

/// One direction's parameters.
struct Channel {
    latency_us: f64,
    gbps: f64,
}

/// A physical link class: forward (low index -> high index) and reverse
/// channels with independent — asymmetric — parameters.
struct LinkClass {
    forward: Channel,
    reverse: Channel,
}

/// EHP <-> leaf-switch edge links (fat-tree): the downstream (switch to
/// node) direction is wider and faster, as reads dominate.
const EDGE_LINK: LinkClass = LinkClass {
    forward: Channel {
        latency_us: 0.60,
        gbps: 48.0,
    },
    reverse: Channel {
        latency_us: 0.45,
        gbps: 64.0,
    },
};

/// Leaf <-> spine trunk links (fat-tree).
const TRUNK_LINK: LinkClass = LinkClass {
    forward: Channel {
        latency_us: 0.70,
        gbps: 96.0,
    },
    reverse: Channel {
        latency_us: 0.55,
        gbps: 112.0,
    },
};

/// Direct node-to-node links (torus neighbors, dragonfly intra-group).
const DIRECT_LINK: LinkClass = LinkClass {
    forward: Channel {
        latency_us: 0.50,
        gbps: 64.0,
    },
    reverse: Channel {
        latency_us: 0.65,
        gbps: 48.0,
    },
};

/// Dragonfly global (inter-group) links: long optical hops.
const GLOBAL_LINK: LinkClass = LinkClass {
    forward: Channel {
        latency_us: 1.40,
        gbps: 32.0,
    },
    reverse: Channel {
        latency_us: 1.60,
        gbps: 24.0,
    },
};

/// The cabinet-level fabric: vertices, paired directed channels, and
/// liveness/degradation state.
#[derive(Clone, Debug)]
pub struct FabricGraph {
    kind: FabricKind,
    ehp_count: u32,
    nodes: Vec<FabricNodeKind>,
    links: Vec<FabricLink>,
    /// Outgoing link indices per vertex, sorted by (destination, index)
    /// so breadth-first routing is deterministic.
    adjacency: Vec<Vec<usize>>,
    node_alive: Vec<bool>,
    link_active: Vec<bool>,
    /// Residual bandwidth multiplier per channel (1.0 healthy).
    link_scale: Vec<f64>,
}

impl FabricGraph {
    /// Builds a `kind` fabric over `nodes` EHP endpoints.
    ///
    /// # Errors
    ///
    /// [`FabricError::TooFewNodes`] below two nodes.
    pub fn build(kind: FabricKind, nodes: u32) -> Result<Self, FabricError> {
        if nodes < 2 {
            return Err(FabricError::TooFewNodes { nodes });
        }
        let mut g = Self {
            kind,
            ehp_count: nodes,
            nodes: (0..nodes).map(FabricNodeKind::Ehp).collect(),
            links: Vec::new(),
            adjacency: Vec::new(),
            node_alive: Vec::new(),
            link_active: Vec::new(),
            link_scale: Vec::new(),
        };
        match kind {
            FabricKind::FatTree => g.wire_fat_tree(),
            FabricKind::Torus => g.wire_torus(),
            FabricKind::DragonflyLite => g.wire_dragonfly(),
        }
        g.finish_wiring();
        Ok(g)
    }

    fn add_vertex(&mut self, kind: FabricNodeKind) -> usize {
        self.nodes.push(kind);
        self.nodes.len() - 1
    }

    /// Adds one physical link between `a` and `b` as a pair of directed
    /// channels with the class's asymmetric parameters. The forward
    /// channel runs from the lower vertex index to the higher.
    fn connect(&mut self, a: usize, b: usize, class: &LinkClass) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.links.push(FabricLink {
            from: lo,
            to: hi,
            latency: Microseconds::new(class.forward.latency_us),
            bandwidth: GigabytesPerSec::new(class.forward.gbps),
        });
        self.links.push(FabricLink {
            from: hi,
            to: lo,
            latency: Microseconds::new(class.reverse.latency_us),
            bandwidth: GigabytesPerSec::new(class.reverse.gbps),
        });
    }

    fn finish_wiring(&mut self) {
        let n = self.nodes.len();
        self.adjacency = vec![Vec::new(); n];
        let mut order: Vec<usize> = (0..self.links.len()).collect();
        order.sort_by_key(|&i| (self.links[i].from, self.links[i].to, i));
        for i in order {
            let from = self.links[i].from;
            self.adjacency[from].push(i);
        }
        self.node_alive = vec![true; n];
        self.link_active = vec![true; self.links.len()];
        self.link_scale = vec![1.0; self.links.len()];
    }

    /// Pod size of the fat-tree and nominal group size of the dragonfly.
    const GROUP: usize = 4;

    fn wire_fat_tree(&mut self) {
        let n = self.ehp_count as usize;
        let pods = n.div_ceil(Self::GROUP);
        let leaf_count = pods.max(2);
        let leaves: Vec<usize> = (0..leaf_count)
            .map(|i| self.add_vertex(FabricNodeKind::Leaf(i as u32)))
            .collect();
        let spines: Vec<usize> = (0..2)
            .map(|i| self.add_vertex(FabricNodeKind::Spine(i as u32)))
            .collect();
        // Dual-homing: each node uplinks to its pod leaf and the next
        // leaf around, so a leaf (or one edge link) can die without
        // stranding anyone.
        for node in 0..n {
            let pod = node / Self::GROUP;
            let primary = leaves[pod % leaf_count];
            let secondary = leaves[(pod + 1) % leaf_count];
            self.connect(node, primary, &EDGE_LINK);
            self.connect(node, secondary, &EDGE_LINK);
        }
        for &leaf in &leaves {
            for &spine in &spines {
                self.connect(leaf, spine, &TRUNK_LINK);
            }
        }
    }

    fn wire_torus(&mut self) {
        let n = self.ehp_count as usize;
        // Largest divisor r <= sqrt(n) giving a grid with both sides >= 3.
        let mut rows = 0;
        let mut r = 1;
        while r * r <= n {
            if n % r == 0 && r >= 3 && n / r >= 3 {
                rows = r;
            }
            r += 1;
        }
        if rows == 0 {
            // Ring fallback. A 2-node ring would be a single physical
            // link; dual-rail it so one link failure cannot partition.
            for i in 0..n {
                self.connect(i, (i + 1) % n, &DIRECT_LINK);
            }
            if n == 2 {
                self.connect(0, 1, &DIRECT_LINK);
            }
            return;
        }
        let cols = n / rows;
        let at = |x: usize, y: usize| y * cols + x;
        for y in 0..rows {
            for x in 0..cols {
                self.connect(at(x, y), at((x + 1) % cols, y), &DIRECT_LINK);
                self.connect(at(x, y), at(x, (y + 1) % rows), &DIRECT_LINK);
            }
        }
    }

    fn wire_dragonfly(&mut self) {
        let n = self.ehp_count as usize;
        if n < 2 * Self::GROUP {
            // One fully connected group.
            for a in 0..n {
                for b in (a + 1)..n {
                    self.connect(a, b, &DIRECT_LINK);
                }
            }
            if n == 2 {
                self.connect(0, 1, &DIRECT_LINK);
            }
            return;
        }
        let groups = n / Self::GROUP;
        // Members distribute round-robin-by-block: group g holds the
        // contiguous run [bounds[g], bounds[g+1]).
        let base = n / groups;
        let extra = n % groups;
        let mut bounds = Vec::with_capacity(groups + 1);
        let mut acc = 0;
        bounds.push(0);
        for g in 0..groups {
            acc += base + usize::from(g < extra);
            bounds.push(acc);
        }
        for g in 0..groups {
            let members: Vec<usize> = (bounds[g]..bounds[g + 1]).collect();
            // Intra-group all-to-all.
            for (i, &a) in members.iter().enumerate() {
                for &b in members.iter().skip(i + 1) {
                    self.connect(a, b, &DIRECT_LINK);
                }
            }
            // One global link per member, rotating over remote groups so
            // consecutive members reach distinct neighbors.
            for (j, &a) in members.iter().enumerate() {
                let target_group = (g + 1 + (j % (groups - 1))) % groups;
                let span = bounds[target_group + 1] - bounds[target_group];
                let b = bounds[target_group] + (j % span);
                self.connect(a, b, &GLOBAL_LINK);
            }
        }
    }

    /// The topology kind this graph was built as.
    pub fn kind(&self) -> FabricKind {
        self.kind
    }

    /// EHP endpoints the fabric was built with (dead or alive).
    pub fn ehp_count(&self) -> u32 {
        self.ehp_count
    }

    /// All vertices (EHP nodes plus switches).
    pub fn vertex_count(&self) -> usize {
        self.nodes.len()
    }

    /// Directed channels (two per physical link).
    pub fn channel_count(&self) -> usize {
        self.links.len()
    }

    /// The directed channels themselves.
    pub fn links(&self) -> &[FabricLink] {
        &self.links
    }

    /// Surviving EHP endpoints, ascending.
    pub fn alive_ehp(&self) -> Vec<usize> {
        (0..self.ehp_count as usize)
            .filter(|&i| self.node_alive[i])
            .collect()
    }

    /// Unordered pairs `(a, b)` with `a < b` joined by at least one
    /// active physical link.
    pub fn physical_links(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = self
            .links
            .iter()
            .zip(&self.link_active)
            .filter(|(_, &active)| active)
            .map(|(l, _)| {
                if l.from < l.to {
                    (l.from, l.to)
                } else {
                    (l.to, l.from)
                }
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Effective bandwidth of channel `i` after degradation, in GB/s.
    pub fn channel_gbps(&self, i: usize) -> f64 {
        self.links.get(i).map_or(0.0, |l| {
            l.bandwidth.value() * self.link_scale.get(i).copied().unwrap_or(0.0)
        })
    }

    /// Fails EHP node `node`: it leaves the machine and every channel
    /// touching it goes dark.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownNode`] outside the fabric,
    /// [`FabricError::DeadNode`] if already failed, and
    /// [`FabricError::NoSurvivors`] if it is the last EHP alive.
    pub fn fail_ehp(&mut self, node: u32) -> Result<(), FabricError> {
        let i = node as usize;
        if node >= self.ehp_count {
            return Err(FabricError::UnknownNode(i));
        }
        if !self.node_alive[i] {
            return Err(FabricError::DeadNode(i));
        }
        if self.alive_ehp().len() <= 1 {
            return Err(FabricError::NoSurvivors);
        }
        self.node_alive[i] = false;
        for (li, link) in self.links.iter().enumerate() {
            if link.from == i || link.to == i {
                self.link_active[li] = false;
            }
        }
        Ok(())
    }

    /// Fails the physical link between vertices `a` and `b`: every
    /// channel joining them (both directions, all rails) goes dark.
    /// Returns the number of channels cut.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownNode`] for an out-of-range vertex.
    pub fn fail_link_between(&mut self, a: usize, b: usize) -> Result<usize, FabricError> {
        if a >= self.nodes.len() {
            return Err(FabricError::UnknownNode(a));
        }
        if b >= self.nodes.len() {
            return Err(FabricError::UnknownNode(b));
        }
        let mut cut = 0;
        for (li, link) in self.links.iter().enumerate() {
            let joins = (link.from == a && link.to == b) || (link.from == b && link.to == a);
            if joins && self.link_active[li] {
                self.link_active[li] = false;
                cut += 1;
            }
        }
        Ok(cut)
    }

    /// Degrades every channel on the current round-trip route between
    /// EHP nodes `a` and `b` by `percent` percent of bandwidth — a sick
    /// cable somewhere along the path. Returns the number of channels
    /// touched.
    ///
    /// # Errors
    ///
    /// [`FabricError::BadPercent`] for `percent >= 100`, plus any
    /// routing error between the endpoints.
    pub fn degrade_route(&mut self, a: u32, b: u32, percent: u32) -> Result<usize, FabricError> {
        if percent >= 100 {
            return Err(FabricError::BadPercent(percent));
        }
        let factor = 1.0 - f64::from(percent) / 100.0;
        let mut touched = Vec::new();
        touched.extend(self.route(a as usize, b as usize)?);
        touched.extend(self.route(b as usize, a as usize)?);
        touched.sort_unstable();
        touched.dedup();
        for &li in &touched {
            self.link_scale[li] *= factor;
        }
        Ok(touched.len())
    }

    /// Hop-minimal route from `src` to `dst` as directed channel
    /// indices, deterministic via lowest-index tie-breaking. `src ==
    /// dst` routes over zero channels.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownNode`] / [`FabricError::DeadNode`] for bad
    /// endpoints, [`FabricError::Unreachable`] when no live path exists.
    pub fn route(&self, src: usize, dst: usize) -> Result<Vec<usize>, FabricError> {
        for &v in &[src, dst] {
            if v >= self.nodes.len() {
                return Err(FabricError::UnknownNode(v));
            }
            if !self.node_alive[v] {
                return Err(FabricError::DeadNode(v));
            }
        }
        if src == dst {
            return Ok(Vec::new());
        }
        // Breadth-first from src; adjacency is (destination, index)
        // sorted, so the first discovery of each vertex is canonical.
        let mut pred: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        seen[src] = true;
        let mut frontier = vec![src];
        while !frontier.is_empty() && !seen[dst] {
            let mut next = Vec::new();
            for &v in &frontier {
                for &li in &self.adjacency[v] {
                    if !self.link_active[li] {
                        continue;
                    }
                    let to = self.links[li].to;
                    if seen[to] || !self.node_alive[to] {
                        continue;
                    }
                    seen[to] = true;
                    pred[to] = Some(li);
                    next.push(to);
                }
            }
            frontier = next;
        }
        if !seen[dst] {
            return Err(FabricError::Unreachable { from: src, to: dst });
        }
        let mut path = Vec::new();
        let mut at = dst;
        while at != src {
            let Some(li) = pred[at] else {
                return Err(FabricError::Unreachable { from: src, to: dst });
            };
            path.push(li);
            at = self.links[li].from;
        }
        path.reverse();
        Ok(path)
    }

    /// Full route table over ordered pairs of surviving EHP endpoints.
    ///
    /// # Errors
    ///
    /// [`FabricError::Unreachable`] if any surviving pair is partitioned.
    pub fn route_table(&self) -> Result<BTreeMap<(usize, usize), Vec<usize>>, FabricError> {
        let alive = self.alive_ehp();
        let mut table = BTreeMap::new();
        for &src in &alive {
            for &dst in &alive {
                if src != dst {
                    table.insert((src, dst), self.route(src, dst)?);
                }
            }
        }
        Ok(table)
    }

    /// True when every surviving EHP endpoint can reach every other.
    /// Channels come in bidirectional pairs that fail together, so one
    /// breadth-first sweep from the lowest survivor settles mutuality.
    pub fn all_ehp_mutually_reachable(&self) -> bool {
        let alive = self.alive_ehp();
        let Some(&start) = alive.first() else {
            return true;
        };
        let mut seen = vec![false; self.nodes.len()];
        seen[start] = true;
        let mut frontier = vec![start];
        while let Some(v) = frontier.pop() {
            for &li in &self.adjacency[v] {
                if !self.link_active[li] {
                    continue;
                }
                let to = self.links[li].to;
                if !seen[to] && self.node_alive[to] {
                    seen[to] = true;
                    frontier.push(to);
                }
            }
        }
        alive.iter().all(|&i| seen[i])
    }

    /// Longest hop-minimal route over surviving EHP pairs.
    ///
    /// # Errors
    ///
    /// Propagates routing errors from [`FabricGraph::route_table`].
    pub fn diameter_hops(&self) -> Result<usize, FabricError> {
        Ok(self
            .route_table()?
            .values()
            .map(Vec::len)
            .max()
            .unwrap_or(0))
    }

    /// Deterministic digest of the live route table and every channel's
    /// state (endpoints, latency, residual bandwidth): the quantity the
    /// cross-process determinism suite compares.
    ///
    /// # Errors
    ///
    /// Propagates routing errors from [`FabricGraph::route_table`].
    pub fn route_table_digest(&self) -> Result<u64, FabricError> {
        let mut h = StableHasher::new();
        self.kind.stable_hash(&mut h);
        h.write_u32(self.ehp_count);
        for ((src, dst), path) in self.route_table()? {
            h.write_usize(src);
            h.write_usize(dst);
            h.write_usize(path.len());
            for li in path {
                h.write_usize(li);
            }
        }
        for (li, link) in self.links.iter().enumerate() {
            h.write_usize(link.from);
            h.write_usize(link.to);
            h.write_bool(self.link_active[li]);
            h.write_f64(link.latency.value());
            h.write_f64(self.channel_gbps(li));
        }
        Ok(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in FabricKind::ALL {
            assert_eq!(FabricKind::parse(kind.label()).unwrap(), kind);
        }
        assert!(matches!(
            FabricKind::parse("hypercube"),
            Err(FabricError::UnknownTopology(_))
        ));
    }

    #[test]
    fn tiny_fabrics_are_rejected() {
        for kind in FabricKind::ALL {
            assert!(matches!(
                FabricGraph::build(kind, 1),
                Err(FabricError::TooFewNodes { nodes: 1 })
            ));
            assert!(FabricGraph::build(kind, 2).is_ok());
        }
    }

    #[test]
    fn channels_are_asymmetric_per_direction() {
        let g = FabricGraph::build(FabricKind::Torus, 8).unwrap();
        // Every physical link contributes a forward and a reverse
        // channel with different latency and bandwidth.
        let fwd = g.links.iter().find(|l| l.from < l.to).unwrap();
        let rev = g
            .links
            .iter()
            .find(|l| l.from == fwd.to && l.to == fwd.from)
            .unwrap();
        assert_ne!(fwd.latency, rev.latency);
        assert_ne!(fwd.bandwidth, rev.bandwidth);
    }

    #[test]
    fn routes_are_hop_minimal_and_symmetric_in_length() {
        for kind in FabricKind::ALL {
            let g = FabricGraph::build(kind, 16).unwrap();
            let table = g.route_table().unwrap();
            for ((src, dst), path) in &table {
                assert!(!path.is_empty(), "{kind}: empty route {src}->{dst}");
                let back = table.get(&(*dst, *src)).unwrap();
                assert_eq!(
                    path.len(),
                    back.len(),
                    "{kind}: asymmetric hop count {src}<->{dst}"
                );
            }
        }
    }

    #[test]
    fn torus_prefers_grids_and_falls_back_to_rings() {
        // 16 = 4x4 grid: every node has degree 4 (two physical links per
        // dimension), so 16 nodes x 4 / 2 = 32 physical links.
        let grid = FabricGraph::build(FabricKind::Torus, 16).unwrap();
        assert_eq!(grid.physical_links().len(), 32);
        // 7 is prime: ring with 7 physical links.
        let ring = FabricGraph::build(FabricKind::Torus, 7).unwrap();
        assert_eq!(ring.physical_links().len(), 7);
    }

    #[test]
    fn failing_a_node_reroutes_the_rest() {
        let mut g = FabricGraph::build(FabricKind::DragonflyLite, 16).unwrap();
        g.fail_ehp(3).unwrap();
        assert!(g.all_ehp_mutually_reachable());
        assert!(matches!(g.route(3, 5), Err(FabricError::DeadNode(3))));
        assert!(matches!(g.fail_ehp(3), Err(FabricError::DeadNode(3))));
        assert_eq!(g.alive_ehp().len(), 15);
    }

    #[test]
    fn the_last_survivor_cannot_be_killed() {
        let mut g = FabricGraph::build(FabricKind::Torus, 2).unwrap();
        g.fail_ehp(0).unwrap();
        assert!(matches!(g.fail_ehp(1), Err(FabricError::NoSurvivors)));
    }

    #[test]
    fn degrading_a_route_reduces_bandwidth_but_keeps_connectivity() {
        let mut g = FabricGraph::build(FabricKind::FatTree, 16).unwrap();
        let before: f64 = (0..g.channel_count()).map(|i| g.channel_gbps(i)).sum();
        let touched = g.degrade_route(0, 9, 50).unwrap();
        assert!(touched >= 2, "round trip touches both directions");
        let after: f64 = (0..g.channel_count()).map(|i| g.channel_gbps(i)).sum();
        assert!(after < before);
        assert!(g.all_ehp_mutually_reachable());
        assert!(matches!(
            g.degrade_route(0, 9, 100),
            Err(FabricError::BadPercent(100))
        ));
    }

    #[test]
    fn digests_are_deterministic_and_sensitive() {
        for kind in FabricKind::ALL {
            let a = FabricGraph::build(kind, 12).unwrap();
            let b = FabricGraph::build(kind, 12).unwrap();
            assert_eq!(
                a.route_table_digest().unwrap(),
                b.route_table_digest().unwrap()
            );
            let mut degraded = FabricGraph::build(kind, 12).unwrap();
            degraded.degrade_route(0, 5, 50).unwrap();
            assert_ne!(
                a.route_table_digest().unwrap(),
                degraded.route_table_digest().unwrap(),
                "{kind}: degradation must change the digest"
            );
        }
    }
}

//! Inter-node fabric modeling for the ENA toolkit.
//!
//! The paper scales its node-level results to the 100,000-node machine by
//! straight multiplication, which assumes inter-node communication is
//! free. This crate supplies the missing layer: Infinity-Fabric-style
//! links between EHP nodes with *asymmetric* per-direction latency and
//! bandwidth, cabinet-level topologies, collective-communication
//! schedules with per-link contention accounting, and the multi-node
//! fault campaigns and design sweeps built on top.
//!
//! - [`topology`] — [`FabricGraph`]: fat-tree / torus / dragonfly-lite
//!   wiring, deterministic breadth-first routing, node/link failure and
//!   bandwidth degradation.
//! - [`collective`] — all-reduce ring, halo exchange, and all-to-all
//!   schedules; round times come from the most-loaded link (contention)
//!   plus the longest route latency.
//! - [`scaleout`] — bulk-synchronous iteration model turning collective
//!   times into a fleet efficiency, cross-checked against the analytic
//!   [`SystemProjection`](ena_core::system::SystemProjection) scaling
//!   path at small node counts.
//! - [`campaign`] — seeded multi-node fault campaigns (node loss,
//!   stragglers backed by intra-node `ena-faults` campaigns, link
//!   degradation) rendered as deterministic text.
//! - [`recovery`] — Young/Daly checkpoint/restart: achieved efficiency
//!   = f(node MTBF, checkpoint cost, N), analytic and Monte Carlo legs
//!   cross-checked within [`DALY_TOLERANCE`]; collective schedules can
//!   additionally be priced for per-link CRC retransmits
//!   ([`schedule_with_retransmits`]).
//! - [`sweep`] — (node count x topology) and (checkpoint-interval x
//!   nodes) as sweep axes through the memoized, parallel `ena-sweep`
//!   machinery.
//!
//! Everything is a pure function of its inputs: same spec, byte-identical
//! reports, in this process or any other.
//!
//! # Example
//!
//! ```
//! use ena_fabric::{schedule, CollectiveKind, FabricGraph, FabricKind};
//!
//! let mut fabric = FabricGraph::build(FabricKind::DragonflyLite, 16).unwrap();
//! fabric.fail_ehp(5).unwrap();
//! assert!(fabric.all_ehp_mutually_reachable());
//! let reduce = schedule(&fabric, CollectiveKind::AllReduceRing, 1e6).unwrap();
//! assert!(reduce.total.value() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod collective;
pub mod recovery;
pub mod scaleout;
pub mod sweep;
pub mod topology;

pub use campaign::{
    run_multinode_campaign, MultiNodeCampaignSpec, MultiNodeReport, MultiNodeStep, RecoveryOutcome,
};
pub use collective::{
    schedule, schedule_with_retransmits, CollectiveKind, CollectiveSchedule, RetransmitModel,
    Round, Transfer,
};
pub use recovery::{RecoveryEstimate, RecoveryModel, DALY_TOLERANCE, RECOVERY_CAMPAIGN_HOURS};
pub use scaleout::{estimate, ScaleOutEstimate, ScaleOutSpec, SMALL_N_TOLERANCE};
pub use sweep::{
    MultiNodeOutcome, MultiNodePoint, MultiNodeRecord, MultiNodeSpace, MultiNodeSweep,
    MultiNodeSweepError, MultiNodeSweepSpec, RecoveryPoint, RecoveryRecord, RecoverySpace,
    RecoverySweep, RecoverySweepOutcome, RecoverySweepSpec,
};
pub use topology::{FabricError, FabricGraph, FabricKind, FabricLink, FabricNodeKind};

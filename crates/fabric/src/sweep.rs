//! (node count x topology) as a sweep axis through the `ena-sweep`
//! machinery.
//!
//! A [`MultiNodeSweep`] evaluates every [`MultiNodePoint`] of a
//! [`MultiNodeSpace`] — a healthy-fleet scale-out estimate per point —
//! on the same work-stealing pool, with the same memoization (in-memory
//! plus the generic [`DiskCache`]) and the same determinism contract as
//! the node-level engine: the outcome is byte-identical to the
//! sequential oracle for any job count, cache temperature, or
//! interruption history. The Pareto frontier (maximize exaflops and
//! efficiency, minimize power) comes from the shared
//! [`frontier_indices`] kernel.
//!
//! [`RecoverySweep`] runs the second fabric axis the same way:
//! (checkpoint-interval x nodes), each point a Young/Daly
//! analytic-vs-simulated recovery assessment at an interval scaled away
//! from Daly's optimum, scoring recovered (efficiency-weighted) fleet
//! throughput.

use std::collections::BTreeMap;
use std::sync::Arc;

use ena_model::hash::{StableHash, StableHasher, MODEL_VERSION};
use ena_sweep::cache::CacheError;
use ena_sweep::pool::{map_chunks, PoolError};
use ena_sweep::{frontier_indices, CacheMode, CacheRecord, DiskCache, RealFs, SyncPolicy, Vfs};

use crate::recovery::RecoveryModel;
use crate::scaleout::{estimate, ScaleOutEstimate, ScaleOutSpec};
use crate::topology::{FabricError, FabricGraph, FabricKind};

/// One multi-node design point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MultiNodePoint {
    /// Fleet size.
    pub nodes: u32,
    /// Cabinet topology.
    pub kind: FabricKind,
}

impl MultiNodePoint {
    /// Compact display label, e.g. `64@dragonfly`.
    pub fn label(&self) -> String {
        format!("{}@{}", self.nodes, self.kind)
    }
}

impl StableHash for MultiNodePoint {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.nodes);
        self.kind.stable_hash(h);
    }
}

/// The swept grid: every node count crossed with every topology.
#[derive(Clone, Debug)]
pub struct MultiNodeSpace {
    /// Fleet sizes to sweep.
    pub node_counts: Vec<u32>,
    /// Topologies to sweep.
    pub kinds: Vec<FabricKind>,
}

impl MultiNodeSpace {
    /// The standard cabinet sweep: powers of two up to 64 nodes across
    /// every shipped topology (18 points).
    pub fn cabinet() -> Self {
        Self {
            node_counts: vec![2, 4, 8, 16, 32, 64],
            kinds: FabricKind::ALL.to_vec(),
        }
    }

    /// Every point, node-count-major then topology order.
    pub fn points(&self) -> Vec<MultiNodePoint> {
        let mut out = Vec::with_capacity(self.node_counts.len() * self.kinds.len());
        for &nodes in &self.node_counts {
            for &kind in &self.kinds {
                out.push(MultiNodePoint { nodes, kind });
            }
        }
        out
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.node_counts.is_empty() || self.kinds.is_empty()
    }
}

/// One evaluated multi-node point, as memoized and persisted.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiNodeRecord {
    /// The evaluated point.
    pub point: MultiNodePoint,
    /// Achieved fleet throughput (exaflops).
    pub exaflops: f64,
    /// Fleet power (MW).
    pub power_mw: f64,
    /// Communication efficiency.
    pub efficiency: f64,
    /// Halo + all-reduce time (us).
    pub comm_us: f64,
}

impl MultiNodeRecord {
    fn from_estimate(point: MultiNodePoint, est: &ScaleOutEstimate) -> Self {
        Self {
            point,
            exaflops: est.exaflops,
            power_mw: est.power_mw,
            efficiency: est.efficiency,
            comm_us: est.comm_us,
        }
    }

    /// True when `self` Pareto-dominates `other`: no worse on every
    /// objective (exaflops up, efficiency up, power down) and strictly
    /// better on at least one.
    pub fn dominates(&self, other: &MultiNodeRecord) -> bool {
        let no_worse = self.exaflops >= other.exaflops
            && self.efficiency >= other.efficiency
            && self.power_mw <= other.power_mw;
        let better = self.exaflops > other.exaflops
            || self.efficiency > other.efficiency
            || self.power_mw < other.power_mw;
        no_worse && better
    }
}

impl CacheRecord for MultiNodeRecord {
    const TAG: &'static str = "multinode/1";

    fn encode(&self) -> String {
        format!(
            "{} {} {:016x} {:016x} {:016x} {:016x}",
            self.point.nodes,
            self.point.kind.label(),
            self.exaflops.to_bits(),
            self.power_mw.to_bits(),
            self.efficiency.to_bits(),
            self.comm_us.to_bits(),
        )
    }

    fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self> {
        let nodes: u32 = fields.next()?.parse().ok()?;
        let kind = FabricKind::parse(fields.next()?).ok()?;
        let mut f = || Some(f64::from_bits(ena_sweep::hex_field(fields.next()?)?));
        Some(Self {
            point: MultiNodePoint { nodes, kind },
            exaflops: f()?,
            power_mw: f()?,
            efficiency: f()?,
            comm_us: f()?,
        })
    }
}

/// One multi-node sweep request.
#[derive(Clone, Debug)]
pub struct MultiNodeSweepSpec {
    /// The grid to sweep.
    pub space: MultiNodeSpace,
    /// Per-node model and payloads (also names the workload).
    pub scaleout: ScaleOutSpec,
    /// Worker thread count (clamped to at least 1).
    pub jobs: usize,
    /// Points per work-stealing chunk.
    pub chunk_points: usize,
    /// Memoization layer.
    pub cache: CacheMode,
    /// Filesystem the disk cache goes through (swap in
    /// [`ChaosFs`](ena_sweep::ChaosFs) to inject faults).
    pub fs: Arc<dyn Vfs>,
    /// Durability policy for cache appends.
    pub sync: SyncPolicy,
}

impl MultiNodeSweepSpec {
    /// A sequential, memory-cached spec over `space`.
    pub fn new(space: MultiNodeSpace, scaleout: ScaleOutSpec) -> Self {
        Self {
            space,
            scaleout,
            jobs: 1,
            chunk_points: 4,
            cache: CacheMode::Memory,
            fs: Arc::new(RealFs),
            sync: SyncPolicy::default(),
        }
    }
}

/// Everything a completed multi-node sweep produced.
#[derive(Clone, Debug)]
pub struct MultiNodeOutcome {
    /// Every record, in grid point order.
    pub records: Vec<MultiNodeRecord>,
    /// Indices into `records` on the Pareto frontier (exaflops up,
    /// efficiency up, power down), in grid order.
    pub frontier: Vec<usize>,
    /// Points answered from the memoization cache.
    pub cache_hits: usize,
    /// Points evaluated fresh this run.
    pub fresh_evals: usize,
    /// Points in the grid.
    pub total_points: usize,
}

impl MultiNodeOutcome {
    /// Fraction of points served by the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.total_points as f64
        }
    }
}

/// Multi-node sweep failure modes.
#[derive(Debug)]
pub enum MultiNodeSweepError {
    /// The grid has no points.
    EmptySpace,
    /// A point failed to evaluate.
    Fabric(FabricError),
    /// The persistent cache failed.
    Cache(CacheError),
    /// The worker pool lost chunks before completing the sweep.
    Pool(PoolError),
    /// A point's record vanished between evaluation and merge.
    MissingRecord {
        /// The memoization key with no record.
        key: u64,
    },
}

impl std::fmt::Display for MultiNodeSweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptySpace => write!(f, "empty multi-node grid"),
            Self::Fabric(e) => write!(f, "multi-node sweep point: {e}"),
            Self::Cache(e) => write!(f, "multi-node sweep cache: {e}"),
            Self::Pool(e) => write!(f, "multi-node sweep pool: {e}"),
            Self::MissingRecord { key } => {
                write!(f, "no record for multi-node key {key:#018x} at merge time")
            }
        }
    }
}

impl std::error::Error for MultiNodeSweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Fabric(e) => Some(e),
            Self::Cache(e) => Some(e),
            Self::Pool(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for MultiNodeSweepError {
    fn from(e: FabricError) -> Self {
        Self::Fabric(e)
    }
}

impl From<CacheError> for MultiNodeSweepError {
    fn from(e: CacheError) -> Self {
        Self::Cache(e)
    }
}

impl From<PoolError> for MultiNodeSweepError {
    fn from(e: PoolError) -> Self {
        Self::Pool(e)
    }
}

/// The memoizing multi-node sweep engine.
#[derive(Debug, Default)]
pub struct MultiNodeSweep {
    version: String,
    memo: BTreeMap<u64, MultiNodeRecord>,
}

impl MultiNodeSweep {
    /// An engine stamped with the current
    /// [`MODEL_VERSION`](ena_model::hash::MODEL_VERSION).
    pub fn new() -> Self {
        Self {
            version: MODEL_VERSION.to_string(),
            memo: BTreeMap::new(),
        }
    }

    /// Overrides the model-version stamp (test hook for the eviction
    /// path; production code keeps the default).
    pub fn with_version(mut self, version: impl Into<String>) -> Self {
        self.version = version.into();
        self.memo.clear();
        self
    }

    /// Digest of everything besides the grid coordinates that determines
    /// an evaluation: the workload, the node hardware, and the payloads.
    fn campaign_digest(scaleout: &ScaleOutSpec) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(&scaleout.workload);
        scaleout.base.stable_hash(&mut h);
        h.write_f64(scaleout.payload_bytes);
        h.write_f64(scaleout.reduce_bytes);
        h.finish()
    }

    fn point_key(campaign: u64, point: &MultiNodePoint) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(campaign);
        point.stable_hash(&mut h);
        h.finish()
    }

    /// Evaluates one grid point: build the fabric, estimate the healthy
    /// fleet.
    fn evaluate_point(
        point: MultiNodePoint,
        scaleout: &ScaleOutSpec,
    ) -> Result<MultiNodeRecord, FabricError> {
        let graph = FabricGraph::build(point.kind, point.nodes)?;
        let est = estimate(&graph, scaleout, &BTreeMap::new())?;
        Ok(MultiNodeRecord::from_estimate(point, &est))
    }

    /// Runs one sweep: resolves cache hits, evaluates the remainder on
    /// the work-stealing pool, merges in grid order, and extracts the
    /// frontier.
    ///
    /// # Errors
    ///
    /// [`MultiNodeSweepError::EmptySpace`] for a pointless grid,
    /// [`MultiNodeSweepError::Fabric`] when a point fails to evaluate,
    /// and the cache / pool infrastructure variants.
    pub fn run(
        &mut self,
        spec: &MultiNodeSweepSpec,
    ) -> Result<MultiNodeOutcome, MultiNodeSweepError> {
        if spec.space.is_empty() {
            return Err(MultiNodeSweepError::EmptySpace);
        }
        let campaign = Self::campaign_digest(&spec.scaleout);
        let mut disk = match &spec.cache {
            CacheMode::Memory => None,
            CacheMode::Disk(dir) => {
                let (cache, entries) = DiskCache::<MultiNodeRecord>::open_with(
                    spec.fs.clone(),
                    spec.sync,
                    dir,
                    campaign,
                    &self.version,
                )?;
                for (key, record) in entries {
                    self.memo.insert(key, record);
                }
                Some(cache)
            }
        };

        let points = spec.space.points();
        let keys: Vec<u64> = points
            .iter()
            .map(|p| Self::point_key(campaign, p))
            .collect();
        let fresh: Vec<(u64, MultiNodePoint)> = keys
            .iter()
            .zip(&points)
            .filter(|(key, _)| !self.memo.contains_key(*key))
            .map(|(key, point)| (*key, *point))
            .collect();
        let cache_hits = points.len() - fresh.len();
        let fresh_evals = fresh.len();

        let chunk_points = spec.chunk_points.max(1);
        let chunks: Vec<Vec<(u64, MultiNodePoint)>> = fresh
            .chunks(chunk_points)
            .map(<[(u64, MultiNodePoint)]>::to_vec)
            .collect();

        let scaleout = &spec.scaleout;
        let mut io_error: Option<CacheError> = None;
        let (chunk_results, _) = map_chunks(
            spec.jobs,
            chunks,
            |(key, point)| (*key, Self::evaluate_point(*point, scaleout)),
            |_, results: &[(u64, Result<MultiNodeRecord, FabricError>)]| {
                if let Some(cache) = disk.as_mut() {
                    if io_error.is_none() {
                        for (key, result) in results {
                            if let Ok(record) = result {
                                if let Err(e) = cache.append(*key, record) {
                                    io_error = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                }
            },
        )?;
        if let Some(e) = io_error {
            return Err(MultiNodeSweepError::Cache(e));
        }
        for (key, result) in chunk_results.into_iter().flatten() {
            self.memo.insert(key, result?);
        }

        // Merge in grid order: the only order the frontier ever sees.
        let mut records = Vec::with_capacity(keys.len());
        for key in &keys {
            let Some(record) = self.memo.get(key) else {
                return Err(MultiNodeSweepError::MissingRecord { key: *key });
            };
            records.push(record.clone());
        }
        let frontier = frontier_indices(&records, MultiNodeRecord::dominates);

        Ok(MultiNodeOutcome {
            records,
            frontier,
            cache_hits,
            fresh_evals,
            total_points: points.len(),
        })
    }
}

/// One (checkpoint-interval x nodes) design point. The interval is
/// expressed as a percentage of Daly's optimum at that fleet size, so
/// the axis stays meaningful as the optimum moves with `N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecoveryPoint {
    /// Fleet size.
    pub nodes: u32,
    /// Checkpoint interval as a percentage of the Daly optimum
    /// (100 = optimal, 50 = checkpoint twice as often, 200 = half as
    /// often).
    pub interval_scale_pct: u32,
}

impl RecoveryPoint {
    /// Compact display label, e.g. `64@100%`.
    pub fn label(&self) -> String {
        format!("{}@{}%", self.nodes, self.interval_scale_pct)
    }
}

impl StableHash for RecoveryPoint {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.nodes);
        h.write_u32(self.interval_scale_pct);
    }
}

/// The swept recovery grid: every node count crossed with every interval
/// scale.
#[derive(Clone, Debug)]
pub struct RecoverySpace {
    /// Fleet sizes to sweep.
    pub node_counts: Vec<u32>,
    /// Interval scales to sweep, percent of the Daly optimum.
    pub interval_scales_pct: Vec<u32>,
}

impl RecoverySpace {
    /// The standard axis: the cabinet node counts crossed with intervals
    /// from 4x-too-frequent to 4x-too-rare (30 points).
    pub fn standard() -> Self {
        Self {
            node_counts: vec![2, 4, 8, 16, 32, 64],
            interval_scales_pct: vec![25, 50, 100, 200, 400],
        }
    }

    /// Every point, node-count-major then scale order.
    pub fn points(&self) -> Vec<RecoveryPoint> {
        let mut out = Vec::with_capacity(self.node_counts.len() * self.interval_scales_pct.len());
        for &nodes in &self.node_counts {
            for &interval_scale_pct in &self.interval_scales_pct {
                out.push(RecoveryPoint {
                    nodes,
                    interval_scale_pct,
                });
            }
        }
        out
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.node_counts.is_empty() || self.interval_scales_pct.is_empty()
    }
}

/// One evaluated recovery point, as memoized and persisted.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryRecord {
    /// The evaluated point.
    pub point: RecoveryPoint,
    /// The absolute checkpoint interval assessed (hours).
    pub interval_hours: f64,
    /// Closed-form Young/Daly efficiency at that interval.
    pub analytic: f64,
    /// Monte Carlo campaign efficiency on the same parameters.
    pub simulated: f64,
    /// Healthy fleet throughput weighted by the simulated efficiency
    /// (EF) — the number the machine actually delivers.
    pub recovered_exaflops: f64,
}

impl RecoveryRecord {
    /// True when `self` Pareto-dominates `other`: no worse on recovered
    /// throughput and simulated efficiency, strictly better on one.
    /// (Bigger fleets deliver more exaflops but recover less efficiently,
    /// so the frontier traces the genuine scale-vs-resilience tradeoff.)
    pub fn dominates(&self, other: &RecoveryRecord) -> bool {
        let no_worse = self.recovered_exaflops >= other.recovered_exaflops
            && self.simulated >= other.simulated;
        let better =
            self.recovered_exaflops > other.recovered_exaflops || self.simulated > other.simulated;
        no_worse && better
    }
}

impl CacheRecord for RecoveryRecord {
    const TAG: &'static str = "recovery/1";

    fn encode(&self) -> String {
        format!(
            "{} {} {:016x} {:016x} {:016x} {:016x}",
            self.point.nodes,
            self.point.interval_scale_pct,
            self.interval_hours.to_bits(),
            self.analytic.to_bits(),
            self.simulated.to_bits(),
            self.recovered_exaflops.to_bits(),
        )
    }

    fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self> {
        let nodes: u32 = fields.next()?.parse().ok()?;
        let interval_scale_pct: u32 = fields.next()?.parse().ok()?;
        let mut f = || Some(f64::from_bits(ena_sweep::hex_field(fields.next()?)?));
        Some(Self {
            point: RecoveryPoint {
                nodes,
                interval_scale_pct,
            },
            interval_hours: f()?,
            analytic: f()?,
            simulated: f()?,
            recovered_exaflops: f()?,
        })
    }
}

/// One recovery sweep request.
#[derive(Clone, Debug)]
pub struct RecoverySweepSpec {
    /// The grid to sweep.
    pub space: RecoverySpace,
    /// Per-node model and payloads (also names the workload).
    pub scaleout: ScaleOutSpec,
    /// Cabinet topology every point is built on.
    pub kind: FabricKind,
    /// Node MTBF and checkpoint cost.
    pub recovery: RecoveryModel,
    /// Seed for the Monte Carlo leg.
    pub seed: u64,
    /// Worker thread count (clamped to at least 1).
    pub jobs: usize,
    /// Points per work-stealing chunk.
    pub chunk_points: usize,
    /// Memoization layer.
    pub cache: CacheMode,
    /// Filesystem the disk cache goes through (swap in
    /// [`ChaosFs`](ena_sweep::ChaosFs) to inject faults).
    pub fs: Arc<dyn Vfs>,
    /// Durability policy for cache appends.
    pub sync: SyncPolicy,
}

impl RecoverySweepSpec {
    /// A sequential, memory-cached spec over `space`.
    pub fn new(space: RecoverySpace, scaleout: ScaleOutSpec, recovery: RecoveryModel) -> Self {
        Self {
            space,
            scaleout,
            kind: FabricKind::DragonflyLite,
            recovery,
            seed: 0xC0FFEE,
            jobs: 1,
            chunk_points: 4,
            cache: CacheMode::Memory,
            fs: Arc::new(RealFs),
            sync: SyncPolicy::default(),
        }
    }
}

/// Everything a completed recovery sweep produced.
#[derive(Clone, Debug)]
pub struct RecoverySweepOutcome {
    /// Every record, in grid point order.
    pub records: Vec<RecoveryRecord>,
    /// Indices into `records` on the Pareto frontier (recovered
    /// throughput up, simulated efficiency up), in grid order.
    pub frontier: Vec<usize>,
    /// Points answered from the memoization cache.
    pub cache_hits: usize,
    /// Points evaluated fresh this run.
    pub fresh_evals: usize,
    /// Points in the grid.
    pub total_points: usize,
}

impl RecoverySweepOutcome {
    /// Fraction of points served by the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.total_points as f64
        }
    }
}

/// The memoizing (checkpoint-interval x nodes) sweep engine. Shares the
/// determinism contract (and error type) of [`MultiNodeSweep`].
#[derive(Debug, Default)]
pub struct RecoverySweep {
    version: String,
    memo: BTreeMap<u64, RecoveryRecord>,
}

impl RecoverySweep {
    /// An engine stamped with the current
    /// [`MODEL_VERSION`](ena_model::hash::MODEL_VERSION).
    pub fn new() -> Self {
        Self {
            version: MODEL_VERSION.to_string(),
            memo: BTreeMap::new(),
        }
    }

    /// Overrides the model-version stamp (test hook for the eviction
    /// path; production code keeps the default).
    pub fn with_version(mut self, version: impl Into<String>) -> Self {
        self.version = version.into();
        self.memo.clear();
        self
    }

    /// Digest of everything besides the grid coordinates that determines
    /// an evaluation: workload, hardware, payloads, topology, recovery
    /// parameters, and the Monte Carlo seed.
    fn campaign_digest(spec: &RecoverySweepSpec) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(&spec.scaleout.workload);
        spec.scaleout.base.stable_hash(&mut h);
        h.write_f64(spec.scaleout.payload_bytes);
        h.write_f64(spec.scaleout.reduce_bytes);
        spec.kind.stable_hash(&mut h);
        spec.recovery.stable_hash(&mut h);
        h.write_u64(spec.seed);
        h.finish()
    }

    fn point_key(campaign: u64, point: &RecoveryPoint) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(campaign);
        point.stable_hash(&mut h);
        h.finish()
    }

    /// Evaluates one grid point: healthy fleet estimate at `nodes`, both
    /// recovery legs at the scaled interval.
    fn evaluate_point(
        point: RecoveryPoint,
        spec: &RecoverySweepSpec,
    ) -> Result<RecoveryRecord, FabricError> {
        let graph = FabricGraph::build(spec.kind, point.nodes)?;
        let est = estimate(&graph, &spec.scaleout, &BTreeMap::new())?;
        let interval_hours = spec.recovery.optimal_interval_hours(point.nodes)
            * f64::from(point.interval_scale_pct)
            / 100.0;
        let analytic = spec
            .recovery
            .analytic_efficiency_at(point.nodes, interval_hours);
        let simulated =
            spec.recovery
                .simulated_efficiency_at(point.nodes, interval_hours, spec.seed);
        Ok(RecoveryRecord {
            point,
            interval_hours,
            analytic,
            simulated,
            recovered_exaflops: est.exaflops * simulated,
        })
    }

    /// Runs one sweep: resolves cache hits, evaluates the remainder on
    /// the work-stealing pool, merges in grid order, and extracts the
    /// frontier.
    ///
    /// # Errors
    ///
    /// [`MultiNodeSweepError::EmptySpace`] for a pointless grid,
    /// [`MultiNodeSweepError::Fabric`] when a point fails to evaluate,
    /// and the cache / pool infrastructure variants.
    pub fn run(
        &mut self,
        spec: &RecoverySweepSpec,
    ) -> Result<RecoverySweepOutcome, MultiNodeSweepError> {
        if spec.space.is_empty() {
            return Err(MultiNodeSweepError::EmptySpace);
        }
        let campaign = Self::campaign_digest(spec);
        let mut disk = match &spec.cache {
            CacheMode::Memory => None,
            CacheMode::Disk(dir) => {
                let (cache, entries) = DiskCache::<RecoveryRecord>::open_with(
                    spec.fs.clone(),
                    spec.sync,
                    dir,
                    campaign,
                    &self.version,
                )?;
                for (key, record) in entries {
                    self.memo.insert(key, record);
                }
                Some(cache)
            }
        };

        let points = spec.space.points();
        let keys: Vec<u64> = points
            .iter()
            .map(|p| Self::point_key(campaign, p))
            .collect();
        let fresh: Vec<(u64, RecoveryPoint)> = keys
            .iter()
            .zip(&points)
            .filter(|(key, _)| !self.memo.contains_key(*key))
            .map(|(key, point)| (*key, *point))
            .collect();
        let cache_hits = points.len() - fresh.len();
        let fresh_evals = fresh.len();

        let chunk_points = spec.chunk_points.max(1);
        let chunks: Vec<Vec<(u64, RecoveryPoint)>> = fresh
            .chunks(chunk_points)
            .map(<[(u64, RecoveryPoint)]>::to_vec)
            .collect();

        let mut io_error: Option<CacheError> = None;
        let (chunk_results, _) = map_chunks(
            spec.jobs,
            chunks,
            |(key, point)| (*key, Self::evaluate_point(*point, spec)),
            |_, results: &[(u64, Result<RecoveryRecord, FabricError>)]| {
                if let Some(cache) = disk.as_mut() {
                    if io_error.is_none() {
                        for (key, result) in results {
                            if let Ok(record) = result {
                                if let Err(e) = cache.append(*key, record) {
                                    io_error = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                }
            },
        )?;
        if let Some(e) = io_error {
            return Err(MultiNodeSweepError::Cache(e));
        }
        for (key, result) in chunk_results.into_iter().flatten() {
            self.memo.insert(key, result?);
        }

        // Merge in grid order: the only order the frontier ever sees.
        let mut records = Vec::with_capacity(keys.len());
        for key in &keys {
            let Some(record) = self.memo.get(key) else {
                return Err(MultiNodeSweepError::MissingRecord { key: *key });
            };
            records.push(record.clone());
        }
        let frontier = frontier_indices(&records, RecoveryRecord::dominates);

        Ok(RecoverySweepOutcome {
            records,
            frontier,
            cache_hits,
            fresh_evals,
            total_points: points.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MultiNodeSweepSpec {
        MultiNodeSweepSpec::new(MultiNodeSpace::cabinet(), ScaleOutSpec::standard("CoMD"))
    }

    #[test]
    fn the_cabinet_grid_has_every_cross_product_point() {
        let points = MultiNodeSpace::cabinet().points();
        assert_eq!(points.len(), 18);
        assert_eq!(
            points.first().unwrap(),
            &MultiNodePoint {
                nodes: 2,
                kind: FabricKind::FatTree
            }
        );
        assert_eq!(points.last().unwrap().label(), "64@dragonfly");
    }

    #[test]
    fn records_round_trip_through_the_cache_encoding() {
        let record = MultiNodeRecord {
            point: MultiNodePoint {
                nodes: 64,
                kind: FabricKind::DragonflyLite,
            },
            exaflops: 1.2345678901234567,
            power_mw: 15.5,
            efficiency: 0.9375,
            comm_us: 312.0625,
        };
        let line = record.encode();
        let mut fields = line.split(' ');
        let back = MultiNodeRecord::decode(&mut fields).unwrap();
        assert_eq!(back, record);
        assert!(fields.next().is_none());
    }

    #[test]
    fn parallel_equals_sequential_for_any_job_count() {
        let mut oracle = MultiNodeSweep::new();
        let sequential = oracle.run(&spec()).unwrap();
        for jobs in [2usize, 4, 8] {
            let mut engine = MultiNodeSweep::new();
            let parallel = engine.run(&MultiNodeSweepSpec { jobs, ..spec() }).unwrap();
            assert_eq!(parallel.records, sequential.records, "jobs = {jobs}");
            assert_eq!(parallel.frontier, sequential.frontier, "jobs = {jobs}");
        }
    }

    #[test]
    fn the_memo_turns_reruns_into_pure_hits() {
        let mut engine = MultiNodeSweep::new();
        let cold = engine.run(&spec()).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.fresh_evals, 18);
        let warm = engine.run(&spec()).unwrap();
        assert_eq!(warm.cache_hits, 18);
        assert_eq!(warm.fresh_evals, 0);
        assert!((warm.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(warm.records, cold.records);
    }

    #[test]
    fn the_frontier_is_nonempty_and_undominated() {
        let mut engine = MultiNodeSweep::new();
        let outcome = engine.run(&spec()).unwrap();
        assert!(!outcome.frontier.is_empty());
        for &i in &outcome.frontier {
            let f = &outcome.records[i];
            assert!(outcome.records.iter().all(|r| !r.dominates(f)));
        }
        // Every point not on the frontier is dominated by someone.
        for (i, r) in outcome.records.iter().enumerate() {
            if !outcome.frontier.contains(&i) {
                assert!(outcome.records.iter().any(|other| other.dominates(r)));
            }
        }
    }

    #[test]
    fn disk_caches_resume_across_engine_instances() {
        let dir = std::env::temp_dir().join("ena-fabric-sweep-test-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let disk_spec = MultiNodeSweepSpec {
            cache: CacheMode::Disk(dir.clone()),
            ..spec()
        };
        let mut cold_engine = MultiNodeSweep::new();
        let cold = cold_engine.run(&disk_spec).unwrap();
        assert_eq!(cold.fresh_evals, 18);
        // A brand-new engine (fresh process, conceptually) hits disk.
        let mut warm_engine = MultiNodeSweep::new();
        let warm = warm_engine.run(&disk_spec).unwrap();
        assert_eq!(warm.cache_hits, 18);
        assert_eq!(warm.records, cold.records);
        // A model-version bump evicts rather than replays stale numbers.
        let mut bumped = MultiNodeSweep::new().with_version("ena-model/next");
        let evicted = bumped.run(&disk_spec).unwrap();
        assert_eq!(evicted.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_grids_are_rejected() {
        let mut engine = MultiNodeSweep::new();
        let empty = MultiNodeSweepSpec::new(
            MultiNodeSpace {
                node_counts: vec![],
                kinds: vec![],
            },
            ScaleOutSpec::standard("CoMD"),
        );
        assert!(matches!(
            engine.run(&empty),
            Err(MultiNodeSweepError::EmptySpace)
        ));
    }

    #[test]
    fn bad_workloads_surface_as_fabric_errors() {
        let mut engine = MultiNodeSweep::new();
        let bad = MultiNodeSweepSpec::new(
            MultiNodeSpace::cabinet(),
            ScaleOutSpec::standard("NoSuchKernel"),
        );
        assert!(matches!(
            engine.run(&bad),
            Err(MultiNodeSweepError::Fabric(_))
        ));
    }

    fn recovery_spec() -> RecoverySweepSpec {
        RecoverySweepSpec::new(
            RecoverySpace::standard(),
            ScaleOutSpec::standard("CoMD"),
            RecoveryModel::new(96.0, 3.0),
        )
    }

    #[test]
    fn the_recovery_grid_crosses_intervals_with_node_counts() {
        let points = RecoverySpace::standard().points();
        assert_eq!(points.len(), 30);
        assert_eq!(points.first().unwrap().label(), "2@25%");
        assert_eq!(points.last().unwrap().label(), "64@400%");
    }

    #[test]
    fn recovery_records_round_trip_through_the_cache_encoding() {
        let record = RecoveryRecord {
            point: RecoveryPoint {
                nodes: 64,
                interval_scale_pct: 200,
            },
            interval_hours: 0.3125,
            analytic: 0.8671875,
            simulated: 0.871234567,
            recovered_exaflops: 0.123456789,
        };
        let line = record.encode();
        let mut fields = line.split(' ');
        let back = RecoveryRecord::decode(&mut fields).unwrap();
        assert_eq!(back, record);
        assert!(fields.next().is_none());
    }

    #[test]
    fn recovery_parallel_equals_sequential_and_memoizes() {
        let mut oracle = RecoverySweep::new();
        let sequential = oracle.run(&recovery_spec()).unwrap();
        assert_eq!(sequential.fresh_evals, 30);
        for jobs in [2usize, 8] {
            let mut engine = RecoverySweep::new();
            let parallel = engine
                .run(&RecoverySweepSpec {
                    jobs,
                    ..recovery_spec()
                })
                .unwrap();
            assert_eq!(parallel.records, sequential.records, "jobs = {jobs}");
            assert_eq!(parallel.frontier, sequential.frontier, "jobs = {jobs}");
        }
        let warm = oracle.run(&recovery_spec()).unwrap();
        assert_eq!(warm.cache_hits, 30);
        assert!((warm.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn the_recovery_frontier_traces_the_scale_vs_resilience_tradeoff() {
        let mut engine = RecoverySweep::new();
        let outcome = engine.run(&recovery_spec()).unwrap();
        assert!(!outcome.frontier.is_empty());
        for &i in &outcome.frontier {
            let f = &outcome.records[i];
            assert!(outcome.records.iter().all(|r| !r.dominates(f)));
        }
        // Daly-optimal points agree with their analytic prediction.
        for r in &outcome.records {
            if r.point.interval_scale_pct == 100 {
                assert!(
                    (r.analytic - r.simulated).abs() < crate::recovery::DALY_TOLERANCE,
                    "{}: analytic {:.4} vs simulated {:.4}",
                    r.point.label(),
                    r.analytic,
                    r.simulated
                );
            }
        }
        // At fixed N the optimal interval's analytic efficiency beats
        // every off-optimal scale.
        for &nodes in &[2u32, 64] {
            let at = |pct: u32| {
                outcome
                    .records
                    .iter()
                    .find(|r| r.point.nodes == nodes && r.point.interval_scale_pct == pct)
                    .map(|r| r.analytic)
                    .unwrap_or(0.0)
            };
            for pct in [25u32, 50, 200, 400] {
                assert!(at(100) > at(pct), "N={nodes} pct={pct}");
            }
        }
    }

    #[test]
    fn recovery_disk_caches_resume_across_engine_instances() {
        let dir = std::env::temp_dir().join("ena-fabric-recovery-sweep-test-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let disk_spec = RecoverySweepSpec {
            cache: CacheMode::Disk(dir.clone()),
            ..recovery_spec()
        };
        let mut cold_engine = RecoverySweep::new();
        let cold = cold_engine.run(&disk_spec).unwrap();
        assert_eq!(cold.fresh_evals, 30);
        let mut warm_engine = RecoverySweep::new();
        let warm = warm_engine.run(&disk_spec).unwrap();
        assert_eq!(warm.cache_hits, 30);
        assert_eq!(warm.records, cold.records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_recovery_grids_are_rejected() {
        let mut engine = RecoverySweep::new();
        let empty = RecoverySweepSpec {
            space: RecoverySpace {
                node_counts: vec![],
                interval_scales_pct: vec![],
            },
            ..recovery_spec()
        };
        assert!(matches!(
            engine.run(&empty),
            Err(MultiNodeSweepError::EmptySpace)
        ));
    }
}

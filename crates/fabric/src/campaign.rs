//! Multi-node fault campaigns: node loss, stragglers, link degradation.
//!
//! A [`MultiNodeCampaignSpec`] drives a seeded [`NodeFaultPlan`] through
//! a fabric, re-estimating fleet throughput after every event:
//!
//! - **node loss** removes the node from the machine
//!   ([`FabricGraph::fail_ehp`]) — traffic reroutes, collectives shrink;
//! - **straggler** runs a full *intra-node* `ena-faults` degradation
//!   campaign (single chiplet loss, seed derived from the plan seed and
//!   the node index) and converts the retained throughput into a
//!   compute-slowdown factor for the bulk-synchronous barrier — the
//!   cross-layer coupling the issue asks for, and the embedded
//!   [`DegradationReport`] is part of the rendered output, so the
//!   byte-identity guarantee covers it too;
//! - **link degradation** shaves bandwidth off every channel on a
//!   route ([`FabricGraph::degrade_route`]), stretching collectives.
//!
//! The report renders as deterministic text: same spec, byte-identical
//! bytes, across runs and processes.

use std::collections::BTreeMap;

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_core::system::{project_system, SystemProjection};
use ena_faults::{
    run_campaign, CampaignSpec, DegradationReport, FaultPlan, NodeFaultEvent, NodeFaultKind,
    NodeFaultPlan,
};
use ena_workloads::profile_for;

use crate::collective::{schedule, CollectiveKind};
use crate::recovery::{RecoveryEstimate, RecoveryModel};
use crate::scaleout::{estimate, ScaleOutEstimate, ScaleOutSpec};
use crate::topology::{FabricError, FabricGraph, FabricKind};

/// Everything needed to run one multi-node campaign.
#[derive(Clone, Debug)]
pub struct MultiNodeCampaignSpec {
    /// Node count of the fleet.
    pub nodes: u32,
    /// Cabinet topology.
    pub kind: FabricKind,
    /// The node-level failure schedule.
    pub plan: NodeFaultPlan,
    /// Per-node model and payload sizes (also names the workload).
    pub scaleout: ScaleOutSpec,
    /// Optional checkpoint/restart recovery model (`--mtbf` /
    /// `--checkpoint-cost`): when set, the report closes with a
    /// Young/Daly analytic-vs-simulated recovery section at the final
    /// surviving fleet size. `None` leaves the report byte-identical to
    /// a pre-recovery campaign.
    pub recovery: Option<RecoveryModel>,
}

impl MultiNodeCampaignSpec {
    /// The acceptance campaign: a 64-node dragonfly-lite cabinet running
    /// CoMD under the seeded scale-out plan (one node loss, one
    /// straggler, one degraded route).
    pub fn standard(seed: u64) -> Self {
        Self {
            nodes: 64,
            kind: FabricKind::DragonflyLite,
            plan: NodeFaultPlan::scaleout_campaign(seed, 64),
            scaleout: ScaleOutSpec::standard("CoMD"),
            recovery: None,
        }
    }
}

/// One applied node-level fault and the fleet state after it settled.
#[derive(Clone, Debug)]
pub struct MultiNodeStep {
    /// The injected fault.
    pub event: NodeFaultEvent,
    /// For stragglers: the compute-slowdown factor the intra-node
    /// campaign produced.
    pub slowdown: Option<f64>,
    /// Fleet estimate after the fault.
    pub estimate: ScaleOutEstimate,
    /// Whether every surviving node can still reach every other.
    pub reachable: bool,
}

/// Complete record of one multi-node campaign.
#[derive(Clone, Debug)]
pub struct MultiNodeReport {
    /// Workload name.
    pub workload: String,
    /// Fabric topology.
    pub kind: FabricKind,
    /// Built node count.
    pub nodes: u32,
    /// Plan seed.
    pub seed: u64,
    /// Healthy-fleet estimate.
    pub healthy: ScaleOutEstimate,
    /// Healthy fabric diameter in hops.
    pub diameter_hops: usize,
    /// Healthy physical link count.
    pub physical_links: usize,
    /// Healthy collective totals, one per [`CollectiveKind::ALL`] entry
    /// (us).
    pub collective_us: Vec<(CollectiveKind, f64)>,
    /// Per-fault steps, in injection order.
    pub steps: Vec<MultiNodeStep>,
    /// The analytic linear projection at the built node count.
    pub projection: SystemProjection,
    /// Intra-node degradation campaigns behind each straggler, in
    /// injection order.
    pub straggler_reports: Vec<(u32, DegradationReport)>,
    /// Checkpoint/restart recovery at the final fleet size, when the
    /// spec carried a [`RecoveryModel`].
    pub recovery: Option<RecoveryOutcome>,
}

/// The recovery section of a multi-node report: achieved efficiency as a
/// function of node MTBF, checkpoint cost, and the surviving fleet size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryOutcome {
    /// The model the campaign ran with.
    pub model: RecoveryModel,
    /// Analytic-vs-simulated assessment at the final fleet size.
    pub estimate: RecoveryEstimate,
    /// Final fleet throughput with the *simulated* recovery efficiency
    /// applied (EF).
    pub recovered_exaflops: f64,
}

impl MultiNodeReport {
    /// The fleet state after the last fault (healthy for an empty plan).
    pub fn final_estimate(&self) -> &ScaleOutEstimate {
        self.steps.last().map_or(&self.healthy, |s| &s.estimate)
    }

    /// Fraction of healthy fleet throughput retained at the end.
    pub fn throughput_retained(&self) -> f64 {
        if self.healthy.exaflops == 0.0 {
            0.0
        } else {
            self.final_estimate().exaflops / self.healthy.exaflops
        }
    }

    /// Renders the report as deterministic text (the golden-artifact and
    /// byte-identity format). Embedded intra-node reports are indented
    /// two spaces.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ENA multi-node fabric campaign");
        let _ = writeln!(out, "==============================");
        let _ = writeln!(
            out,
            "workload {} | fabric {} x{} | seed {:#x} | {} scheduled faults",
            self.workload,
            self.kind,
            self.nodes,
            self.seed,
            self.steps.len()
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "healthy fleet");
        let _ = writeln!(
            out,
            "  {} nodes | diameter {} hops | {} physical links",
            self.nodes, self.diameter_hops, self.physical_links
        );
        render_estimate(&mut out, &self.healthy);
        let parts: Vec<String> = self
            .collective_us
            .iter()
            .map(|(kind, us)| format!("{kind} {us:.1} us"))
            .collect();
        let _ = writeln!(out, "  collectives: {}", parts.join(" | "));
        for step in &self.steps {
            let _ = writeln!(out);
            let _ = write!(out, "t={:7.1} us  {}", step.event.at_us, step.event.kind);
            match step.slowdown {
                Some(s) => {
                    let _ = writeln!(out, " (x{s:.2} compute slowdown)");
                }
                None => {
                    let _ = writeln!(out);
                }
            }
            let _ = writeln!(
                out,
                "  {} nodes alive | mutually reachable: {}",
                step.estimate.nodes_alive,
                if step.reachable { "yes" } else { "NO" }
            );
            render_estimate(&mut out, &step.estimate);
            let _ = writeln!(
                out,
                "  retained {:.1} % of healthy fleet throughput",
                100.0 * step.estimate.exaflops / self.healthy.exaflops.max(f64::MIN_POSITIVE)
            );
        }
        let _ = writeln!(out);
        let derated = self.projection.derated(self.final_estimate().efficiency);
        let _ = writeln!(out, "analytic cross-check (at built size)");
        let _ = writeln!(
            out,
            "  linear {:.3} EF | derated {:.3} EF | simulated final {:.3} EF | gap to linear {:.1} %",
            self.projection.exaflops,
            derated.exaflops,
            self.final_estimate().exaflops,
            100.0 * self.final_estimate().analytic_gap(&self.projection)
        );
        for (node, report) in &self.straggler_reports {
            let _ = writeln!(out);
            let _ = writeln!(out, "straggler node {node}: intra-node campaign");
            for line in report.render().lines() {
                if line.is_empty() {
                    let _ = writeln!(out);
                } else {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        if let Some(recovery) = &self.recovery {
            let est = &recovery.estimate;
            let _ = writeln!(out);
            let _ = writeln!(out, "checkpoint/restart recovery ({})", recovery.model);
            let _ = writeln!(
                out,
                "  N={} -> system MTTF {:.2} h | Daly interval {:.3} h",
                est.nodes, est.system_mttf_hours, est.interval_hours
            );
            let _ = writeln!(
                out,
                "  efficiency: analytic {:.4} | simulated {:.4} | gap {:.4}",
                est.analytic,
                est.simulated,
                est.gap()
            );
            let _ = writeln!(
                out,
                "  recovered throughput {:.3} EF",
                recovery.recovered_exaflops
            );
        }
        out
    }
}

fn render_estimate(out: &mut String, e: &ScaleOutEstimate) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "  compute {:.1} us (slowest {:.1} us) | comm {:.1} us | efficiency {:.2} %",
        e.compute_us,
        e.slowest_compute_us,
        e.comm_us,
        100.0 * e.efficiency
    );
    let _ = writeln!(
        out,
        "  fleet {:.3} EF | {:.2} MW | node {:.2} TF",
        e.exaflops, e.power_mw, e.node_teraflops
    );
}

/// Converts an intra-node degradation into a bulk-synchronous compute
/// slowdown: a node retaining 66 % of healthy throughput takes 1.5x as
/// long per iteration. Retention is floored so a near-dead node yields a
/// large finite slowdown instead of a division blow-up.
fn slowdown_from(report: &DegradationReport) -> f64 {
    1.0 / report.throughput_retained().max(0.05)
}

/// Runs `spec` end to end and assembles the report.
///
/// # Errors
///
/// Any [`FabricError`] from building or mutating the fabric, an unknown
/// workload, or a failed intra-node straggler campaign
/// ([`FabricError::IntraNode`]).
pub fn run_multinode_campaign(
    spec: &MultiNodeCampaignSpec,
) -> Result<MultiNodeReport, FabricError> {
    let mut graph = FabricGraph::build(spec.kind, spec.nodes)?;
    let mut stragglers: BTreeMap<u32, f64> = BTreeMap::new();
    let mut straggler_reports = Vec::new();

    let healthy = estimate(&graph, &spec.scaleout, &stragglers)?;
    let diameter_hops = graph.diameter_hops()?;
    let physical_links = graph.physical_links().len();
    let mut collective_us = Vec::with_capacity(CollectiveKind::ALL.len());
    for kind in CollectiveKind::ALL {
        let s = schedule(&graph, kind, spec.scaleout.halo_bytes())?;
        collective_us.push((kind, s.total.value()));
    }

    let mut steps = Vec::with_capacity(spec.plan.len());
    for &event in spec.plan.events() {
        let mut slowdown = None;
        match event.kind {
            NodeFaultKind::NodeLoss(node) => {
                graph.fail_ehp(node)?;
                stragglers.remove(&node);
            }
            NodeFaultKind::Straggler(node) => {
                if node >= spec.nodes {
                    return Err(FabricError::UnknownNode(node as usize));
                }
                // The straggler's slowdown is *derived*, not drawn: an
                // intra-node chiplet-loss campaign on this node's own
                // hardware, seeded from the plan and the node index.
                let intra = CampaignSpec {
                    workload: spec.scaleout.workload.clone(),
                    base: spec.scaleout.base.clone(),
                    plan: FaultPlan::single_chiplet_loss(spec.plan.seed ^ u64::from(node)),
                    ..CampaignSpec::standard(spec.plan.seed)
                };
                let report = run_campaign(&intra)?;
                let factor = slowdown_from(&report);
                stragglers.insert(node, factor);
                straggler_reports.push((node, report));
                slowdown = Some(factor);
            }
            NodeFaultKind::LinkDegradation { a, b, percent } => {
                graph.degrade_route(a, b, percent)?;
            }
        }
        let est = estimate(&graph, &spec.scaleout, &stragglers)?;
        steps.push(MultiNodeStep {
            event,
            slowdown,
            estimate: est,
            reachable: graph.all_ehp_mutually_reachable(),
        });
    }

    let profile = profile_for(&spec.scaleout.workload)
        .ok_or_else(|| FabricError::UnknownWorkload(spec.scaleout.workload.clone()))?;
    let projection = project_system(
        &NodeSimulator::new(),
        &spec.scaleout.base,
        &profile,
        &EvalOptions::default(),
        u64::from(spec.nodes),
    );

    // Recovery closes the report at the *surviving* fleet size: the
    // machine that still has to make progress is the one paying the
    // checkpoint/restart tax.
    let recovery = spec.recovery.map(|model| {
        let final_est = steps.last().map_or(&healthy, |s| &s.estimate);
        let alive = final_est.nodes_alive.min(u32::MAX as usize) as u32;
        let estimate = model.assess(alive, spec.plan.seed);
        RecoveryOutcome {
            model,
            estimate,
            recovered_exaflops: final_est.exaflops * estimate.simulated,
        }
    });

    Ok(MultiNodeReport {
        workload: spec.scaleout.workload.clone(),
        kind: spec.kind,
        nodes: spec.nodes,
        seed: spec.plan.seed,
        healthy,
        diameter_hops,
        physical_links,
        collective_us,
        steps,
        projection,
        straggler_reports,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_campaign_degrades_but_survives() {
        let report = run_multinode_campaign(&MultiNodeCampaignSpec::standard(0xC0FFEE)).unwrap();
        assert_eq!(report.steps.len(), 3);
        // Exactly one straggler, backed by an embedded intra-node report.
        assert_eq!(report.straggler_reports.len(), 1);
        let (node, intra) = report.straggler_reports.first().unwrap();
        assert!(*node < 64);
        assert!(intra.throughput_retained() < 1.0);
        // Every step leaves the survivors mutually reachable.
        assert!(report.steps.iter().all(|s| s.reachable));
        // The fleet lost a node and some speed, but not the machine.
        let last = report.final_estimate();
        assert_eq!(last.nodes_alive, 63);
        assert!(last.exaflops > 0.0);
        assert!(last.exaflops < report.healthy.exaflops);
        let retained = report.throughput_retained();
        assert!(retained > 0.5 && retained < 1.0, "retained = {retained}");
    }

    #[test]
    fn same_seed_renders_byte_identical_reports() {
        let a = run_multinode_campaign(&MultiNodeCampaignSpec::standard(42))
            .unwrap()
            .render();
        let b = run_multinode_campaign(&MultiNodeCampaignSpec::standard(42))
            .unwrap()
            .render();
        assert_eq!(a, b);
        let c = run_multinode_campaign(&MultiNodeCampaignSpec::standard(43))
            .unwrap()
            .render();
        assert_ne!(a, c);
        // The embedded intra-node campaign is part of the rendered bytes.
        assert!(a.contains("ENA fault-injection campaign"));
    }

    #[test]
    fn a_recovery_model_appends_a_cross_checked_section() {
        let without = run_multinode_campaign(&MultiNodeCampaignSpec::standard(0xC0FFEE)).unwrap();
        assert!(without.recovery.is_none());
        let plain = without.render();

        let spec = MultiNodeCampaignSpec {
            recovery: Some(RecoveryModel::new(96.0, 3.0)),
            ..MultiNodeCampaignSpec::standard(0xC0FFEE)
        };
        let with = run_multinode_campaign(&spec).unwrap();
        let recovery = with.recovery.as_ref().unwrap();
        // Assessed at the surviving fleet, not the built one.
        assert_eq!(
            recovery.estimate.nodes as usize,
            with.final_estimate().nodes_alive
        );
        assert!(recovery.estimate.gap() < crate::recovery::DALY_TOLERANCE);
        assert!(recovery.recovered_exaflops < with.final_estimate().exaflops);
        assert!(recovery.recovered_exaflops > 0.0);
        // The section is purely additive: everything before it is
        // byte-identical to the recovery-free report.
        let rendered = with.render();
        assert!(rendered.starts_with(&plain));
        assert!(rendered.contains("checkpoint/restart recovery"));
        assert!(!plain.contains("checkpoint/restart recovery"));
    }

    #[test]
    fn an_empty_plan_is_the_healthy_fleet() {
        let mut spec = MultiNodeCampaignSpec::standard(7);
        spec.plan = NodeFaultPlan::new(7);
        let report = run_multinode_campaign(&spec).unwrap();
        assert!(report.steps.is_empty());
        assert_eq!(report.final_estimate(), &report.healthy);
        assert_eq!(report.throughput_retained(), 1.0);
        assert!(report.straggler_reports.is_empty());
    }

    #[test]
    fn campaigns_run_on_every_topology() {
        for kind in FabricKind::ALL {
            let spec = MultiNodeCampaignSpec {
                kind,
                ..MultiNodeCampaignSpec::standard(0xC0FFEE)
            };
            let report = run_multinode_campaign(&spec).unwrap();
            assert!(report.steps.iter().all(|s| s.reachable), "{kind}");
            assert!(report.throughput_retained() > 0.5, "{kind}");
        }
    }

    #[test]
    fn bad_plans_are_errors() {
        let mut spec = MultiNodeCampaignSpec::standard(1);
        spec.plan = NodeFaultPlan::new(1);
        spec.plan.push(1.0, NodeFaultKind::NodeLoss(99));
        assert!(matches!(
            run_multinode_campaign(&spec),
            Err(FabricError::UnknownNode(99))
        ));

        let mut spec = MultiNodeCampaignSpec::standard(1);
        spec.plan = NodeFaultPlan::new(1);
        spec.plan.push(1.0, NodeFaultKind::Straggler(64));
        assert!(run_multinode_campaign(&spec).is_err());
    }
}

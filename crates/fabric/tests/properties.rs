//! Property and cross-process determinism tests for the inter-node
//! fabric.
//!
//! The headline properties:
//!
//! 1. **Single-failure survivability** — after any one node loss or any
//!    one physical link cut, every surviving EHP can still reach every
//!    other, on every shipped topology (the dual-homing / dual-rail /
//!    global-link wiring exists exactly for this).
//! 2. **Cross-process determinism** — the route table and collective
//!    schedules digest to the same value in two separate child
//!    processes, and the 64-node acceptance campaign (node loss +
//!    straggler with its embedded intra-node `DegradationReport` + link
//!    degradation) renders byte-identically across runs *and* processes.
//! 3. **Parallel == sequential** — the multi-node sweep's records and
//!    Pareto frontier are bit-identical to the sequential oracle for any
//!    job count and cache temperature.

use std::collections::BTreeMap;

use ena_fabric::{
    estimate, run_multinode_campaign, schedule, CollectiveKind, FabricGraph, FabricKind,
    MultiNodeCampaignSpec, MultiNodeSpace, MultiNodeSweep, MultiNodeSweepSpec, ScaleOutSpec,
};
use ena_model::hash::StableHasher;
use ena_sweep::CacheMode;
use ena_testkit::prelude::*;

fn any_kind() -> impl Strategy<Value = FabricKind> {
    prop_oneof![
        Just(FabricKind::FatTree),
        Just(FabricKind::Torus),
        Just(FabricKind::DragonflyLite),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole property: no single node failure partitions the
    /// survivors, on any topology at any size.
    #[test]
    fn any_single_node_loss_keeps_survivors_connected(
        kind in any_kind(),
        nodes in 2u32..65,
        victim_pick in 0u32..64,
    ) {
        let mut g = FabricGraph::build(kind, nodes).unwrap();
        let victim = victim_pick % nodes;
        if nodes > 1 {
            g.fail_ehp(victim).unwrap();
        }
        prop_assert!(
            g.all_ehp_mutually_reachable(),
            "{kind} x{nodes}: losing node {victim} partitioned the fleet"
        );
        prop_assert!(g.route_table().is_ok());
    }

    /// And no single *physical link* failure does either: every pair of
    /// vertices is joined by at least two link-disjoint paths.
    #[test]
    fn any_single_link_cut_keeps_survivors_connected(
        kind in any_kind(),
        nodes in 2u32..65,
        link_pick in 0usize..4096,
    ) {
        let healthy = FabricGraph::build(kind, nodes).unwrap();
        let links = healthy.physical_links();
        let (a, b) = links[link_pick % links.len()];
        let mut g = FabricGraph::build(kind, nodes).unwrap();
        let cut = g.fail_link_between(a, b).unwrap();
        prop_assert!(cut >= 2, "a physical link is at least one channel pair");
        prop_assert!(
            g.all_ehp_mutually_reachable(),
            "{kind} x{nodes}: cutting link {a}-{b} partitioned the fleet"
        );
    }

    /// Degrading a route slows collectives down monotonically but never
    /// disconnects anything.
    #[test]
    fn degradation_slows_but_never_partitions(
        kind in any_kind(),
        nodes in 4u32..33,
        a_pick in 0u32..64,
        b_pick in 0u32..64,
        percent in 1u32..100,
    ) {
        let a = a_pick % nodes;
        let b = b_pick % nodes;
        let b = if a == b { (b + 1) % nodes } else { b };
        let healthy = FabricGraph::build(kind, nodes).unwrap();
        let before = schedule(&healthy, CollectiveKind::AllToAll, 1e6).unwrap();
        let mut g = FabricGraph::build(kind, nodes).unwrap();
        g.degrade_route(a, b, percent).unwrap();
        let after = schedule(&g, CollectiveKind::AllToAll, 1e6).unwrap();
        prop_assert!(g.all_ehp_mutually_reachable());
        prop_assert!(after.total >= before.total);
    }

    /// The multi-node sweep is byte-identical to the sequential oracle
    /// for any job count (the satellite's parallel==sequential property).
    #[test]
    fn multinode_sweep_matches_sequential_oracle(jobs in 1usize..9) {
        let spec = MultiNodeSweepSpec::new(
            MultiNodeSpace {
                node_counts: vec![2, 4, 8],
                kinds: FabricKind::ALL.to_vec(),
            },
            ScaleOutSpec::standard("CoMD"),
        );
        let sequential = MultiNodeSweep::new().run(&spec).unwrap();
        let parallel = MultiNodeSweep::new()
            .run(&MultiNodeSweepSpec { jobs, ..spec })
            .unwrap();
        prop_assert_eq!(&parallel.records, &sequential.records);
        prop_assert_eq!(&parallel.frontier, &sequential.frontier);
    }
}

/// Digest of the route tables and collective schedules of every shipped
/// topology at a fixed size: any iteration-order nondeterminism in
/// wiring, routing, or scheduling lands in this value.
fn fabric_digest() -> u64 {
    let mut h = StableHasher::new();
    for kind in FabricKind::ALL {
        let g = FabricGraph::build(kind, 24).unwrap();
        h.write_u64(g.route_table_digest().unwrap());
        for collective in CollectiveKind::ALL {
            h.write_u64(schedule(&g, collective, 4e6).unwrap().digest());
        }
    }
    h.finish()
}

/// Satellite invariant: route tables and collective schedules are
/// identical across two *separate process* runs (fresh address space).
/// The test re-executes its own binary twice in digest mode and compares
/// the printed digests with each other and with the in-process value.
#[test]
fn route_table_and_schedule_are_identical_across_processes() {
    const MODE: &str = "ENA_FABRIC_DIGEST_MODE";
    if std::env::var_os(MODE).is_some() {
        println!("digest={:016x}", fabric_digest());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let child_digest = || {
        let out = std::process::Command::new(&exe)
            .args([
                "route_table_and_schedule_are_identical_across_processes",
                "--exact",
                "--nocapture",
            ])
            .env(MODE, "1")
            .output()
            .expect("child test process");
        assert!(out.status.success(), "child run failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let at = stdout
            .find("digest=")
            .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
        stdout[at + "digest=".len()..]
            .chars()
            .take_while(char::is_ascii_hexdigit)
            .collect::<String>()
    };
    let first = child_digest();
    let second = child_digest();
    assert_eq!(first, second, "fabric digest differs between processes");
    assert_eq!(
        first,
        format!("{:016x}", fabric_digest()),
        "parent and child disagree"
    );
}

/// Acceptance criterion: the seeded 64-node campaign (node loss +
/// straggler + link degradation) renders byte-identically across two
/// runs in this process *and* two child processes. The render embeds the
/// straggler's full intra-node `DegradationReport`, so its byte identity
/// is covered by the same comparison.
#[test]
fn acceptance_campaign_is_byte_identical_across_processes() {
    const MODE: &str = "ENA_FABRIC_CAMPAIGN_MODE";
    let render = || {
        run_multinode_campaign(&MultiNodeCampaignSpec::standard(0xC0FFEE))
            .unwrap()
            .render()
    };
    if std::env::var_os(MODE).is_some() {
        let mut h = StableHasher::new();
        h.write_str(&render());
        println!("digest={:016x}", h.finish());
        return;
    }

    // Two in-process runs: byte identity of the full report.
    let first = render();
    assert_eq!(first, render(), "same seed must render identical bytes");
    assert!(first.contains("ENA fault-injection campaign"));

    // Two child processes: digest identity.
    let exe = std::env::current_exe().expect("test binary path");
    let child_digest = || {
        let out = std::process::Command::new(&exe)
            .args([
                "acceptance_campaign_is_byte_identical_across_processes",
                "--exact",
                "--nocapture",
            ])
            .env(MODE, "1")
            .output()
            .expect("child test process");
        assert!(out.status.success(), "child run failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let at = stdout
            .find("digest=")
            .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
        stdout[at + "digest=".len()..]
            .chars()
            .take_while(char::is_ascii_hexdigit)
            .collect::<String>()
    };
    let a = child_digest();
    let b = child_digest();
    assert_eq!(a, b, "campaign render differs between processes");
    let mut h = StableHasher::new();
    h.write_str(&first);
    assert_eq!(
        a,
        format!("{:016x}", h.finish()),
        "parent and child disagree"
    );
}

/// A warm disk cache replays the cold run's bytes exactly, across engine
/// instances (checkpoint/resume for the multi-node axis).
#[test]
fn multinode_disk_cache_round_trips_bit_exactly() {
    let dir = std::env::temp_dir().join("ena-fabric-props-disk-cache");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = MultiNodeSweepSpec {
        jobs: 2,
        cache: CacheMode::Disk(dir.clone()),
        ..MultiNodeSweepSpec::new(MultiNodeSpace::cabinet(), ScaleOutSpec::standard("CoMD"))
    };
    let cold = MultiNodeSweep::new().run(&spec).unwrap();
    assert_eq!(cold.cache_hits, 0);
    let warm = MultiNodeSweep::new().run(&spec).unwrap();
    assert_eq!(warm.cache_hits, warm.total_points);
    assert_eq!(warm.records, cold.records);
    assert_eq!(warm.frontier, cold.frontier);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The campaign's straggler estimates agree with a direct scale-out
/// estimate given the same slowdown map: the campaign adds no hidden
/// state.
#[test]
fn campaign_steps_are_reproducible_from_first_principles() {
    let report = run_multinode_campaign(&MultiNodeCampaignSpec::standard(7)).unwrap();
    let spec = MultiNodeCampaignSpec::standard(7);
    // Rebuild the final fabric state by hand.
    let mut g = FabricGraph::build(spec.kind, spec.nodes).unwrap();
    let mut stragglers = BTreeMap::new();
    for step in &report.steps {
        use ena_faults::NodeFaultKind;
        match step.event.kind {
            NodeFaultKind::NodeLoss(n) => {
                g.fail_ehp(n).unwrap();
            }
            NodeFaultKind::Straggler(n) => {
                stragglers.insert(n, step.slowdown.unwrap());
            }
            NodeFaultKind::LinkDegradation { a, b, percent } => {
                g.degrade_route(a, b, percent).unwrap();
            }
        }
    }
    let direct = estimate(&g, &spec.scaleout, &stragglers).unwrap();
    assert_eq!(&direct, report.final_estimate());
}

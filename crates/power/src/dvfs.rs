//! Voltage-frequency scaling (DVFS).
//!
//! The paper's methodology uses in-house voltage-frequency curves to scale
//! power across operating points (Section III). We model the curve as
//! piecewise-linear voltage in frequency between a minimum and maximum
//! point, with dynamic power scaling as `f * V^2` and leakage as `V`.

use ena_model::units::{Megahertz, Volts};

/// A voltage-frequency curve, piecewise linear around a nominal knee.
///
/// Real V-f curves flatten at low frequency (the supply approaches the
/// stable minimum) and steepen above nominal; the knee captures that.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VfCurve {
    /// Lowest supported operating frequency.
    pub f_min: Megahertz,
    /// Voltage at `f_min`.
    pub v_min: Volts,
    /// The nominal operating point (knee of the curve).
    pub f_knee: Megahertz,
    /// Voltage at the knee.
    pub v_knee: Volts,
    /// Highest supported operating frequency.
    pub f_max: Megahertz,
    /// Voltage at `f_max`.
    pub v_max: Volts,
}

impl VfCurve {
    /// The GPU CU curve used throughout the experiments: a shallow segment
    /// from 600 MHz at 0.80 V to the nominal 1 GHz at 0.85 V, then a steep
    /// segment up to 1500 MHz at 1.10 V.
    pub fn gpu_default() -> Self {
        Self {
            f_min: Megahertz::new(600.0),
            v_min: Volts::new(0.80),
            f_knee: Megahertz::new(1000.0),
            v_knee: Volts::new(0.85),
            f_max: Megahertz::new(1500.0),
            v_max: Volts::new(1.10),
        }
    }

    /// The supply voltage required for `freq`, clamped to the curve's
    /// endpoints.
    pub fn voltage(&self, freq: Megahertz) -> Volts {
        let f = freq.value().clamp(self.f_min.value(), self.f_max.value());
        let (f0, v0, f1, v1) = if f <= self.f_knee.value() {
            (
                self.f_min.value(),
                self.v_min.value(),
                self.f_knee.value(),
                self.v_knee.value(),
            )
        } else {
            (
                self.f_knee.value(),
                self.v_knee.value(),
                self.f_max.value(),
                self.v_max.value(),
            )
        };
        let t = (f - f0) / (f1 - f0);
        Volts::new(v0 + t * (v1 - v0))
    }

    /// Nominal voltage (at the knee).
    pub fn nominal_voltage(&self) -> Volts {
        self.v_knee
    }

    /// Dynamic-power scale factor of operating `freq` relative to nominal
    /// 1 GHz: `(f/f_nom) * (V/V_nom)^2`.
    pub fn dynamic_scale(&self, freq: Megahertz) -> f64 {
        let v = self.voltage(freq).value();
        let vn = self.nominal_voltage().value();
        (freq.value() / 1000.0) * (v / vn).powi(2)
    }

    /// Leakage scale factor relative to nominal: `V / V_nom`.
    pub fn leakage_scale(&self, freq: Megahertz) -> f64 {
        self.voltage(freq).value() / self.nominal_voltage().value()
    }

    /// Near-threshold variant of this curve: the same frequency range
    /// achieved at reduced voltage (paper Section V-E: NTC sustains up to
    /// 1 GHz near threshold). `depth` in `[0, 1]` scales how far toward
    /// threshold the voltage drops; frequencies above 1 GHz keep the
    /// original voltage requirement.
    pub fn with_near_threshold(&self, depth: f64) -> NtcCurve {
        NtcCurve {
            base: *self,
            depth: depth.clamp(0.0, 1.0),
        }
    }
}

/// A [`VfCurve`] with near-threshold operation below 1 GHz.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NtcCurve {
    base: VfCurve,
    depth: f64,
}

impl NtcCurve {
    /// Voltage at `freq` with NTC applied.
    ///
    /// The achievable voltage reduction is full up to 1 GHz (the paper's
    /// demonstrated NTC operating range) and fades linearly to zero by
    /// 1.3 GHz, where the required voltage leaves the near-threshold
    /// region entirely.
    pub fn voltage(&self, freq: Megahertz) -> Volts {
        let v = self.base.voltage(freq);
        let feasibility = ((1300.0 - freq.value()) / 300.0).clamp(0.0, 1.0);
        let effective = self.depth * feasibility;
        // Pull the voltage toward the threshold region (~0.45 V).
        let threshold = 0.45;
        Volts::new(v.value() - effective * (v.value() - threshold) * 0.45)
    }

    /// Dynamic-power scale relative to the *base* curve's nominal point.
    pub fn dynamic_scale(&self, freq: Megahertz) -> f64 {
        let v = self.voltage(freq).value();
        let vn = self.base.nominal_voltage().value();
        (freq.value() / 1000.0) * (v / vn).powi(2)
    }

    /// Leakage scale relative to the base curve's nominal point.
    pub fn leakage_scale(&self, freq: Megahertz) -> f64 {
        self.voltage(freq).value() / self.base.nominal_voltage().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_curve_hits_documented_points() {
        let c = VfCurve::gpu_default();
        assert!((c.voltage(Megahertz::new(600.0)).value() - 0.80).abs() < 1e-12);
        assert!((c.voltage(Megahertz::new(1500.0)).value() - 1.10).abs() < 1e-12);
        assert!((c.voltage(Megahertz::new(1000.0)).value() - 0.85).abs() < 1e-9);
        // The segment below the knee is much shallower than above it.
        let below =
            c.voltage(Megahertz::new(1000.0)).value() - c.voltage(Megahertz::new(800.0)).value();
        let above =
            c.voltage(Megahertz::new(1200.0)).value() - c.voltage(Megahertz::new(1000.0)).value();
        assert!(above > 3.0 * below);
    }

    #[test]
    fn voltage_clamps_outside_the_range() {
        let c = VfCurve::gpu_default();
        assert_eq!(c.voltage(Megahertz::new(100.0)), c.voltage(c.f_min));
        assert_eq!(c.voltage(Megahertz::new(2000.0)), c.voltage(c.f_max));
    }

    #[test]
    fn dynamic_power_grows_superlinearly_with_frequency() {
        let c = VfCurve::gpu_default();
        let s1 = c.dynamic_scale(Megahertz::new(1000.0));
        let s15 = c.dynamic_scale(Megahertz::new(1500.0));
        assert!((s1 - 1.0).abs() < 1e-9);
        // 1.5x frequency should cost much more than 1.5x power.
        assert!(s15 > 2.0, "scale at 1.5 GHz = {s15}");
    }

    #[test]
    fn ntc_cuts_power_below_one_gigahertz_only() {
        let base = VfCurve::gpu_default();
        let ntc = base.with_near_threshold(1.0);
        let f = Megahertz::new(900.0);
        assert!(ntc.dynamic_scale(f) < base.dynamic_scale(f));
        assert!(ntc.leakage_scale(f) < base.leakage_scale(f));
        let high = Megahertz::new(1400.0);
        assert!((ntc.dynamic_scale(high) - base.dynamic_scale(high)).abs() < 1e-12);
    }

    #[test]
    fn ntc_depth_zero_matches_base() {
        let base = VfCurve::gpu_default();
        let ntc = base.with_near_threshold(0.0);
        for f in [600.0, 800.0, 1000.0, 1200.0] {
            let f = Megahertz::new(f);
            assert!((ntc.voltage(f).value() - base.voltage(f).value()).abs() < 1e-12);
        }
    }
}

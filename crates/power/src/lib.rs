//! Power modeling for the ENA toolkit (paper Sections III and V-E).
//!
//! - [`dvfs`] — voltage-frequency curves and near-threshold operation.
//! - [`breakdown`] — the per-component power vector
//!   ([`PowerBreakdown`](breakdown::PowerBreakdown)), including the
//!   paper's Fig. 9 display categories.
//! - [`model`] — the node power model
//!   ([`NodePowerModel`](model::NodePowerModel)): activity x energy
//!   coefficients per component.
//! - [`opts`] — the five power optimizations of Section V-E (NTC,
//!   asynchronous CUs, asynchronous routers, low-power links, DRAM-traffic
//!   compression).
//!
//! # Example
//!
//! ```
//! use ena_model::config::EhpConfig;
//! use ena_power::model::{ActivityVector, NodePowerModel, VoltageMode};
//! use ena_power::opts::{savings_fraction, OptimizationContext, PowerOptimization};
//!
//! let config = EhpConfig::paper_baseline();
//! let model = NodePowerModel::default();
//! let breakdown = model.evaluate(&config, &ActivityVector::idle(), VoltageMode::default());
//!
//! let ctx = OptimizationContext::new(config.gpu.clock);
//! let saved = savings_fraction(&breakdown, &ctx, &PowerOptimization::ALL);
//! assert!(saved > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod breakdown;
pub mod dvfs;
pub mod model;
pub mod opts;

pub use breakdown::{Component, PowerBreakdown};
pub use dvfs::VfCurve;
pub use model::{ActivityVector, NodePowerModel, VoltageMode};
pub use opts::PowerOptimization;

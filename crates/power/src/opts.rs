//! The paper's five power-optimization techniques (Section V-E).
//!
//! Each optimization targets specific components of the
//! [`PowerBreakdown`]; per-application total savings therefore *emerge*
//! from each application's component mix, reproducing the app-to-app
//! variation of Fig. 12. The paper's reported averages — NTC 14 %, async
//! CUs 4.3 %, async routers 3.0 %, low-power links 1.6 %, compression
//! 1.7 %, all together 13-27 % — calibrate the per-component factors here.

use ena_model::units::Megahertz;

use crate::breakdown::{Component, PowerBreakdown};
use crate::dvfs::VfCurve;

/// Context an optimization needs about the operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptimizationContext {
    /// GPU operating frequency.
    pub gpu_clock: Megahertz,
    /// The GPU voltage-frequency curve.
    pub curve: VfCurve,
}

impl OptimizationContext {
    /// Context for an EHP configuration with the default curve.
    pub fn new(gpu_clock: Megahertz) -> Self {
        Self {
            gpu_clock,
            curve: VfCurve::gpu_default(),
        }
    }
}

/// One of the paper's power-saving techniques.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PowerOptimization {
    /// Near-threshold computing on the CUs (full benefit up to 1 GHz,
    /// fading above as the required voltage rises).
    NearThreshold,
    /// Asynchronous ALUs and crossbars in the GPU SIMD units.
    AsyncCus,
    /// Asynchronous interconnect routers.
    AsyncRouters,
    /// Low-power interconnect link operating modes.
    LowPowerLinks,
    /// DRAM-traffic compression between the LLC and in-package memory.
    Compression,
}

impl PowerOptimization {
    /// All techniques, in the paper's Fig. 12 order.
    pub const ALL: [PowerOptimization; 5] = [
        PowerOptimization::NearThreshold,
        PowerOptimization::AsyncCus,
        PowerOptimization::AsyncRouters,
        PowerOptimization::LowPowerLinks,
        PowerOptimization::Compression,
    ];

    /// The paper's label for the technique.
    pub fn label(&self) -> &'static str {
        match self {
            PowerOptimization::NearThreshold => "NTC",
            PowerOptimization::AsyncCus => "Async. CUs",
            PowerOptimization::AsyncRouters => "Async. routers",
            PowerOptimization::LowPowerLinks => "Low-power links",
            PowerOptimization::Compression => "Compression",
        }
    }

    /// Applies the optimization's component scaling to `b`.
    pub fn apply(&self, b: &mut PowerBreakdown, ctx: &OptimizationContext) {
        match self {
            PowerOptimization::NearThreshold => {
                // The curve itself fades the achievable reduction to zero
                // above the demonstrated NTC frequency range.
                let ntc = ctx.curve.with_near_threshold(1.0);
                let base_dyn = ctx.curve.dynamic_scale(ctx.gpu_clock);
                let base_leak = ctx.curve.leakage_scale(ctx.gpu_clock);
                if base_dyn > 0.0 {
                    b.scale(
                        Component::CuDynamic,
                        ntc.dynamic_scale(ctx.gpu_clock) / base_dyn,
                    );
                }
                if base_leak > 0.0 {
                    b.scale(
                        Component::CuStatic,
                        ntc.leakage_scale(ctx.gpu_clock) / base_leak,
                    );
                }
            }
            PowerOptimization::AsyncCus => {
                // ALUs + crossbars are ~35 % of CU dynamic power; async
                // implementation saves ~30 % of that.
                b.scale(Component::CuDynamic, 1.0 - 0.35 * 0.30);
            }
            PowerOptimization::AsyncRouters => {
                b.scale(Component::NocRouters, 0.45);
            }
            PowerOptimization::LowPowerLinks => {
                b.scale(Component::NocLinks, 0.60);
            }
            PowerOptimization::Compression => {
                // Compressed LLC<->DRAM transfers shrink the data moved on
                // the long-distance interconnect and the DRAM interface.
                b.scale(Component::HbmDynamic, 0.82);
                b.scale(Component::NocLinks, 0.92);
            }
        }
    }
}

/// Workload-aware CU power gating (paper ref \[24\]): gates the leakage of
/// idle CUs. `idle_fraction` is the share of CUs with no work;
/// `gating_efficiency` is how much of a gated CU's leakage is actually cut
/// (header devices leak a little).
pub fn apply_power_gating(
    base: &PowerBreakdown,
    idle_fraction: f64,
    gating_efficiency: f64,
) -> PowerBreakdown {
    let mut b = *base;
    let cut = idle_fraction.clamp(0.0, 1.0) * gating_efficiency.clamp(0.0, 1.0);
    b.scale(Component::CuStatic, 1.0 - cut);
    b
}

/// Applies a set of optimizations, returning the optimized breakdown.
pub fn apply_optimizations(
    base: &PowerBreakdown,
    ctx: &OptimizationContext,
    opts: &[PowerOptimization],
) -> PowerBreakdown {
    let mut b = *base;
    for o in opts {
        o.apply(&mut b, ctx);
    }
    b
}

/// Fractional total-power savings of `opts` relative to `base`.
pub fn savings_fraction(
    base: &PowerBreakdown,
    ctx: &OptimizationContext,
    opts: &[PowerOptimization],
) -> f64 {
    let before = base.total().value();
    if before == 0.0 {
        return 0.0;
    }
    let after = apply_optimizations(base, ctx, opts).total().value();
    1.0 - after / before
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_model::units::Watts;

    /// A representative baseline mix for the mean configuration.
    fn typical() -> PowerBreakdown {
        let mut b = PowerBreakdown::new();
        b.set(Component::CuDynamic, Watts::new(60.0));
        b.set(Component::CuStatic, Watts::new(16.0));
        b.set(Component::Cpu, Watts::new(10.0));
        b.set(Component::NocRouters, Watts::new(9.0));
        b.set(Component::NocLinks, Watts::new(7.0));
        b.set(Component::HbmDynamic, Watts::new(14.0));
        b.set(Component::HbmStatic, Watts::new(27.0));
        b.set(Component::Other, Watts::new(8.0));
        b
    }

    fn ctx() -> OptimizationContext {
        OptimizationContext::new(Megahertz::new(1000.0))
    }

    #[test]
    fn individual_savings_match_paper_averages() {
        let b = typical();
        let c = ctx();
        let pct = |o: PowerOptimization| 100.0 * savings_fraction(&b, &c, &[o]);
        // Paper: NTC 14 %, async CUs 4.3 %, routers 3.0 %, links 1.6 %,
        // compression 1.7 % (averages across apps; allow tolerance).
        let ntc = pct(PowerOptimization::NearThreshold);
        assert!((10.0..20.0).contains(&ntc), "NTC = {ntc}%");
        let cus = pct(PowerOptimization::AsyncCus);
        assert!((2.5..6.5).contains(&cus), "async CUs = {cus}%");
        let routers = pct(PowerOptimization::AsyncRouters);
        assert!((1.5..5.0).contains(&routers), "routers = {routers}%");
        let links = pct(PowerOptimization::LowPowerLinks);
        assert!((0.8..3.5).contains(&links), "links = {links}%");
        let comp = pct(PowerOptimization::Compression);
        assert!((0.8..3.5).contains(&comp), "compression = {comp}%");
    }

    #[test]
    fn combined_savings_land_in_the_fig12_band() {
        let total = 100.0 * savings_fraction(&typical(), &ctx(), &PowerOptimization::ALL);
        assert!((13.0..27.0).contains(&total), "all = {total}%");
    }

    #[test]
    fn ntc_benefit_fades_at_high_frequency() {
        let b = typical();
        let low = savings_fraction(
            &b,
            &OptimizationContext::new(Megahertz::new(900.0)),
            &[PowerOptimization::NearThreshold],
        );
        let mid = savings_fraction(
            &b,
            &OptimizationContext::new(Megahertz::new(1150.0)),
            &[PowerOptimization::NearThreshold],
        );
        let high = savings_fraction(
            &b,
            &OptimizationContext::new(Megahertz::new(1400.0)),
            &[PowerOptimization::NearThreshold],
        );
        assert!(low > mid);
        assert!(mid > high);
        assert!(high.abs() < 1e-9);
    }

    #[test]
    fn optimizations_never_increase_power() {
        let b = typical();
        let c = ctx();
        for o in PowerOptimization::ALL {
            assert!(savings_fraction(&b, &c, &[o]) >= 0.0, "{}", o.label());
        }
    }

    #[test]
    fn memory_heavy_mix_benefits_more_from_compression() {
        let c = ctx();
        let mut memory_heavy = typical();
        memory_heavy.set(Component::HbmDynamic, Watts::new(35.0));
        memory_heavy.set(Component::CuDynamic, Watts::new(30.0));
        let lean = savings_fraction(&typical(), &c, &[PowerOptimization::Compression]);
        let heavy = savings_fraction(&memory_heavy, &c, &[PowerOptimization::Compression]);
        assert!(heavy > lean);
    }

    #[test]
    fn power_gating_cuts_leakage_in_proportion_to_idleness() {
        let b = typical();
        let gated = apply_power_gating(&b, 0.5, 0.9);
        let expect = 16.0 * (1.0 - 0.45);
        assert!((gated.get(Component::CuStatic).value() - expect).abs() < 1e-9);
        // Nothing else moves.
        assert_eq!(gated.get(Component::CuDynamic), b.get(Component::CuDynamic));
        // Fully busy machines gain nothing.
        let busy = apply_power_gating(&b, 0.0, 0.9);
        assert_eq!(busy.get(Component::CuStatic), b.get(Component::CuStatic));
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = PowerOptimization::ALL.iter().map(|o| o.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}

//! The node power model.
//!
//! Mirrors the paper's methodology: per-component power computed from
//! activity (achieved FLOPs, traffic volumes) times energy coefficients,
//! plus background power, with DVFS scaling from the voltage-frequency
//! curve. The coefficients are 2022-era projections calibrated so the
//! paper-baseline configuration lands near its reported operating points
//! (~111 W node power for MaxFlops at 1 TB/s, Fig. 14; a 160 W package
//! budget that binds near 320 CUs / 1 GHz / 3 TB/s).

use ena_model::config::{EhpConfig, ExternalModuleKind};
use ena_model::units::Watts;

use crate::breakdown::{Component, PowerBreakdown};
use crate::dvfs::{NtcCurve, VfCurve};

/// Activity inputs measured or predicted for one kernel execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivityVector {
    /// Achieved double-precision GFLOP/s.
    pub achieved_gflops: f64,
    /// Offered in-package DRAM traffic in GB/s.
    pub hbm_traffic_gbps: f64,
    /// Offered external-memory traffic in GB/s.
    pub ext_traffic_gbps: f64,
    /// Write share of memory traffic.
    pub write_fraction: f64,
    /// Fraction of external traffic served by NVM modules.
    pub nvm_traffic_fraction: f64,
    /// Chiplet-crossing NoC traffic in GB/s.
    pub noc_traffic_gbps: f64,
    /// CPU complex activity in `[0, 1]`.
    pub cpu_activity: f64,
}

impl ActivityVector {
    /// A fully idle node.
    pub fn idle() -> Self {
        Self {
            achieved_gflops: 0.0,
            hbm_traffic_gbps: 0.0,
            ext_traffic_gbps: 0.0,
            write_fraction: 0.0,
            nvm_traffic_fraction: 0.0,
            noc_traffic_gbps: 0.0,
            cpu_activity: 0.0,
        }
    }
}

/// Tunable energy/power coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerCoefficients {
    /// CU energy per DP FLOP at nominal voltage (pJ).
    pub cu_pj_per_flop: f64,
    /// Fraction of the per-FLOP energy burnt by stalled/idle issue slots.
    pub cu_idle_activity: f64,
    /// CU leakage per CU at nominal voltage (W).
    pub cu_leakage_w: f64,
    /// CPU idle floor (W).
    pub cpu_idle_w: f64,
    /// CPU active power above idle (W).
    pub cpu_active_w: f64,
    /// NoC router energy (pJ/bit).
    pub noc_router_pj_per_bit: f64,
    /// NoC link energy (pJ/bit).
    pub noc_link_pj_per_bit: f64,
    /// NoC background power (W).
    pub noc_static_w: f64,
    /// In-package DRAM access energy (pJ/bit).
    pub hbm_pj_per_bit: f64,
    /// In-package PHY/controller power per provisioned TB/s (W).
    pub hbm_phy_w_per_tbps: f64,
    /// In-package refresh/background power per GB (W).
    pub hbm_static_w_per_gb: f64,
    /// External DRAM access energy (pJ/bit).
    pub ext_dram_pj_per_bit: f64,
    /// External NVM read energy (pJ/bit).
    pub ext_nvm_read_pj_per_bit: f64,
    /// External NVM write energy (pJ/bit).
    pub ext_nvm_write_pj_per_bit: f64,
    /// External DRAM background power per GB (W).
    pub ext_dram_static_w_per_gb: f64,
    /// External NVM background power per GB (W).
    pub ext_nvm_static_w_per_gb: f64,
    /// SerDes background power per link (W).
    pub serdes_static_w_per_link: f64,
    /// SerDes transfer energy per bit per hop (pJ).
    pub serdes_pj_per_bit_hop: f64,
    /// Average SerDes hops per external access.
    pub serdes_avg_hops: f64,
    /// Fixed miscellaneous power (W).
    pub other_w: f64,
}

impl Default for PowerCoefficients {
    fn default() -> Self {
        Self {
            cu_pj_per_flop: 4.2,
            cu_idle_activity: 0.20,
            cu_leakage_w: 0.05,
            cpu_idle_w: 4.0,
            cpu_active_w: 8.0,
            noc_router_pj_per_bit: 0.40,
            noc_link_pj_per_bit: 0.55,
            noc_static_w: 2.0,
            hbm_pj_per_bit: 1.5,
            hbm_phy_w_per_tbps: 12.0,
            hbm_static_w_per_gb: 0.012,
            ext_dram_pj_per_bit: 8.0,
            ext_nvm_read_pj_per_bit: 45.0,
            ext_nvm_write_pj_per_bit: 150.0,
            ext_dram_static_w_per_gb: 0.0352,
            ext_nvm_static_w_per_gb: 0.0005,
            serdes_static_w_per_link: 0.3125,
            serdes_pj_per_bit_hop: 1.5,
            serdes_avg_hops: 2.5,
            other_w: 8.0,
        }
    }
}

/// Optional voltage overrides applied by power optimizations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VoltageMode {
    /// Near-threshold CU operation (Section V-E), if enabled.
    pub ntc: Option<NtcCurve>,
}

/// The node power model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodePowerModel {
    /// Energy/power coefficients.
    pub coefficients: PowerCoefficients,
    /// The GPU voltage-frequency curve.
    pub curve: VfCurve,
}

impl Default for NodePowerModel {
    fn default() -> Self {
        Self {
            coefficients: PowerCoefficients::default(),
            curve: VfCurve::gpu_default(),
        }
    }
}

impl NodePowerModel {
    /// Evaluates the full node breakdown for `config` running `activity`.
    pub fn evaluate(
        &self,
        config: &EhpConfig,
        activity: &ActivityVector,
        mode: VoltageMode,
    ) -> PowerBreakdown {
        let k = &self.coefficients;
        let f = config.gpu.clock;
        let (dyn_scale, leak_scale) = match mode.ntc {
            Some(ntc) => (ntc.dynamic_scale(f), ntc.leakage_scale(f)),
            None => (self.curve.dynamic_scale(f), self.curve.leakage_scale(f)),
        };
        // dynamic_scale already contains the f/f_nom factor; the achieved
        // FLOP rate also scales with f. Dividing out the frequency leaves
        // the pure V^2 factor for per-op energy.
        let v2 = dyn_scale / (f.value() / 1000.0);

        let mut b = PowerBreakdown::new();

        // GPU compute units.
        let peak_gflops = config.gpu.peak_throughput().value();
        let active = activity.achieved_gflops.min(peak_gflops);
        let idle = (peak_gflops - active).max(0.0) * k.cu_idle_activity;
        b.set(
            Component::CuDynamic,
            Watts::new((active + idle) * 1e9 * k.cu_pj_per_flop * 1e-12 * v2),
        );
        b.set(
            Component::CuStatic,
            Watts::new(f64::from(config.gpu.total_cus()) * k.cu_leakage_w * leak_scale),
        );

        // CPU complex.
        b.set(
            Component::Cpu,
            Watts::new(k.cpu_idle_w + activity.cpu_activity.clamp(0.0, 1.0) * k.cpu_active_w),
        );

        // NoC.
        let noc_bits = activity.noc_traffic_gbps * 8e9;
        b.set(
            Component::NocRouters,
            Watts::new(noc_bits * k.noc_router_pj_per_bit * 1e-12 + k.noc_static_w / 2.0),
        );
        b.set(
            Component::NocLinks,
            Watts::new(noc_bits * k.noc_link_pj_per_bit * 1e-12 + k.noc_static_w / 2.0),
        );

        // In-package DRAM.
        let hbm_bits = activity.hbm_traffic_gbps * 8e9;
        b.set(
            Component::HbmDynamic,
            Watts::new(hbm_bits * k.hbm_pj_per_bit * 1e-12),
        );
        b.set(
            Component::HbmStatic,
            Watts::new(
                config.hbm.total_bandwidth().terabytes_per_sec() * k.hbm_phy_w_per_tbps
                    + config.hbm.total_capacity().value() * k.hbm_static_w_per_gb,
            ),
        );

        // External memory modules.
        let ext_bits = activity.ext_traffic_gbps * 8e9;
        let nvm_bits = ext_bits * activity.nvm_traffic_fraction.clamp(0.0, 1.0);
        let dram_bits = ext_bits - nvm_bits;
        let nvm_pj = activity.write_fraction * k.ext_nvm_write_pj_per_bit
            + (1.0 - activity.write_fraction) * k.ext_nvm_read_pj_per_bit;
        b.set(
            Component::ExtDynamic,
            Watts::new((dram_bits * k.ext_dram_pj_per_bit + nvm_bits * nvm_pj) * 1e-12),
        );
        let mut ext_static = 0.0;
        for &kind in &config.external.chain {
            let cap = config.external.module_capacity(kind).value();
            let per_gb = match kind {
                ExternalModuleKind::Dram => k.ext_dram_static_w_per_gb,
                ExternalModuleKind::Nvm => k.ext_nvm_static_w_per_gb,
            };
            ext_static += cap * per_gb * f64::from(config.external.interfaces);
        }
        b.set(Component::ExtStatic, Watts::new(ext_static));

        // SerDes.
        b.set(
            Component::SerdesStatic,
            Watts::new(config.external.total_links() as f64 * k.serdes_static_w_per_link),
        );
        b.set(
            Component::SerdesDynamic,
            Watts::new(ext_bits * k.serdes_pj_per_bit_hop * k.serdes_avg_hops * 1e-12),
        );

        b.set(Component::Other, Watts::new(k.other_w));
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_model::config::ExternalMemoryConfig;
    use ena_model::units::{Gigabytes, GigabytesPerSec, Megahertz};

    fn maxflops_activity() -> ActivityVector {
        ActivityVector {
            achieved_gflops: 18_600.0,
            hbm_traffic_gbps: 10.0,
            ext_traffic_gbps: 0.5,
            write_fraction: 0.02,
            nvm_traffic_fraction: 0.0,
            noc_traffic_gbps: 20.0,
            cpu_activity: 0.05,
        }
    }

    #[test]
    fn maxflops_node_power_matches_fig14_scale() {
        // Fig. 14: 320 CUs at 1 GHz / 1 TB/s -> 11.1 MW / 100k nodes = 111 W.
        let config = EhpConfig::builder()
            .total_cus(320)
            .gpu_clock(Megahertz::new(1000.0))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(1.0))
            .build()
            .unwrap();
        let model = NodePowerModel::default();
        let total = model
            .evaluate(&config, &maxflops_activity(), VoltageMode::default())
            .total();
        assert!(
            (90.0..175.0).contains(&total.value()),
            "node power = {total}"
        );
    }

    #[test]
    fn external_static_power_matches_section_v_c() {
        // DRAM-only: ~27 W module static + ~10 W SerDes background.
        let config = EhpConfig::paper_baseline();
        let model = NodePowerModel::default();
        let b = model.evaluate(&config, &ActivityVector::idle(), VoltageMode::default());
        let ext_s = b.get(Component::ExtStatic).value();
        let serdes_s = b.get(Component::SerdesStatic).value();
        assert!((ext_s - 27.0).abs() < 1.0, "external static = {ext_s}");
        assert!((serdes_s - 10.0).abs() < 0.5, "serdes static = {serdes_s}");
    }

    #[test]
    fn hybrid_halves_external_static_power() {
        let model = NodePowerModel::default();
        let dram = EhpConfig::paper_baseline();
        let mut hybrid = dram.clone();
        hybrid.external = ExternalMemoryConfig::hybrid(4, Gigabytes::new(768.0));
        let idle = ActivityVector::idle();
        let b_dram = model.evaluate(&dram, &idle, VoltageMode::default());
        let b_hyb = model.evaluate(&hybrid, &idle, VoltageMode::default());
        let s_dram =
            (b_dram.get(Component::ExtStatic) + b_dram.get(Component::SerdesStatic)).value();
        let s_hyb = (b_hyb.get(Component::ExtStatic) + b_hyb.get(Component::SerdesStatic)).value();
        let ratio = s_hyb / s_dram;
        assert!((0.35..0.65).contains(&ratio), "static ratio = {ratio}");
    }

    #[test]
    fn nvm_traffic_raises_dynamic_power() {
        let config = EhpConfig::paper_baseline();
        let model = NodePowerModel::default();
        let mut act = maxflops_activity();
        act.ext_traffic_gbps = 300.0;
        act.write_fraction = 0.3;
        act.nvm_traffic_fraction = 0.0;
        let dram_only = model.evaluate(&config, &act, VoltageMode::default());
        act.nvm_traffic_fraction = 0.5;
        let with_nvm = model.evaluate(&config, &act, VoltageMode::default());
        assert!(
            with_nvm.get(Component::ExtDynamic).value()
                > 2.0 * dram_only.get(Component::ExtDynamic).value()
        );
    }

    #[test]
    fn ntc_reduces_cu_power_at_one_gigahertz() {
        let config = EhpConfig::paper_baseline();
        let model = NodePowerModel::default();
        let act = maxflops_activity();
        let base = model.evaluate(&config, &act, VoltageMode::default());
        let ntc = model.evaluate(
            &config,
            &act,
            VoltageMode {
                ntc: Some(model.curve.with_near_threshold(1.0)),
            },
        );
        assert!(ntc.get(Component::CuDynamic).value() < base.get(Component::CuDynamic).value());
        assert!(ntc.get(Component::CuStatic).value() < base.get(Component::CuStatic).value());
        // Non-CU components are untouched.
        assert_eq!(
            ntc.get(Component::HbmStatic),
            base.get(Component::HbmStatic)
        );
    }

    #[test]
    fn provisioned_bandwidth_costs_power_even_when_unused() {
        let model = NodePowerModel::default();
        let idle = ActivityVector::idle();
        let lo = EhpConfig::builder()
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(1.0))
            .build()
            .unwrap();
        let hi = EhpConfig::builder()
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(7.0))
            .build()
            .unwrap();
        let p_lo = model
            .evaluate(&lo, &idle, VoltageMode::default())
            .package_total();
        let p_hi = model
            .evaluate(&hi, &idle, VoltageMode::default())
            .package_total();
        assert!(p_hi.value() - p_lo.value() > 30.0);
    }
}

//! Per-component power breakdown (the stacks of the paper's Fig. 9).

use core::fmt;
use ena_model::units::Watts;

/// Node power components.
///
/// The first variants match the categories of the paper's Fig. 9:
/// SerDes and external memory split into static/dynamic, CU dynamic, and
/// everything else folded into `Other` for display. The full enum keeps the
/// finer-grained components so optimizations can target them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// GPU compute-unit dynamic power.
    CuDynamic,
    /// GPU compute-unit leakage.
    CuStatic,
    /// CPU complex power.
    Cpu,
    /// NoC router switching power.
    NocRouters,
    /// NoC link power.
    NocLinks,
    /// In-package DRAM access power.
    HbmDynamic,
    /// In-package DRAM background/refresh power.
    HbmStatic,
    /// External memory module access power.
    ExtDynamic,
    /// External memory background/refresh power.
    ExtStatic,
    /// SerDes transfer power.
    SerdesDynamic,
    /// SerDes background power.
    SerdesStatic,
    /// Everything else (system management, I/O, misc).
    Other,
}

impl Component {
    /// All components, in a stable display order.
    pub const ALL: [Component; 12] = [
        Component::CuDynamic,
        Component::CuStatic,
        Component::Cpu,
        Component::NocRouters,
        Component::NocLinks,
        Component::HbmDynamic,
        Component::HbmStatic,
        Component::ExtDynamic,
        Component::ExtStatic,
        Component::SerdesDynamic,
        Component::SerdesStatic,
        Component::Other,
    ];

    fn index(self) -> usize {
        match self {
            Component::CuDynamic => 0,
            Component::CuStatic => 1,
            Component::Cpu => 2,
            Component::NocRouters => 3,
            Component::NocLinks => 4,
            Component::HbmDynamic => 5,
            Component::HbmStatic => 6,
            Component::ExtDynamic => 7,
            Component::ExtStatic => 8,
            Component::SerdesDynamic => 9,
            Component::SerdesStatic => 10,
            Component::Other => 11,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::CuDynamic => "CUs (D)",
            Component::CuStatic => "CUs (S)",
            Component::Cpu => "CPU",
            Component::NocRouters => "NoC routers",
            Component::NocLinks => "NoC links",
            Component::HbmDynamic => "In-package DRAM (D)",
            Component::HbmStatic => "In-package DRAM (S)",
            Component::ExtDynamic => "External memory (D)",
            Component::ExtStatic => "External memory (S)",
            Component::SerdesDynamic => "SerDes (D)",
            Component::SerdesStatic => "SerDes (S)",
            Component::Other => "Other",
        };
        f.write_str(s)
    }
}

/// A per-component power vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerBreakdown {
    values: [f64; 12],
}

impl PowerBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Power of one component.
    pub fn get(&self, c: Component) -> Watts {
        Watts::new(self.values[c.index()])
    }

    /// Sets one component's power.
    pub fn set(&mut self, c: Component, w: Watts) {
        self.values[c.index()] = w.value();
    }

    /// Adds to one component's power.
    pub fn add(&mut self, c: Component, w: Watts) {
        self.values[c.index()] += w.value();
    }

    /// Multiplies one component by `factor` (used by optimizations).
    pub fn scale(&mut self, c: Component, factor: f64) {
        self.values[c.index()] *= factor;
    }

    /// Total node power.
    pub fn total(&self) -> Watts {
        Watts::new(self.values.iter().sum())
    }

    /// Sum of the EHP package components (excludes external memory and
    /// SerDes) — the quantity constrained by the 160 W node budget.
    pub fn package_total(&self) -> Watts {
        Component::ALL
            .iter()
            .filter(|c| {
                !matches!(
                    c,
                    Component::ExtDynamic
                        | Component::ExtStatic
                        | Component::SerdesDynamic
                        | Component::SerdesStatic
                )
            })
            .map(|&c| self.get(c))
            .sum()
    }

    /// Sum of external memory + SerDes power (static and dynamic).
    pub fn external_total(&self) -> Watts {
        self.get(Component::ExtDynamic)
            + self.get(Component::ExtStatic)
            + self.get(Component::SerdesDynamic)
            + self.get(Component::SerdesStatic)
    }

    /// Collapses into the paper's Fig. 9 display categories:
    /// `(SerDes S, Ext S, SerDes D, Ext D, CUs D, Other)`.
    pub fn fig9_categories(&self) -> [(String, Watts); 6] {
        let other: Watts = [
            Component::CuStatic,
            Component::Cpu,
            Component::NocRouters,
            Component::NocLinks,
            Component::HbmDynamic,
            Component::HbmStatic,
            Component::Other,
        ]
        .iter()
        .map(|&c| self.get(c))
        .sum();
        [
            ("SerDes (S)".into(), self.get(Component::SerdesStatic)),
            ("External memory (S)".into(), self.get(Component::ExtStatic)),
            ("SerDes (D)".into(), self.get(Component::SerdesDynamic)),
            (
                "External memory (D)".into(),
                self.get(Component::ExtDynamic),
            ),
            ("CUs (D)".into(), self.get(Component::CuDynamic)),
            ("Other".into(), other),
        ]
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in Component::ALL {
            writeln!(f, "{c:<22} {:8.2}", self.get(c))?;
        }
        write!(f, "{:<22} {:8.2}", "Total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_agrees_with_the_display_order() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c} out of order");
        }
    }

    #[test]
    fn totals_sum_components() {
        let mut b = PowerBreakdown::new();
        b.set(Component::CuDynamic, Watts::new(80.0));
        b.set(Component::ExtStatic, Watts::new(27.0));
        b.set(Component::SerdesStatic, Watts::new(10.0));
        b.add(Component::CuDynamic, Watts::new(5.0));
        assert_eq!(b.total(), Watts::new(122.0));
        assert_eq!(b.package_total(), Watts::new(85.0));
        assert_eq!(b.external_total(), Watts::new(37.0));
    }

    #[test]
    fn scaling_targets_one_component() {
        let mut b = PowerBreakdown::new();
        b.set(Component::NocRouters, Watts::new(10.0));
        b.set(Component::NocLinks, Watts::new(8.0));
        b.scale(Component::NocRouters, 0.5);
        assert_eq!(b.get(Component::NocRouters), Watts::new(5.0));
        assert_eq!(b.get(Component::NocLinks), Watts::new(8.0));
    }

    #[test]
    fn fig9_categories_cover_the_total() {
        let mut b = PowerBreakdown::new();
        for (i, c) in Component::ALL.iter().enumerate() {
            b.set(*c, Watts::new(i as f64 + 1.0));
        }
        let cats = b.fig9_categories();
        let sum: Watts = cats.iter().map(|(_, w)| *w).sum();
        assert!((sum.value() - b.total().value()).abs() < 1e-9);
    }

    #[test]
    fn display_lists_every_component() {
        let b = PowerBreakdown::new();
        let s = b.to_string();
        assert!(s.contains("CUs (D)"));
        assert!(s.contains("Total"));
        assert_eq!(s.lines().count(), 13);
    }
}

//! Property-based tests for the power models.

use ena_model::config::EhpConfig;
use ena_model::units::{GigabytesPerSec, Megahertz};
use ena_power::breakdown::Component;
use ena_power::dvfs::VfCurve;
use ena_power::model::{ActivityVector, NodePowerModel, VoltageMode};
use ena_power::opts::{apply_optimizations, OptimizationContext, PowerOptimization};
use ena_testkit::prelude::*;

fn arbitrary_activity() -> impl Strategy<Value = ActivityVector> {
    (
        0.0f64..30_000.0,
        0.0f64..7000.0,
        0.0f64..640.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..7000.0,
        0.0f64..=1.0,
    )
        .prop_map(|(gf, hbm, ext, wf, nvm, noc, cpu)| ActivityVector {
            achieved_gflops: gf,
            hbm_traffic_gbps: hbm,
            ext_traffic_gbps: ext,
            write_fraction: wf,
            nvm_traffic_fraction: nvm,
            noc_traffic_gbps: noc,
            cpu_activity: cpu,
        })
}

proptest! {
    #[test]
    fn voltage_is_within_curve_bounds(mhz in 0.0f64..3000.0) {
        let c = VfCurve::gpu_default();
        let v = c.voltage(Megahertz::new(mhz)).value();
        prop_assert!(v >= c.v_min.value() - 1e-12);
        prop_assert!(v <= c.v_max.value() + 1e-12);
    }

    #[test]
    fn dynamic_scale_is_monotone_in_frequency(a in 600.0f64..1500.0, b in 600.0f64..1500.0) {
        let c = VfCurve::gpu_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            c.dynamic_scale(Megahertz::new(lo)) <= c.dynamic_scale(Megahertz::new(hi)) + 1e-12
        );
    }

    #[test]
    fn all_components_are_non_negative(activity in arbitrary_activity()) {
        let model = NodePowerModel::default();
        let b = model.evaluate(&EhpConfig::paper_baseline(), &activity, VoltageMode::default());
        for c in Component::ALL {
            prop_assert!(b.get(c).value() >= 0.0, "{c}: {}", b.get(c));
        }
        let parts: f64 = Component::ALL.iter().map(|&c| b.get(c).value()).sum();
        prop_assert!((parts - b.total().value()).abs() < 1e-9);
    }

    #[test]
    fn optimizations_never_increase_any_component(
        activity in arbitrary_activity(),
        mhz in 600.0f64..1500.0,
    ) {
        let config = EhpConfig::builder()
            .gpu_clock(Megahertz::new(mhz))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(3.0))
            .build()
            .unwrap();
        let model = NodePowerModel::default();
        let base = model.evaluate(&config, &activity, VoltageMode::default());
        let ctx = OptimizationContext::new(config.gpu.clock);
        let opt = apply_optimizations(&base, &ctx, &PowerOptimization::ALL);
        for c in Component::ALL {
            prop_assert!(opt.get(c).value() <= base.get(c).value() + 1e-12, "{c}");
        }
    }

    #[test]
    fn power_is_monotone_in_traffic(activity in arbitrary_activity(), extra in 0.0f64..1000.0) {
        let model = NodePowerModel::default();
        let config = EhpConfig::paper_baseline();
        let base = model.evaluate(&config, &activity, VoltageMode::default()).total();
        let mut more = activity;
        more.hbm_traffic_gbps += extra;
        let grown = model.evaluate(&config, &more, VoltageMode::default()).total();
        prop_assert!(grown.value() >= base.value() - 1e-12);
    }
}

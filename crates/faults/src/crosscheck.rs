//! Cross-validation of the analytic availability model against injected
//! fault campaigns.
//!
//! The resilience layer offers two independent estimates of machine
//! availability: the closed-form Young/Daly checkpoint-efficiency model
//! ([`ena_core::resilience::checkpoint_efficiency`]) and a Monte Carlo
//! fault campaign ([`ena_core::resilience::FaultCampaign`]) that draws
//! exponential failures and measures the useful-work fraction directly.
//! [`crosscheck_availability`] computes both from the same FIT-derived
//! MTTF so a degradation report can show the analytic and injected numbers
//! side by side — a disagreement flags a modeling bug, not a hardware one.

use ena_core::resilience::{checkpoint_efficiency, FaultCampaign, Protection, ResilienceModel};
use ena_model::config::{EhpConfig, SYSTEM_NODE_COUNT};
use ena_model::kernel::KernelProfile;

/// Hours of machine time the Monte Carlo campaign simulates.
const CAMPAIGN_HOURS: f64 = 20_000.0;

/// The two availability estimates for one configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AvailabilityEstimate {
    /// System (all-node) silent-failure MTTF in hours.
    pub mttf_hours: f64,
    /// Young/Daly closed-form useful-work fraction.
    pub analytic: f64,
    /// Monte Carlo injected-campaign useful-work fraction.
    pub injected: f64,
}

impl AvailabilityEstimate {
    /// Absolute disagreement between the two estimators.
    pub fn gap(&self) -> f64 {
        (self.analytic - self.injected).abs()
    }
}

/// Assesses `config` running `profile` with ECC + RMT protection at
/// nominal voltage, then estimates availability both ways from the
/// resulting system MTTF.
pub fn crosscheck_availability(
    config: &EhpConfig,
    profile: &KernelProfile,
    checkpoint_minutes: f64,
    seed: u64,
) -> AvailabilityEstimate {
    let reliability =
        ResilienceModel::default().assess(config, profile, 1.0, Protection::ecc_and_rmt());
    let mttf_hours = reliability.system_mttf_hours(SYSTEM_NODE_COUNT);
    let analytic = checkpoint_efficiency(mttf_hours, checkpoint_minutes);
    let injected = FaultCampaign::with_optimal_interval(mttf_hours, checkpoint_minutes / 60.0)
        .simulate(CAMPAIGN_HOURS, seed);
    AvailabilityEstimate {
        mttf_hours,
        analytic,
        injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_workloads::profile_for;

    #[test]
    fn the_two_estimators_agree_on_the_baseline() {
        let cfg = EhpConfig::paper_baseline();
        let profile = profile_for("CoMD").unwrap();
        let est = crosscheck_availability(&cfg, &profile, 3.0, 0xC0FFEE);
        assert!(est.analytic > 0.5 && est.analytic < 1.0);
        assert!(est.injected > 0.5 && est.injected < 1.0);
        assert!(
            est.gap() < 0.06,
            "analytic {} vs injected {} disagree",
            est.analytic,
            est.injected
        );
    }

    #[test]
    fn losing_hardware_raises_mttf_and_never_lowers_availability() {
        // Fewer components mean fewer FITs: the degraded node fails less
        // often, so its checkpointed availability cannot drop.
        let profile = profile_for("CoMD").unwrap();
        let healthy = EhpConfig::paper_baseline();
        let mut degraded = healthy.clone();
        degraded.gpu.chiplets = 6;
        degraded.hbm.stacks = 6;
        let h = crosscheck_availability(&healthy, &profile, 3.0, 9);
        let d = crosscheck_availability(&degraded, &profile, 3.0, 9);
        assert!(d.mttf_hours > h.mttf_hours);
        assert!(d.analytic >= h.analytic);
    }

    #[test]
    fn estimates_are_deterministic() {
        let cfg = EhpConfig::paper_baseline();
        let profile = profile_for("HPGMG").unwrap();
        let a = crosscheck_availability(&cfg, &profile, 5.0, 11);
        let b = crosscheck_availability(&cfg, &profile, 5.0, 11);
        assert_eq!(a, b);
    }
}

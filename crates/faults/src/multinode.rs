//! Node-level fault plans for inter-node (fabric) campaigns.
//!
//! The intra-node [`FaultPlan`](crate::plan::FaultPlan) schedules die
//! failures inside one EHP package. A [`NodeFaultPlan`] lifts the same
//! idea one level up: whole EHP nodes drop out of the machine, nodes
//! turn into stragglers, and inter-node routes lose bandwidth. The two
//! levels compose — a straggler's slowdown factor is *derived* by the
//! fabric layer from an intra-node chiplet-loss campaign on that node,
//! so the package-level and cabinet-level fault models share one cause.
//!
//! Plans are sampled from a seed with
//! [`NodeFaultPlan::scaleout_campaign`] and are deterministic: the same
//! seed yields the same victims and times, byte for byte.

use core::fmt;

/// One injectable node-level failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// EHP node `index` drops out of the machine: its work redistributes
    /// over the survivors and the fabric routes around it.
    NodeLoss(u32),
    /// EHP node `index` becomes a straggler. The slowdown factor is not
    /// stored here: the fabric layer derives it from an intra-node
    /// chiplet-loss campaign seeded by the plan seed and the node index,
    /// so the node-level symptom has a package-level cause.
    Straggler(u32),
    /// Every physical link on the current route between EHP nodes `a`
    /// and `b` loses `percent` percent of its bandwidth — a sick cable
    /// somewhere along the path, modeled without naming the exact hop so
    /// the fault is meaningful under every topology.
    LinkDegradation {
        /// Route endpoint (EHP node index).
        a: u32,
        /// Route endpoint (EHP node index).
        b: u32,
        /// Bandwidth reduction in percent (0..100).
        percent: u32,
    },
}

impl fmt::Display for NodeFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NodeFaultKind::NodeLoss(i) => write!(f, "node {i} lost"),
            NodeFaultKind::Straggler(i) => write!(f, "node {i} straggles"),
            NodeFaultKind::LinkDegradation { a, b, percent } => {
                write!(f, "route {a}-{b} degraded -{percent}% bandwidth")
            }
        }
    }
}

/// A node-level failure at a simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeFaultEvent {
    /// Simulated time of the failure, in microseconds.
    pub at_us: f64,
    /// What fails.
    pub kind: NodeFaultKind,
}

/// A deterministic, seeded schedule of node-level failures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeFaultPlan {
    /// Seed the plan was sampled from (recorded for reporting; explicit
    /// plans keep whatever seed they were created with).
    pub seed: u64,
    events: Vec<NodeFaultEvent>,
}

/// The same deterministic mixer the intra-node plans use (SplitMix64),
/// private so the crate stays free of RNG dependencies.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

impl NodeFaultPlan {
    /// An empty plan carrying `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one failure, keeping events ordered by time (ties keep
    /// insertion order).
    pub fn push(&mut self, at_us: f64, kind: NodeFaultKind) -> &mut Self {
        let pos = self
            .events
            .iter()
            .position(|e| e.at_us > at_us)
            .unwrap_or(self.events.len());
        self.events.insert(pos, NodeFaultEvent { at_us, kind });
        self
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[NodeFaultEvent] {
        &self.events
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Samples the scale-out acceptance campaign on a `nodes`-node
    /// machine: one node loss, one straggler, and one degraded route
    /// (50–90 % bandwidth cut), with all victims distinct and both
    /// victims and times fixed entirely by `seed`.
    ///
    /// Machines too small for distinct victims get a shorter plan: the
    /// route-degradation leg needs four distinct nodes, the straggler
    /// two, so a 2-node machine draws only the loss and the straggler.
    pub fn scaleout_campaign(seed: u64, nodes: u32) -> Self {
        let mut rng = SplitMix64(seed);
        let mut plan = Self::new(seed);
        if nodes < 2 {
            return plan;
        }
        let n = u64::from(nodes);
        let mut used: Vec<u32> = Vec::new();
        let draw = |rng: &mut SplitMix64, used: &mut Vec<u32>| -> Option<u32> {
            if used.len() as u64 >= n {
                return None;
            }
            loop {
                let v = rng.below(n) as u32;
                if !used.contains(&v) {
                    used.push(v);
                    return Some(v);
                }
            }
        };

        let loss = draw(&mut rng, &mut used);
        let straggler = draw(&mut rng, &mut used);
        let route = match (draw(&mut rng, &mut used), draw(&mut rng, &mut used)) {
            (Some(a), Some(b)) => Some((a, b, 50 + rng.below(41) as u32)),
            _ => None,
        };

        let mut t = 0.0;
        let mut advance = |rng: &mut SplitMix64| {
            t += 90.0 + rng.below(180) as f64;
            t
        };
        if let Some(v) = loss {
            plan.push(advance(&mut rng), NodeFaultKind::NodeLoss(v));
        }
        if let Some(v) = straggler {
            plan.push(advance(&mut rng), NodeFaultKind::Straggler(v));
        }
        if let Some((a, b, percent)) = route {
            plan.push(
                advance(&mut rng),
                NodeFaultKind::LinkDegradation { a, b, percent },
            );
        }
        plan
    }
}

impl fmt::Display for NodeFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "node fault plan (seed {:#x}, {} events)",
            self.seed,
            self.len()
        )?;
        for e in &self.events {
            writeln!(f, "  t={:7.1} us  {}", e.at_us, e.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_time_ordered() {
        let mut plan = NodeFaultPlan::new(7);
        plan.push(30.0, NodeFaultKind::NodeLoss(1))
            .push(10.0, NodeFaultKind::Straggler(2))
            .push(
                20.0,
                NodeFaultKind::LinkDegradation {
                    a: 0,
                    b: 3,
                    percent: 50,
                },
            );
        let times: Vec<f64> = plan.events().iter().map(|e| e.at_us).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn scaleout_campaign_is_deterministic_and_well_formed() {
        for seed in [0u64, 1, 0xC0FFEE, u64::MAX] {
            let a = NodeFaultPlan::scaleout_campaign(seed, 64);
            let b = NodeFaultPlan::scaleout_campaign(seed, 64);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert_eq!(a.len(), 3);

            let mut victims = Vec::new();
            for e in a.events() {
                match e.kind {
                    NodeFaultKind::NodeLoss(i) | NodeFaultKind::Straggler(i) => victims.push(i),
                    NodeFaultKind::LinkDegradation { a, b, percent } => {
                        victims.push(a);
                        victims.push(b);
                        assert!((50..=90).contains(&percent), "percent = {percent}");
                    }
                }
            }
            assert_eq!(victims.len(), 4);
            assert!(victims.iter().all(|&v| v < 64));
            let mut sorted = victims.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "victims must be distinct: {victims:?}");
        }
    }

    #[test]
    fn tiny_machines_get_shorter_plans() {
        assert_eq!(NodeFaultPlan::scaleout_campaign(3, 1).len(), 0);
        let two = NodeFaultPlan::scaleout_campaign(3, 2);
        assert_eq!(two.len(), 2);
        let three = NodeFaultPlan::scaleout_campaign(3, 3);
        assert_eq!(three.len(), 2, "route leg needs four distinct nodes");
        assert_eq!(NodeFaultPlan::scaleout_campaign(3, 4).len(), 3);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            NodeFaultPlan::scaleout_campaign(1, 64),
            NodeFaultPlan::scaleout_campaign(2, 64)
        );
    }

    #[test]
    fn display_names_every_fault() {
        let mut plan = NodeFaultPlan::new(3);
        plan.push(1.0, NodeFaultKind::NodeLoss(17))
            .push(2.0, NodeFaultKind::Straggler(41))
            .push(
                3.0,
                NodeFaultKind::LinkDegradation {
                    a: 5,
                    b: 29,
                    percent: 62,
                },
            );
        let text = plan.to_string();
        assert!(text.contains("node 17 lost"));
        assert!(text.contains("node 41 straggles"));
        assert!(text.contains("route 5-29 degraded -62% bandwidth"));
    }
}

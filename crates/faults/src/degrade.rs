//! Graceful degradation: the [`Degradable`] trait and the cross-layer
//! [`DegradedNode`] state machine.
//!
//! Each simulation layer absorbs the fault kinds it understands and
//! ignores the rest, so the engine can broadcast every event to every
//! layer:
//!
//! - [`Topology`] removes failed chiplets, stacks, and interposer
//!   segments; routing works around the casualties.
//! - [`MemorySystem`] re-interleaves around dead HBM stacks and fails
//!   SerDes links in the external network.
//! - [`DegradedNode`] composes the above with a *reconciliation cascade*:
//!   after each fault, any live endpoint severed from the surviving
//!   majority of the package is written off as collateral damage, and the
//!   node's effective [`EhpConfig`] shrinks to match.

use std::collections::BTreeSet;

use ena_hsa::runtime::{AgentFault, AgentKind};
use ena_memory::extnet::ModuleId;
use ena_memory::system::MemorySystem;
use ena_model::config::EhpConfig;
use ena_model::error::DegradeError;
use ena_model::units::Megahertz;
use ena_noc::topology::{NodeId, NodeKind, Topology};

use crate::plan::{FaultEvent, FaultKind};

/// A model layer that can absorb injected component faults in place.
///
/// Implementations must never panic on a well-typed fault: kinds the layer
/// does not model are silent no-ops, and invalid targets (out of range,
/// already dead, last survivor) come back as [`DegradeError`] values.
pub trait Degradable {
    /// Applies one fault, mutating the layer in place.
    ///
    /// # Errors
    ///
    /// Returns a [`DegradeError`] when the target does not exist, already
    /// failed, or is the last survivor of its component class.
    fn degrade(&mut self, fault: FaultKind) -> Result<(), DegradeError>;
}

/// Number of interposer routers in a topology.
fn router_count(topo: &Topology) -> u32 {
    (0..topo.node_count())
        .filter(|&id| matches!(topo.kind(id), NodeKind::InterposerRouter(_)))
        .count() as u32
}

impl Degradable for Topology {
    fn degrade(&mut self, fault: FaultKind) -> Result<(), DegradeError> {
        match fault {
            FaultKind::GpuChiplet(i) => self.fail_kind(NodeKind::GpuChiplet(i)).map(|_| ()),
            FaultKind::CpuChiplet(i) => self.fail_kind(NodeKind::CpuChiplet(i)).map(|_| ()),
            FaultKind::HbmStack(i) => self.fail_kind(NodeKind::HbmStack(i)).map(|_| ()),
            FaultKind::ExternalInterface(i) => {
                self.fail_kind(NodeKind::ExternalInterface(i)).map(|_| ())
            }
            FaultKind::InterposerLink(s) => {
                let n = router_count(self);
                if s >= n {
                    return Err(DegradeError::UnknownComponent {
                        component: "interposer segment",
                        index: u64::from(s),
                    });
                }
                let a = self.find(NodeKind::InterposerRouter(s)).ok_or(
                    DegradeError::UnknownComponent {
                        component: "interposer router",
                        index: u64::from(s),
                    },
                )?;
                let b = self.find(NodeKind::InterposerRouter((s + 1) % n)).ok_or(
                    DegradeError::UnknownComponent {
                        component: "interposer router",
                        index: u64::from((s + 1) % n),
                    },
                )?;
                self.fail_link_between(a, b).map(|_| ())
            }
            // External-network and clock faults live in other layers.
            FaultKind::SerdesLink { .. } | FaultKind::ThermalThrottle { .. } => Ok(()),
        }
    }
}

impl Degradable for MemorySystem {
    fn degrade(&mut self, fault: FaultKind) -> Result<(), DegradeError> {
        match fault {
            FaultKind::HbmStack(i) => self.fail_stack(i),
            FaultKind::SerdesLink { interface, depth } => {
                let cfg = self.external_mut().config().clone();
                if interface >= cfg.interfaces || depth as usize >= cfg.modules_per_chain() {
                    return Err(DegradeError::UnknownComponent {
                        component: "SerDes link",
                        index: u64::from(interface) << 32 | u64::from(depth),
                    });
                }
                self.external_mut().fail_link(ModuleId { interface, depth });
                Ok(())
            }
            // Compute-side faults do not touch the memory system directly;
            // stack losses arrive as HbmStack events from the cascade.
            _ => Ok(()),
        }
    }
}

/// The cross-layer degradation state of one EHP node.
///
/// Owns the ring interconnect plus the ledger of everything lost so far
/// (direct faults and cascade collateral), and derives the surviving
/// hardware as an [`EhpConfig`] for the analytic models.
#[derive(Clone, Debug)]
pub struct DegradedNode {
    base: EhpConfig,
    topo: Topology,
    /// Everything lost so far: `(time_us, casualty)`, direct + collateral,
    /// in application order.
    casualties: Vec<(f64, FaultKind)>,
    lost_gpu: BTreeSet<u32>,
    lost_cpu: BTreeSet<u32>,
    lost_hbm: BTreeSet<u32>,
    lost_ext: BTreeSet<u32>,
    clock_scale: f64,
    now_us: f64,
}

impl DegradedNode {
    /// A healthy node in configuration `base`, on the ring interconnect
    /// (the chain has no redundancy: any cut partitions it, which makes
    /// every link fault fatal to half the package).
    pub fn new(base: &EhpConfig) -> Self {
        Self {
            topo: Topology::ehp_ring(base.gpu.chiplets, base.cpu.chiplets),
            base: base.clone(),
            casualties: Vec::new(),
            lost_gpu: BTreeSet::new(),
            lost_cpu: BTreeSet::new(),
            lost_hbm: BTreeSet::new(),
            lost_ext: BTreeSet::new(),
            clock_scale: 1.0,
            now_us: 0.0,
        }
    }

    /// The degraded interconnect.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Everything lost so far (direct faults and collateral), time-stamped.
    pub fn casualties(&self) -> &[(f64, FaultKind)] {
        &self.casualties
    }

    /// Current GPU clock multiplier from thermal throttling.
    pub fn clock_scale(&self) -> f64 {
        self.clock_scale
    }

    /// Applies one time-stamped fault and runs the reconciliation cascade,
    /// returning the collateral casualties (components written off because
    /// the fault severed them from the surviving majority).
    ///
    /// # Errors
    ///
    /// Returns a [`DegradeError`] when the target is unknown or already
    /// dead, or when the fault (including its cascade) would eliminate the
    /// last survivor of a component class the node cannot run without.
    pub fn apply(&mut self, event: FaultEvent) -> Result<Vec<FaultKind>, DegradeError> {
        self.now_us = event.at_us.max(self.now_us);
        match event.kind {
            FaultKind::GpuChiplet(i) => {
                self.guard_survivor(&self.lost_gpu, self.base.gpu.chiplets, "GPU chiplet")?;
                self.topo.degrade(event.kind)?;
                self.lost_gpu.insert(i);
            }
            FaultKind::CpuChiplet(i) => {
                self.guard_survivor(&self.lost_cpu, self.base.cpu.chiplets, "CPU chiplet")?;
                self.topo.degrade(event.kind)?;
                self.lost_cpu.insert(i);
            }
            FaultKind::HbmStack(i) => {
                self.guard_survivor(&self.lost_hbm, self.base.hbm.stacks, "HBM stack")?;
                self.topo.degrade(event.kind)?;
                self.lost_hbm.insert(i);
            }
            FaultKind::ExternalInterface(i) => {
                self.guard_survivor(
                    &self.lost_ext,
                    self.base.external.interfaces,
                    "external interface",
                )?;
                self.topo.degrade(event.kind)?;
                self.lost_ext.insert(i);
            }
            FaultKind::InterposerLink(_) => {
                self.topo.degrade(event.kind)?;
            }
            FaultKind::SerdesLink { interface, depth } => {
                let cfg = &self.base.external;
                if interface >= cfg.interfaces || depth as usize >= cfg.modules_per_chain() {
                    return Err(DegradeError::UnknownComponent {
                        component: "SerDes link",
                        index: u64::from(interface) << 32 | u64::from(depth),
                    });
                }
            }
            FaultKind::ThermalThrottle { percent } => {
                if percent >= 100 {
                    return Err(DegradeError::UnknownComponent {
                        component: "throttle percent",
                        index: u64::from(percent),
                    });
                }
                self.clock_scale *= 1.0 - f64::from(percent) / 100.0;
            }
        }
        self.casualties.push((event.at_us, event.kind));
        self.reconcile(event.at_us)
    }

    fn guard_survivor(
        &self,
        lost: &BTreeSet<u32>,
        total: u32,
        component: &'static str,
    ) -> Result<(), DegradeError> {
        if lost.len() as u32 + 1 >= total {
            return Err(DegradeError::LastSurvivor(component));
        }
        Ok(())
    }

    /// Reconciliation cascade: endpoints severed from the surviving
    /// majority component of the interconnect are written off. The
    /// classic case is an HBM stack orphaned by its GPU chiplet (the
    /// stack's only attachment is the chiplet's TSVs), or a whole cluster
    /// isolated when a second ring cut partitions the interposer.
    fn reconcile(&mut self, at_us: f64) -> Result<Vec<FaultKind>, DegradeError> {
        let keep = self.majority_component();
        let doomed: Vec<NodeId> = self
            .topo
            .endpoints(|_| true)
            .into_iter()
            .filter(|id| !keep.contains(id))
            .collect();

        let mut collateral = Vec::new();
        for id in doomed {
            let kind = match self.topo.kind(id) {
                NodeKind::GpuChiplet(i) => {
                    self.guard_survivor(&self.lost_gpu, self.base.gpu.chiplets, "GPU chiplet")?;
                    self.lost_gpu.insert(i);
                    FaultKind::GpuChiplet(i)
                }
                NodeKind::CpuChiplet(i) => {
                    self.guard_survivor(&self.lost_cpu, self.base.cpu.chiplets, "CPU chiplet")?;
                    self.lost_cpu.insert(i);
                    FaultKind::CpuChiplet(i)
                }
                NodeKind::HbmStack(i) => {
                    self.guard_survivor(&self.lost_hbm, self.base.hbm.stacks, "HBM stack")?;
                    self.lost_hbm.insert(i);
                    FaultKind::HbmStack(i)
                }
                NodeKind::ExternalInterface(i) => {
                    self.guard_survivor(
                        &self.lost_ext,
                        self.base.external.interfaces,
                        "external interface",
                    )?;
                    self.lost_ext.insert(i);
                    FaultKind::ExternalInterface(i)
                }
                // `endpoints()` never yields switching elements; if the
                // topology ever disagrees, report the inconsistency
                // instead of aborting the campaign.
                NodeKind::InterposerRouter(_) | NodeKind::Crossbar => {
                    return Err(DegradeError::UnknownComponent {
                        component: "severed endpoint",
                        index: id as u64,
                    });
                }
            };
            self.topo.fail_node(id)?;
            self.casualties.push((at_us, kind));
            collateral.push(kind);
        }
        Ok(collateral)
    }

    /// The set of live endpoints in the largest connected component of the
    /// degraded interconnect (ties broken toward the component holding the
    /// smallest node id).
    fn majority_component(&self) -> BTreeSet<NodeId> {
        let live: Vec<NodeId> = self.topo.endpoints(|_| true);
        let mut best: BTreeSet<NodeId> = BTreeSet::new();
        let mut assigned: BTreeSet<NodeId> = BTreeSet::new();
        for &seed in &live {
            if assigned.contains(&seed) {
                continue;
            }
            let component: BTreeSet<NodeId> = live
                .iter()
                .copied()
                .filter(|&other| other == seed || self.topo.route(seed, other).is_ok())
                .collect();
            assigned.extend(component.iter().copied());
            let better = component.len() > best.len()
                || (component.len() == best.len() && component.iter().next() < best.iter().next());
            if better {
                best = component;
            }
        }
        best
    }

    /// The configuration of the surviving hardware: lost chiplets, stacks,
    /// and interfaces removed, the GPU clock scaled by any throttle.
    pub fn effective_config(&self) -> EhpConfig {
        let mut cfg = self.base.clone();
        cfg.gpu.chiplets -= self.lost_gpu.len() as u32;
        cfg.cpu.chiplets -= self.lost_cpu.len() as u32;
        cfg.hbm.stacks -= self.lost_hbm.len() as u32;
        cfg.external.interfaces -= self.lost_ext.len() as u32;
        cfg.gpu.clock = Megahertz::new(self.base.gpu.clock.value() * self.clock_scale);
        cfg
    }

    /// The node's casualties as runtime agent deaths: each dead GPU
    /// chiplet takes its dispatch queue, each dead CPU chiplet its cores
    /// (the campaign sizes the runtime one queue per chiplet).
    pub fn agent_faults(&self) -> Vec<AgentFault> {
        let cores_per_chiplet = self.base.cpu.cores_per_chiplet as usize;
        let mut faults = Vec::new();
        for &(at_us, kind) in &self.casualties {
            match kind {
                FaultKind::GpuChiplet(i) => faults.push(AgentFault {
                    agent: AgentKind::GpuQueue,
                    index: i as usize,
                    at_us,
                }),
                FaultKind::CpuChiplet(i) => {
                    for core in 0..cores_per_chiplet {
                        faults.push(AgentFault {
                            agent: AgentKind::CpuCore,
                            index: i as usize * cores_per_chiplet + core,
                            at_us,
                        });
                    }
                }
                _ => {}
            }
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use ena_memory::policy::StaticPlacement;

    fn node() -> DegradedNode {
        DegradedNode::new(&EhpConfig::paper_baseline())
    }

    #[test]
    fn a_gpu_chiplet_takes_its_stack_as_collateral() {
        let mut n = node();
        let collateral = n
            .apply(FaultEvent {
                at_us: 10.0,
                kind: FaultKind::GpuChiplet(2),
            })
            .unwrap();
        assert_eq!(collateral, vec![FaultKind::HbmStack(2)]);
        let cfg = n.effective_config();
        assert_eq!(cfg.gpu.chiplets, 7);
        assert_eq!(cfg.hbm.stacks, 7);
        assert_eq!(cfg.cpu.chiplets, 8);
    }

    #[test]
    fn one_ring_cut_reroutes_without_casualties() {
        let mut n = node();
        let collateral = n
            .apply(FaultEvent {
                at_us: 5.0,
                kind: FaultKind::InterposerLink(0),
            })
            .unwrap();
        assert!(collateral.is_empty(), "{collateral:?}");
        assert_eq!(n.effective_config(), EhpConfig::paper_baseline());
    }

    #[test]
    fn a_second_ring_cut_partitions_and_cascades() {
        let mut n = node();
        n.apply(FaultEvent {
            at_us: 5.0,
            kind: FaultKind::InterposerLink(0),
        })
        .unwrap();
        // Adjacent cut isolates router 1's whole cluster.
        let collateral = n
            .apply(FaultEvent {
                at_us: 6.0,
                kind: FaultKind::InterposerLink(1),
            })
            .unwrap();
        assert!(!collateral.is_empty());
        let cfg = n.effective_config();
        let lost = (8 - cfg.gpu.chiplets) + (8 - cfg.cpu.chiplets);
        assert!(lost > 0, "partition cost no chiplets");
        // The majority of the package survives.
        assert!(cfg.gpu.chiplets + cfg.cpu.chiplets >= 8);
    }

    #[test]
    fn throttle_scales_the_effective_clock() {
        let mut n = node();
        n.apply(FaultEvent {
            at_us: 1.0,
            kind: FaultKind::ThermalThrottle { percent: 20 },
        })
        .unwrap();
        let cfg = n.effective_config();
        assert!((cfg.gpu.clock.value() - 800.0).abs() < 1e-9);
        assert!(
            cfg.peak_throughput().value() < EhpConfig::paper_baseline().peak_throughput().value()
        );
    }

    #[test]
    fn double_kill_and_unknown_targets_are_errors() {
        let mut n = node();
        n.apply(FaultEvent {
            at_us: 1.0,
            kind: FaultKind::GpuChiplet(0),
        })
        .unwrap();
        assert!(n
            .apply(FaultEvent {
                at_us: 2.0,
                kind: FaultKind::GpuChiplet(0),
            })
            .is_err());
        assert!(n
            .apply(FaultEvent {
                at_us: 3.0,
                kind: FaultKind::HbmStack(99),
            })
            .is_err());
        assert!(n
            .apply(FaultEvent {
                at_us: 4.0,
                kind: FaultKind::ThermalThrottle { percent: 100 },
            })
            .is_err());
    }

    #[test]
    fn killing_every_gpu_chiplet_stops_at_the_last_survivor() {
        let mut n = node();
        for i in 0..7 {
            n.apply(FaultEvent {
                at_us: f64::from(i),
                kind: FaultKind::GpuChiplet(i),
            })
            .unwrap();
        }
        let err = n
            .apply(FaultEvent {
                at_us: 8.0,
                kind: FaultKind::GpuChiplet(7),
            })
            .unwrap_err();
        assert_eq!(err, DegradeError::LastSurvivor("GPU chiplet"));
        // The refused fault left no partial state behind.
        assert_eq!(n.effective_config().gpu.chiplets, 1);
    }

    #[test]
    fn standard_campaign_applies_cleanly_and_shrinks_the_node() {
        let plan = FaultPlan::standard_campaign(0xC0FFEE);
        let mut n = node();
        for &e in plan.events() {
            n.apply(e).unwrap();
        }
        let cfg = n.effective_config();
        assert!(cfg.gpu.chiplets < 8);
        assert!(cfg.hbm.stacks <= 6, "stacks = {}", cfg.hbm.stacks);
        assert!(cfg.gpu.chiplets >= 1 && cfg.hbm.stacks >= 1);
        // Survivors remain mutually reachable.
        let eps = n.topology().endpoints(|_| true);
        for &a in &eps {
            for &b in &eps {
                if a != b {
                    assert!(n.topology().route(a, b).is_ok());
                }
            }
        }
    }

    #[test]
    fn memory_system_absorbs_stack_and_serdes_faults() {
        let base = EhpConfig::paper_baseline();
        let mut sys = MemorySystem::new(&base, Box::new(StaticPlacement::new(0.8)), u64::MAX);
        sys.degrade(FaultKind::HbmStack(1)).unwrap();
        assert_eq!(sys.live_stacks(), 7);
        sys.degrade(FaultKind::SerdesLink {
            interface: 0,
            depth: 0,
        })
        .unwrap();
        assert!(sys
            .degrade(FaultKind::SerdesLink {
                interface: 99,
                depth: 0,
            })
            .is_err());
        // Irrelevant kinds are no-ops.
        sys.degrade(FaultKind::GpuChiplet(3)).unwrap();
        assert_eq!(sys.live_stacks(), 7);
    }
}

//! Seeded fault-injection campaigns and the degradation report.
//!
//! [`run_campaign`] drives a [`FaultPlan`] through every layer of the
//! stack: the [`DegradedNode`] absorbs each fault and cascades collateral
//! damage, the analytic node models re-evaluate performance, power, and
//! thermals on the surviving hardware after every event, the NoC replays
//! the healthy traffic pattern on the degraded interconnect (severed
//! packets are counted, the rest reroute), the memory system re-interleaves
//! and replays a trace, and the HSA runtime re-executes the task graph with
//! the dead agents injected mid-flight. The [`DegradationReport`] renders
//! all of it as deterministic text: same seed, byte-identical report.

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_hsa::runtime::{RetryPolicy, Runtime, RuntimeConfig};
use ena_hsa::task::{GraphError, TaskCost, TaskGraph};
use ena_memory::policy::StaticPlacement;
use ena_memory::system::MemorySystem;
use ena_model::config::EhpConfig;
use ena_model::error::DegradeError;
use ena_model::kernel::KernelProfile;
use ena_noc::sim::{NocSim, Packet};
use ena_noc::topology::Topology;
use ena_noc::traffic::WorkloadTraffic;
use ena_workloads::profile_for;

use crate::crosscheck::{crosscheck_availability, AvailabilityEstimate};
use crate::degrade::{Degradable, DegradedNode};
use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// Everything needed to run one campaign.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Paper workload driving the models (e.g. `"CoMD"`).
    pub workload: String,
    /// Healthy hardware configuration.
    pub base: EhpConfig,
    /// The failure schedule.
    pub plan: FaultPlan,
    /// NoC traffic volume, request pairs per GPU chiplet.
    pub packets_per_chiplet: u32,
    /// Width of the fork-join task graph's GPU phase.
    pub task_width: usize,
    /// GPU kernel cost in the task graph (us).
    pub kernel_us: f64,
    /// Retry/backoff policy for tasks orphaned by dead agents.
    pub retry: RetryPolicy,
    /// Checkpoint cost for the availability cross-check (minutes).
    pub checkpoint_minutes: f64,
}

impl CampaignSpec {
    /// The acceptance campaign: CoMD on the paper baseline, with the
    /// seeded standard plan (one GPU chiplet, one HBM stack, two
    /// interposer ring cuts).
    pub fn standard(seed: u64) -> Self {
        Self {
            workload: "CoMD".into(),
            base: EhpConfig::paper_baseline(),
            plan: FaultPlan::standard_campaign(seed),
            packets_per_chiplet: 400,
            task_width: 24,
            kernel_us: 50.0,
            retry: RetryPolicy::default(),
            checkpoint_minutes: 3.0,
        }
    }
}

/// The node's measured state at one point in the campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Surviving GPU chiplets.
    pub gpu_chiplets: u32,
    /// Surviving CPU chiplets.
    pub cpu_chiplets: u32,
    /// Surviving HBM stacks.
    pub hbm_stacks: u32,
    /// Surviving external interfaces.
    pub ext_interfaces: u32,
    /// Modeled throughput (GFLOP/s).
    pub gflops: f64,
    /// Package power (W).
    pub package_watts: f64,
    /// Node power (W).
    pub node_watts: f64,
    /// Efficiency (GFLOP/s per node watt).
    pub gflops_per_watt: f64,
    /// Peak DRAM temperature (C).
    pub peak_dram_c: f64,
    /// Healthy-pattern packets still delivered on this interconnect.
    pub noc_delivered: u64,
    /// Healthy-pattern packets severed by degradation.
    pub noc_dropped: u64,
    /// Mean delivered-packet latency (cycles).
    pub noc_avg_latency: f64,
}

/// One applied fault and its aftermath.
#[derive(Clone, Debug)]
pub struct CampaignStep {
    /// The injected fault.
    pub event: FaultEvent,
    /// Components the cascade wrote off with it.
    pub collateral: Vec<FaultKind>,
    /// Node state after the fault settled.
    pub snapshot: Snapshot,
}

/// Memory-system results after the campaign's re-interleaving.
#[derive(Clone, Debug)]
pub struct MemoryOutcome {
    /// Surviving stacks in the interleave.
    pub live_stacks: usize,
    /// In-package capacity across survivors (GB).
    pub in_package_gb: f64,
    /// Accesses replayed through the degraded system.
    pub accesses: u64,
    /// Mean access latency (cycles).
    pub avg_latency_cycles: f64,
    /// Accesses that failed outright (severed external links).
    pub failed: u64,
}

/// Complete record of one campaign.
#[derive(Clone, Debug)]
pub struct DegradationReport {
    /// Workload name.
    pub workload: String,
    /// Plan seed.
    pub seed: u64,
    /// Healthy baseline measurements.
    pub healthy: Snapshot,
    /// Per-fault steps, in injection order.
    pub steps: Vec<CampaignStep>,
    /// Memory-system outcome on the final degraded node.
    pub memory: MemoryOutcome,
    /// Task-graph makespan on the healthy node (us).
    pub healthy_makespan_us: f64,
    /// Task-graph makespan with agents dying mid-flight (us).
    pub degraded_makespan_us: f64,
    /// Tasks re-queued after an agent died under them.
    pub retries: u64,
    /// Compute lost to mid-flight deaths (us).
    pub lost_work_us: f64,
    /// Availability cross-check on the healthy configuration.
    pub healthy_availability: AvailabilityEstimate,
    /// Availability cross-check on the final degraded configuration.
    pub degraded_availability: AvailabilityEstimate,
}

impl DegradationReport {
    /// The node state after the last fault (the healthy state for an
    /// empty plan).
    pub fn final_snapshot(&self) -> &Snapshot {
        self.steps.last().map_or(&self.healthy, |s| &s.snapshot)
    }

    /// Fraction of healthy throughput the degraded node retains.
    pub fn throughput_retained(&self) -> f64 {
        if self.healthy.gflops == 0.0 {
            0.0
        } else {
            self.final_snapshot().gflops / self.healthy.gflops
        }
    }

    /// Fraction of healthy in-package capacity retained.
    pub fn capacity_retained(&self) -> f64 {
        f64::from(self.final_snapshot().hbm_stacks) / f64::from(self.healthy.hbm_stacks)
    }

    /// Renders the report as deterministic text (the golden-artifact and
    /// byte-identity format).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ENA fault-injection campaign");
        let _ = writeln!(out, "============================");
        let _ = writeln!(
            out,
            "workload {} | seed {:#x} | {} scheduled faults",
            self.workload,
            self.seed,
            self.steps.len()
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "healthy baseline");
        render_snapshot(&mut out, &self.healthy);
        for step in &self.steps {
            let _ = writeln!(out);
            let _ = write!(
                out,
                "t={:7.1} us  fail {}",
                step.event.at_us, step.event.kind
            );
            if step.collateral.is_empty() {
                let _ = writeln!(out);
            } else {
                let names: Vec<String> = step.collateral.iter().map(|k| k.to_string()).collect();
                let _ = writeln!(out, " (collateral: {})", names.join(", "));
            }
            render_snapshot(&mut out, &step.snapshot);
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "memory: {} live stacks | {:.1} GB in package | {} accesses | avg {:.1} cycles | {} failed",
            self.memory.live_stacks,
            self.memory.in_package_gb,
            self.memory.accesses,
            self.memory.avg_latency_cycles,
            self.memory.failed
        );
        let _ = writeln!(
            out,
            "runtime: healthy makespan {:.1} us | degraded {:.1} us | {} retries | {:.1} us lost work",
            self.healthy_makespan_us, self.degraded_makespan_us, self.retries, self.lost_work_us
        );
        let _ = writeln!(
            out,
            "retained: {:.1} % throughput | {:.1} % in-package capacity",
            100.0 * self.throughput_retained(),
            100.0 * self.capacity_retained()
        );
        let _ = writeln!(out, "availability (analytic | injected Monte Carlo):");
        let _ = writeln!(
            out,
            "  healthy  {:.4} | {:.4}",
            self.healthy_availability.analytic, self.healthy_availability.injected
        );
        let _ = writeln!(
            out,
            "  degraded {:.4} | {:.4}",
            self.degraded_availability.analytic, self.degraded_availability.injected
        );
        out
    }
}

fn render_snapshot(out: &mut String, s: &Snapshot) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "  {} GPU chiplets | {} CPU chiplets | {} HBM stacks | {} ext interfaces",
        s.gpu_chiplets, s.cpu_chiplets, s.hbm_stacks, s.ext_interfaces
    );
    let _ = writeln!(
        out,
        "  perf {:.1} GFLOP/s | package {:.1} W | node {:.1} W | {:.2} GFLOP/s/W | peak DRAM {:.1} C",
        s.gflops, s.package_watts, s.node_watts, s.gflops_per_watt, s.peak_dram_c
    );
    let _ = writeln!(
        out,
        "  noc: {} delivered | {} dropped | avg latency {:.1} cycles",
        s.noc_delivered, s.noc_dropped, s.noc_avg_latency
    );
}

fn snapshot(
    sim: &NodeSimulator,
    cfg: &EhpConfig,
    profile: &KernelProfile,
    topo: &Topology,
    healthy_packets: &[Packet],
) -> Snapshot {
    let eval = sim.evaluate(cfg, profile, &EvalOptions::default());
    let peak_dram_c = sim
        .thermal(cfg, &eval)
        .map(|t| t.peak_dram().value())
        .unwrap_or(0.0);
    let stats = NocSim::new(topo).run(healthy_packets);
    Snapshot {
        gpu_chiplets: cfg.gpu.chiplets,
        cpu_chiplets: cfg.cpu.chiplets,
        hbm_stacks: cfg.hbm.stacks,
        ext_interfaces: cfg.external.interfaces,
        gflops: eval.perf.throughput.value(),
        package_watts: eval.package_power().value(),
        node_watts: eval.node_power().value(),
        gflops_per_watt: eval.efficiency(),
        peak_dram_c,
        noc_delivered: stats.delivered,
        noc_dropped: stats.dropped,
        noc_avg_latency: stats.avg_latency_cycles(),
    }
}

/// Builds the campaign's bulk-synchronous task graph: CPU preprocessing, a
/// fan of GPU kernels, CPU reduction.
fn campaign_graph(width: usize, kernel_us: f64) -> Result<TaskGraph, GraphError> {
    let mut g = TaskGraph::new();
    let pre = g.add("pre", TaskCost::cpu(5.0), &[])?;
    let mut kernels = Vec::with_capacity(width);
    for i in 0..width {
        kernels.push(g.add(format!("k{i}"), TaskCost::gpu(kernel_us), &[pre])?);
    }
    g.add("reduce", TaskCost::cpu(5.0), &kernels)?;
    Ok(g)
}

/// Runs `spec` end to end and assembles the report.
///
/// # Errors
///
/// Returns a [`DegradeError`] when the plan names an unknown or
/// already-dead component, a fault would eliminate the last survivor of a
/// required class, or the runtime exhausts a task's retry budget.
pub fn run_campaign(spec: &CampaignSpec) -> Result<DegradationReport, DegradeError> {
    let profile = profile_for(&spec.workload).ok_or(DegradeError::UnknownComponent {
        component: "workload profile",
        index: 0,
    })?;
    let sim = NodeSimulator::new();
    let base = &spec.base;

    // The fault-unaware traffic pattern, generated once on the healthy
    // interconnect and replayed on every degraded one: packets whose
    // endpoints died get dropped, the rest reroute.
    let healthy_topo = Topology::ehp_ring(base.gpu.chiplets, base.cpu.chiplets);
    let packets = WorkloadTraffic::from_profile(&profile, spec.plan.seed)
        .generate(&healthy_topo, spec.packets_per_chiplet);

    let healthy = snapshot(&sim, base, &profile, &healthy_topo, &packets);

    // Inject the plan, snapshotting after every fault settles.
    let mut node = DegradedNode::new(base);
    let mut steps = Vec::with_capacity(spec.plan.len());
    for &event in spec.plan.events() {
        let collateral = node.apply(event)?;
        let snap = snapshot(
            &sim,
            &node.effective_config(),
            &profile,
            node.topology(),
            &packets,
        );
        steps.push(CampaignStep {
            event,
            collateral,
            snapshot: snap,
        });
    }

    // Memory system: broadcast every casualty (stack deaths re-interleave,
    // SerDes cuts sever external chains), then replay a trace.
    let mut memory = MemorySystem::new(base, Box::new(StaticPlacement::new(0.9)), u64::MAX);
    for &(_, kind) in node.casualties() {
        memory.degrade(kind)?;
    }
    for i in 0..20_000u64 {
        let _ = memory.access(i * 4096, 64, i % 4 == 0);
    }
    let mem_stats = memory.stats().clone();
    let memory_outcome = MemoryOutcome {
        live_stacks: memory.live_stacks(),
        in_package_gb: memory.in_package_bytes() as f64 / 1e9,
        accesses: mem_stats.accesses,
        avg_latency_cycles: mem_stats.avg_latency_cycles(),
        failed: mem_stats.failed,
    };

    // HSA runtime: one queue per GPU chiplet, the node's full core count;
    // the same graph runs healthy and with the campaign's agent deaths.
    let rt = Runtime::new(RuntimeConfig {
        cpu_cores: base.cpu.total_cores() as usize,
        gpu_queues: base.gpu.chiplets as usize,
        ..RuntimeConfig::hsa()
    });
    // A structurally invalid graph cannot come from a CampaignSpec, but
    // if the builder's invariants ever change, surface the inconsistency
    // rather than aborting mid-campaign.
    let graph = campaign_graph(spec.task_width, spec.kernel_us).map_err(|_| {
        DegradeError::UnknownComponent {
            component: "campaign task graph",
            index: spec.task_width as u64,
        }
    })?;
    let healthy_schedule = rt.execute(&graph);
    let degraded_schedule = rt.execute_degraded(&graph, &node.agent_faults(), spec.retry)?;

    let final_cfg = node.effective_config();
    Ok(DegradationReport {
        workload: spec.workload.clone(),
        seed: spec.plan.seed,
        healthy,
        steps,
        memory: memory_outcome,
        healthy_makespan_us: healthy_schedule.makespan_us,
        degraded_makespan_us: degraded_schedule.makespan_us,
        retries: degraded_schedule.retries,
        lost_work_us: degraded_schedule.lost_work_us,
        healthy_availability: crosscheck_availability(
            base,
            &profile,
            spec.checkpoint_minutes,
            spec.plan.seed,
        ),
        degraded_availability: crosscheck_availability(
            &final_cfg,
            &profile,
            spec.checkpoint_minutes,
            spec.plan.seed,
        ),
    })
}

/// Re-runs one swept design point under a seeded single-chiplet-loss
/// plan: the sweep x fault cross-product in one call.
///
/// The design-space explorer answers "which configuration is best when
/// everything works"; this answers "and what does that configuration
/// retain when a chiplet dies". Any swept point is a valid base — the
/// builder always spreads CUs over the full 8-chiplet package, so the
/// single-loss plan is survivable everywhere in the space.
///
/// # Errors
///
/// Returns a [`DegradeError`] if `workload` names no known profile or
/// `point` cannot be materialized as a buildable configuration (the
/// seeded single-chiplet plan itself is always survivable).
pub fn sweep_degraded(
    point: ena_core::dse::ConfigPoint,
    workload: &str,
    seed: u64,
) -> Result<DegradationReport, DegradeError> {
    let base = point
        .try_to_config()
        .map_err(|_| DegradeError::UnknownComponent {
            component: "design point",
            index: u64::from(point.cus),
        })?;
    run_campaign(&CampaignSpec {
        workload: workload.into(),
        base,
        plan: FaultPlan::single_chiplet_loss(seed),
        ..CampaignSpec::standard(seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_campaign_degrades_but_survives() {
        let report = run_campaign(&CampaignSpec::standard(0xC0FFEE)).unwrap();
        let last = report.final_snapshot();
        // Degraded but alive: 0 < degraded < healthy.
        assert!(last.gflops > 0.0);
        assert!(last.gflops < report.healthy.gflops);
        assert!(last.node_watts > 0.0);
        assert!(last.node_watts < report.healthy.node_watts);
        // The chiplet and stack losses landed.
        assert!(last.gpu_chiplets < 8);
        assert!(last.hbm_stacks <= 6);
        // Severed traffic is accounted, the rest is still delivered.
        assert!(last.noc_dropped > 0);
        assert!(last.noc_delivered > 0);
        assert_eq!(
            report.healthy.noc_delivered,
            last.noc_delivered + last.noc_dropped
        );
        // The runtime re-queued the chiplet's in-flight work.
        assert!(report.degraded_makespan_us >= report.healthy_makespan_us);
        // The memory system re-interleaved around the dead stacks.
        assert_eq!(report.memory.live_stacks as u32, last.hbm_stacks);
        assert_eq!(report.memory.failed, 0);
    }

    #[test]
    fn same_seed_renders_byte_identical_reports() {
        let a = run_campaign(&CampaignSpec::standard(42)).unwrap().render();
        let b = run_campaign(&CampaignSpec::standard(42)).unwrap().render();
        assert_eq!(a, b);
        assert_ne!(
            a,
            run_campaign(&CampaignSpec::standard(43)).unwrap().render()
        );
    }

    #[test]
    fn an_empty_plan_is_the_healthy_node() {
        let mut spec = CampaignSpec::standard(7);
        spec.plan = FaultPlan::new(7);
        let report = run_campaign(&spec).unwrap();
        assert!(report.steps.is_empty());
        assert_eq!(report.final_snapshot(), &report.healthy);
        assert_eq!(report.throughput_retained(), 1.0);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn unknown_workloads_and_bad_plans_are_errors() {
        let mut spec = CampaignSpec::standard(1);
        spec.workload = "NoSuchKernel".into();
        assert!(run_campaign(&spec).is_err());

        let mut spec = CampaignSpec::standard(1);
        spec.plan = FaultPlan::new(1);
        spec.plan.push(1.0, FaultKind::GpuChiplet(99));
        assert!(run_campaign(&spec).is_err());
    }

    #[test]
    fn sweep_degraded_runs_any_design_point() {
        use ena_core::dse::ConfigPoint;
        use ena_model::units::{GigabytesPerSec, Megahertz};

        // A corner of the sweep grid, not the paper baseline.
        let point = ConfigPoint {
            cus: 192,
            clock: Megahertz::new(600.0),
            bandwidth: GigabytesPerSec::from_terabytes_per_sec(1.0),
        };
        let report = sweep_degraded(point, "CoMD", 0xC0FFEE).unwrap();
        assert_eq!(report.steps.len(), 1);
        let retained = report.throughput_retained();
        assert!(retained > 0.0 && retained < 1.0, "retained = {retained}");
        assert_eq!(report.final_snapshot().gpu_chiplets, 7);
        // Seeded: byte-identical across runs.
        assert_eq!(
            report.render(),
            sweep_degraded(point, "CoMD", 0xC0FFEE).unwrap().render()
        );
    }

    #[test]
    fn throttle_only_campaigns_lose_throughput_not_hardware() {
        let mut spec = CampaignSpec::standard(5);
        spec.plan = FaultPlan::new(5);
        spec.plan
            .push(10.0, FaultKind::ThermalThrottle { percent: 25 });
        let report = run_campaign(&spec).unwrap();
        let last = report.final_snapshot();
        assert_eq!(last.gpu_chiplets, 8);
        assert_eq!(last.hbm_stacks, 8);
        assert!(last.gflops < report.healthy.gflops);
        assert_eq!(last.noc_dropped, 0);
    }
}

//! Fault plans: what fails, and when.
//!
//! A [`FaultPlan`] is a deterministic schedule of component failures at
//! simulated timestamps. Plans can be built explicitly (one
//! [`FaultEvent`] at a time) or sampled from a seed with
//! [`FaultPlan::standard_campaign`], which draws the acceptance campaign —
//! one GPU chiplet, one HBM stack, two interposer ring segments — with
//! times and victims fixed entirely by the seed, so two runs of the same
//! plan produce byte-identical reports.

use core::fmt;

/// One injectable component failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// GPU chiplet `index` dies (its HBM stack is orphaned as collateral:
    /// the stack attaches to the package only through its chiplet's TSVs).
    GpuChiplet(u32),
    /// CPU chiplet `index` dies.
    CpuChiplet(u32),
    /// HBM stack `index` dies; the address space re-interleaves across the
    /// survivors.
    HbmStack(u32),
    /// Interposer ring segment `index` is cut (the duplex link between
    /// router `index` and its clockwise neighbor); traffic reroutes the
    /// long way around, and a second cut partitions the ring.
    InterposerLink(u32),
    /// External memory interface `index` is severed from the package
    /// (usually collateral of a ring partition): the capacity and
    /// bandwidth behind it are lost.
    ExternalInterface(u32),
    /// The SerDes link feeding external module `depth` on chain
    /// `interface` fails; accesses past it fail unless redundancy covers
    /// the hop.
    SerdesLink {
        /// External interface (chain) index.
        interface: u32,
        /// Module position along the chain, zero-based from the package.
        depth: u32,
    },
    /// Thermal throttle: the GPU clock drops by `percent` percent for the
    /// rest of the campaign.
    ThermalThrottle {
        /// Clock reduction in percent (0..100).
        percent: u32,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::GpuChiplet(i) => write!(f, "GPU chiplet {i}"),
            FaultKind::CpuChiplet(i) => write!(f, "CPU chiplet {i}"),
            FaultKind::HbmStack(i) => write!(f, "HBM stack {i}"),
            FaultKind::InterposerLink(i) => write!(f, "interposer segment {i}"),
            FaultKind::ExternalInterface(i) => write!(f, "external interface {i}"),
            FaultKind::SerdesLink { interface, depth } => {
                write!(f, "SerDes link {interface}.{depth}")
            }
            FaultKind::ThermalThrottle { percent } => {
                write!(f, "thermal throttle -{percent}% clock")
            }
        }
    }
}

/// A component failure at a simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulated time of the failure, in microseconds.
    pub at_us: f64,
    /// What fails.
    pub kind: FaultKind,
}

/// A deterministic, seeded schedule of failures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was sampled from (recorded for reporting; explicit
    /// plans keep whatever seed they were created with).
    pub seed: u64,
    events: Vec<FaultEvent>,
}

/// A deterministic 64-bit mixer (SplitMix64), private so the engine crate
/// stays free of RNG dependencies while remaining reproducible.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

impl FaultPlan {
    /// An empty plan carrying `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one failure, keeping events ordered by time (ties keep
    /// insertion order).
    pub fn push(&mut self, at_us: f64, kind: FaultKind) -> &mut Self {
        let pos = self
            .events
            .iter()
            .position(|e| e.at_us > at_us)
            .unwrap_or(self.events.len());
        self.events.insert(pos, FaultEvent { at_us, kind });
        self
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Samples the acceptance campaign on the paper's 8-GPU / 8-CPU /
    /// 8-stack ring package: one GPU chiplet, one HBM stack (never the one
    /// the chiplet orphans), and two distinct interposer ring segments,
    /// with victims and times fixed entirely by `seed`.
    pub fn standard_campaign(seed: u64) -> Self {
        let mut rng = SplitMix64(seed);
        let mut plan = Self::new(seed);

        let gpu = rng.below(8) as u32;
        // The chiplet takes HbmStack(gpu) down with it; aim the direct
        // stack fault elsewhere so the campaign kills two distinct stacks.
        let stack = {
            let r = rng.below(7) as u32;
            if r >= gpu {
                r + 1
            } else {
                r
            }
        };
        // Two distinct segments of the 6-router ring. Pairs that would
        // strand both CPU clusters in a minority arc ({1,3}, {0,3},
        // {1,4} on the G G | C C | G G floorplan) are redrawn: the
        // cascade would have to write off every CPU chiplet, and the
        // node cannot run without a host.
        let fatal = |a: u32, b: u32| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            matches!((lo, hi), (1, 3) | (0, 3) | (1, 4))
        };
        let (seg_a, seg_b) = loop {
            let a = rng.below(6) as u32;
            let b = rng.below(6) as u32;
            if a != b && !fatal(a, b) {
                break (a, b);
            }
        };

        let mut t = 0.0;
        let mut advance = |rng: &mut SplitMix64| {
            t += 60.0 + rng.below(120) as f64;
            t
        };
        plan.push(advance(&mut rng), FaultKind::GpuChiplet(gpu));
        plan.push(advance(&mut rng), FaultKind::HbmStack(stack));
        plan.push(advance(&mut rng), FaultKind::InterposerLink(seg_a));
        plan.push(advance(&mut rng), FaultKind::InterposerLink(seg_b));
        plan
    }

    /// Samples the minimal cross-product campaign on the 8-GPU package:
    /// exactly one GPU chiplet dies (taking its HBM stack as collateral),
    /// with the victim and time fixed entirely by `seed`. This is the
    /// fault leg of sweep x fault studies: small enough to run against
    /// any design point, severe enough to exercise every cascade path.
    pub fn single_chiplet_loss(seed: u64) -> Self {
        let mut rng = SplitMix64(seed);
        let mut plan = Self::new(seed);
        let gpu = rng.below(8) as u32;
        plan.push(60.0 + rng.below(120) as f64, FaultKind::GpuChiplet(gpu));
        plan
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault plan (seed {:#x}, {} events)",
            self.seed,
            self.len()
        )?;
        for e in &self.events {
            writeln!(f, "  t={:7.1} us  {}", e.at_us, e.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_time_ordered() {
        let mut plan = FaultPlan::new(7);
        plan.push(30.0, FaultKind::GpuChiplet(1))
            .push(10.0, FaultKind::HbmStack(2))
            .push(20.0, FaultKind::InterposerLink(0));
        let times: Vec<f64> = plan.events().iter().map(|e| e.at_us).collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn standard_campaign_is_deterministic_and_well_formed() {
        for seed in [0u64, 1, 0xC0FFEE, u64::MAX] {
            let a = FaultPlan::standard_campaign(seed);
            let b = FaultPlan::standard_campaign(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert_eq!(a.len(), 4);

            let mut gpus = Vec::new();
            let mut stacks = Vec::new();
            let mut segments = Vec::new();
            for e in a.events() {
                match e.kind {
                    FaultKind::GpuChiplet(i) => gpus.push(i),
                    FaultKind::HbmStack(i) => stacks.push(i),
                    FaultKind::InterposerLink(i) => segments.push(i),
                    other => panic!("unexpected fault {other}"),
                }
            }
            assert_eq!(gpus.len(), 1);
            assert_eq!(stacks.len(), 1);
            assert_eq!(segments.len(), 2);
            // The direct stack kill never aims at the chiplet's own stack,
            // and the two ring cuts are distinct.
            assert_ne!(gpus[0], stacks[0]);
            assert_ne!(segments[0], segments[1]);
            assert!(segments.iter().all(|&s| s < 6));
        }
    }

    #[test]
    fn single_chiplet_loss_is_seeded_and_minimal() {
        for seed in [0u64, 9, 0xC0FFEE] {
            let a = FaultPlan::single_chiplet_loss(seed);
            assert_eq!(a, FaultPlan::single_chiplet_loss(seed));
            assert_eq!(a.len(), 1);
            assert!(matches!(a.events()[0].kind, FaultKind::GpuChiplet(i) if i < 8));
            assert!(a.events()[0].at_us >= 60.0);
        }
        assert_ne!(
            FaultPlan::single_chiplet_loss(1),
            FaultPlan::single_chiplet_loss(2)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            FaultPlan::standard_campaign(1),
            FaultPlan::standard_campaign(2)
        );
    }

    #[test]
    fn display_names_every_fault() {
        let mut plan = FaultPlan::new(3);
        plan.push(
            1.0,
            FaultKind::SerdesLink {
                interface: 2,
                depth: 1,
            },
        )
        .push(2.0, FaultKind::ThermalThrottle { percent: 15 })
        .push(3.0, FaultKind::CpuChiplet(4));
        let text = plan.to_string();
        assert!(text.contains("SerDes link 2.1"));
        assert!(text.contains("thermal throttle -15% clock"));
        assert!(text.contains("CPU chiplet 4"));
    }
}

//! # ena-faults — cross-layer fault injection and graceful degradation
//!
//! The EHP node of the source paper (Vijayaraghavan et al., HPCA 2017) is
//! built from many small dice — GPU chiplets, CPU chiplets, HBM stacks,
//! interposer routers — precisely so that a single die failure does not
//! have to kill the node. This crate makes that claim testable: it injects
//! seeded component failures into every layer of the stack and measures
//! what the surviving hardware can still deliver.
//!
//! ## Fault taxonomy
//!
//! [`FaultKind`](plan::FaultKind) enumerates the injectable failures:
//!
//! | fault | layer | degradation path |
//! |---|---|---|
//! | `GpuChiplet` | compute | chiplet leaves the package; its HBM stack is orphaned collateral (TSV-attached) |
//! | `CpuChiplet` | compute | host cores shrink; tasks reschedule onto survivors |
//! | `HbmStack` | memory | address space re-interleaves across surviving stacks; capacity and bandwidth drop |
//! | `InterposerLink` | interconnect | ring segment cut; traffic reroutes the long way; a second cut partitions |
//! | `ExternalInterface` | memory | an external chain is severed from the package |
//! | `SerdesLink` | memory | one hop of an external chain dies; redundancy may cover it |
//! | `ThermalThrottle` | power/thermal | GPU clock drops; throughput falls with no hardware loss |
//!
//! ## The `Degradable` trait
//!
//! [`Degradable`](degrade::Degradable) is the cross-layer contract: a
//! component absorbs a fault and either reconfigures around it or returns
//! a [`DegradeError`](ena_model::error::DegradeError) — never panics. The
//! NoC topology, the memory system, and the [`DegradedNode`] wrapper all
//! implement it, so one [`FaultPlan`] can be broadcast across the stack.
//!
//! ## Node-level plans
//!
//! [`NodeFaultPlan`](multinode::NodeFaultPlan) lifts the same machinery
//! one level up, to whole EHP nodes: node loss, stragglers, and degraded
//! inter-node routes. The `ena-fabric` crate consumes these plans and
//! derives each straggler's slowdown from an intra-node chiplet-loss
//! campaign, coupling the two fault levels through one cause.
//!
//! ## Transient faults
//!
//! Permanent plans model hardware that *dies*;
//! [`TransientSchedule`](transient::TransientSchedule) models hardware
//! that *glitches*: MTBF-driven streams of correctable / uncorrectable /
//! silent HBM errors (classified through `ena-memory`'s seeded ECC
//! model), link CRC retransmits, and agent soft-hangs, composable with a
//! permanent plan via
//! [`merged_timeline`](transient::TransientSchedule::merged_timeline).
//! [`run_transient_campaign`] replays a schedule against an iterative
//! checkpointing application and proves no durable work is ever lost.
//!
//! ## Campaigns
//!
//! [`run_campaign`] replays a plan end to end and produces a
//! [`DegradationReport`]: per-fault performance / power / thermal
//! snapshots, rerouted-vs-severed NoC traffic, re-interleaved memory,
//! re-queued runtime tasks, and an availability cross-check of the
//! analytic Young/Daly model against an injected Monte Carlo campaign.
//! Everything is seeded: the same plan renders a byte-identical report.
//!
//! ```
//! use ena_faults::{run_campaign, CampaignSpec};
//!
//! let report = run_campaign(&CampaignSpec::standard(0xC0FFEE)).unwrap();
//! assert!(report.throughput_retained() > 0.0);
//! assert!(report.throughput_retained() < 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod campaign;
pub mod crosscheck;
pub mod degrade;
pub mod multinode;
pub mod plan;
pub mod transient;

pub use campaign::{
    run_campaign, sweep_degraded, CampaignSpec, CampaignStep, DegradationReport, MemoryOutcome,
    Snapshot,
};
pub use crosscheck::{crosscheck_availability, AvailabilityEstimate};
pub use degrade::{Degradable, DegradedNode};
pub use multinode::{NodeFaultEvent, NodeFaultKind, NodeFaultPlan};
pub use plan::{FaultEvent, FaultKind, FaultPlan};
pub use transient::{
    run_transient_campaign, TimelineEvent, TransientCampaignSpec, TransientEvent,
    TransientFaultKind, TransientRates, TransientReport, TransientSchedule,
};

// Re-exported so downstream crates (ena-fabric prices retransmits into
// collective schedules) can share the hardened policy without depending on
// the runtime crate directly.
pub use ena_hsa::runtime::RetryPolicy;

//! Transient faults: MTBF-driven schedules and absorb-and-continue
//! campaigns.
//!
//! The permanent [`FaultPlan`](crate::plan::FaultPlan) models hardware
//! that *dies*; at exascale the dominant failure stream is hardware that
//! *glitches* — HBM bit flips, link CRC errors, agents that stop
//! responding — and the machine absorbs it with ECC, retransmit/backoff,
//! and checkpoint/restart. This module supplies that stream:
//!
//! - [`TransientSchedule::sample`] draws per-class exponential
//!   (MTBF-driven) arrivals from the deterministic PRNG. Raw HBM errors
//!   are classified through `ena-memory`'s seeded
//!   [`EccModel`](ena_memory::ecc::EccModel) at sampling time, so the
//!   schedule records what the ECC *made* of each error (corrected,
//!   detected-uncorrectable, or silent) and two processes with the same
//!   seed and rates produce byte-identical schedules
//!   ([`TransientSchedule::digest`]).
//! - [`TransientSchedule::merged_timeline`] composes a transient stream
//!   with a permanent plan into one time-ordered injection timeline.
//! - [`run_transient_campaign`] replays a schedule against an iterative
//!   bulk-synchronous application with periodic checkpoints: corrected
//!   errors charge the scheme's correction latency, CRC errors charge one
//!   bounded retransmit backoff, soft-hung agents stall for the retry
//!   policy's full watchdog timeout, and detected-uncorrectable errors
//!   roll the application back to its last durable checkpoint. The report
//!   proves no completed-and-checkpointed iteration is ever lost.

use core::fmt;

use ena_hsa::runtime::RetryPolicy;
use ena_memory::ecc::{EccModel, EccOutcome, EccScheme};
use ena_model::hash::StableHasher;

use crate::plan::{FaultEvent, FaultPlan};

/// One transient (self-healing or recoverable) fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransientFaultKind {
    /// A raw HBM error on `stack` that ECC corrected in place; the access
    /// stream pays the scheme's correction latency.
    CorrectableHbm {
        /// Victim HBM stack.
        stack: u32,
    },
    /// A raw HBM error on `stack` that ECC detected but could not repair;
    /// the application must roll back to its last checkpoint.
    UncorrectableHbm {
        /// Victim HBM stack.
        stack: u32,
    },
    /// A raw HBM error on `stack` that aliased into a valid codeword and
    /// escaped detection (silent data corruption — tracked, never
    /// stalled on).
    SilentHbm {
        /// Victim HBM stack.
        stack: u32,
    },
    /// A CRC failure on interposer link `link`; the flit is retransmitted
    /// after one bounded backoff.
    LinkCrcRetransmit {
        /// Victim link (interposer ring segment).
        link: u32,
    },
    /// Agent `agent` stops responding; the watchdog waits out the retry
    /// policy's bounded timeout, then re-dispatches its work.
    AgentSoftHang {
        /// Victim agent (GPU chiplet queue).
        agent: u32,
    },
}

impl TransientFaultKind {
    /// Stable tag for digesting (one byte per variant).
    fn digest_into(self, h: &mut StableHasher) {
        match self {
            TransientFaultKind::CorrectableHbm { stack } => {
                h.write_bytes(&[1]);
                h.write_u32(stack);
            }
            TransientFaultKind::UncorrectableHbm { stack } => {
                h.write_bytes(&[2]);
                h.write_u32(stack);
            }
            TransientFaultKind::SilentHbm { stack } => {
                h.write_bytes(&[3]);
                h.write_u32(stack);
            }
            TransientFaultKind::LinkCrcRetransmit { link } => {
                h.write_bytes(&[4]);
                h.write_u32(link);
            }
            TransientFaultKind::AgentSoftHang { agent } => {
                h.write_bytes(&[5]);
                h.write_u32(agent);
            }
        }
    }
}

impl fmt::Display for TransientFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TransientFaultKind::CorrectableHbm { stack } => {
                write!(f, "correctable HBM error, stack {stack}")
            }
            TransientFaultKind::UncorrectableHbm { stack } => {
                write!(f, "uncorrectable HBM error, stack {stack}")
            }
            TransientFaultKind::SilentHbm { stack } => {
                write!(f, "silent HBM corruption, stack {stack}")
            }
            TransientFaultKind::LinkCrcRetransmit { link } => {
                write!(f, "CRC retransmit, link {link}")
            }
            TransientFaultKind::AgentSoftHang { agent } => {
                write!(f, "soft hang, agent {agent}")
            }
        }
    }
}

/// A transient fault at a simulated wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransientEvent {
    /// Arrival time, in microseconds.
    pub at_us: f64,
    /// What glitched.
    pub kind: TransientFaultKind,
}

/// Per-class mean-time-between-faults, in simulated microseconds.
///
/// Raw HBM errors arrive at `hbm_mtbf_us` and are split into
/// correctable / uncorrectable / silent by `scheme` at sampling time;
/// CRC errors and soft hangs have their own arrival processes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransientRates {
    /// ECC scheme protecting the HBM arrays.
    pub scheme: EccScheme,
    /// MTBF of raw (pre-ECC) HBM errors, us.
    pub hbm_mtbf_us: f64,
    /// MTBF of link CRC failures, us.
    pub crc_mtbf_us: f64,
    /// MTBF of agent soft-hangs, us.
    pub hang_mtbf_us: f64,
}

impl TransientRates {
    /// The acceptance rates: SECDED-protected HBM glitching every 400 us
    /// raw (so detected-uncorrectable errors — the rollback trigger —
    /// arrive a few times per standard campaign), CRC retransmits every
    /// 2 ms, soft hangs every 20 ms.
    pub fn standard() -> Self {
        Self {
            scheme: EccScheme::Secded,
            hbm_mtbf_us: 400.0,
            crc_mtbf_us: 2_000.0,
            hang_mtbf_us: 20_000.0,
        }
    }

    /// The same class mix with every MTBF multiplied by `factor`
    /// (`factor < 1` means *more* faults). Used by the monotonicity
    /// properties.
    pub fn with_mtbf_scale(self, factor: f64) -> Self {
        Self {
            scheme: self.scheme,
            hbm_mtbf_us: self.hbm_mtbf_us * factor,
            crc_mtbf_us: self.crc_mtbf_us * factor,
            hang_mtbf_us: self.hang_mtbf_us * factor,
        }
    }
}

/// A deterministic 64-bit mixer (SplitMix64), private so the engine crate
/// stays free of RNG dependencies while remaining reproducible.
#[derive(Clone, Copy, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One exponential inter-arrival with mean `mtbf_us`.
    fn exponential(&mut self, mtbf_us: f64) -> f64 {
        -mtbf_us * self.unit().max(1e-18).ln()
    }
}

/// A deterministic, seeded schedule of transient faults over a horizon.
#[derive(Clone, Debug, PartialEq)]
pub struct TransientSchedule {
    /// Seed the schedule was sampled from.
    pub seed: u64,
    /// The rates it was sampled at.
    pub rates: TransientRates,
    /// Sampling horizon, us.
    pub horizon_us: f64,
    events: Vec<TransientEvent>,
}

impl TransientSchedule {
    /// Samples the full schedule: per-class exponential arrivals over
    /// `[0, horizon_us)`, merged into one time-ordered stream. Victims
    /// are drawn from the paper's 8-stack / 6-segment / 8-agent package.
    /// Entirely determined by `(seed, rates, horizon_us)`.
    pub fn sample(seed: u64, rates: TransientRates, horizon_us: f64) -> Self {
        let mut events = Vec::new();

        // Raw HBM errors, classified through the seeded ECC model the
        // memory system uses, so the schedule records the post-ECC kind.
        let mut rng = SplitMix64(seed ^ 0x4842_4D00);
        let mut ecc = EccModel::new(rates.scheme, seed ^ 0x0ECC_0DE5);
        let mut t = rng.exponential(rates.hbm_mtbf_us);
        while t < horizon_us {
            let stack = rng.below(8) as u32;
            let kind = match ecc.classify() {
                EccOutcome::Corrected => TransientFaultKind::CorrectableHbm { stack },
                EccOutcome::DetectedUncorrectable => TransientFaultKind::UncorrectableHbm { stack },
                EccOutcome::Silent => TransientFaultKind::SilentHbm { stack },
            };
            events.push(TransientEvent { at_us: t, kind });
            t += rng.exponential(rates.hbm_mtbf_us);
        }

        // Link CRC failures.
        let mut rng = SplitMix64(seed ^ 0x4352_4300);
        let mut t = rng.exponential(rates.crc_mtbf_us);
        while t < horizon_us {
            let link = rng.below(6) as u32;
            events.push(TransientEvent {
                at_us: t,
                kind: TransientFaultKind::LinkCrcRetransmit { link },
            });
            t += rng.exponential(rates.crc_mtbf_us);
        }

        // Agent soft-hangs.
        let mut rng = SplitMix64(seed ^ 0x4841_4E47);
        let mut t = rng.exponential(rates.hang_mtbf_us);
        while t < horizon_us {
            let agent = rng.below(8) as u32;
            events.push(TransientEvent {
                at_us: t,
                kind: TransientFaultKind::AgentSoftHang { agent },
            });
            t += rng.exponential(rates.hang_mtbf_us);
        }

        // Stable merge: ties keep class order (HBM, CRC, hang).
        events.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        Self {
            seed,
            rates,
            horizon_us,
            events,
        }
    }

    /// The sampled events, in time order.
    pub fn events(&self) -> &[TransientEvent] {
        &self.events
    }

    /// Number of sampled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing glitches over the horizon.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A stable structural digest of the whole schedule (seed, rates,
    /// horizon, every event's time bits and kind). Two processes sampling
    /// the same inputs must agree on this value exactly.
    pub fn digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.seed);
        h.write_str(self.rates.scheme.label());
        h.write_f64(self.rates.hbm_mtbf_us);
        h.write_f64(self.rates.crc_mtbf_us);
        h.write_f64(self.rates.hang_mtbf_us);
        h.write_f64(self.horizon_us);
        h.write_usize(self.events.len());
        for e in &self.events {
            h.write_f64(e.at_us);
            e.kind.digest_into(&mut h);
        }
        h.finish()
    }

    /// Composes this transient stream with a permanent plan into one
    /// time-ordered timeline (ties put the permanent fault first — dead
    /// hardware cannot glitch).
    pub fn merged_timeline(&self, plan: &FaultPlan) -> Vec<TimelineEvent> {
        let mut merged = Vec::with_capacity(self.events.len() + plan.len());
        let mut perm = plan.events().iter().peekable();
        let mut trans = self.events.iter().peekable();
        loop {
            match (perm.peek(), trans.peek()) {
                (Some(&&p), Some(&&t)) => {
                    if p.at_us <= t.at_us {
                        merged.push(TimelineEvent::Permanent(p));
                        perm.next();
                    } else {
                        merged.push(TimelineEvent::Transient(t));
                        trans.next();
                    }
                }
                (Some(&&p), None) => {
                    merged.push(TimelineEvent::Permanent(p));
                    perm.next();
                }
                (None, Some(&&t)) => {
                    merged.push(TimelineEvent::Transient(t));
                    trans.next();
                }
                (None, None) => break,
            }
        }
        merged
    }
}

impl fmt::Display for TransientSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "transient schedule (seed {:#x}, {} scheme, {} events over {:.1} us)",
            self.seed,
            self.rates.scheme,
            self.len(),
            self.horizon_us
        )?;
        for e in &self.events {
            writeln!(f, "  t={:9.1} us  {}", e.at_us, e.kind)?;
        }
        Ok(())
    }
}

/// One entry of a composed permanent + transient timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimelineEvent {
    /// A permanent component death from the [`FaultPlan`].
    Permanent(FaultEvent),
    /// A transient glitch from the [`TransientSchedule`].
    Transient(TransientEvent),
}

impl TimelineEvent {
    /// The event's simulated time.
    pub fn at_us(&self) -> f64 {
        match self {
            TimelineEvent::Permanent(e) => e.at_us,
            TimelineEvent::Transient(e) => e.at_us,
        }
    }
}

/// Everything needed to run one transient campaign.
///
/// The application model is an iterative bulk-synchronous solver:
/// `iterations` iterations of `iteration_us` each, a checkpoint of
/// `checkpoint_us` after every `checkpoint_every` completed iterations,
/// and a `restart_us` reload whenever an uncorrectable error forces a
/// rollback.
#[derive(Clone, Copy, Debug)]
pub struct TransientCampaignSpec {
    /// Seed for the fault schedule.
    pub seed: u64,
    /// Per-class fault rates.
    pub rates: TransientRates,
    /// Retry/backoff policy pricing retransmits and hang timeouts.
    pub retry: RetryPolicy,
    /// Iterations the application must complete.
    pub iterations: u64,
    /// Clean cost of one iteration, us.
    pub iteration_us: f64,
    /// Iterations between checkpoints.
    pub checkpoint_every: u64,
    /// Cost of writing one checkpoint, us.
    pub checkpoint_us: f64,
    /// Cost of reloading the last checkpoint after a rollback, us.
    pub restart_us: f64,
    /// DRAM clock (MHz) converting ECC correction cycles to time.
    pub dram_mhz: f64,
}

impl TransientCampaignSpec {
    /// The acceptance campaign: 400 x 200 us iterations under the
    /// standard rates, checkpointing every 25 iterations.
    pub fn standard(seed: u64) -> Self {
        Self {
            seed,
            rates: TransientRates::standard(),
            retry: RetryPolicy::default(),
            iterations: 400,
            iteration_us: 200.0,
            checkpoint_every: 25,
            checkpoint_us: 40.0,
            restart_us: 60.0,
            dram_mhz: 1000.0,
        }
    }

    /// The schedule horizon the campaign samples over: generous enough
    /// that a heavily-faulted run cannot outlive its fault stream in any
    /// configuration the tests exercise.
    pub fn horizon_us(&self) -> f64 {
        4.0 * self.iterations as f64 * self.iteration_us
    }
}

/// Complete record of one transient campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct TransientReport {
    /// Schedule seed.
    pub seed: u64,
    /// ECC scheme in force.
    pub scheme: EccScheme,
    /// Iterations the application completed (always the full request).
    pub iterations: u64,
    /// Digest of the schedule the campaign replayed.
    pub schedule_digest: u64,
    /// Events sampled over the horizon.
    pub scheduled_events: usize,
    /// Events that arrived before the application finished.
    pub applied_events: usize,
    /// ECC-corrected HBM errors absorbed (latency only).
    pub corrected: u64,
    /// Detected-uncorrectable HBM errors (each forced a rollback).
    pub uncorrectable: u64,
    /// Silent escapes (tracked, never stalled on).
    pub silent: u64,
    /// Link CRC retransmits absorbed.
    pub crc_retransmits: u64,
    /// Agent soft-hangs waited out.
    pub soft_hangs: u64,
    /// Rollbacks taken (== `uncorrectable` applied).
    pub rollbacks: u64,
    /// Iterations re-executed because they post-dated the last
    /// checkpoint when a rollback hit.
    pub redone_iterations: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Durable (checkpointed) iteration counts, in commit order. The
    /// no-lost-work property: this log is non-decreasing, and execution
    /// never resumes below its latest entry.
    pub durable_log: Vec<u64>,
    /// Clean runtime with zero faults, us.
    pub ideal_us: f64,
    /// Achieved makespan, us.
    pub makespan_us: f64,
}

impl TransientReport {
    /// Achieved efficiency: clean runtime over faulted makespan.
    pub fn efficiency(&self) -> f64 {
        if self.makespan_us == 0.0 {
            1.0
        } else {
            self.ideal_us / self.makespan_us
        }
    }

    /// Renders the report as deterministic text (the golden-artifact and
    /// byte-identity format).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ENA transient-fault campaign");
        let _ = writeln!(out, "============================");
        let _ = writeln!(
            out,
            "seed {:#x} | {} ECC | {} iterations | schedule digest {:016x}",
            self.seed, self.scheme, self.iterations, self.schedule_digest
        );
        let _ = writeln!(
            out,
            "schedule: {} events sampled, {} applied before completion",
            self.scheduled_events, self.applied_events
        );
        let _ = writeln!(
            out,
            "absorbed: {} corrected HBM | {} CRC retransmits | {} soft hangs | {} silent escapes",
            self.corrected, self.crc_retransmits, self.soft_hangs, self.silent
        );
        let _ = writeln!(
            out,
            "recovery: {} uncorrectable -> {} rollbacks | {} iterations redone | {} checkpoints",
            self.uncorrectable, self.rollbacks, self.redone_iterations, self.checkpoints
        );
        let _ = writeln!(
            out,
            "makespan {:.1} us | ideal {:.1} us | efficiency {:.4}",
            self.makespan_us,
            self.ideal_us,
            self.efficiency()
        );
        out
    }
}

/// Replays a sampled [`TransientSchedule`] against the iterative
/// application and assembles the report.
///
/// Semantics: each iteration absorbs every event that arrives before it
/// retires. Corrected HBM errors stretch the iteration by the ECC
/// correction latency, CRC failures by one base retransmit backoff, and
/// soft hangs by the retry policy's full bounded timeout. A
/// detected-uncorrectable error aborts the iteration, discards everything
/// after the last checkpoint, pays the restart cost, and re-executes —
/// durable progress never regresses. Termination is guaranteed: the
/// schedule is finite, so a fault-saturated run eventually drains the
/// stream and finishes clean.
pub fn run_transient_campaign(spec: &TransientCampaignSpec) -> TransientReport {
    let schedule = TransientSchedule::sample(spec.seed, spec.rates, spec.horizon_us());
    let events = schedule.events();
    let penalty_us = spec.rates.scheme.correction_penalty_cycles() as f64 / spec.dram_mhz.max(1e-9);

    let mut clock = 0.0_f64;
    let mut completed = 0u64;
    let mut durable = 0u64;
    let mut since_checkpoint = 0u64;
    let mut idx = 0usize;

    let mut corrected = 0u64;
    let mut uncorrectable = 0u64;
    let mut silent = 0u64;
    let mut crc_retransmits = 0u64;
    let mut soft_hangs = 0u64;
    let mut rollbacks = 0u64;
    let mut redone_iterations = 0u64;
    let mut checkpoints = 0u64;
    let mut durable_log = Vec::new();

    while completed < spec.iterations {
        // Run one iteration, absorbing transient stalls as they arrive.
        let mut end = clock + spec.iteration_us;
        let mut rolled_back = false;
        while idx < events.len() && events[idx].at_us <= end {
            let event = events[idx];
            idx += 1;
            match event.kind {
                TransientFaultKind::CorrectableHbm { .. } => {
                    corrected += 1;
                    end += penalty_us;
                }
                TransientFaultKind::SilentHbm { .. } => silent += 1,
                TransientFaultKind::LinkCrcRetransmit { .. } => {
                    crc_retransmits += 1;
                    end += spec.retry.backoff_for(1);
                }
                TransientFaultKind::AgentSoftHang { .. } => {
                    soft_hangs += 1;
                    end += spec.retry.timeout_us();
                }
                TransientFaultKind::UncorrectableHbm { .. } => {
                    uncorrectable += 1;
                    rollbacks += 1;
                    redone_iterations += completed - durable;
                    completed = durable;
                    since_checkpoint = 0;
                    clock = clock.max(event.at_us) + spec.restart_us;
                    rolled_back = true;
                    break;
                }
            }
        }
        if rolled_back {
            continue;
        }
        clock = end;
        completed += 1;
        since_checkpoint += 1;
        if since_checkpoint == spec.checkpoint_every {
            clock += spec.checkpoint_us;
            durable = completed;
            since_checkpoint = 0;
            checkpoints += 1;
            durable_log.push(durable);
        }
    }
    // Completion is durable by definition: results are written out.
    if durable < completed {
        durable_log.push(completed);
    }

    TransientReport {
        seed: spec.seed,
        scheme: spec.rates.scheme,
        iterations: spec.iterations,
        schedule_digest: schedule.digest(),
        scheduled_events: events.len(),
        applied_events: idx,
        corrected,
        uncorrectable,
        silent,
        crc_retransmits,
        soft_hangs,
        rollbacks,
        redone_iterations,
        checkpoints,
        durable_log,
        ideal_us: spec.iterations as f64 * spec.iteration_us,
        makespan_us: clock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    #[test]
    fn schedules_are_seeded_time_ordered_and_digest_stable() {
        let rates = TransientRates::standard();
        let a = TransientSchedule::sample(0xC0FFEE, rates, 100_000.0);
        let b = TransientSchedule::sample(0xC0FFEE, rates, 100_000.0);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert!(!a.is_empty());
        assert!(a.events().windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(a.events().iter().all(|e| e.at_us < 100_000.0));
        assert_ne!(
            a.digest(),
            TransientSchedule::sample(0xC0FFED, rates, 100_000.0).digest()
        );
    }

    #[test]
    fn class_counts_track_their_mtbfs() {
        let rates = TransientRates::standard();
        let horizon = 4_000_000.0;
        let schedule = TransientSchedule::sample(9, rates, horizon);
        let count = |pred: fn(&TransientFaultKind) -> bool| {
            schedule.events().iter().filter(|e| pred(&e.kind)).count() as f64
        };
        let hbm = count(|k| {
            matches!(
                k,
                TransientFaultKind::CorrectableHbm { .. }
                    | TransientFaultKind::UncorrectableHbm { .. }
                    | TransientFaultKind::SilentHbm { .. }
            )
        });
        let crc = count(|k| matches!(k, TransientFaultKind::LinkCrcRetransmit { .. }));
        let hang = count(|k| matches!(k, TransientFaultKind::AgentSoftHang { .. }));
        // Poisson counts: expect horizon/mtbf, within ~5 sigma.
        for (observed, mtbf) in [
            (hbm, rates.hbm_mtbf_us),
            (crc, rates.crc_mtbf_us),
            (hang, rates.hang_mtbf_us),
        ] {
            let expected = horizon / mtbf;
            assert!(
                (observed - expected).abs() < 5.0 * expected.sqrt(),
                "observed {observed} vs expected {expected}"
            );
        }
        // ECC split: the overwhelming majority of HBM errors correct.
        let correctable = count(|k| matches!(k, TransientFaultKind::CorrectableHbm { .. }));
        assert!(correctable / hbm > 0.97, "corrected {correctable} of {hbm}");
    }

    #[test]
    fn merged_timeline_interleaves_and_stays_ordered() {
        let plan = FaultPlan::standard_campaign(3);
        let schedule = TransientSchedule::sample(3, TransientRates::standard(), 1_000.0);
        let merged = schedule.merged_timeline(&plan);
        assert_eq!(merged.len(), plan.len() + schedule.len());
        assert!(merged.windows(2).all(|w| w[0].at_us() <= w[1].at_us()));
        assert!(merged
            .iter()
            .any(|e| matches!(e, TimelineEvent::Permanent(p)
                if matches!(p.kind, FaultKind::GpuChiplet(_)))));
        assert!(merged
            .iter()
            .any(|e| matches!(e, TimelineEvent::Transient(_))));
    }

    #[test]
    fn the_standard_campaign_finishes_and_accounts_every_event() {
        let report = run_transient_campaign(&TransientCampaignSpec::standard(0xC0FFEE));
        assert_eq!(report.iterations, 400);
        assert_eq!(
            report.corrected
                + report.uncorrectable
                + report.silent
                + report.crc_retransmits
                + report.soft_hangs,
            report.applied_events as u64
        );
        assert!(report.applied_events <= report.scheduled_events);
        assert_eq!(report.rollbacks, report.uncorrectable);
        assert!(report.makespan_us > report.ideal_us);
        let eff = report.efficiency();
        assert!(eff > 0.5 && eff < 1.0, "efficiency {eff}");
        // Durable progress is monotone and ends at full completion.
        assert!(report.durable_log.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(report.durable_log.last().copied(), Some(400));
    }

    #[test]
    fn same_seed_renders_byte_identical_reports() {
        let a = run_transient_campaign(&TransientCampaignSpec::standard(42)).render();
        let b = run_transient_campaign(&TransientCampaignSpec::standard(42)).render();
        assert_eq!(a, b);
        assert_ne!(
            a,
            run_transient_campaign(&TransientCampaignSpec::standard(43)).render()
        );
    }

    #[test]
    fn a_fault_free_campaign_runs_at_the_ideal_rate_plus_checkpoints() {
        let mut spec = TransientCampaignSpec::standard(1);
        // MTBFs far beyond the horizon: no events at all.
        spec.rates = spec.rates.with_mtbf_scale(1e9);
        let report = run_transient_campaign(&spec);
        assert_eq!(report.applied_events, 0);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(
            report.makespan_us,
            report.ideal_us + report.checkpoints as f64 * spec.checkpoint_us
        );
    }

    #[test]
    fn more_faults_never_help() {
        let base = TransientCampaignSpec::standard(0xBEEF);
        let calm = run_transient_campaign(&TransientCampaignSpec {
            rates: base.rates.with_mtbf_scale(8.0),
            ..base
        });
        let stormy = run_transient_campaign(&TransientCampaignSpec {
            rates: base.rates.with_mtbf_scale(0.5),
            ..base
        });
        assert!(
            stormy.efficiency() < calm.efficiency(),
            "stormy {} vs calm {}",
            stormy.efficiency(),
            calm.efficiency()
        );
    }
}

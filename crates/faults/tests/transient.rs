//! Property and cross-process tests for the transient-fault layer.
//!
//! The headline guarantees: a rollback never loses checkpointed work,
//! more faults never help, and a schedule sampled from the same seed is
//! identical in any process.

use ena_faults::{
    run_transient_campaign, TransientCampaignSpec, TransientRates, TransientSchedule,
};
use ena_model::hash::StableHasher;
use ena_testkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovery loses no completed work: the durable log only ever
    /// advances, execution never resumes below its latest entry, and
    /// every requested iteration retires exactly once *net* — total
    /// executions equal the request plus the explicitly-redone tail.
    #[test]
    fn rollback_never_loses_durable_work(
        seed in 0u64..1 << 48,
        scale_pct in 20u32..400,
    ) {
        let base = TransientCampaignSpec::standard(seed);
        let spec = TransientCampaignSpec {
            rates: base.rates.with_mtbf_scale(f64::from(scale_pct) / 100.0),
            ..base
        };
        let report = run_transient_campaign(&spec);

        prop_assert!(report.iterations == spec.iterations);
        let log = &report.durable_log;
        prop_assert!(!log.is_empty());
        prop_assert!(
            log.windows(2).all(|w| w[0] <= w[1]),
            "durable log regressed: {log:?}"
        );
        prop_assert!(*log.last().unwrap() == spec.iterations);
        // Rollbacks account bijectively for uncorrectable hits, and
        // redone work is bounded by what a rollback can discard.
        prop_assert!(report.rollbacks == report.uncorrectable);
        prop_assert!(
            report.redone_iterations <= report.rollbacks * (spec.checkpoint_every - 1).max(1)
        );
        // Faults only ever stretch the clock.
        prop_assert!(report.makespan_us >= report.ideal_us);
        let eff = report.efficiency();
        prop_assert!(eff > 0.0 && eff <= 1.0, "efficiency {eff}");
    }

    /// Efficiency is monotone in the fault rate: scaling every MTBF down
    /// (more faults) never increases achieved efficiency. A single seed
    /// is noisy — whether an uncorrectable lands just before or just
    /// after a checkpoint boundary moves one campaign by more than a
    /// small rate change does — so the property is asserted on the mean
    /// over a seed batch, across 4x rate steps.
    #[test]
    fn efficiency_is_monotone_in_fault_rate(seed in 0u64..1 << 48) {
        let mean_efficiency_at = |scale: f64| {
            let batch = 10u64;
            (0..batch)
                .map(|i| {
                    let base = TransientCampaignSpec::standard(
                        seed.wrapping_add(i.wrapping_mul(0x9E37_79B9)),
                    );
                    run_transient_campaign(&TransientCampaignSpec {
                        rates: base.rates.with_mtbf_scale(scale),
                        ..base
                    })
                    .efficiency()
                })
                .sum::<f64>()
                / batch as f64
        };
        let mut last = 0.0_f64;
        // Ascending MTBF scale = descending fault rate.
        for scale in [0.25, 1.0, 4.0, 16.0] {
            let eff = mean_efficiency_at(scale);
            prop_assert!(
                eff > last,
                "scale {scale}: mean efficiency {eff} fell below {last}"
            );
            last = eff;
        }
    }

    /// Same seed, same bytes: the whole report renders identically on
    /// repeated runs within one process.
    #[test]
    fn same_seed_same_report_bytes(seed in 0u64..1 << 48) {
        let spec = TransientCampaignSpec::standard(seed);
        let a = run_transient_campaign(&spec).render();
        let b = run_transient_campaign(&spec).render();
        prop_assert!(a == b);
    }
}

/// Digest over a spread of seeds and rate scales: any nondeterminism in
/// sampling, ECC classification, or merge order lands in this value.
fn transient_digest() -> u64 {
    let mut h = StableHasher::new();
    for seed in [0u64, 1, 0xC0FFEE, 0xFA17_FA17] {
        for scale in [0.5, 1.0, 4.0] {
            let rates = TransientRates::standard().with_mtbf_scale(scale);
            let schedule = TransientSchedule::sample(seed, rates, 200_000.0);
            h.write_u64(schedule.digest());
            h.write_str(
                &run_transient_campaign(&TransientCampaignSpec {
                    rates,
                    ..TransientCampaignSpec::standard(seed)
                })
                .render(),
            );
        }
    }
    h.finish()
}

/// Satellite invariant: transient schedules (and the campaign reports
/// replayed from them) are identical across two *separate process* runs,
/// mirroring the fabric route-table digest test. The test re-executes
/// its own binary twice in digest mode and compares the printed digests
/// with each other and with the in-process value.
#[test]
fn transient_schedules_are_identical_across_processes() {
    const MODE: &str = "ENA_FAULTS_TRANSIENT_DIGEST_MODE";
    if std::env::var_os(MODE).is_some() {
        println!("digest={:016x}", transient_digest());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let child_digest = || {
        let out = std::process::Command::new(&exe)
            .args([
                "transient_schedules_are_identical_across_processes",
                "--exact",
                "--nocapture",
            ])
            .env(MODE, "1")
            .output()
            .expect("child test process");
        assert!(out.status.success(), "child run failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let at = stdout
            .find("digest=")
            .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
        stdout[at + "digest=".len()..]
            .chars()
            .take_while(char::is_ascii_hexdigit)
            .collect::<String>()
    };
    let first = child_digest();
    let second = child_digest();
    assert_eq!(first, second, "transient digest differs between processes");
    assert_eq!(
        first,
        format!("{:016x}", transient_digest()),
        "parent and child disagree"
    );
}
